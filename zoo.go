package hsd

import (
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/svm"
)

// DetectorSpec names a ready-made detector configuration together with the
// training-set augmentation it is evaluated with. The zoo below is the
// survey's cast of characters with tuned-for-this-repo hyperparameters;
// the benchmark harness and CLI tools share it so every experiment runs
// the same configurations.
type DetectorSpec struct {
	// Name is the row label used in tables.
	Name string
	// Deep marks the CNN-era detectors (Table III vs Table II).
	Deep bool
	// New constructs a fresh detector (no state shared across benchmarks).
	New func() Detector
	// Augment is applied to the training split before fitting.
	Augment AugmentConfig
}

// shallowFeatures is the shared feature view of the shallow learners:
// hand-crafted geometric statistics (the critical-dimension histograms of
// the pre-deep era) fused with a 32 nm density grid and radial CCAS
// sampling.
func shallowFeatures() FeatureExtractor {
	return NewConcatFeatures(
		&GeomStats{},
		&Density{Grid: 32},
		&CCAS{Rings: 8, Sectors: 12},
	)
}

// deepFeatures is the CNN feature tensor: 16x16 blocks of 8 px, first 16
// zigzag DCT coefficients per block (a 16x16x16 tensor).
func deepFeatures() *DCTFeatures { return &DCTFeatures{Blocks: 16, Coefs: 16} }

// StandardPM is exact pattern matching with mirror augmentation.
func StandardPM() Detector {
	return NewPMDetector(PMConfig{GridPx: 32, Tol: 0, Mirror: true})
}

// StandardFuzzyPM is Hamming-tolerant pattern matching.
func StandardFuzzyPM() Detector {
	return NewPMDetector(PMConfig{GridPx: 32, Tol: 36, Mirror: true})
}

// StandardSVM is the linear soft-margin SVM with hotspot-weighted C.
func StandardSVM(seed int64) Detector {
	return NewSVMDetector(shallowFeatures(), SVMConfig{
		Kernel: LinearKernel{}, C: 1, PosWeight: 8, Seed: seed, MaxIter: 120,
	})
}

// StandardRBFSVM is the Gaussian-kernel SVM variant.
func StandardRBFSVM(seed int64) Detector {
	ex := shallowFeatures()
	return NewSVMDetector(ex, SVMConfig{
		Kernel: svm.RBF{Gamma: 0.1 / float64(ex.Dim())},
		C:      10, PosWeight: 4, Seed: seed, MaxIter: 120,
	})
}

// StandardAdaBoost is class-balanced AdaBoost over decision stumps.
func StandardAdaBoost() Detector {
	return NewBoostDetector(shallowFeatures(), BoostConfig{Rounds: 150, ClassBalance: true})
}

// StandardForest is a class-balanced random forest.
func StandardForest(seed int64) Detector {
	return NewForestDetector(shallowFeatures(), ForestConfig{
		Trees: 60, Seed: seed, ClassBalance: true,
		Tree: TreeConfig{MaxDepth: 10},
	})
}

// StandardMLP is the shallow neural-network baseline.
func StandardMLP(seed int64) Detector {
	return NewMLPDetector(shallowFeatures(), []int{64, 32}, TrainConfig{
		Epochs: 40, BatchSize: 32, Seed: seed,
		Optimizer: nn.NewAdam(1e-3),
	})
}

// StandardCNN is the feature-tensor CNN with the given biased-learning
// epsilon (0 disables biased learning) and training epochs.
func StandardCNN(seed int64, biasEps float64, label string) *NeuralDetector {
	ex := deepFeatures()
	det := NewCNNDetector(ex,
		CNNConfig{Conv1: 16, Conv2: 24, Hidden: 48, DropoutP: 0.1, Seed: seed},
		TrainConfig{
			Epochs: 16, BatchSize: 32, Seed: seed,
			Optimizer: nn.NewAdam(1e-3),
			Loss:      nn.SoftmaxCE{BiasEps: biasEps},
		},
		label)
	// DCT tensors are already bounded; standardizing them amplifies
	// near-constant high-frequency channels into noise.
	det.NoScale = true
	return det
}

// StandardAugment is the imbalance treatment of the deep detectors:
// 4x minority upsampling with mirror flips.
func StandardAugment() AugmentConfig {
	return AugmentConfig{UpsampleFactor: 4, Mirror: true}
}

// StandardRouter is the EPIC-style meta-classifier cascade over the
// zoo: fuzzy pattern matching answers the repeats, AdaBoost the easy
// geometry, and the biased CNN anchors the uncertain band. The member
// augmentation is applied inside the router to the member-fit split
// only, so the zoo spec carries none.
func StandardRouter(seed int64) *RouterDetector {
	return NewRouterDetector("Router", []RouterStage{
		{Name: "pm-fuzzy", Detector: StandardFuzzyPM()},
		{Name: "boost", Detector: StandardAdaBoost()},
		{Name: "cnn", Detector: StandardCNN(seed, 0.25, "router-cnn")},
	}, RouterConfig{Seed: seed, Augment: StandardAugment()})
}

// SurveyZoo returns the survey's detector line-up, shallow to deep.
func SurveyZoo(seed int64) []DetectorSpec {
	return []DetectorSpec{
		{Name: "PM-exact", New: StandardPM},
		{Name: "PM-fuzzy", New: StandardFuzzyPM},
		{Name: "SVM", New: func() Detector { return StandardSVM(seed) }},
		{Name: "AdaBoost", New: StandardAdaBoost},
		{Name: "RForest", New: func() Detector { return StandardForest(seed) }},
		{Name: "MLP", New: func() Detector { return StandardMLP(seed) },
			Augment: AugmentConfig{UpsampleFactor: 4, Mirror: true}},
		{Name: "CNN", Deep: true,
			New:     func() Detector { return StandardCNN(seed, 0, "cnn") },
			Augment: StandardAugment()},
		{Name: "CNN-biased", Deep: true,
			New:     func() Detector { return StandardCNN(seed, 0.25, "cnn-biased") },
			Augment: StandardAugment()},
		{Name: "CNN-plain", Deep: true,
			New: func() Detector { return StandardCNN(seed, 0, "cnn-plain") }},
		{Name: "Router", Deep: true,
			New: func() Detector { return StandardRouter(seed) }},
	}
}
