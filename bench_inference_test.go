// Inference-engine benchmarks: the batched/parallel scoring path of
// internal/nn and the blocked/parallel matmul kernel of internal/tensor,
// measured against their serial baselines. run_bench.sh appends one
// JSONL record per benchmark to BENCH_inference.json so the trajectory
// of ns/op and allocs/op is tracked across commits, and ci.sh runs
// TestParallelInferenceSmoke as a cheap throughput-regression gate.
package hsd_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/tensor"
)

// benchInferNet builds the initialized (untrained) hotspot CNN over the
// 16x16x16 DCT feature tensor; weights are random but inference cost is
// identical to a trained model's.
func benchInferNet(tb testing.TB) (*nn.Network, int) {
	tb.Helper()
	net, err := nn.BuildCNN(nn.CNNConfig{
		InC: 16, InH: 16, InW: 16, Conv1: 24, Conv2: 32, Hidden: 64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	net.Init(rand.New(rand.NewSource(7)))
	return net, 16 * 16 * 16
}

func benchInferInputs(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(8))
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
	}
	return x
}

// BenchmarkPredictBatch compares the serial per-sample Score loop with
// the batched inference engine at one worker (cache blocking + arena
// reuse only) and at NumCPU workers (plus chunk-level parallelism).
func BenchmarkPredictBatch(b *testing.B) {
	net, dim := benchInferNet(b)
	x := benchInferInputs(64, dim)
	b.Run("serial-score", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, row := range x {
				nn.Score(net, row)
			}
		}
	})
	b.Run("batch-w1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nn.PredictBatch(net, x, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	if procs := runtime.NumCPU(); procs > 1 {
		b.Run(fmt.Sprintf("batch-w%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nn.PredictBatch(net, x, procs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, tier := range []nn.Precision{nn.Float32, nn.Int8} {
		cnet, err := nn.Compress(net, tier)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("batch-w1-"+tier.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nn.PredictBatch(cnet, x, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMatMul compares the blocked serial kernel with the
// row-sharded parallel one on a square matmul sized well above the
// parallel threshold.
func BenchmarkParallelMatMul(b *testing.B) {
	const n = 192
	rng := rand.New(rand.NewSource(9))
	ma := tensor.NewMatrix(n, n)
	ma.Randomize(rng, 1)
	mb := tensor.NewMatrix(n, n)
	mb.Randomize(rng, 1)
	dst := tensor.NewMatrix(n, n)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, ma, mb)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.ParallelMatMulInto(dst, ma, mb)
		}
	})
}

// BenchmarkMatMulKernels compares the three kernel tiers on the Dense
// hot-path shape (batch x hidden x hidden): the blocked float64 kernel,
// its float32 twin, and the int8 quantized transposed kernel (including
// per-call dynamic activation quantization, as the DenseInt8 layer pays
// it).
func BenchmarkMatMulKernels(b *testing.B) {
	const m, k, n = 64, 512, 512
	rng := rand.New(rand.NewSource(10))
	ma := tensor.NewMatrix(m, k)
	ma.Randomize(rng, 1)
	mb := tensor.NewMatrix(k, n)
	mb.Randomize(rng, 1)
	b.Run("float64", func(b *testing.B) {
		dst := tensor.NewMatrix(m, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, ma, mb)
		}
	})
	b.Run("float32", func(b *testing.B) {
		a32, b32 := ma.ToFloat32(), mb.ToFloat32()
		dst := tensor.NewMatrix32(m, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMul32Into(dst, a32, b32)
		}
	})
	b.Run("int8", func(b *testing.B) {
		// Weights quantize once (as at Compress time); activations
		// re-quantize every iteration (as at serve time).
		bT := tensor.QuantizeRowsInt8(mb.Transpose())
		qa := tensor.NewInt8Matrix(m, k)
		dst := tensor.NewMatrix(m, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < m; r++ {
				qa.Scale[r] = tensor.QuantizeRowInt8(qa.Row(r), ma.Row(r))
			}
			tensor.Int8MatMulTransInto(dst, qa, bT)
		}
	})
}

// TestParallelMatMulSmoke is the kernel-level half of the ci.sh
// throughput gate: at the bench shape the pool-sharded parallel matmul
// must not fall behind the serial kernel (best-of-3, 25% grace). On one
// core the pool degrades to an inline serial call, so this asserts the
// sharding machinery itself costs nothing measurable; on multicore it
// asserts the parallel path actually pays.
func TestParallelMatMulSmoke(t *testing.T) {
	if os.Getenv("HSD_INFER_SMOKE") == "" {
		t.Skip("set HSD_INFER_SMOKE=1 to run the throughput smoke gate")
	}
	const n = 192
	rng := rand.New(rand.NewSource(12))
	ma := tensor.NewMatrix(n, n)
	ma.Randomize(rng, 1)
	mb := tensor.NewMatrix(n, n)
	mb.Randomize(rng, 1)
	dst := tensor.NewMatrix(n, n)
	tensor.ParallelMatMulInto(dst, ma, mb) // warm the pool
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			for i := 0; i < 8; i++ {
				f()
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := timeIt(func() { tensor.MatMulInto(dst, ma, mb) })
	parallel := timeIt(func() { tensor.ParallelMatMulInto(dst, ma, mb) })
	if parallel > serial+serial/4 {
		t.Fatalf("parallel matmul regressed below serial: parallel=%v serial=%v", parallel, serial)
	}
	t.Logf("serial=%v parallel=%v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
}

// TestParallelInferenceSmoke is the ci.sh throughput-regression gate:
// the batched inference path must not fall behind the serial per-sample
// loop. Gated behind HSD_INFER_SMOKE=1 because wall-clock assertions are
// hostile to loaded machines; best-of-3 with a 25% grace margin keeps it
// stable on a single-core container, where the batched path can only win
// through cache blocking and allocation reuse (on >= 4 cores it should
// win by well over 2x at batch 64).
func TestParallelInferenceSmoke(t *testing.T) {
	if os.Getenv("HSD_INFER_SMOKE") == "" {
		t.Skip("set HSD_INFER_SMOKE=1 to run the throughput smoke gate")
	}
	net, dim := benchInferNet(t)
	x := benchInferInputs(64, dim)
	if _, err := nn.PredictBatch(net, x, 0); err != nil { // warm pools, validate
		t.Fatal(err)
	}
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := timeIt(func() {
		for _, row := range x {
			nn.Score(net, row)
		}
	})
	batched := timeIt(func() { _, _ = nn.PredictBatch(net, x, 0) })
	if batched > serial+serial/4 {
		t.Fatalf("batched inference regressed below serial: batched=%v serial=%v", batched, serial)
	}
	t.Logf("serial=%v batched=%v (%.2fx)", serial, batched, float64(serial)/float64(batched))
}
