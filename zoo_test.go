package hsd

import (
	"bytes"
	"math"
	"testing"

	"github.com/golitho/hsd/internal/nn"
)

// reduceEpochs shrinks neural training to a couple of epochs so the
// whole zoo trains within test time; accuracy is not under test here,
// only that every spec's construct/fit/score/persist cycle works. The
// router is recursed so its CNN stage is shrunk too.
func reduceEpochs(det Detector) {
	switch d := det.(type) {
	case *NeuralDetector:
		d.Cfg.Epochs = 2
	case *RouterDetector:
		for _, s := range d.Stages() {
			reduceEpochs(s.Detector)
		}
	}
}

// TestZooSpecTrainRoundTrip trains every zoo spec on the shared facade
// benchmark, checks it produces finite scores on held-out clips, and for
// neural detectors round-trips the network through Save/Load asserting
// bit-identical scores. TestZooSpecs only checks construction; this is
// the train-path coverage for each DetectorSpec.
func TestZooSpecTrainRoundTrip(t *testing.T) {
	b := facadeBenchmark(t)
	train := FromSamples(b.Train.Samples)
	test := FromSamples(b.Test.Samples)
	if len(test) > 8 {
		test = test[:8]
	}
	for _, spec := range SurveyZoo(5) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			det := spec.New()
			reduceEpochs(det)
			if err := det.Fit(AugmentMinority(train, spec.Augment)); err != nil {
				t.Fatalf("fit: %v", err)
			}
			scores := make([]float64, len(test))
			for i, lc := range test {
				s, err := det.Score(lc.Clip)
				if err != nil {
					t.Fatalf("score clip %d: %v", i, err)
				}
				if math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("clip %d: non-finite score %v", i, s)
				}
				scores[i] = s
			}
			nd, ok := det.(*NeuralDetector)
			if !ok {
				return
			}
			var buf bytes.Buffer
			if err := SaveNetwork(&buf, nd); err != nil {
				t.Fatalf("save network: %v", err)
			}
			net, err := nn.Load(&buf)
			if err != nil {
				t.Fatalf("load network: %v", err)
			}
			loaded, err := nd.WithNetwork(net)
			if err != nil {
				t.Fatalf("with network: %v", err)
			}
			for i, lc := range test {
				s, err := loaded.Score(lc.Clip)
				if err != nil {
					t.Fatalf("reloaded score clip %d: %v", i, err)
				}
				if math.Float64bits(s) != math.Float64bits(scores[i]) {
					t.Fatalf("clip %d: reloaded score %v != original %v", i, s, scores[i])
				}
			}
		})
	}
}
