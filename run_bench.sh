#!/bin/sh
# Regenerates bench_output.txt in three chunks (single-core friendly).
set -e
cd /root/repo
: > bench_output.txt
echo "# chunk A: evaluation tables (zoo) + Fig.2" >> bench_output.txt
go test -timeout 60m -bench 'Table|Fig2' -benchmem -run XXX . >> bench_output.txt 2>&1
echo "# chunk B: figures and ablations" >> bench_output.txt
go test -timeout 60m -bench 'Fig3|Fig4|Fig5|Fig6|Ablation' -benchmem -run XXX . >> bench_output.txt 2>&1
echo "# chunk C: micro-benchmarks" >> bench_output.txt
go test -timeout 60m -bench . -benchmem -run XXX ./internal/... >> bench_output.txt 2>&1
echo "# done" >> bench_output.txt
