#!/bin/sh
# Regenerates bench_output.txt in three chunks (single-core friendly).
set -e
cd /root/repo
: > bench_output.txt
echo "# chunk A: evaluation tables (zoo) + Fig.2" >> bench_output.txt
go test -timeout 60m -bench 'Table|Fig2' -benchmem -run XXX . >> bench_output.txt 2>&1
echo "# chunk B: figures and ablations" >> bench_output.txt
go test -timeout 60m -bench 'Fig3|Fig4|Fig5|Fig6|Ablation' -benchmem -run XXX . >> bench_output.txt 2>&1
echo "# chunk C: micro-benchmarks" >> bench_output.txt
go test -timeout 60m -bench . -benchmem -run XXX ./internal/... >> bench_output.txt 2>&1
echo "# chunk D: inference engine (appends trajectory to BENCH_inference.json)" >> bench_output.txt
infer_out=$(go test -timeout 60m -bench 'PredictBatch|ParallelMatMul|MatMulKernels' -benchmem -run XXX . 2>&1)
echo "$infer_out" >> bench_output.txt
echo "$infer_out" | awk -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "B/op") bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		printf("{\"ts\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", ts, name, ns, bytes, allocs)
	}' >> BENCH_inference.json
echo "# chunk E: tracing overhead (appends trajectory to BENCH_trace.json)" >> bench_output.txt
trace_out=$(go test -timeout 60m -bench 'ScanTracedVsUntraced' -benchmem -run XXX ./internal/core/ 2>&1)
echo "$trace_out" >> bench_output.txt
echo "$trace_out" | awk -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "B/op") bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		printf("{\"ts\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", ts, name, ns, bytes, allocs)
	}' >> BENCH_trace.json
echo "# chunk F: scan farm throughput, cold vs warm clip cache (appends trajectory to BENCH_scan.json)" >> bench_output.txt
scan_out=$(go test -timeout 60m -bench 'ScanFarm' -benchmem -run XXX ./internal/scanfarm/ 2>&1)
echo "$scan_out" >> bench_output.txt
echo "$scan_out" | awk -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "B/op") bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		printf("{\"ts\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", ts, name, ns, bytes, allocs)
	}' >> BENCH_scan.json
echo "# chunk G: router frontier, per-stage ODST and escalation rate (appends trajectory to BENCH_router.json)" >> bench_output.txt
router_out=$(go test -timeout 60m -bench 'RouterFrontier' -benchtime 1x -run XXX . 2>&1)
echo "$router_out" >> bench_output.txt
echo "$router_out" | awk -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		# Emit every value/unit metric pair the harness reported —
		# ns/op plus the custom router metrics (router_recall,
		# router_odst_us, deep_recall, deep_odst_us, deep_frac,
		# stageN_s) — as one JSON line.
		printf("{\"ts\":\"%s\",\"name\":\"%s\"", ts, $1)
		for (i = 2; i < NF; i++) {
			unit = $(i+1)
			if (unit ~ /^[A-Za-z_][A-Za-z0-9_\/]*$/ && $i ~ /^[0-9.e+-]+$/) {
				gsub(/\//, "_per_", unit)
				printf(",\"%s\":%s", unit, $i)
				i++
			}
		}
		printf("}\n")
	}' >> BENCH_router.json
echo "# chunk H: quality-monitor overhead, scan with monitoring off/on plus per-event cost (appends trajectory to BENCH_monitor.json)" >> bench_output.txt
monitor_out=$(go test -timeout 60m -bench 'ScanFarmQuality|MonitorObserve|MonitorSnapshot' -benchmem -run XXX ./internal/scanfarm/ ./internal/qualitymon/ 2>&1)
echo "$monitor_out" >> bench_output.txt
echo "$monitor_out" | awk -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ {
		name = $1; ns = "null"; bytes = "null"; allocs = "null"
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "B/op") bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		printf("{\"ts\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", ts, name, ns, bytes, allocs)
	}' >> BENCH_monitor.json
echo "# done" >> bench_output.txt
