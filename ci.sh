#!/usr/bin/env sh
# ci.sh — the repo's verification gate. Mirrors what a reviewer runs:
#
#   vet, build, unit + property tests under the race detector, and a
#   smoke pass over the fuzz seed corpora (no fuzzing engine time).
#
# Usage: ./ci.sh [-short]
#   -short  pass -short to go test (skips the slower property tests)

set -eu

short=""
if [ "${1:-}" = "-short" ]; then
	short="-short"
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

echo "== chaos smoke =="
# The chaos tests inject faults (latency, errors, panics) into the
# primary detector and the scan loop, asserting the serving cascade
# degrades instead of failing; -race because degradation is concurrent.
go test -run Chaos -race ./internal/serve/ ./internal/core/

echo "== inference smoke =="
# The batched inference engine must not fall behind the serial
# per-sample scoring loop, and the pool-sharded parallel matmul must
# not fall behind the serial kernel (best-of-3, 25% grace margin; see
# TestParallelInferenceSmoke / TestParallelMatMulSmoke for reasoning).
HSD_INFER_SMOKE=1 go test -run 'TestParallelInferenceSmoke|TestParallelMatMulSmoke' .

echo "== bench regression gate =="
# Ratio-normalized throughput gate: the batched path must keep at
# least 90% of its committed speedup over the serial loop (compares
# against the last entries in BENCH_inference.json; machine-independent
# because both sides run on the same box).
./scripts/bench_gate.sh

echo "== kill-resume chaos =="
# Training is killed at several injected fault points and resumed from
# the checkpoint; the resumed model must be byte-identical to the
# uninterrupted run. -race because resume replays concurrent-safe RNG
# and optimizer state.
go test -run 'TestKillResume|TestStopResume|TestCheckpointTornWrite' -race ./internal/nn/

echo "== scan farm chaos =="
# The shard coordinator is hammered with injected faults (errors,
# panics, latency) and repeated kill-resume cycles over one journal;
# findings must stay byte-identical to an uninterrupted serial scan
# and the shared clip cache must hold under -race.
go test -run 'TestChaosFarm' -race ./internal/scanfarm/

echo "== router equivalence =="
# The routing-equivalence property layer: for any band setting the
# router's verdicts must be bit-identical to the answering stage's raw
# verdict, and always-escalate mode must reproduce the final detector's
# confusion matrix. -race because the batch path clones members per
# call and shares atomic routing counters across scan workers.
go test -run 'TestRouter|TestFitBand|TestCalibrat|TestGate.*Router' -race ./internal/router/ ./internal/registry/

echo "== router smoke =="
# End to end: train the routed cascade and its members on a fixed-seed
# benchmark; router recall must hold against both the boost-only and
# the deep rows while the deep stage sees only the escalated band.
./scripts/router_smoke.sh

echo "== scan smoke =="
# End to end: hsdscan is SIGKILLed mid-scan with a journal attached,
# then rerun with -resume; the stitched findings file must diff clean
# against an uninterrupted scan of the same chip.
./scripts/scan_smoke.sh

echo "== fuzz seed smoke =="
# -run=Fuzz executes every fuzz target once per seed corpus entry,
# without the fuzzing engine; crashes here mean a regressed parser,
# model loader, or quantizer.
go test -run=Fuzz ./internal/layout/ ./internal/gdsii/ ./internal/nn/ ./internal/tensor/

echo "== trace store race =="
# The trace store and tail sampler are hit from every request
# goroutine; their concurrency tests must hold under the detector.
go test -run 'TestConcurrentAppendRead|TestChaosTailSampling' -race ./internal/trace/

echo "== trace smoke =="
# End to end: boot hsdserve with tracing and a debug listener, score
# one clip, and assert /debug/traces returns that request's trace with
# non-empty child spans (raster/features/inference under the root).
./scripts/trace_smoke.sh

echo "== reload smoke =="
# End to end: boot hsdserve with a watched model path, hot-reload a
# freshly trained model via /admin/reload and via the watcher, and
# assert the generation gauge and reload counters move while a corrupt
# model is refused.
./scripts/reload_smoke.sh

echo "== quality monitor determinism =="
# The sketch/confusion snapshots must be byte-identical for the same
# event multiset under any worker count, and the OnCollect contract
# must hold while hooks register mid-scrape; both only mean anything
# under the race detector.
go test -run 'TestSnapshotDeterministic|TestOnCollectConcurrent' -race ./internal/qualitymon/ ./internal/telemetry/

echo "== data engine chaos =="
# The active-learning engine is kill-resumed at injected fault points
# across every stage boundary (post-select, mid-label, post-train,
# pre-ship); each resume must replay the WAL to the same state and the
# finally-shipped model must be byte-identical to the uninterrupted
# cycle. -race because labeling fans out across workers over one WAL.
go test -run 'TestChaosLearn' -race ./internal/datengine/

echo "== learn smoke =="
# End to end: hsdlearn mines the base model's uncertainty band, runs a
# full select/label/retrain/ship cycle, is SIGKILLed mid-label, and is
# rerun with -resume; the resumed cycle must reuse >=1 durable label
# and ship a model byte-identical to the uninterrupted run's.
./scripts/learn_smoke.sh

echo "== quality smoke =="
# End to end: hsdtrain writes a score-distribution baseline sidecar,
# hot reload installs it, an injected covariate shift pages
# hotspot_quality_alert_state within the fast window, and rollback
# clears the alert through the ClearHold hysteresis.
./scripts/quality_smoke.sh

echo "ci: all checks passed"
