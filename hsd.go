// Package hsd is a complete Go implementation of machine-learning
// lithography hotspot detection, from shallow to deep models, as surveyed
// in "Lithography hotspot detection: From shallow to deep learning"
// (IEEE SOCC 2017).
//
// The package is a facade over the implementation packages and is the
// intended entry point for downstream users. It covers:
//
//   - layout modelling and clip extraction (Layout, Clip);
//   - a lithography-simulation oracle for ground-truth labelling
//     (Simulator);
//   - ICCAD-2012-style synthetic benchmark generation (GenerateSuite);
//   - feature extraction (Density, CCAS, DCTFeatures);
//   - the detector zoo: pattern matching, SVM, AdaBoost, MLP, CNN with
//     biased learning, and voting ensembles;
//   - the contest evaluation protocol (Evaluate: accuracy, false alarms,
//     ODST) and a parallel full-chip scanner (Scan).
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// system inventory.
package hsd

import (
	"context"
	"io"

	"github.com/golitho/hsd/internal/boost"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/datengine"
	"github.com/golitho/hsd/internal/dtree"
	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/gdsii"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/iccad"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/logreg"
	"github.com/golitho/hsd/internal/metrics"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/opc"
	"github.com/golitho/hsd/internal/pm"
	"github.com/golitho/hsd/internal/raster"
	"github.com/golitho/hsd/internal/router"
	"github.com/golitho/hsd/internal/scanfarm"
	"github.com/golitho/hsd/internal/svm"
	"github.com/golitho/hsd/internal/telemetry"
)

// Geometry and layout types.
type (
	// Point is an integer layout coordinate in nanometres.
	Point = geom.Point
	// Rect is a half-open axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a rectilinear polygon ring.
	Polygon = geom.Polygon
	// Layout is a single-layer mask layout with a spatial index.
	Layout = layout.Layout
	// Clip is a square detection window with its scored core.
	Clip = layout.Clip
)

// Pt is shorthand for a Point.
func Pt(x, y int) Point { return geom.Pt(x, y) }

// R is shorthand for a canonical Rect.
func R(x0, y0, x1, y1 int) Rect { return geom.R(x0, y0, x1, y1) }

// NewLayout returns an empty layout.
func NewLayout(name string) *Layout { return layout.New(name) }

// ReadLayout parses a GLT-format layout stream.
func ReadLayout(r io.Reader) (*Layout, error) { return layout.Read(r) }

// WriteLayout serializes a layout in GLT format.
func WriteLayout(w io.Writer, l *Layout) error { return layout.Write(w, l) }

// ReadGDSII parses a GDSII stream-format layout (BOUNDARY subset).
func ReadGDSII(r io.Reader) (*Layout, error) { return gdsii.Read(r) }

// WriteGDSII serializes a layout as a GDSII stream library.
func WriteGDSII(w io.Writer, l *Layout) error { return gdsii.Write(w, l) }

// Lithography simulation (the ground-truth oracle).
type (
	// SimConfig parameterizes the optical model and defect checks.
	SimConfig = lithosim.Config
	// Simulator runs the process-window printability check.
	Simulator = lithosim.Simulator
	// SimResult is the oracle verdict for one clip.
	SimResult = lithosim.Result
	// Defect is one printing failure.
	Defect = lithosim.Defect
	// DefectType enumerates failure categories.
	DefectType = lithosim.DefectType
)

// Defect categories.
const (
	DefectBridge = lithosim.DefectBridge
	DefectNeck   = lithosim.DefectNeck
	DefectOpen   = lithosim.DefectOpen
	DefectEPE    = lithosim.DefectEPE
)

// DefaultSimConfig models an aggressive 193 nm immersion process.
func DefaultSimConfig() SimConfig { return lithosim.DefaultConfig() }

// NewSimulator constructs the oracle.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return lithosim.New(cfg) }

// RasterImage is a grayscale coverage raster of layout geometry.
type RasterImage = raster.Image

// OPC (optical proximity correction) over the oracle.
type (
	// OPCConfig controls the correction loop.
	OPCConfig = opc.Config
	// OPCResult reports a correction attempt.
	OPCResult = opc.Result
)

// CorrectClip attempts to repair a clip's printing failures with
// rule-based mask edits driven by the simulator.
func CorrectClip(sim *Simulator, clip Clip, cfg OPCConfig) (OPCResult, error) {
	return opc.Correct(sim, clip, cfg)
}

// RasterizeClip renders a clip window at the given pixel pitch (in
// nanometres) into a coverage image, the input of Simulator.AerialImage.
func RasterizeClip(clip Clip, pixelNM int) (*RasterImage, error) {
	return raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: pixelNM}, clip.Shapes)
}

// Benchmark generation.
type (
	// Suite is a generated multi-benchmark dataset.
	Suite = iccad.Suite
	// Benchmark is one named benchmark with train/test splits.
	Benchmark = iccad.Benchmark
	// Split is one data partition.
	Split = iccad.Split
	// Sample is one labelled clip.
	Sample = iccad.Sample
	// SuiteConfig parameterizes suite generation.
	SuiteConfig = iccad.SuiteConfig
	// BenchmarkSpec sizes one benchmark.
	BenchmarkSpec = iccad.Spec
	// PatternStyle controls the pattern distribution of a benchmark.
	PatternStyle = iccad.Style
)

// GenerateSuite builds a synthetic benchmark suite.
func GenerateSuite(cfg SuiteConfig) (*Suite, error) { return iccad.GenerateSuite(cfg) }

// DefaultSuiteConfig mirrors the five ICCAD 2012 benchmarks (scaled).
func DefaultSuiteConfig(seed int64) SuiteConfig { return iccad.DefaultSuiteConfig(seed) }

// SmallSuiteConfig is a miniature two-benchmark suite for quick runs.
func SmallSuiteConfig(seed int64) SuiteConfig { return iccad.SmallSuiteConfig(seed) }

// DefaultPatternStyle returns the balanced metal-layer style.
func DefaultPatternStyle() PatternStyle { return iccad.DefaultStyle() }

// GenerateChip synthesizes a full-chip layout for scanning experiments.
func GenerateChip(seed int64, edgeNM int, style PatternStyle) (*Layout, error) {
	return iccad.GenerateChip(seed, edgeNM, style)
}

// Feature extraction.
type (
	// FeatureExtractor turns clips into fixed-length vectors.
	FeatureExtractor = features.Extractor
	// Density is the density-grid extractor.
	Density = features.Density
	// CCAS is concentric-circle area sampling.
	CCAS = features.CCAS
	// DCTFeatures is the block-DCT feature-tensor extractor.
	DCTFeatures = features.DCT
	// GeomStats is the hand-crafted geometric feature family.
	GeomStats = features.GeomStats
	// ConcatFeatures fuses several extractors.
	ConcatFeatures = features.Concat
)

// NewConcatFeatures fuses extractors in order.
func NewConcatFeatures(parts ...FeatureExtractor) *ConcatFeatures {
	return features.NewConcat(parts...)
}

// Detection.
type (
	// Detector is a trainable hotspot classifier.
	Detector = core.Detector
	// LabeledClip is one training/evaluation sample.
	LabeledClip = core.LabeledClip
	// AugmentConfig controls minority-class augmentation.
	AugmentConfig = core.AugmentConfig
	// EvalOptions controls Evaluate.
	EvalOptions = core.EvalOptions
	// EvalResult is one detector-on-benchmark outcome.
	EvalResult = core.Result
	// ScanConfig controls full-chip scanning.
	ScanConfig = core.ScanConfig
	// Finding is one flagged scan window.
	Finding = core.Finding
	// ScanResult is a ctx-aware scan outcome with partial-result markers.
	ScanResult = core.ScanResult
	// Ensemble combines detectors by voting.
	Ensemble = core.Ensemble

	// PMConfig parameterizes pattern matching.
	PMConfig = pm.Config
	// SVMConfig parameterizes the SVM detector.
	SVMConfig = svm.Config
	// BoostConfig parameterizes AdaBoost.
	BoostConfig = boost.Config
	// ForestConfig parameterizes the random forest.
	ForestConfig = dtree.ForestConfig
	// TreeConfig parameterizes a single decision tree.
	TreeConfig = dtree.TreeConfig
	// LogRegConfig parameterizes logistic regression.
	LogRegConfig = logreg.Config
	// TrainConfig parameterizes neural training.
	TrainConfig = nn.TrainConfig
	// CNNConfig describes the CNN topology.
	CNNConfig = nn.CNNConfig
	// NeuralDetector is the MLP/CNN detector type.
	NeuralDetector = core.NeuralDetector
)

// Kernel types for SVMConfig.
type (
	// LinearKernel is the dot-product kernel.
	LinearKernel = svm.Linear
	// RBFKernel is the Gaussian kernel.
	RBFKernel = svm.RBF
)

// NewPMDetector builds a pattern-matching detector.
func NewPMDetector(cfg PMConfig) Detector { return core.NewPMDetector(cfg) }

// NewSVMDetector builds an SVM detector over the extractor.
func NewSVMDetector(ex FeatureExtractor, cfg SVMConfig) Detector {
	return core.NewSVMDetector(ex, cfg)
}

// NewBoostDetector builds an AdaBoost detector over the extractor.
func NewBoostDetector(ex FeatureExtractor, cfg BoostConfig) Detector {
	return core.NewBoostDetector(ex, cfg)
}

// NewForestDetector builds a random-forest detector over the extractor.
func NewForestDetector(ex FeatureExtractor, cfg ForestConfig) Detector {
	return core.NewForestDetector(ex, cfg)
}

// NewLogRegDetector builds a logistic-regression detector over the
// extractor.
func NewLogRegDetector(ex FeatureExtractor, cfg LogRegConfig) Detector {
	return core.NewLogRegDetector(ex, cfg)
}

// NewMLPDetector builds the shallow neural baseline.
func NewMLPDetector(ex FeatureExtractor, hidden []int, cfg TrainConfig) *NeuralDetector {
	return core.NewMLPDetector(ex, hidden, cfg)
}

// NewCNNDetector builds the deep feature-tensor CNN detector.
func NewCNNDetector(ex *DCTFeatures, cnn CNNConfig, cfg TrainConfig, label string) *NeuralDetector {
	return core.NewCNNDetector(ex, cnn, cfg, label)
}

// NewEnsemble builds a majority-voting ensemble.
func NewEnsemble(members ...Detector) *Ensemble { return core.NewEnsemble(members...) }

// Routing (EPIC-style meta-classifier cascade).
type (
	// RouterDetector routes clips through a cheap→expensive detector
	// cascade by calibrated confidence.
	RouterDetector = router.Router
	// RouterStage is one rung of the cascade.
	RouterStage = router.Stage
	// RouterConfig parameterizes router fitting.
	RouterConfig = router.Config
	// RouterBand is the uncertainty band on a stage's confidence.
	RouterBand = router.Band
	// RouterDecision is the full routing outcome for one clip.
	RouterDecision = router.Decision
	// RouterStageStats snapshots one stage's routing counters.
	RouterStageStats = router.StageStats
)

// RouterAlwaysEscalate is the band that forwards every clip to the
// final stage — it reduces the router to its deep detector.
var RouterAlwaysEscalate = router.AlwaysEscalate

// NewRouterDetector builds an unfitted routing cascade over stages
// (cheapest first; the final stage always answers).
func NewRouterDetector(name string, stages []RouterStage, cfg RouterConfig) *RouterDetector {
	return router.New(name, stages, cfg)
}

// Predict applies a detector's threshold to one clip.
func Predict(d Detector, clip Clip) (bool, error) { return core.Predict(d, clip) }

// FromSamples converts generator samples into evaluation clips.
func FromSamples(samples []Sample) []LabeledClip { return core.FromSamples(samples) }

// AugmentMinority expands the hotspot class of a training set with
// upsampling and symmetry transforms.
func AugmentMinority(train []LabeledClip, cfg AugmentConfig) []LabeledClip {
	return core.AugmentMinority(train, cfg)
}

// Evaluate runs the ICCAD-2012 protocol for one detector on one benchmark.
func Evaluate(det Detector, bench string, train, test []LabeledClip, opt EvalOptions) (EvalResult, error) {
	return core.Evaluate(det, bench, train, test, opt)
}

// EvaluateCtx is Evaluate with trace attribution: when ctx carries a
// tracer (see internal/trace), the run records an "eval" span whose
// "fit", "score", and "verify" children decompose the reported ODST
// terms directly.
func EvaluateCtx(ctx context.Context, det Detector, bench string, train, test []LabeledClip, opt EvalOptions) (EvalResult, error) {
	return core.EvaluateCtx(ctx, det, bench, train, test, opt)
}

// EvaluateSuite runs a detector factory across a whole suite.
func EvaluateSuite(factory func() Detector, suite *Suite, opt EvalOptions) ([]EvalResult, error) {
	return core.EvaluateSuite(factory, suite, opt)
}

// Scan slides a detector across a chip and returns flagged windows.
func Scan(chip *Layout, det Detector, cfg ScanConfig) ([]Finding, error) {
	return core.Scan(chip, det, cfg)
}

// ScanContext is the cancellable Scan: when ctx is cancelled or its
// deadline expires mid-scan, the returned result carries the findings
// completed so far (an exact prefix of the uncancelled deterministic
// result, in window-enumeration order) with Interrupted set and Cause
// recording why.
func ScanContext(ctx context.Context, chip *Layout, det Detector, cfg ScanConfig) (ScanResult, error) {
	return core.ScanCtx(ctx, chip, det, cfg)
}

// Fault-tolerant distributed scanning (internal/scanfarm): the shard
// coordinator behind `hsdscan -workers/-journal/-resume/-cache-size`.
type (
	// ScanFarmConfig tunes the shard coordinator: window geometry,
	// worker pool, per-shard retry/quarantine policy, clip cache, and
	// the resumable journal.
	ScanFarmConfig = scanfarm.Config
	// ScanFarmResult is the deterministically merged outcome, including
	// quarantined shards and clip-cache statistics.
	ScanFarmResult = scanfarm.Result
	// ScanQuarantine describes one poison shard the scan gave up on.
	ScanQuarantine = scanfarm.Quarantine
	// ScanJournal is the framed-CRC32 append-only record of completed
	// shards behind resumable scans.
	ScanJournal = scanfarm.Journal
	// ScanJournalMeta binds a journal file to one specific scan.
	ScanJournalMeta = scanfarm.Meta
	// ScanShardRecord is one journaled shard outcome.
	ScanShardRecord = scanfarm.ShardRecord
	// ClipCacheStats snapshots content-addressed clip-cache
	// effectiveness.
	ClipCacheStats = scanfarm.CacheStats
	// ClipFingerprint is the translation-invariant content hash keying
	// the clip cache.
	ClipFingerprint = layout.Fingerprint
)

// ScanFarm scans the chip through the fault-tolerant shard coordinator:
// deterministic findings regardless of schedule, poison shards
// quarantined instead of failing the run, resumable via the journal,
// and repeated geometry answered from the clip cache. Use it instead of
// Scan/ScanContext when a partial failure must not discard the run.
func ScanFarm(ctx context.Context, chip *Layout, det Detector, cfg ScanFarmConfig) (ScanFarmResult, error) {
	return scanfarm.Run(ctx, chip, det, cfg)
}

// CreateScanJournal starts a fresh scan journal at path.
func CreateScanJournal(path string, meta ScanJournalMeta) (*ScanJournal, error) {
	return scanfarm.CreateJournal(path, meta)
}

// ResumeScanJournal validates and reopens a scan journal, returning the
// intact shard records to pass as ScanFarmConfig.Completed.
func ResumeScanJournal(path string, meta ScanJournalMeta) (*ScanJournal, map[int]ScanShardRecord, error) {
	return scanfarm.ResumeJournal(path, meta)
}

// Operational telemetry.
type (
	// MetricsRegistry collects operational counters, gauges, and latency
	// histograms; pass one as ScanConfig.Metrics to observe a scan, and
	// render it with WritePrometheus or Snapshot.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is one metric series of a registry snapshot.
	MetricsSnapshot = telemetry.SeriesSnapshot
	// SimStats is a Simulator's cumulative oracle usage: the measured
	// ODST verification term.
	SimStats = lithosim.SimStats
)

// NewMetricsRegistry constructs an empty telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Metrics.
type (
	// Confusion is a binary confusion matrix.
	Confusion = metrics.Confusion
	// ROCPoint is one operating point of a threshold sweep.
	ROCPoint = metrics.ROCPoint
)

// ROC computes the ROC curve and AUC of scores against labels.
func ROC(scores []float64, labels []int) ([]ROCPoint, float64, error) {
	return metrics.ROC(scores, labels)
}

// SaveNetwork serializes a trained neural detector's network.
func SaveNetwork(w io.Writer, d *NeuralDetector) error {
	if d.Network() == nil {
		return errNotFitted
	}
	return nn.Save(w, d.Network())
}

// SaveNetworkFile writes a trained neural detector's network to path
// crash-safely: temp file in the same directory, fsync, atomic rename.
// A crash mid-save leaves the previous file (or nothing) intact.
func SaveNetworkFile(path string, d *NeuralDetector) error {
	if d.Network() == nil {
		return errNotFitted
	}
	return nn.SaveFile(path, d.Network())
}

var errNotFitted = errNotFittedError{}

type errNotFittedError struct{}

func (errNotFittedError) Error() string { return "hsd: detector is not fitted" }

// Crash-tolerant active learning (internal/datengine): the WAL-backed
// mine -> select -> label -> retrain -> ship loop behind `hsdlearn` and
// `hsdserve -learn-wal`.
type (
	// LearnConfig wires the data engine's stages: batch sizing,
	// selection features, the labeling oracle with its retry/breaker
	// policy, the trainer, and the ship gate.
	LearnConfig = datengine.Config
	// LearnEngine is the durable active-learning loop head. Every stage
	// outcome is journaled before the next stage runs, so a killed loop
	// resumes to a byte-identical shipped model.
	LearnEngine = datengine.Engine
	// LearnCycleReport summarizes one mine->ship cycle.
	LearnCycleReport = datengine.CycleReport
	// LearnCandidate is one mined, not-yet-consumed clip.
	LearnCandidate = datengine.Candidate
)

// ErrLearnNoCandidates reports a cycle with too few unconsumed
// candidates to form a batch.
var ErrLearnNoCandidates = datengine.ErrNoCandidates

// ErrLearnShipRejected marks a terminal gate rejection: the batch is
// consumed and the loop moves on instead of retrying forever.
var ErrLearnShipRejected = datengine.ErrShipRejected

// OpenLearnEngine opens (or resumes) the active-learning WAL at path.
func OpenLearnEngine(path string, cfg LearnConfig) (*LearnEngine, error) {
	return datengine.Open(path, cfg)
}
