//go:build !race

package hsd

const raceEnabled = false
