// Command gltconv converts layouts between the repository's GLT text
// format and the industry GDSII stream format, in either direction
// (chosen from the file extensions).
//
// Usage:
//
//	gltconv -in chip.glt -out chip.gds
//	gltconv -in design.gds -out design.glt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	hsd "github.com/golitho/hsd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gltconv:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input layout (.glt or .gds)")
	out := flag.String("out", "", "output layout (.glt or .gds)")
	flag.Parse()
	if *in == "" || *out == "" {
		return fmt.Errorf("both -in and -out are required")
	}

	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()

	var l *hsd.Layout
	switch {
	case strings.HasSuffix(*in, ".gds") || strings.HasSuffix(*in, ".gdsii"):
		l, err = hsd.ReadGDSII(src)
	case strings.HasSuffix(*in, ".glt"):
		l, err = hsd.ReadLayout(src)
	default:
		return fmt.Errorf("unknown input extension on %q (want .glt or .gds)", *in)
	}
	if err != nil {
		return fmt.Errorf("read %s: %w", *in, err)
	}

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	switch {
	case strings.HasSuffix(*out, ".gds") || strings.HasSuffix(*out, ".gdsii"):
		err = hsd.WriteGDSII(dst, l)
	case strings.HasSuffix(*out, ".glt"):
		err = hsd.WriteLayout(dst, l)
	default:
		return fmt.Errorf("unknown output extension on %q (want .glt or .gds)", *out)
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Printf("converted %s (%d shapes) -> %s\n", *in, l.NumShapes(), *out)
	return nil
}
