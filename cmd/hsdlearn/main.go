// Command hsdlearn runs the crash-tolerant active-learning loop: mine
// uncertain clips from a trained detector, select a diverse batch,
// label it with the lithography-simulation oracle, retrain, and ship
// the retrained model through the same golden-set gate that guards
// hsdserve's hot reloads. Every stage outcome is journaled to a WAL
// before the next stage runs, so the process can be killed -9 at any
// point and resumed with -resume to a byte-identical shipped model.
//
// Usage:
//
//	hsdlearn -suite suite.gob -detector MLP -wal learn.wal -model-dir models
//	hsdlearn -suite suite.gob -detector MLP -wal learn.wal -model-dir models -resume
//
// Mining scores the benchmark's test split with the base detector and
// ingests clips whose score lands within -margin of the threshold —
// the detector's own uncertainty band. Candidates are deduplicated by
// content fingerprint, so re-mining after a resume is idempotent.
// A permanently failing sample (oracle panic or timeout on every
// attempt) is quarantined after -oracle-attempts tries and the batch
// ships without it; the loop always makes progress.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/datengine"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/registry"
	"github.com/golitho/hsd/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdlearn:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file")
	benchName := flag.String("bench", "", "benchmark name (default: first)")
	detName := flag.String("detector", "MLP", "zoo detector name (must be neural: the retrained model is saved and gate-loaded)")
	seed := flag.Int64("seed", 1, "training seed (base model and every retrain)")
	walPath := flag.String("wal", "learn.wal", "active-learning journal; every stage outcome lands here before the next stage runs")
	resume := flag.Bool("resume", false, "continue an existing -wal after a crash or kill")
	batch := flag.Int("batch", 8, "labeling batch size (k-center diverse selection)")
	margin := flag.Float64("margin", 0.15, "mining band: ingest test-split clips scored within this of the threshold")
	oracleDeadline := flag.Duration("oracle-deadline", 2*time.Second, "per-sample labeling budget across all oracle attempts")
	oracleAttempts := flag.Int("oracle-attempts", 3, "oracle attempts per sample before quarantine")
	cycles := flag.Int("cycles", 1, "mine->select->label->retrain->ship cycles to run")
	modelDir := flag.String("model-dir", "models", "directory for retrained model files (model-<batch>.gob)")
	goldenN := flag.Int("golden", 64, "golden validation clips held out of the test split for the ship gate")
	maxRecallDrop := flag.Float64("max-recall-drop", 0.05, "max golden-set recall a retrained model may lose vs. the live model")
	maxFARRise := flag.Float64("max-far-rise", 0.05, "max golden-set false-alarm rate a retrained model may add")
	labelDelay := flag.Duration("label-delay", 0, "artificial pause before each oracle call (chaos hook: widens the kill window for scripts/learn_smoke.sh)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		goVersion, revision := telemetry.BuildInfo()
		fmt.Printf("hsdlearn go_version=%s revision=%s\n", goVersion, revision)
		return nil
	}

	// The same loud-failure contract as hsdtrain -resume: resuming a WAL
	// that is not there is an operator error, and overwriting one that
	// is there without saying -resume would throw away durable labels.
	if _, err := os.Stat(*walPath); *resume && os.IsNotExist(err) {
		return fmt.Errorf("-resume: WAL %s does not exist; check the path, or drop -resume to start a fresh run", *walPath)
	} else if !*resume && err == nil {
		return fmt.Errorf("WAL %s already exists; pass -resume to continue it, or remove it for a fresh run", *walPath)
	}

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	var spec *hsd.DetectorSpec
	var names []string
	for _, s := range hsd.SurveyZoo(*seed) {
		names = append(names, s.Name)
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo (have: %s)", *detName, strings.Join(names, ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Base model: the live generation the retrained candidates must beat.
	base := spec.New()
	nd, ok := base.(*hsd.NeuralDetector)
	if !ok {
		return fmt.Errorf("detector %s is not a neural detector; retraining needs a saveable model", spec.Name)
	}
	t0 := time.Now()
	baseTrain := hsd.FromSamples(bench.Train.Samples)
	if err := base.Fit(hsd.AugmentMinority(baseTrain, spec.Augment)); err != nil {
		return err
	}
	fmt.Printf("base model  %s on %s in %v\n", base.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))

	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*modelDir, 0o755); err != nil {
		return err
	}

	// Ship path: the identical registry gate hsdserve runs on hot
	// reload — golden subset of the test split, recall/FAR tolerance,
	// loader through the base detector's feature pipeline.
	golden := goldenSet(bench, *goldenN)
	reg := registry.New(base, registry.Config{
		Golden:            golden,
		MaxRecallDrop:     *maxRecallDrop,
		MaxFalseAlarmRise: *maxFARRise,
		Loader: func(path string) (core.Detector, error) {
			net, err := nn.LoadFile(path)
			if err != nil {
				return nil, err
			}
			return nd.WithNetwork(net)
		},
		Logf: log.Printf,
	})

	metrics := telemetry.NewRegistry()
	eng, err := datengine.Open(*walPath, datengine.Config{
		Detector:       spec.Name,
		BatchSize:      *batch,
		OracleDeadline: *oracleDeadline,
		OracleAttempts: *oracleAttempts,
		Oracle: func(octx context.Context, clip layout.Clip) (bool, error) {
			if *labelDelay > 0 {
				select {
				case <-time.After(*labelDelay):
				case <-octx.Done():
					return false, octx.Err()
				}
			}
			return sim.LabelCtx(octx, clip)
		},
		Train: func(tctx context.Context, batchID int, labeled []core.LabeledClip) (string, error) {
			// A fresh detector fit on base data + the labeled batch, with
			// the same seed: the saved bytes are a pure function of
			// (batchID, labeled), which is what makes kill -9 + -resume
			// reproduce the shipped model byte-identically.
			cand := spec.New().(*hsd.NeuralDetector)
			train := append(append([]core.LabeledClip(nil), baseTrain...), labeled...)
			if err := cand.Fit(hsd.AugmentMinority(train, spec.Augment)); err != nil {
				return "", err
			}
			path := fmt.Sprintf("%s/model-%03d.gob", *modelDir, batchID)
			if err := hsd.SaveNetworkFile(path, cand); err != nil {
				return "", err
			}
			return path, nil
		},
		Ship: func(sctx context.Context, batchID int, modelPath string) error {
			gen, verdict, err := reg.Reload(sctx, modelPath)
			if errors.Is(err, registry.ErrRejected) {
				return fmt.Errorf("%w: %s", datengine.ErrShipRejected, verdict.Reason)
			}
			if err != nil {
				return err
			}
			fmt.Printf("shipped     generation %d from %s (gate: %s)\n", gen.ID, modelPath, verdict)
			return nil
		},
		Metrics: metrics,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	if err := mine(ctx, eng, base, bench, *margin); err != nil {
		return err
	}

	for i := 0; i < *cycles; i++ {
		rep, err := eng.RunCycle(ctx)
		if errors.Is(err, datengine.ErrNoCandidates) {
			fmt.Printf("cycle %d     no candidates left in the mining band; done\n", i+1)
			break
		}
		if err != nil {
			return fmt.Errorf("cycle %d: %w", i+1, err)
		}
		fmt.Printf("cycle %d     batch %d selected=%d labeled=%d (resumed %d) hot=%d cold=%d quarantined=%d outcome=%s%s\n",
			i+1, rep.BatchID, rep.Selected, rep.Labeled, rep.ResumedLabels,
			rep.Hot, rep.Cold, rep.Quarantined, rep.Outcome, reasonNote(rep.Reason))
	}

	candidates, consumed, shipped, rejected, _ := eng.Snapshot()
	fmt.Printf("state       candidates=%d consumed=%d shipped=%d rejected=%d pending=%d\n",
		candidates, consumed, shipped, rejected, eng.PendingCandidates())
	for _, s := range metrics.Snapshot() {
		if !strings.HasPrefix(s.Name, "learn_") || s.Histogram != nil || s.Value == 0 {
			continue
		}
		fmt.Printf("metric      %s%s = %.0f\n", s.Name, labelSuffix(s.Labels), s.Value)
	}
	return nil
}

// mine scores the benchmark's test split with the base detector and
// ingests every clip inside the uncertainty band. Ingest dedupes by
// content fingerprint, so mining after -resume re-offers only what the
// WAL has not seen.
func mine(ctx context.Context, eng *datengine.Engine, det core.Detector, bench *hsd.Benchmark, margin float64) error {
	// A router primary additionally feeds its escalation band — the
	// clips every cheap stage's calibration refused to answer.
	if rt, ok := det.(*hsd.RouterDetector); ok {
		rt.BindEscalationTap(func(stage string, p float64, clip layout.Clip) {
			eng.Ingest(clip, p, stage, "escalation")
		})
		defer rt.BindEscalationTap(nil)
	}
	thr := det.Threshold()
	scored, mined := 0, 0
	for _, s := range bench.Test.Samples {
		if err := ctx.Err(); err != nil {
			return err
		}
		clip := s.Clip
		score, err := core.ScoreClipCtx(ctx, det, clip)
		if err != nil {
			return fmt.Errorf("mining: %w", err)
		}
		scored++
		if d := score - thr; d < -margin || d > margin {
			continue
		}
		fresh, err := eng.Ingest(clip, score, "base", "lowconf")
		if err != nil {
			return fmt.Errorf("mining: %w", err)
		}
		if fresh {
			mined++
		}
	}
	fmt.Printf("mined       %d/%d test clips in the +/-%.2f band (%d new, %d pending)\n",
		mined, scored, margin, mined, eng.PendingCandidates())
	return nil
}

func reasonNote(reason string) string {
	if reason == "" {
		return ""
	}
	return " (" + reason + ")"
}

func labelSuffix(labels []telemetry.Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// goldenSet picks up to n clips from the benchmark's test split for the
// ship gate, keeping both classes represented so recall and
// false-alarm deltas are both measurable.
func goldenSet(bench *hsd.Benchmark, n int) []hsd.LabeledClip {
	if n <= 0 {
		return nil
	}
	all := hsd.FromSamples(bench.Test.Samples)
	var hot, cold []hsd.LabeledClip
	for _, s := range all {
		if s.Hotspot {
			hot = append(hot, s)
		} else {
			cold = append(cold, s)
		}
	}
	out := make([]hsd.LabeledClip, 0, n)
	for i := 0; len(out) < n && (i < len(hot) || i < len(cold)); i++ {
		if i < len(hot) {
			out = append(out, hot[i])
		}
		if len(out) < n && i < len(cold) {
			out = append(out, cold[i])
		}
	}
	return out
}
