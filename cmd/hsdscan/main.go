// Command hsdscan runs full-chip hotspot scanning: it trains a zoo
// detector on a benchmark and slides it across a chip layout, printing
// the flagged windows (optionally verified with lithography simulation).
//
// Usage:
//
//	hsdscan -suite suite.gob -bench B1 -detector AdaBoost -gen-edge 32768
//	hsdscan -suite suite.gob -chip chip.glt -detector CNN-biased -verify
//	hsdscan -suite suite.gob -trace scan.json   # per-window span timeline
//
// -trace writes the scan as a Chrome trace_event JSON file: one
// "hsdscan" root span with a "scan.window" span per window and the
// raster/features/inference stages nested inside each. Load it in
// about:tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdscan:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file for training")
	benchName := flag.String("bench", "", "training benchmark (default: first)")
	detName := flag.String("detector", "AdaBoost", "zoo detector name")
	chipPath := flag.String("chip", "", "chip layout in GLT format (empty = generate)")
	genEdge := flag.Int("gen-edge", 16384, "generated chip edge in nm when -chip is empty")
	genSeed := flag.Int64("gen-seed", 42, "generated chip seed")
	seed := flag.Int64("seed", 1, "training seed")
	verify := flag.Bool("verify", false, "verify findings with lithography simulation")
	topN := flag.Int("top", 20, "print at most this many findings")
	metrics := flag.Bool("metrics", false, "print scan telemetry snapshot after scanning")
	traceOut := flag.String("trace", "", "write the scan as Chrome trace_event JSON to this file (about:tracing / ui.perfetto.dev)")
	flag.Parse()

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	var spec *hsd.DetectorSpec
	for _, s := range hsd.SurveyZoo(*seed) {
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo", *detName)
	}

	var chip *hsd.Layout
	if *chipPath != "" {
		cf, err := os.Open(*chipPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*chipPath, ".gds") || strings.HasSuffix(*chipPath, ".gdsii") {
			chip, err = hsd.ReadGDSII(cf)
		} else {
			chip, err = hsd.ReadLayout(cf)
		}
		cf.Close()
		if err != nil {
			return err
		}
	} else {
		chip, err = hsd.GenerateChip(*genSeed, *genEdge, hsd.DefaultPatternStyle())
		if err != nil {
			return err
		}
		fmt.Printf("generated %d x %d nm chip with %d shapes\n",
			*genEdge, *genEdge, chip.NumShapes())
	}

	det := spec.New()
	t0 := time.Now()
	train := hsd.AugmentMinority(hsd.FromSamples(bench.Train.Samples), spec.Augment)
	if err := det.Fit(train); err != nil {
		return err
	}
	fmt.Printf("trained %s on %s in %v\n", det.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))

	var reg *hsd.MetricsRegistry
	if *metrics {
		reg = hsd.NewMetricsRegistry()
	}
	ctx := context.Background()
	var tracer *trace.Tracer
	var root *trace.Span
	if *traceOut != "" {
		tracer = trace.New(trace.Config{Capacity: 4, Shards: 1})
		ctx = trace.WithTracer(ctx, tracer)
		ctx, root = trace.Start(ctx, "hsdscan",
			trace.A("detector", det.Name()), trace.A("chip", chip.Name))
	}
	t1 := time.Now()
	res, err := hsd.ScanContext(ctx, chip, det, hsd.ScanConfig{SkipEmpty: true, Metrics: reg})
	root.End()
	if err != nil {
		return err
	}
	findings := res.Findings
	fmt.Printf("scan flagged %d windows in %v\n", len(findings), time.Since(t1).Round(time.Millisecond))
	if tracer != nil {
		if err := writeChromeTrace(*traceOut, tracer); err != nil {
			return err
		}
		fmt.Printf("wrote scan trace to %s (load in about:tracing or ui.perfetto.dev)\n", *traceOut)
	}

	var sim *hsd.Simulator
	if *verify {
		sim, err = hsd.NewSimulator(hsd.DefaultSimConfig())
		if err != nil {
			return err
		}
	}
	confirmed := 0
	for i, fd := range findings {
		if i >= *topN {
			fmt.Printf("... %d more\n", len(findings)-*topN)
			break
		}
		line := fmt.Sprintf("%3d. center=%v score=%.3f", i+1, fd.Center, fd.Score)
		if sim != nil {
			clip, err := chip.ClipAt(fd.Center, 1024, 0.5)
			if err != nil {
				return err
			}
			res, err := sim.Simulate(clip)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("  verified=%v defects=%d", res.Hotspot, len(res.Defects))
			if res.Hotspot {
				confirmed++
			}
		}
		fmt.Println(line)
	}
	if sim != nil {
		n := len(findings)
		if n > *topN {
			n = *topN
		}
		if n > 0 {
			fmt.Printf("verified precision over printed findings: %d/%d\n", confirmed, n)
		}
		st := sim.Stats()
		fmt.Printf("measured ODST: %d simulations in %v\n", st.Simulations, st.Elapsed.Round(time.Millisecond))
	}
	if reg != nil {
		fmt.Println("--- scan telemetry ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// writeChromeTrace dumps every trace the tracer retained as one Chrome
// trace_event JSON file.
func writeChromeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tracer.Traces(0)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
