// Command hsdscan runs full-chip hotspot scanning: it trains a zoo
// detector on a benchmark and slides it across a chip layout, printing
// the flagged windows (optionally verified with lithography simulation).
//
// Usage:
//
//	hsdscan -suite suite.gob -bench B1 -detector AdaBoost -gen-edge 32768
//	hsdscan -suite suite.gob -chip chip.glt -detector CNN-biased -verify
//	hsdscan -suite suite.gob -trace scan.json   # per-window span timeline
//	hsdscan -suite suite.gob -journal scan.journal            # crash-safe
//	hsdscan -suite suite.gob -journal scan.journal -resume    # pick up
//
// The scan runs through the fault-tolerant shard coordinator: the chip
// is tiled into row-band shards fanned out to -workers goroutines, a
// failing shard is retried with backoff and quarantined (reported, not
// fatal) after exhausting its attempts, and repeated geometry is
// answered from a content-addressed clip cache (-cache-size). With
// -journal each completed shard is persisted, so a killed scan rerun
// with -resume skips finished shards and produces identical findings.
//
// -trace writes the scan as a Chrome trace_event JSON file: one
// "hsdscan" root span with a "scan.shard" span per shard and the
// raster/features/inference stages nested inside each. Load it in
// about:tracing or https://ui.perfetto.dev.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdscan:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file for training")
	benchName := flag.String("bench", "", "training benchmark (default: first)")
	detName := flag.String("detector", "AdaBoost", "zoo detector name")
	chipPath := flag.String("chip", "", "chip layout in GLT format (empty = generate)")
	genEdge := flag.Int("gen-edge", 16384, "generated chip edge in nm when -chip is empty")
	genSeed := flag.Int64("gen-seed", 42, "generated chip seed")
	seed := flag.Int64("seed", 1, "training seed")
	verify := flag.Bool("verify", false, "verify findings with lithography simulation")
	topN := flag.Int("top", 20, "print at most this many findings")
	metrics := flag.Bool("metrics", false, "print scan telemetry snapshot after scanning")
	traceOut := flag.String("trace", "", "write the scan as Chrome trace_event JSON to this file (about:tracing / ui.perfetto.dev)")
	workers := flag.Int("workers", 0, "scan worker goroutines (0 = GOMAXPROCS)")
	shardRows := flag.Int("shard-rows", 0, "window-grid rows per shard (0 = default)")
	journalPath := flag.String("journal", "", "persist completed shards to this journal file for crash-safe resume")
	resume := flag.Bool("resume", false, "resume from -journal, skipping shards it records")
	cacheSize := flag.Int("cache-size", 4096, "content-addressed clip cache capacity in entries (0 disables)")
	findingsOut := flag.String("findings", "", "write findings deterministically, one per line, to this file")
	routerLo := flag.Float64("router-lo", -1, "router: force the low confidence cut (with -router-hi; -detector Router)")
	routerHi := flag.Float64("router-hi", -1, "router: force the high confidence cut (with -router-lo; -detector Router)")
	routerEps := flag.Float64("router-eps", 0, "router: per-stage answered-error budget for band fitting (0 = default)")
	qualityBaseline := flag.String("quality-baseline", "", "training-score baseline (from hsdtrain -quality-baseline); prints a drift report over the scanned windows")
	version := flag.Bool("version", false, "print build info (the hotspot_build_info fields) and exit")
	flag.Parse()

	if *version {
		goVersion, revision := telemetry.BuildInfo()
		fmt.Printf("hsdscan go_version=%s revision=%s\n", goVersion, revision)
		return nil
	}

	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume requires -journal")
	}

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	var spec *hsd.DetectorSpec
	for _, s := range hsd.SurveyZoo(*seed) {
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo", *detName)
	}

	var chip *hsd.Layout
	if *chipPath != "" {
		cf, err := os.Open(*chipPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*chipPath, ".gds") || strings.HasSuffix(*chipPath, ".gdsii") {
			chip, err = hsd.ReadGDSII(cf)
		} else {
			chip, err = hsd.ReadLayout(cf)
		}
		cf.Close()
		if err != nil {
			return err
		}
	} else {
		chip, err = hsd.GenerateChip(*genSeed, *genEdge, hsd.DefaultPatternStyle())
		if err != nil {
			return err
		}
		fmt.Printf("generated %d x %d nm chip with %d shapes\n",
			*genEdge, *genEdge, chip.NumShapes())
	}

	det := spec.New()
	rt, isRouter := det.(*hsd.RouterDetector)
	if !isRouter && (*routerLo >= 0 || *routerHi >= 0 || *routerEps > 0) {
		return fmt.Errorf("-router-* flags need -detector Router (got %s)", det.Name())
	}
	if isRouter {
		if *routerEps > 0 {
			rt.SetMaxStageError(*routerEps)
		}
		if (*routerLo >= 0) != (*routerHi >= 0) {
			return fmt.Errorf("-router-lo and -router-hi must be set together")
		}
		if *routerLo >= 0 {
			rt.ForceBand(hsd.RouterBand{Lo: *routerLo, Hi: *routerHi})
		}
	}
	t0 := time.Now()
	train := hsd.AugmentMinority(hsd.FromSamples(bench.Train.Samples), spec.Augment)
	if err := det.Fit(train); err != nil {
		return err
	}
	fmt.Printf("trained %s on %s in %v\n", det.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))

	var reg *hsd.MetricsRegistry
	if *metrics {
		reg = hsd.NewMetricsRegistry()
		if isRouter {
			rt.BindMetrics(reg)
		}
	}
	ctx := context.Background()
	var tracer *trace.Tracer
	var root *trace.Span
	if *traceOut != "" {
		tracer = trace.New(trace.Config{Capacity: 4, Shards: 1})
		ctx = trace.WithTracer(ctx, tracer)
		ctx, root = trace.Start(ctx, "hsdscan",
			trace.A("detector", det.Name()), trace.A("chip", chip.Name))
	}
	// Drift report: every scanned window lands in a quality monitor
	// whose baseline is the training-score histogram. One giant
	// sub-window keeps the whole scan inside the sketch ring regardless
	// of how long it runs.
	var qm *qualitymon.Monitor
	if *qualityBaseline != "" {
		b, err := qualitymon.LoadBaselineFile(*qualityBaseline)
		if err != nil {
			return fmt.Errorf("-quality-baseline: %w", err)
		}
		// The scanfarm taps stage "scan"; the training baseline records
		// stage "primary" for the same detector. Rekey so they compare.
		for i := range b.Entries {
			if b.Entries[i].Stage == "primary" {
				b.Entries[i].Stage = "scan"
			}
		}
		b.Sort()
		qm = qualitymon.New(qualitymon.Options{SubWindow: 24 * time.Hour})
		defer qm.Close()
		qm.InstallBaseline(b)
	}
	farmCfg := hsd.ScanFarmConfig{
		SkipEmpty: true,
		Workers:   *workers,
		ShardRows: *shardRows,
		CacheSize: *cacheSize,
		Metrics:   reg,
		Quality:   qm,
	}
	if *journalPath != "" {
		meta := farmCfg.Meta(chip, det.Name())
		var j *hsd.ScanJournal
		if *resume {
			var completed map[int]hsd.ScanShardRecord
			j, completed, err = hsd.ResumeScanJournal(*journalPath, meta)
			if err != nil {
				return fmt.Errorf("resume %s: %w", *journalPath, err)
			}
			farmCfg.Completed = completed
			fmt.Printf("resuming from %s: %d shards already journaled\n",
				*journalPath, len(completed))
		} else {
			j, err = hsd.CreateScanJournal(*journalPath, meta)
			if err != nil {
				return err
			}
		}
		defer j.Close()
		farmCfg.Journal = j
	}
	t1 := time.Now()
	res, err := hsd.ScanFarm(ctx, chip, det, farmCfg)
	root.End()
	if err != nil {
		return err
	}
	findings := res.Findings
	fmt.Printf("scan flagged %d windows in %v\n", len(findings), time.Since(t1).Round(time.Millisecond))
	fmt.Printf("shards: %d done (%d resumed from journal), %d quarantined, %d windows\n",
		res.Completed, res.Resumed, len(res.Quarantined), res.Windows)
	for _, q := range res.Quarantined {
		fmt.Printf("QUARANTINED shard %d bounds=%v after %d attempts: %s\n",
			q.ShardID, q.Bounds, q.Attempts, q.Err)
	}
	if *cacheSize > 0 {
		st := res.Cache
		fmt.Printf("clip cache: %d hits, %d misses, %d evictions (hit rate %.1f%%)\n",
			st.Hits, st.Misses, st.Evictions, 100*st.HitRate())
	}
	if res.Interrupted {
		fmt.Printf("scan interrupted (%v); journaled shards can be resumed with -resume\n", res.Cause)
	}
	if isRouter {
		for _, s := range rt.Stats() {
			fmt.Printf("router stage %-10s answered %6d (hot %5d, cold %6d)  escalated %6d  %8.3fs\n",
				s.Name, s.Answered(), s.AnsweredHot, s.AnsweredCold, s.Escalated, s.Seconds)
		}
	}
	if qm != nil {
		snap := qm.Snapshot()
		for _, sk := range snap.Sketches {
			if !sk.Baseline {
				continue
			}
			fmt.Printf("drift %s/%s: psi=%.4f max_bin_kl=%.4f over %d windows (p50=%.3f p90=%.3f p99=%.3f)\n",
				sk.Detector, sk.Stage, sk.PSI, sk.MaxBinKL, sk.Slow, sk.P50, sk.P90, sk.P99)
		}
		fmt.Printf("quality alert: %s (max psi %.4f on %s)\n",
			snap.Alert.Name, snap.Alert.MaxPSI, snap.Alert.MaxPSIBy)
	}
	if *findingsOut != "" {
		if err := writeFindings(*findingsOut, findings); err != nil {
			return err
		}
		fmt.Printf("wrote %d findings to %s\n", len(findings), *findingsOut)
	}
	if tracer != nil {
		if err := writeChromeTrace(*traceOut, tracer); err != nil {
			return err
		}
		fmt.Printf("wrote scan trace to %s (load in about:tracing or ui.perfetto.dev)\n", *traceOut)
	}

	var sim *hsd.Simulator
	if *verify {
		sim, err = hsd.NewSimulator(hsd.DefaultSimConfig())
		if err != nil {
			return err
		}
	}
	confirmed := 0
	for i, fd := range findings {
		if i >= *topN {
			fmt.Printf("... %d more\n", len(findings)-*topN)
			break
		}
		line := fmt.Sprintf("%3d. center=%v score=%.3f", i+1, fd.Center, fd.Score)
		if sim != nil {
			clip, err := chip.ClipAt(fd.Center, 1024, 0.5)
			if err != nil {
				return err
			}
			res, err := sim.Simulate(clip)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("  verified=%v defects=%d", res.Hotspot, len(res.Defects))
			if res.Hotspot {
				confirmed++
			}
		}
		fmt.Println(line)
	}
	if sim != nil {
		n := len(findings)
		if n > *topN {
			n = *topN
		}
		if n > 0 {
			fmt.Printf("verified precision over printed findings: %d/%d\n", confirmed, n)
		}
		st := sim.Stats()
		fmt.Printf("measured ODST: %d simulations in %v\n", st.Simulations, st.Elapsed.Round(time.Millisecond))
	}
	if reg != nil {
		fmt.Println("--- scan telemetry ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// writeFindings dumps findings one per line in scan order. The format
// is deterministic — integer centers and shortest round-trip float
// scores — so two runs over the same chip diff clean; the resume smoke
// test relies on that.
func writeFindings(path string, findings []hsd.Finding) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, fd := range findings {
		fmt.Fprintf(w, "%d %d %s\n", fd.Center.X, fd.Center.Y,
			strconv.FormatFloat(fd.Score, 'g', -1, 64))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeChromeTrace dumps every trace the tracer retained as one Chrome
// trace_event JSON file.
func writeChromeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tracer.Traces(0)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
