// Command benchgen generates a synthetic ICCAD-2012-style benchmark suite
// and writes it to a gob file for the other tools to consume.
//
// Usage:
//
//	benchgen -seed 1 -out suite.gob          # full five-benchmark suite
//	benchgen -small -seed 7 -out small.gob   # miniature suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "suite generation seed")
	out := flag.String("out", "suite.gob", "output file")
	small := flag.Bool("small", false, "generate the miniature two-benchmark suite")
	workers := flag.Int("workers", 0, "labelling workers (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := hsd.DefaultSuiteConfig(*seed)
	if *small {
		cfg = hsd.SmallSuiteConfig(*seed)
	}
	cfg.Workers = *workers

	t0 := time.Now()
	suite, err := hsd.GenerateSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d benchmarks in %v\n", len(suite.Benchmarks), time.Since(t0).Round(time.Millisecond))
	fmt.Println(experiments.BenchStats(suite))

	if err := hsd.SaveSuiteFile(*out, suite); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
