// Command hsdeval runs the survey's detector zoo across a benchmark suite
// and prints the reconstructed evaluation tables (Tables I-IV and the
// figure data; see DESIGN.md §3).
//
// Usage:
//
//	hsdeval -suite suite.gob                  # evaluate a cached suite
//	hsdeval -seed 1 -small                    # generate on the fly
//	hsdeval -suite suite.gob -figures -bench B1
//	hsdeval -small -trace eval.json           # per-stage ODST timeline
//
// -trace records every zoo evaluation as one trace — an "eval" span
// whose "fit", "score", and "verify" children decompose the reported
// ODST terms, with the per-clip raster/features/inference spans nested
// inside — and writes them all as Chrome trace_event JSON for
// about:tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/experiments"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdeval:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "", "suite gob file (empty = generate)")
	seed := flag.Int64("seed", 1, "generation seed when -suite is empty")
	small := flag.Bool("small", false, "generate the miniature suite")
	figures := flag.Bool("figures", false, "also regenerate figure data (slower)")
	figBench := flag.String("bench", "", "benchmark for figures (default: first)")
	noODST := flag.Bool("no-odst", false, "skip lithography verification of flagged clips")
	traceOut := flag.String("trace", "", "write per-evaluation Chrome trace_event JSON to this file (about:tracing / ui.perfetto.dev)")
	precFlag := flag.String("precision", "float64", "inference precision for the neural zoo detectors (float64, float32, int8); tables then measure the quantized serving path")
	routerLo := flag.Float64("router-lo", -1, "router: force the low confidence cut (with -router-hi)")
	routerHi := flag.Float64("router-hi", -1, "router: force the high confidence cut (with -router-lo)")
	routerEps := flag.Float64("router-eps", 0, "router: per-stage answered-error budget for band fitting (0 = default)")
	version := flag.Bool("version", false, "print build info (the hotspot_build_info fields) and exit")
	flag.Parse()

	if *version {
		goVersion, revision := telemetry.BuildInfo()
		fmt.Printf("hsdeval go_version=%s revision=%s\n", goVersion, revision)
		return nil
	}

	prec, err := nn.ParsePrecision(*precFlag)
	if err != nil {
		return err
	}

	suite, err := loadOrGenerate(*suitePath, *seed, *small)
	if err != nil {
		return err
	}
	fmt.Println(experiments.BenchStats(suite))

	var sim *hsd.Simulator
	if !*noODST {
		sim, err = hsd.NewSimulator(hsd.DefaultSimConfig())
		if err != nil {
			return err
		}
	}

	zoo := hsd.SurveyZoo(*seed)
	if prec != nn.Float64 {
		// Neural detectors remember the precision across Fit: training
		// stays float64 and the network is compressed when it completes,
		// so the tables measure the reduced-precision serving path.
		for i := range zoo {
			inner := zoo[i].New
			zoo[i].New = func() hsd.Detector {
				det := inner()
				if nd, ok := det.(*hsd.NeuralDetector); ok {
					if err := nd.SetPrecision(prec); err != nil {
						fmt.Fprintf(os.Stderr, "hsdeval: %s: %v\n", nd.Name(), err)
					}
				}
				return det
			}
		}
		fmt.Printf("neural detectors serve at %s precision\n\n", prec)
	}
	if (*routerLo >= 0) != (*routerHi >= 0) {
		return fmt.Errorf("-router-lo and -router-hi must be set together")
	}
	if *routerLo >= 0 || *routerEps > 0 {
		// Same wrapping pattern as -precision: the zoo's Router spec
		// picks up the forced band / error budget at construction.
		lo, hi, eps := *routerLo, *routerHi, *routerEps
		for i := range zoo {
			inner := zoo[i].New
			zoo[i].New = func() hsd.Detector {
				det := inner()
				if rt, ok := det.(*hsd.RouterDetector); ok {
					if eps > 0 {
						rt.SetMaxStageError(eps)
					}
					if lo >= 0 {
						rt.ForceBand(hsd.RouterBand{Lo: lo, Hi: hi})
					}
				}
				return det
			}
		}
	}
	ctx := context.Background()
	var tracer *trace.Tracer
	if *traceOut != "" {
		// One trace per (detector, benchmark) evaluation; a single shard
		// makes the store an exact FIFO ring so none are evicted early by
		// uneven trace-ID hashing (the writer is one goroutine anyway).
		tracer = trace.New(trace.Config{Capacity: len(zoo)*len(suite.Benchmarks) + 1, Shards: 1})
		ctx = trace.WithTracer(ctx, tracer)
	}
	t0 := time.Now()
	results, err := experiments.RunZooCtx(ctx, suite, zoo, sim)
	if err != nil {
		return err
	}
	if tracer != nil {
		traces := tracer.Traces(0)
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d evaluation traces to %s (load in about:tracing or ui.perfetto.dev)\n",
			len(traces), *traceOut)
	}
	shallowSpecs, deepSpecs := experiments.SplitZoo(zoo)
	shallow := results[:len(shallowSpecs)]
	deep := results[len(shallowSpecs) : len(shallowSpecs)+len(deepSpecs)]
	fmt.Println(experiments.DetectorTable("Table II: shallow detectors", suite, shallow))
	fmt.Println(experiments.DetectorTable("Table III: deep detectors", suite, deep))
	fmt.Println(experiments.Summary(results))
	fmt.Printf("zoo evaluation took %v\n\n", time.Since(t0).Round(time.Second))

	if *figures {
		bench := *figBench
		if bench == "" {
			bench = suite.Benchmarks[0].Name
		}
		roc, err := experiments.ROCFig(suite, bench, results)
		if err != nil {
			return err
		}
		fmt.Println(roc)
		bias, err := experiments.BiasSweep(suite, bench, *seed, []float64{0, 0.1, 0.2, 0.3, 0.4})
		if err != nil {
			return err
		}
		fmt.Println(bias)
		imb, err := experiments.ImbalanceSweep(suite, bench, *seed, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(imb)
		conv, err := experiments.Convergence(suite, bench, *seed)
		if err != nil {
			return err
		}
		fmt.Println(conv)
		odst, err := experiments.ODSTScaling(suite, *seed, []int{8192, 16384, 32768})
		if err != nil {
			return err
		}
		fmt.Println(odst)
	}
	return nil
}

func loadOrGenerate(path string, seed int64, small bool) (*hsd.Suite, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return hsd.LoadSuite(f)
	}
	cfg := hsd.DefaultSuiteConfig(seed)
	if small {
		cfg = hsd.SmallSuiteConfig(seed)
	}
	fmt.Println("generating suite (use benchgen + -suite to cache)...")
	return hsd.GenerateSuite(cfg)
}
