// Command lithoview renders a layout window as a PNG: the drawn mask in
// gray, the simulated printed contour in green, and process-window defect
// locations as red markers. The visual counterpart of the oracle.
//
// Usage:
//
//	lithoview -chip chip.glt -cx 4096 -cy 4096 -out clip.png
//	lithoview -gen-seed 7 -cx 2048 -cy 2048 -out clip.png
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"strings"

	hsd "github.com/golitho/hsd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lithoview:", err)
		os.Exit(1)
	}
}

func run() error {
	chipPath := flag.String("chip", "", "layout file (.glt or .gds); empty = generate")
	genSeed := flag.Int64("gen-seed", 7, "generated chip seed when -chip is empty")
	cx := flag.Int("cx", 2048, "window centre x (nm)")
	cy := flag.Int("cy", 2048, "window centre y (nm)")
	out := flag.String("out", "clip.png", "output PNG")
	scale := flag.Int("scale", 4, "pixels per raster cell")
	flag.Parse()

	var chip *hsd.Layout
	var err error
	if *chipPath != "" {
		f, err2 := os.Open(*chipPath)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		if strings.HasSuffix(*chipPath, ".gds") {
			chip, err = hsd.ReadGDSII(f)
		} else {
			chip, err = hsd.ReadLayout(f)
		}
	} else {
		chip, err = hsd.GenerateChip(*genSeed, 8192, hsd.DefaultPatternStyle())
	}
	if err != nil {
		return err
	}

	clip, err := chip.ClipAt(hsd.Pt(*cx, *cy), 1024, 0.5)
	if err != nil {
		return err
	}
	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		return err
	}
	res, err := sim.Simulate(clip)
	if err != nil {
		return err
	}
	img, err := Render(sim, clip, res, *scale)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("window at (%d,%d): hotspot=%v, %d defects -> %s\n",
		*cx, *cy, res.Hotspot, len(res.Defects), *out)
	return nil
}

// Render draws the drawn mask, the nominal printed contour, and defect
// markers into an RGBA image at the given magnification.
func Render(sim *hsd.Simulator, clip hsd.Clip, res hsd.SimResult, scale int) (*image.RGBA, error) {
	if scale < 1 {
		scale = 1
	}
	const px = 8
	mask, err := hsd.RasterizeClip(clip, px)
	if err != nil {
		return nil, err
	}
	aerial := sim.AerialImage(mask)
	printed := aerial.Threshold(0.5)

	img := image.NewRGBA(image.Rect(0, 0, mask.W*scale, mask.H*scale))
	var (
		bg      = color.RGBA{18, 18, 24, 255}
		drawn   = color.RGBA{110, 110, 130, 255}
		print   = color.RGBA{60, 200, 90, 255}
		overlap = color.RGBA{170, 230, 170, 255}
		defect  = color.RGBA{240, 60, 60, 255}
	)
	for y := 0; y < mask.H; y++ {
		for x := 0; x < mask.W; x++ {
			c := bg
			isDrawn := mask.At(x, y) >= 0.5
			isPrinted := printed.At(x, y) != 0
			switch {
			case isDrawn && isPrinted:
				c = overlap
			case isDrawn:
				c = drawn
			case isPrinted:
				c = print
			}
			fill(img, x, mask.H-1-y, scale, c) // flip y: layout up = image up
		}
	}
	// Defect markers: small crosses.
	for _, d := range res.Defects {
		dx := (d.At.X - clip.Window.Min.X) / px
		dy := (d.At.Y - clip.Window.Min.Y) / px
		for t := -3; t <= 3; t++ {
			fill(img, dx+t, mask.H-1-dy, scale, defect)
			fill(img, dx, mask.H-1-(dy+t), scale, defect)
		}
	}
	return img, nil
}

func fill(img *image.RGBA, x, y, scale int, c color.RGBA) {
	for dy := 0; dy < scale; dy++ {
		for dx := 0; dx < scale; dx++ {
			px, py := x*scale+dx, y*scale+dy
			if image.Pt(px, py).In(img.Rect) {
				img.SetRGBA(px, py, c)
			}
		}
	}
}
