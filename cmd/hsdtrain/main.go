// Command hsdtrain trains one detector from the survey zoo on one
// benchmark and reports the contest metrics. Neural detectors can be
// saved for later scanning, checkpointed periodically during training,
// and resumed bit-identically after a crash or SIGTERM.
//
// Usage:
//
//	hsdtrain -suite suite.gob -bench B1 -detector CNN-biased -save cnn.gob
//	hsdtrain -suite suite.gob -bench B3 -detector AdaBoost
//	hsdtrain -suite suite.gob -detector CNN -checkpoint-dir ckpts -checkpoint-every 5
//	hsdtrain -suite suite.gob -detector CNN -checkpoint-dir ckpts -resume
//
// With -checkpoint-dir, training writes an atomic checkpoint (network
// parameters, optimizer state, RNG position, epoch history) every
// -checkpoint-every epochs, and SIGINT/SIGTERM cut a final checkpoint
// before exit instead of losing the run. -resume picks up from the
// newest good checkpoint — torn or corrupted files are skipped with a
// warning — and continues exactly as if the run had never stopped: the
// resumed model is byte-identical to an uninterrupted one. A run that
// is interrupted mid-training still prints the contest metrics of the
// partial model before exiting non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdtrain:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file")
	benchName := flag.String("bench", "", "benchmark name (default: first)")
	detName := flag.String("detector", "CNN-biased", "zoo detector name")
	seed := flag.Int64("seed", 1, "training seed")
	save := flag.String("save", "", "save the trained network (neural detectors only)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for periodic training checkpoints (neural detectors only)")
	ckptEvery := flag.Int("checkpoint-every", 1, "epochs between checkpoints (with -checkpoint-dir)")
	ckptKeep := flag.Int("checkpoint-keep", 2, "checkpoint files retained in -checkpoint-dir")
	resume := flag.Bool("resume", false, "resume from the newest good checkpoint in -checkpoint-dir")
	routerLo := flag.Float64("router-lo", -1, "router: force the low confidence cut (with -router-hi; -detector Router)")
	routerHi := flag.Float64("router-hi", -1, "router: force the high confidence cut (with -router-lo; -detector Router)")
	routerEps := flag.Float64("router-eps", 0, "router: per-stage answered-error budget for band fitting (0 = default)")
	qualityBaseline := flag.String("quality-baseline", "", "write a training-score drift baseline here; \"auto\" with -save writes the <save>.qb sidecar the server's hot reload picks up")
	qualityBins := flag.Int("quality-bins", 20, "histogram bins per series in the -quality-baseline")
	version := flag.Bool("version", false, "print build info (the hotspot_build_info fields) and exit")
	flag.Parse()

	if *version {
		goVersion, revision := telemetry.BuildInfo()
		fmt.Printf("hsdtrain go_version=%s revision=%s\n", goVersion, revision)
		return nil
	}

	baselinePath := *qualityBaseline
	if baselinePath == "auto" {
		if *save == "" {
			return fmt.Errorf("-quality-baseline auto needs -save")
		}
		baselinePath = qualitymon.SidecarPath(*save)
	}

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}

	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	var spec *hsd.DetectorSpec
	var names []string
	for _, s := range hsd.SurveyZoo(*seed) {
		names = append(names, s.Name)
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo (have: %s)", *detName, strings.Join(names, ", "))
	}

	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		return err
	}
	det := spec.New()
	if err := applyRouterFlags(det, *routerLo, *routerHi, *routerEps); err != nil {
		return err
	}

	// Checkpointing: wire the trainer's crash-tolerance into the CLI.
	metrics := telemetry.NewRegistry()
	metrics.SetHelp("hotspot_checkpoints_total", "Training checkpoints written this run.")
	ckptTotal := metrics.Counter("hotspot_checkpoints_total")
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}
	if *ckptDir != "" {
		nd, ok := det.(*hsd.NeuralDetector)
		if !ok {
			return fmt.Errorf("detector %s is not a neural detector; cannot checkpoint", spec.Name)
		}
		if *resume {
			// Fail loudly BEFORE MkdirAll papers over a mistyped path: a
			// resume pointed at a directory that does not exist is an
			// operator error, not a fresh run.
			if _, serr := os.Stat(*ckptDir); os.IsNotExist(serr) {
				return fmt.Errorf("-resume: checkpoint directory %s does not exist; "+
					"check the path, or drop -resume to start a fresh run", *ckptDir)
			}
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		nd.Cfg.CheckpointEvery = *ckptEvery
		nd.Cfg.Checkpointer = &nn.DirCheckpointer{
			Dir:  *ckptDir,
			Keep: *ckptKeep,
			OnSave: func(path string, c *nn.Checkpoint) {
				ckptTotal.Inc()
				fmt.Printf("checkpoint  epoch %d -> %s\n", c.Epoch, path)
			},
		}
		if *resume {
			path, ck, lerr := nn.LatestCheckpoint(*ckptDir)
			if lerr != nil {
				// Torn/corrupt files were skipped; say which and why.
				fmt.Fprintln(os.Stderr, "hsdtrain: checkpoint recovery:", lerr)
			}
			if ck == nil {
				// Silently starting fresh here would retrain from epoch 0
				// and overwrite whatever the operator thought they were
				// resuming. Make them decide.
				return fmt.Errorf("-resume: no usable checkpoint in %s "+
					"(empty, or every file torn/corrupt); "+
					"drop -resume to train from scratch, or point -checkpoint-dir at the right run", *ckptDir)
			}
			nd.Cfg.Resume = ck
			fmt.Printf("resuming    epoch %d from %s\n", ck.Epoch, path)
		}
	}

	// SIGINT/SIGTERM interrupt training cooperatively: the trainer cuts a
	// final checkpoint, Evaluate scores the partial model, and the
	// contest metrics below still print before the non-zero exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	res, err := hsd.EvaluateCtx(ctx, det, bench.Name,
		hsd.FromSamples(bench.Train.Samples), hsd.FromSamples(bench.Test.Samples),
		hsd.EvalOptions{Sim: sim, Augment: spec.Augment})
	interrupted := err != nil && errors.Is(err, nn.ErrInterrupted)
	if err != nil && !interrupted {
		return err
	}
	if interrupted {
		fmt.Printf("INTERRUPTED %v\n", err)
		fmt.Printf("            metrics below describe the partial model; resume with -resume\n")
	}
	fmt.Printf("detector   %s (%s)\n", spec.Name, det.Name())
	fmt.Printf("benchmark  %s\n", bench.Name)
	fmt.Printf("accuracy   %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("falsealarm %d\n", res.FalseAlarms())
	fmt.Printf("precision  %.3f  F1 %.3f  AUC %.3f\n",
		res.Confusion.Precision(), res.Confusion.F1(), res.AUC)
	fmt.Printf("train %v  infer %v  ODST %v  full-sim %v (%.1fx speedup)\n",
		res.TrainTime.Round(time.Millisecond), res.InferTime.Round(time.Millisecond),
		res.ODST().Round(time.Millisecond), res.FullSimTime.Round(time.Millisecond),
		res.Speedup())
	if n := ckptTotal.Value(); n > 0 {
		fmt.Printf("checkpoints %.0f written to %s (hotspot_checkpoints_total)\n", n, *ckptDir)
	}
	printRouterStats(det)
	fmt.Printf("total %v\n", time.Since(t0).Round(time.Millisecond))

	if *save != "" {
		nd, ok := det.(*hsd.NeuralDetector)
		if !ok {
			return fmt.Errorf("detector %s is not a neural detector; cannot save", spec.Name)
		}
		// SaveNetworkFile is crash-safe: temp file, fsync, close (both
		// checked), atomic rename. A failure leaves the old file intact.
		if err := hsd.SaveNetworkFile(*save, nd); err != nil {
			return err
		}
		fmt.Printf("saved network to %s\n", *save)
	}
	if baselinePath != "" {
		// The baseline describes whatever model is being shipped — for an
		// interrupted run that is the partial model the -save block just
		// wrote, so the sidecar stays consistent with it.
		n, err := writeQualityBaseline(baselinePath, det,
			hsd.FromSamples(bench.Train.Samples), *qualityBins)
		if err != nil {
			return err
		}
		fmt.Printf("quality baseline (%d series) written to %s\n", n, baselinePath)
	}
	if interrupted {
		return err
	}
	return nil
}

// writeQualityBaseline scores the training split through the trained
// detector and persists the per-series score histograms hsdserve's
// drift monitor compares live traffic against. A router additionally
// contributes one series per cascade stage — the calibrated confidence
// of the answering stage, captured through the quality tap — so stage
// drift is attributable even when the blended score looks stable.
func writeQualityBaseline(path string, det hsd.Detector, train []hsd.LabeledClip, bins int) (int, error) {
	stageScores := map[string][]float64{}
	if rt, ok := det.(*hsd.RouterDetector); ok {
		rt.BindQualityTap(func(stage string, p float64, _ layout.Clip) {
			stageScores[stage] = append(stageScores[stage], p)
		})
		defer rt.BindQualityTap(nil)
	}
	scores := make([]float64, 0, len(train))
	for _, s := range train {
		sc, err := core.ScoreClipCtx(context.Background(), det, s.Clip)
		if err != nil {
			return 0, fmt.Errorf("baseline scoring: %w", err)
		}
		scores = append(scores, sc)
	}
	b := &qualitymon.Baseline{Version: 1, Entries: []qualitymon.BaselineEntry{
		qualitymon.NewBaselineEntry(det.Name(), "primary", scores, bins),
	}}
	for stage, ss := range stageScores {
		b.Entries = append(b.Entries, qualitymon.NewBaselineEntry(det.Name(), stage, ss, bins))
	}
	b.Sort()
	if err := qualitymon.SaveBaselineFile(path, b); err != nil {
		return 0, err
	}
	return len(b.Entries), nil
}

// applyRouterFlags forwards the -router-* threshold flags onto a Router
// detector; setting them for any other detector is an error.
func applyRouterFlags(det hsd.Detector, lo, hi, eps float64) error {
	rt, ok := det.(*hsd.RouterDetector)
	if !ok {
		if lo >= 0 || hi >= 0 || eps > 0 {
			return fmt.Errorf("-router-* flags need -detector Router (got %s)", det.Name())
		}
		return nil
	}
	if eps > 0 {
		rt.SetMaxStageError(eps)
	}
	if (lo >= 0) != (hi >= 0) {
		return fmt.Errorf("-router-lo and -router-hi must be set together")
	}
	if lo >= 0 {
		rt.ForceBand(hsd.RouterBand{Lo: lo, Hi: hi})
	}
	return nil
}

// printRouterStats prints the per-stage routing breakdown when the
// trained detector is a router.
func printRouterStats(det hsd.Detector) {
	rt, ok := det.(*hsd.RouterDetector)
	if !ok {
		return
	}
	for _, s := range rt.Stats() {
		fmt.Printf("stage %-10s answered %5d (hot %4d, cold %4d)  escalated %5d  %8.3fs\n",
			s.Name, s.Answered(), s.AnsweredHot, s.AnsweredCold, s.Escalated, s.Seconds)
	}
}
