// Command hsdtrain trains one detector from the survey zoo on one
// benchmark and reports the contest metrics. Neural detectors can be
// saved for later scanning.
//
// Usage:
//
//	hsdtrain -suite suite.gob -bench B1 -detector CNN-biased -save cnn.gob
//	hsdtrain -suite suite.gob -bench B3 -detector AdaBoost
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hsd "github.com/golitho/hsd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdtrain:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file")
	benchName := flag.String("bench", "", "benchmark name (default: first)")
	detName := flag.String("detector", "CNN-biased", "zoo detector name")
	seed := flag.Int64("seed", 1, "training seed")
	save := flag.String("save", "", "save the trained network (neural detectors only)")
	flag.Parse()

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}

	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	var spec *hsd.DetectorSpec
	var names []string
	for _, s := range hsd.SurveyZoo(*seed) {
		names = append(names, s.Name)
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo (have: %s)", *detName, strings.Join(names, ", "))
	}

	sim, err := hsd.NewSimulator(hsd.DefaultSimConfig())
	if err != nil {
		return err
	}
	det := spec.New()
	t0 := time.Now()
	res, err := hsd.Evaluate(det, bench.Name,
		hsd.FromSamples(bench.Train.Samples), hsd.FromSamples(bench.Test.Samples),
		hsd.EvalOptions{Sim: sim, Augment: spec.Augment})
	if err != nil {
		return err
	}
	fmt.Printf("detector   %s (%s)\n", spec.Name, det.Name())
	fmt.Printf("benchmark  %s\n", bench.Name)
	fmt.Printf("accuracy   %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("falsealarm %d\n", res.FalseAlarms())
	fmt.Printf("precision  %.3f  F1 %.3f  AUC %.3f\n",
		res.Confusion.Precision(), res.Confusion.F1(), res.AUC)
	fmt.Printf("train %v  infer %v  ODST %v  full-sim %v (%.1fx speedup)\n",
		res.TrainTime.Round(time.Millisecond), res.InferTime.Round(time.Millisecond),
		res.ODST().Round(time.Millisecond), res.FullSimTime.Round(time.Millisecond),
		res.Speedup())
	fmt.Printf("total %v\n", time.Since(t0).Round(time.Millisecond))

	if *save != "" {
		nd, ok := det.(*hsd.NeuralDetector)
		if !ok {
			return fmt.Errorf("detector %s is not a neural detector; cannot save", spec.Name)
		}
		if err := hsd.SaveNetworkFile(*save, nd); err != nil {
			return err
		}
		fmt.Printf("saved network to %s\n", *save)
	}
	return nil
}
