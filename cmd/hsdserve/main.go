// Command hsdserve trains a zoo detector on a benchmark suite and serves
// it over HTTP: physical-verification flows POST layout clips (GLT
// format) to /score and get JSON hotspot verdicts; /verify runs the full
// lithography oracle on demand.
//
// Usage:
//
//	hsdserve -suite suite.gob -bench B1 -detector CNN -fallback AdaBoost \
//	         -deadline 500ms -shed-rate 200 -addr :8080
//
//	curl -s --data-binary @clip.glt localhost:8080/score
//	curl -s --data-binary @clip.glt localhost:8080/batch
//	curl -s --data-binary @clip.glt localhost:8080/verify
//	curl -s localhost:8080/readyz
//
// Serving is a graceful-degradation cascade. The -detector (primary,
// typically deep) model is guarded by a per-request -deadline budget and
// a circuit breaker; when it overruns the deadline, errors, panics, or
// the breaker is open, the -fallback (typically shallow) detector
// answers instead and the JSON response carries "degraded": true plus a
// "degradedReason" ("deadline", "error", "panic", "breaker-open").
// Clients that care about verdict provenance must check that field; the
// HTTP status stays 200. Without a fallback those failures surface as
// 5xx. When -shed-rate is set, excess traffic is rejected up front with
// 429 + Retry-After. POST /batch is /score with micro-batching:
// concurrent requests are coalesced (up to -batch-size per pass, waiting
// at most -batch-wait) into one vectorized pass through the primary;
// verdicts are identical to /score. GET /readyz reports readiness: "ready" (primary
// healthy), "degraded" (breaker open, fallback answering, still 200), or
// "unavailable" (breaker open, no fallback, 503). GET /metrics exposes
// hotspot_fallbacks_total, requests_shed_total, the breaker state
// gauge (hotspot_breaker_state: 0 closed, 1 half-open, 2 open), Go
// runtime stats, and the per-stage hotspot_stage_seconds histograms.
//
// Every request is traced end to end (raster -> features -> inference,
// plus per-corner simulation spans on /verify); the tail sampler always
// keeps slow, errored, degraded, and shed traces and samples the rest
// at -trace-sample. GET /debug/traces lists retained traces as JSON
// (?id= for one, ?limit=N); GET /debug/traces/chrome exports them in
// Chrome trace_event format for about:tracing or ui.perfetto.dev. With
// -debug-addr a second, private listener additionally serves
// /debug/pprof/ — keep it off the public interface.
//
// Hot model reload (neural primaries): -model-watch polls a saved
// network file (written by hsdtrain -save) and reloads it whenever it
// changes; POST /admin/reload triggers the same on demand. Every
// candidate passes a validation gate first — it is scored on a golden
// set held out from the benchmark's test split, and swapped in only if
// its hotspot recall and false-alarm rate stay within -max-recall-drop
// / -max-far-rise of the live model and every score is finite. After a
// swap the next -probation primary outcomes are watched: more than
// -probation-max-failures failures rolls back to the previous
// generation automatically. GET /admin/model reports the live
// generation; POST /admin/rollback restores the previous one. The
// hotspot_model_generation gauge and hotspot_reloads_total{outcome}
// counters expose every decision on /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/datengine"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/registry"
	"github.com/golitho/hsd/internal/serve"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/tensor"
	"github.com/golitho/hsd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdserve:", err)
		os.Exit(1)
	}
}

// trainDetector trains one zoo detector by name on the benchmark. A
// non-nil configure hook runs on the freshly built detector before Fit
// (the router threshold flags apply through it).
func trainDetector(name string, seed int64, bench *hsd.Benchmark, configure func(core.Detector) error) (core.Detector, error) {
	var spec *hsd.DetectorSpec
	for _, s := range hsd.SurveyZoo(seed) {
		if strings.EqualFold(s.Name, name) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("detector %q not in zoo", name)
	}
	det := spec.New()
	if configure != nil {
		if err := configure(det); err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	train := hsd.AugmentMinority(hsd.FromSamples(bench.Train.Samples), spec.Augment)
	if err := det.Fit(train); err != nil {
		return nil, err
	}
	log.Printf("trained %s on %s in %v", det.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))
	return det, nil
}

// goldenSet picks up to n clips from the benchmark's test split for the
// reload gate, keeping both classes represented so recall and
// false-alarm deltas are both measurable.
func goldenSet(bench *hsd.Benchmark, n int) []hsd.LabeledClip {
	if n <= 0 {
		return nil
	}
	all := hsd.FromSamples(bench.Test.Samples)
	var hot, cold []hsd.LabeledClip
	for _, s := range all {
		if s.Hotspot {
			hot = append(hot, s)
		} else {
			cold = append(cold, s)
		}
	}
	out := make([]hsd.LabeledClip, 0, n)
	for i := 0; len(out) < n && (i < len(hot) || i < len(cold)); i++ {
		if i < len(hot) {
			out = append(out, hot[i])
		}
		if len(out) < n && i < len(cold) {
			out = append(out, cold[i])
		}
	}
	return out
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file for training")
	benchName := flag.String("bench", "", "training benchmark (default: first)")
	detName := flag.String("detector", "AdaBoost", "zoo detector name (primary)")
	fallbackName := flag.String("fallback", "", "zoo detector serving degraded verdicts when the primary fails (empty: no fallback)")
	deadline := flag.Duration("deadline", 0, "per-request compute budget for /score and /verify (0: unlimited)")
	shedRate := flag.Float64("shed-rate", 0, "admission-control rate in requests/sec; excess gets 429 (0: no shedding)")
	batchSize := flag.Int("batch-size", 32, "max POST /batch requests coalesced into one scoring pass")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max time a /batch request waits for the batch to fill")
	seed := flag.Int64("seed", 1, "training seed")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "private listen address for /debug/pprof/ and the trace endpoints (empty: no debug listener)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of unflagged traces the tail sampler retains; slow/errored/degraded/shed traces are always kept")
	traceCapacity := flag.Int("trace-capacity", 256, "finished traces retained for /debug/traces (oldest evicted)")
	traceSlow := flag.Duration("trace-slow", 0, "flag traces at least this slow so the sampler always keeps them (0: off)")
	modelWatch := flag.String("model-watch", "", "saved network file to poll for hot reload (neural primaries only)")
	watchInterval := flag.Duration("model-watch-interval", 5*time.Second, "poll interval for -model-watch")
	goldenN := flag.Int("golden", 64, "golden validation clips held out of the test split for the reload gate")
	maxRecallDrop := flag.Float64("max-recall-drop", 0.05, "max golden-set recall a reload candidate may lose vs. the live model")
	maxFARRise := flag.Float64("max-far-rise", 0.05, "max golden-set false-alarm rate a reload candidate may add")
	probation := flag.Int("probation", 200, "post-swap primary outcomes watched for automatic rollback (0: off)")
	probationMaxFail := flag.Int("probation-max-failures", 5, "primary failures tolerated inside the probation window")
	precFlag := flag.String("precision", "float64", "inference precision for a neural primary (float64, float32, int8); reduced precision must pass the golden-set tolerance gate before serving")
	kernelWorkers := flag.Int("kernel-workers", 0, "total kernel-pool parallelism for batched inference and matmuls (0: GOMAXPROCS)")
	routerLo := flag.Float64("router-lo", -1, "router: force the low confidence cut (with -router-hi; -detector Router)")
	routerHi := flag.Float64("router-hi", -1, "router: force the high confidence cut (with -router-lo; -detector Router)")
	routerEps := flag.Float64("router-eps", 0, "router: per-stage answered-error budget for band fitting (0 = default)")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "max time to read a request")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "max time to write a response (covers /verify simulation)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	quality := flag.Bool("quality", false, "enable model-quality monitoring (score sketches, drift, SLO burn rate, GET /debug/quality); implied by the other -quality-*/-spot-check/-slo flags")
	qualityBaseline := flag.String("quality-baseline", "", "training-time score-distribution baseline (written by hsdtrain -quality-baseline) for drift scoring")
	spotCheckRate := flag.Float64("spot-check-rate", 0, "fraction of scored clips re-checked against the lithography oracle in the background (content-keyed, deterministic)")
	sloTarget := flag.Float64("slo-target", 0.99, "served-without-primary-failure SLO objective for burn-rate alerting")
	driftThreshold := flag.Float64("drift-threshold", 0.25, "PSI above which a series is drifting (pages the alert; warning at half)")
	qualityWindow := flag.Duration("quality-window", 10*time.Second, "quality-monitor sub-window; fast alert window is 3 of these, slow is 18")
	learnWAL := flag.String("learn-wal", "", "active-learning candidate WAL (see hsdlearn): low-confidence scores, spot-check misses, and router escalations are mined into it; use the same -detector name when draining it with hsdlearn")
	learnMargin := flag.Float64("learn-margin", 0.1, "with -learn-wal: mine scores within this of the threshold as low-confidence candidates")
	version := flag.Bool("version", false, "print build info (the hotspot_build_info fields) and exit")
	flag.Parse()

	if *version {
		goVersion, revision := telemetry.BuildInfo()
		fmt.Printf("hsdserve go_version=%s revision=%s\n", goVersion, revision)
		return nil
	}

	prec, err := nn.ParsePrecision(*precFlag)
	if err != nil {
		return err
	}
	if *kernelWorkers > 0 {
		tensor.SetDefaultWorkers(*kernelWorkers)
	}

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	configureRouter := func(d core.Detector) error {
		rt, ok := d.(*hsd.RouterDetector)
		if !ok {
			if *routerLo >= 0 || *routerHi >= 0 || *routerEps > 0 {
				return fmt.Errorf("-router-* flags need -detector Router (got %s)", d.Name())
			}
			return nil
		}
		if *routerEps > 0 {
			rt.SetMaxStageError(*routerEps)
		}
		if (*routerLo >= 0) != (*routerHi >= 0) {
			return fmt.Errorf("-router-lo and -router-hi must be set together")
		}
		if *routerLo >= 0 {
			rt.ForceBand(hsd.RouterBand{Lo: *routerLo, Hi: *routerHi})
		}
		return nil
	}
	det, err := trainDetector(*detName, *seed, bench, configureRouter)
	if err != nil {
		return err
	}
	var fallback core.Detector
	if *fallbackName != "" {
		if strings.EqualFold(*fallbackName, *detName) {
			return fmt.Errorf("fallback %q is the primary detector; pick a different (shallower) one", *fallbackName)
		}
		fallback, err = trainDetector(*fallbackName, *seed, bench, nil)
		if err != nil {
			return fmt.Errorf("fallback: %w", err)
		}
	}

	golden := goldenSet(bench, *goldenN)

	// Reduced-precision serving: compress the neural primary's network
	// and refuse to serve unless the compressed model passes the same
	// golden-set tolerance gate that guards hot reloads — compared
	// against its own float64 original as the baseline.
	if prec != nn.Float64 {
		nd, ok := det.(*hsd.NeuralDetector)
		if !ok {
			return fmt.Errorf("-precision %s needs a neural primary; %s has no reduced-precision path", prec, det.Name())
		}
		baseline := nd.CloneDetector()
		if err := nd.SetPrecision(prec); err != nil {
			return err
		}
		verdict := registry.Gate(baseline, nd, golden, *maxRecallDrop, *maxFARRise, log.Printf)
		if !verdict.OK {
			return fmt.Errorf("refusing to serve at %s precision: %s", prec, verdict.Reason)
		}
		log.Printf("serving %s at %s precision (gate: %s)", det.Name(), prec, verdict)
	}

	// Hot reload: a neural primary can be swapped for a new network saved
	// by hsdtrain. The registry gates each candidate on a golden subset
	// of the benchmark's test split before it may serve. A reloaded
	// network inherits the primary's precision: WithNetwork recompresses,
	// and the gate scores the candidate through its compressed path.
	var reload *serve.ReloadOptions
	if nd, ok := det.(*hsd.NeuralDetector); ok {
		reload = &serve.ReloadOptions{
			Loader: func(path string) (core.Detector, error) {
				net, err := nn.LoadFile(path)
				if err != nil {
					return nil, err
				}
				return nd.WithNetwork(net)
			},
			DefaultPath:          *modelWatch,
			Golden:               golden,
			MaxRecallDrop:        *maxRecallDrop,
			MaxFalseAlarmRise:    *maxFARRise,
			ProbationRequests:    *probation,
			ProbationMaxFailures: *probationMaxFail,
			Logf:                 log.Printf,
		}
	}
	if *modelWatch != "" && reload == nil {
		return fmt.Errorf("-model-watch needs a neural primary; %s cannot hot-reload", det.Name())
	}

	sim, err := lithosim.New(lithosim.DefaultConfig())
	if err != nil {
		return err
	}

	// Active-learning mining: with -learn-wal, uncertain and
	// wrongly-answered clips flow into the data engine's candidate WAL
	// for hsdlearn to drain. The engine is opened after the server (it
	// registers learn_* metrics on the serving registry), so the taps
	// installed below load it through an atomic pointer.
	var learnEng atomic.Pointer[datengine.Engine]
	learnIngest := func(clip layout.Clip, score float64, stage, source string) {
		eng := learnEng.Load()
		if eng == nil {
			return
		}
		if _, err := eng.Ingest(clip, score, stage, source); err != nil {
			log.Printf("learn-wal ingest: %v", err)
		}
	}

	// Model-quality monitoring: score sketches + drift vs. the training
	// baseline, oracle spot-checks, SLO burn rate, /debug/quality.
	var qm *qualitymon.Monitor
	if *quality || *qualityBaseline != "" || *spotCheckRate > 0 || *learnWAL != "" {
		qopts := qualitymon.Options{
			SubWindow:      *qualityWindow,
			DriftThreshold: *driftThreshold,
			SLOTarget:      *sloTarget,
			SpotCheckRate:  *spotCheckRate,
			Oracle:         sim.Label,
			Logf:           log.Printf,
		}
		if *learnWAL != "" {
			qopts.LowConfMargin = *learnMargin
			qopts.LowConfidenceTap = func(fp layout.Fingerprint, clip layout.Clip, score float64, stage string) {
				learnIngest(clip, score, stage, "lowconf")
			}
			qopts.SpotMissTap = func(clip layout.Clip, predicted, actual bool) {
				score := 0.0
				if predicted {
					score = 1.0
				}
				learnIngest(clip, score, "spotcheck", "spotmiss")
			}
		}
		qm = qualitymon.New(qopts)
		defer qm.Close()
		if *qualityBaseline != "" {
			b, err := qualitymon.LoadBaselineFile(*qualityBaseline)
			if err != nil {
				return fmt.Errorf("-quality-baseline: %w", err)
			}
			qm.InstallBaseline(b)
			log.Printf("quality baseline installed from %s (%d series)", *qualityBaseline, len(b.Entries))
		}
	}

	srv, err := serve.NewServer(serve.Options{
		Primary:        det,
		Fallback:       fallback,
		Sim:            sim,
		ClipNM:         suite.Config.ClipNM,
		CoreFrac:       suite.Config.CoreFrac,
		DeadlineBudget: *deadline,
		ShedRate:       *shedRate,
		BatchMaxSize:   *batchSize,
		BatchMaxWait:   *batchWait,
		Trace: &trace.Config{
			Capacity:      *traceCapacity,
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
		},
		Reload:  reload,
		Quality: qm,
	})
	if err != nil {
		return err
	}
	if *learnWAL != "" {
		// Ingest-only engine: hsdserve only mines candidates; labeling,
		// retraining, and shipping happen in hsdlearn against the same
		// WAL. The -detector name keys the WAL meta, so mixing detectors
		// across processes fails loudly instead of polluting the queue.
		eng, err := datengine.Open(*learnWAL, datengine.Config{
			Detector: *detName,
			Metrics:  srv.Metrics(),
			Logf:     log.Printf,
		})
		if err != nil {
			return fmt.Errorf("-learn-wal: %w", err)
		}
		defer eng.Close()
		learnEng.Store(eng)
		log.Printf("mining active-learning candidates into %s (margin %.2f, %d pending)",
			*learnWAL, *learnMargin, eng.PendingCandidates())
	}
	if rt, ok := det.(*hsd.RouterDetector); ok {
		// Per-stage routing counters land on the same /metrics page as
		// the serving cascade's.
		rt.BindMetrics(srv.Metrics())
		if *learnWAL != "" {
			// The escalation band — clips every cheap stage refused to
			// answer — is the router's feed into the data engine.
			rt.BindEscalationTap(func(stage string, p float64, clip layout.Clip) {
				learnIngest(clip, p, stage, "escalation")
			})
		}
		if qm != nil {
			// Per-stage score sketches: the tap observes the calibrated
			// confidence of every answered routing decision, so drift is
			// visible per cascade stage, not just on the encoded score.
			rt.BindQualityTap(func(stage string, p float64, clip layout.Clip) {
				qm.Observe(qualitymon.Event{
					Detector: rt.Name(), Stage: stage,
					Score: p, Threshold: 0.5,
					Clip: clip, HasClip: true,
				})
			})
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	// The debug listener is private: pprof endpoints can stall the
	// process, so they never share the serving mux.
	var debugServer *http.Server
	if *debugAddr != "" {
		debugServer = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *modelWatch != "" {
		// model.reload spans from watcher-triggered reloads land in the
		// same trace store as request traces.
		wctx := trace.WithTracer(ctx, srv.Tracer())
		log.Printf("watching %s for model reloads every %v", *modelWatch, *watchInterval)
		go srv.Registry().Watch(wctx, *modelWatch, *watchInterval)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving hotspot detection on %s (POST /score, POST /verify, GET /readyz, GET /metrics, GET /debug/traces)", *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	if debugServer != nil {
		go func() {
			log.Printf("debug listener on %s (/debug/pprof/, /debug/traces)", *debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	log.Printf("shutting down (grace %v)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if debugServer != nil {
		_ = debugServer.Shutdown(shutdownCtx)
	}
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
