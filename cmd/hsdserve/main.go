// Command hsdserve trains a zoo detector on a benchmark suite and serves
// it over HTTP: physical-verification flows POST layout clips (GLT
// format) to /score and get JSON hotspot verdicts; /verify runs the full
// lithography oracle on demand.
//
// Usage:
//
//	hsdserve -suite suite.gob -bench B1 -detector AdaBoost -addr :8080
//
//	curl -s --data-binary @clip.glt localhost:8080/score
//	curl -s --data-binary @clip.glt localhost:8080/verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdserve:", err)
		os.Exit(1)
	}
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file for training")
	benchName := flag.String("bench", "", "training benchmark (default: first)")
	detName := flag.String("detector", "AdaBoost", "zoo detector name")
	seed := flag.Int64("seed", 1, "training seed")
	addr := flag.String("addr", ":8080", "listen address")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "max time to read a request")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "max time to write a response (covers /verify simulation)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	flag.Parse()

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}
	var spec *hsd.DetectorSpec
	for _, s := range hsd.SurveyZoo(*seed) {
		if strings.EqualFold(s.Name, *detName) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("detector %q not in zoo", *detName)
	}

	det := spec.New()
	t0 := time.Now()
	train := hsd.AugmentMinority(hsd.FromSamples(bench.Train.Samples), spec.Augment)
	if err := det.Fit(train); err != nil {
		return err
	}
	log.Printf("trained %s on %s in %v", det.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))

	sim, err := lithosim.New(lithosim.DefaultConfig())
	if err != nil {
		return err
	}
	srv, err := serve.New(det, sim, suite.Config.ClipNM, suite.Config.CoreFrac)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving hotspot detection on %s (POST /score, POST /verify, GET /metrics)", *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	log.Printf("shutting down (grace %v)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
