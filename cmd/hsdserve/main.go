// Command hsdserve trains a zoo detector on a benchmark suite and serves
// it over HTTP: physical-verification flows POST layout clips (GLT
// format) to /score and get JSON hotspot verdicts; /verify runs the full
// lithography oracle on demand.
//
// Usage:
//
//	hsdserve -suite suite.gob -bench B1 -detector CNN -fallback AdaBoost \
//	         -deadline 500ms -shed-rate 200 -addr :8080
//
//	curl -s --data-binary @clip.glt localhost:8080/score
//	curl -s --data-binary @clip.glt localhost:8080/batch
//	curl -s --data-binary @clip.glt localhost:8080/verify
//	curl -s localhost:8080/readyz
//
// Serving is a graceful-degradation cascade. The -detector (primary,
// typically deep) model is guarded by a per-request -deadline budget and
// a circuit breaker; when it overruns the deadline, errors, panics, or
// the breaker is open, the -fallback (typically shallow) detector
// answers instead and the JSON response carries "degraded": true plus a
// "degradedReason" ("deadline", "error", "panic", "breaker-open").
// Clients that care about verdict provenance must check that field; the
// HTTP status stays 200. Without a fallback those failures surface as
// 5xx. When -shed-rate is set, excess traffic is rejected up front with
// 429 + Retry-After. POST /batch is /score with micro-batching:
// concurrent requests are coalesced (up to -batch-size per pass, waiting
// at most -batch-wait) into one vectorized pass through the primary;
// verdicts are identical to /score. GET /readyz reports readiness: "ready" (primary
// healthy), "degraded" (breaker open, fallback answering, still 200), or
// "unavailable" (breaker open, no fallback, 503). GET /metrics exposes
// hotspot_fallbacks_total, requests_shed_total, the breaker state
// gauge (hotspot_breaker_state: 0 closed, 1 half-open, 2 open), Go
// runtime stats, and the per-stage hotspot_stage_seconds histograms.
//
// Every request is traced end to end (raster -> features -> inference,
// plus per-corner simulation spans on /verify); the tail sampler always
// keeps slow, errored, degraded, and shed traces and samples the rest
// at -trace-sample. GET /debug/traces lists retained traces as JSON
// (?id= for one, ?limit=N); GET /debug/traces/chrome exports them in
// Chrome trace_event format for about:tracing or ui.perfetto.dev. With
// -debug-addr a second, private listener additionally serves
// /debug/pprof/ — keep it off the public interface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hsd "github.com/golitho/hsd"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/serve"
	"github.com/golitho/hsd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsdserve:", err)
		os.Exit(1)
	}
}

// trainDetector trains one zoo detector by name on the benchmark.
func trainDetector(name string, seed int64, bench *hsd.Benchmark) (core.Detector, error) {
	var spec *hsd.DetectorSpec
	for _, s := range hsd.SurveyZoo(seed) {
		if strings.EqualFold(s.Name, name) {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("detector %q not in zoo", name)
	}
	det := spec.New()
	t0 := time.Now()
	train := hsd.AugmentMinority(hsd.FromSamples(bench.Train.Samples), spec.Augment)
	if err := det.Fit(train); err != nil {
		return nil, err
	}
	log.Printf("trained %s on %s in %v", det.Name(), bench.Name, time.Since(t0).Round(time.Millisecond))
	return det, nil
}

func run() error {
	suitePath := flag.String("suite", "suite.gob", "suite gob file for training")
	benchName := flag.String("bench", "", "training benchmark (default: first)")
	detName := flag.String("detector", "AdaBoost", "zoo detector name (primary)")
	fallbackName := flag.String("fallback", "", "zoo detector serving degraded verdicts when the primary fails (empty: no fallback)")
	deadline := flag.Duration("deadline", 0, "per-request compute budget for /score and /verify (0: unlimited)")
	shedRate := flag.Float64("shed-rate", 0, "admission-control rate in requests/sec; excess gets 429 (0: no shedding)")
	batchSize := flag.Int("batch-size", 32, "max POST /batch requests coalesced into one scoring pass")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max time a /batch request waits for the batch to fill")
	seed := flag.Int64("seed", 1, "training seed")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "private listen address for /debug/pprof/ and the trace endpoints (empty: no debug listener)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of unflagged traces the tail sampler retains; slow/errored/degraded/shed traces are always kept")
	traceCapacity := flag.Int("trace-capacity", 256, "finished traces retained for /debug/traces (oldest evicted)")
	traceSlow := flag.Duration("trace-slow", 0, "flag traces at least this slow so the sampler always keeps them (0: off)")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "max time to read a request")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "max time to write a response (covers /verify simulation)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	flag.Parse()

	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	suite, err := hsd.LoadSuite(f)
	f.Close()
	if err != nil {
		return err
	}
	var bench *hsd.Benchmark
	for i := range suite.Benchmarks {
		if *benchName == "" || suite.Benchmarks[i].Name == *benchName {
			bench = &suite.Benchmarks[i]
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("benchmark %q not found", *benchName)
	}

	det, err := trainDetector(*detName, *seed, bench)
	if err != nil {
		return err
	}
	var fallback core.Detector
	if *fallbackName != "" {
		if strings.EqualFold(*fallbackName, *detName) {
			return fmt.Errorf("fallback %q is the primary detector; pick a different (shallower) one", *fallbackName)
		}
		fallback, err = trainDetector(*fallbackName, *seed, bench)
		if err != nil {
			return fmt.Errorf("fallback: %w", err)
		}
	}

	sim, err := lithosim.New(lithosim.DefaultConfig())
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.Options{
		Primary:        det,
		Fallback:       fallback,
		Sim:            sim,
		ClipNM:         suite.Config.ClipNM,
		CoreFrac:       suite.Config.CoreFrac,
		DeadlineBudget: *deadline,
		ShedRate:       *shedRate,
		BatchMaxSize:   *batchSize,
		BatchMaxWait:   *batchWait,
		Trace: &trace.Config{
			Capacity:      *traceCapacity,
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
		},
	})
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	// The debug listener is private: pprof endpoints can stall the
	// process, so they never share the serving mux.
	var debugServer *http.Server
	if *debugAddr != "" {
		debugServer = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving hotspot detection on %s (POST /score, POST /verify, GET /readyz, GET /metrics, GET /debug/traces)", *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	if debugServer != nil {
		go func() {
			log.Printf("debug listener on %s (/debug/pprof/, /debug/traces)", *debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	log.Printf("shutting down (grace %v)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if debugServer != nil {
		_ = debugServer.Shutdown(shutdownCtx)
	}
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
