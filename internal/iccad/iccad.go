// Package iccad synthesizes hotspot-detection benchmark suites in the style
// of the ICCAD 2012 CAD contest.
//
// The contest distributed five industrial 28/32 nm metal-layer benchmarks
// (B1-B5), each a set of layout clips split into training and testing data
// with extreme class imbalance (roughly 1:4 to 1:100 hotspot:non-hotspot).
// The original GDSII data is not redistributable, so this package generates
// synthetic equivalents: random Manhattan metal patterns drawn from
// per-benchmark style distributions, labelled by the lithosim oracle.
// Class ratios follow the contest; absolute sizes are scaled down (about
// 10x on the test side) to keep a pure-Go pipeline laptop-friendly.
//
// Generation is deterministic in the suite seed: every candidate clip is
// produced from its own splitmix-derived seed, so parallel labelling does
// not perturb results.
package iccad

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"

	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
)

// Grid is the coordinate snap in nanometres for all generated geometry.
const Grid = 8

// Sample is one labelled clip.
type Sample struct {
	Clip layout.Clip
	// Hotspot is the oracle verdict.
	Hotspot bool
	// Family records which pattern generator produced the clip.
	Family string
	// PVBandArea is the oracle's process-variation band, a printability
	// stability measure usable as an auxiliary regression target.
	PVBandArea float64
}

// Split is a train or test partition.
type Split struct {
	Samples []Sample
}

// Counts returns (hotspots, non-hotspots) in the split.
func (s Split) Counts() (hs, nhs int) {
	for _, smp := range s.Samples {
		if smp.Hotspot {
			hs++
		} else {
			nhs++
		}
	}
	return hs, nhs
}

// Benchmark is one named benchmark with its two splits.
type Benchmark struct {
	Name  string
	Train Split
	Test  Split
}

// Suite is a full generated benchmark suite.
type Suite struct {
	Benchmarks []Benchmark
	Config     SuiteConfig
}

// Style controls the pattern distribution of one benchmark.
type Style struct {
	// Family weights; zero weight disables a family.
	LineArrayW, LineEndW, JogW, ContactW, MixedW float64
	// RiskProb is the probability that a generated clip contains at least
	// one deliberately aggressive (near-resolution-limit) construct.
	RiskProb float64
	// Safe and risky dimension ranges [lo, hi] in nm (snapped to Grid).
	SafeWidth, RiskWidth [2]int
	SafeSpace, RiskSpace [2]int
	SafeGap, RiskGap     [2]int
}

// DefaultStyle returns a balanced metal-layer style.
func DefaultStyle() Style {
	return Style{
		LineArrayW: 4, LineEndW: 2, JogW: 1.5, ContactW: 1, MixedW: 1.5,
		RiskProb:  0.22,
		SafeWidth: [2]int{72, 128}, RiskWidth: [2]int{48, 64},
		SafeSpace: [2]int{80, 176}, RiskSpace: [2]int{40, 56},
		SafeGap: [2]int{112, 224}, RiskGap: [2]int{48, 88},
	}
}

// Spec sizes one benchmark. Counts are exact: generation continues until
// each quota is met.
type Spec struct {
	Name  string
	Style Style
	// Quotas per split.
	TrainHS, TrainNHS, TestHS, TestNHS int
}

// SuiteConfig parameterizes GenerateSuite.
type SuiteConfig struct {
	// Seed drives all randomness; equal seeds give identical suites.
	Seed int64
	// ClipNM is the clip window edge (default 1024).
	ClipNM int
	// CoreFrac is the scored core fraction of the window (default 0.5).
	CoreFrac float64
	// Sim is the oracle configuration.
	Sim lithosim.Config
	// Specs lists the benchmarks to build.
	Specs []Spec
	// Workers bounds labelling concurrency; 0 means GOMAXPROCS.
	Workers int
	// MaxAttemptsFactor bounds candidate generation at
	// MaxAttemptsFactor x total quota (default 60).
	MaxAttemptsFactor int
}

// DefaultSuiteConfig returns the five-benchmark configuration whose class
// ratios mirror the ICCAD 2012 contest statistics (sizes scaled down).
func DefaultSuiteConfig(seed int64) SuiteConfig {
	b1 := DefaultStyle()
	b1.RiskProb = 0.30
	b1.LineEndW, b1.JogW = 3, 2

	b2 := DefaultStyle()
	b2.RiskProb = 0.12
	b2.ContactW = 2

	b3 := DefaultStyle()
	b3.RiskProb = 0.24
	b3.MixedW = 3

	b4 := DefaultStyle()
	b4.RiskProb = 0.10
	b4.SafeWidth = [2]int{80, 144}
	b4.JogW = 2.5

	b5 := DefaultStyle()
	b5.RiskProb = 0.06
	b5.LineArrayW = 6

	return SuiteConfig{
		Seed:     seed,
		ClipNM:   1024,
		CoreFrac: 0.5,
		Sim:      lithosim.DefaultConfig(),
		Specs: []Spec{
			{Name: "B1", Style: b1, TrainHS: 99, TrainNHS: 340, TestHS: 30, TestNHS: 200},
			{Name: "B2", Style: b2, TrainHS: 100, TrainNHS: 1200, TestHS: 35, TestNHS: 1000},
			{Name: "B3", Style: b3, TrainHS: 250, TrainNHS: 1300, TestHS: 50, TestNHS: 1300},
			{Name: "B4", Style: b4, TrainHS: 70, TrainNHS: 1200, TestHS: 14, TestNHS: 900},
			{Name: "B5", Style: b5, TrainHS: 26, TrainNHS: 800, TestHS: 10, TestNHS: 560},
		},
	}
}

// SmallSuiteConfig returns a two-benchmark miniature suite for tests and
// examples.
func SmallSuiteConfig(seed int64) SuiteConfig {
	cfg := DefaultSuiteConfig(seed)
	s1 := DefaultStyle()
	s1.RiskProb = 0.35
	s2 := DefaultStyle()
	s2.RiskProb = 0.20
	cfg.Specs = []Spec{
		{Name: "S1", Style: s1, TrainHS: 25, TrainNHS: 75, TestHS: 15, TestNHS: 60},
		{Name: "S2", Style: s2, TrainHS: 20, TrainNHS: 90, TestHS: 10, TestNHS: 70},
	}
	return cfg
}

func (c *SuiteConfig) normalize() error {
	if c.ClipNM <= 0 {
		c.ClipNM = 1024
	}
	if c.CoreFrac <= 0 || c.CoreFrac > 1 {
		c.CoreFrac = 0.5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttemptsFactor <= 0 {
		c.MaxAttemptsFactor = 60
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("iccad: no benchmark specs")
	}
	for _, s := range c.Specs {
		if s.TrainHS < 0 || s.TrainNHS < 0 || s.TestHS < 0 || s.TestNHS < 0 {
			return fmt.Errorf("iccad: benchmark %q has negative quotas", s.Name)
		}
		if s.TrainHS+s.TrainNHS+s.TestHS+s.TestNHS == 0 {
			return fmt.Errorf("iccad: benchmark %q has zero size", s.Name)
		}
	}
	return nil
}

// GenerateSuite builds the full suite described by cfg.
func GenerateSuite(cfg SuiteConfig) (*Suite, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sim, err := lithosim.New(cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("iccad: oracle: %w", err)
	}
	suite := &Suite{Config: cfg}
	for _, spec := range cfg.Specs {
		train, err := generateSplit(cfg, sim, spec, "train", spec.TrainHS, spec.TrainNHS)
		if err != nil {
			return nil, fmt.Errorf("iccad: %s train: %w", spec.Name, err)
		}
		test, err := generateSplit(cfg, sim, spec, "test", spec.TestHS, spec.TestNHS)
		if err != nil {
			return nil, fmt.Errorf("iccad: %s test: %w", spec.Name, err)
		}
		suite.Benchmarks = append(suite.Benchmarks, Benchmark{
			Name: spec.Name, Train: train, Test: test,
		})
	}
	return suite, nil
}

// generateSplit produces labelled candidates in deterministic order until
// both class quotas are met.
func generateSplit(cfg SuiteConfig, sim *lithosim.Simulator, spec Spec, split string, wantHS, wantNHS int) (Split, error) {
	total := wantHS + wantNHS
	if total == 0 {
		return Split{}, nil
	}
	maxAttempts := cfg.MaxAttemptsFactor * total
	out := Split{Samples: make([]Sample, 0, total)}
	gotHS, gotNHS := 0, 0

	const batch = 256
	for attempt := 0; attempt < maxAttempts && (gotHS < wantHS || gotNHS < wantNHS); attempt += batch {
		n := batch
		if attempt+n > maxAttempts {
			n = maxAttempts - attempt
		}
		samples, err := labelBatch(cfg, sim, spec, split, attempt, n)
		if err != nil {
			return Split{}, err
		}
		for _, s := range samples {
			switch {
			case s.Hotspot && gotHS < wantHS:
				out.Samples = append(out.Samples, s)
				gotHS++
			case !s.Hotspot && gotNHS < wantNHS:
				out.Samples = append(out.Samples, s)
				gotNHS++
			}
		}
	}
	if gotHS < wantHS || gotNHS < wantNHS {
		return Split{}, fmt.Errorf(
			"quota not met after %d candidates: %d/%d hotspots, %d/%d non-hotspots (tune Style.RiskProb)",
			maxAttempts, gotHS, wantHS, gotNHS, wantNHS)
	}
	return out, nil
}

// labelBatch generates and labels candidates [first, first+n) in parallel.
func labelBatch(cfg SuiteConfig, sim *lithosim.Simulator, spec Spec, split string, first, n int) ([]Sample, error) {
	samples := make([]Sample, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := candidateSeed(cfg.Seed, spec.Name, split, first+i)
			rng := rand.New(rand.NewSource(seed))
			clip, family, err := synthesizeClip(rng, cfg, spec.Style)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := sim.Simulate(clip)
			if err != nil {
				errs[i] = err
				return
			}
			samples[i] = Sample{
				Clip:       clip,
				Hotspot:    res.Hotspot,
				Family:     family,
				PVBandArea: res.PVBandArea,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// candidateSeed derives a stable per-candidate seed.
func candidateSeed(seed int64, bench, split string, idx int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", seed, bench, split, idx)
	v := h.Sum64()
	// splitmix64 finalizer for good bit diffusion.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int64(v)
}
