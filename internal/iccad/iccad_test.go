package iccad

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/golitho/hsd/internal/geom"
)

func TestSnapAndPick(t *testing.T) {
	if snap(0) != 0 || snap(4) != 8 || snap(3) != 0 || snap(12) != 16 {
		t.Fatalf("snap wrong: %d %d %d %d", snap(0), snap(4), snap(3), snap(12))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := pick(rng, 40, 176)
		if v%Grid != 0 {
			t.Fatalf("pick returned off-grid %d", v)
		}
		if v < 40-Grid/2 || v > 176+Grid/2 {
			t.Fatalf("pick out of range: %d", v)
		}
	}
	if got := pick(rng, 50, 50); got != snap(50) {
		t.Fatalf("degenerate pick = %d", got)
	}
}

func TestStyleRanges(t *testing.T) {
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if w := st.width(rng, true); w > st.RiskWidth[1]+Grid/2 || w < st.RiskWidth[0]-Grid/2 {
			t.Fatalf("risky width %d outside %v", w, st.RiskWidth)
		}
		if s := st.space(rng, false); s > st.SafeSpace[1]+Grid/2 || s < st.SafeSpace[0]-Grid/2 {
			t.Fatalf("safe space %d outside %v", s, st.SafeSpace)
		}
		if g := st.gap(rng, true); g > st.RiskGap[1]+Grid/2 || g < st.RiskGap[0]-Grid/2 {
			t.Fatalf("risky gap %d outside %v", g, st.RiskGap)
		}
	}
}

func TestSynthesizeClipDeterminism(t *testing.T) {
	cfg := DefaultSuiteConfig(7)
	st := DefaultStyle()
	for seed := int64(0); seed < 20; seed++ {
		a, famA, err := synthesizeClip(rand.New(rand.NewSource(seed)), cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		b, famB, err := synthesizeClip(rand.New(rand.NewSource(seed)), cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if famA != famB || len(a.Shapes) != len(b.Shapes) {
			t.Fatalf("seed %d: nondeterministic synthesis", seed)
		}
		for i := range a.Shapes {
			if !a.Shapes[i].Eq(b.Shapes[i]) {
				t.Fatalf("seed %d: shape %d differs", seed, i)
			}
		}
	}
}

func TestSynthesizeClipGeometry(t *testing.T) {
	cfg := DefaultSuiteConfig(7)
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		clip, fam, err := synthesizeClip(rng, cfg, st)
		if err != nil || fam == "" {
			return false
		}
		if len(clip.Shapes) == 0 {
			return false
		}
		win := geom.R(0, 0, cfg.ClipNM, cfg.ClipNM)
		if !clip.Window.Eq(win) {
			return false
		}
		for _, s := range clip.Shapes {
			if s.Empty() || !win.ContainsRect(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeClipFamilyCoverage(t *testing.T) {
	cfg := DefaultSuiteConfig(7)
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(4))
	seen := make(map[string]bool)
	for i := 0; i < 300; i++ {
		_, fam, err := synthesizeClip(rng, cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		seen[fam] = true
	}
	for _, fam := range []string{"linearray", "lineend", "jog", "contact", "mixed"} {
		if !seen[fam] {
			t.Errorf("family %q never generated", fam)
		}
	}
}

func TestSynthesizeClipNoFamilies(t *testing.T) {
	cfg := DefaultSuiteConfig(7)
	if _, _, err := synthesizeClip(rand.New(rand.NewSource(1)), cfg, Style{}); err == nil {
		t.Fatal("empty style accepted")
	}
}

func TestTranspose(t *testing.T) {
	in := []geom.Rect{geom.R(1, 2, 3, 8)}
	out := transpose(in)
	if !out[0].Eq(geom.R(2, 1, 8, 3)) {
		t.Fatalf("transpose = %v", out[0])
	}
	back := transpose(out)
	if !back[0].Eq(in[0]) {
		t.Fatal("transpose is not an involution")
	}
}

func TestCandidateSeedStable(t *testing.T) {
	a := candidateSeed(42, "B1", "train", 7)
	b := candidateSeed(42, "B1", "train", 7)
	if a != b {
		t.Fatal("candidateSeed not deterministic")
	}
	if candidateSeed(42, "B1", "train", 8) == a {
		t.Fatal("adjacent candidates share a seed")
	}
	if candidateSeed(42, "B2", "train", 7) == a {
		t.Fatal("different benchmarks share a seed")
	}
	if candidateSeed(43, "B1", "train", 7) == a {
		t.Fatal("different suite seeds share a seed")
	}
}

func TestGenerateSuiteSmall(t *testing.T) {
	cfg := SmallSuiteConfig(11)
	suite, err := GenerateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Benchmarks) != len(cfg.Specs) {
		t.Fatalf("benchmarks = %d, want %d", len(suite.Benchmarks), len(cfg.Specs))
	}
	for i, b := range suite.Benchmarks {
		spec := cfg.Specs[i]
		hs, nhs := b.Train.Counts()
		if hs != spec.TrainHS || nhs != spec.TrainNHS {
			t.Errorf("%s train = %d/%d, want %d/%d", b.Name, hs, nhs, spec.TrainHS, spec.TrainNHS)
		}
		hs, nhs = b.Test.Counts()
		if hs != spec.TestHS || nhs != spec.TestNHS {
			t.Errorf("%s test = %d/%d, want %d/%d", b.Name, hs, nhs, spec.TestHS, spec.TestNHS)
		}
		for _, s := range b.Train.Samples {
			if len(s.Clip.Shapes) == 0 {
				t.Errorf("%s: sample with no shapes", b.Name)
			}
			if s.Family == "" {
				t.Errorf("%s: sample without family", b.Name)
			}
			if s.PVBandArea < 0 {
				t.Errorf("%s: negative PV band", b.Name)
			}
		}
	}
}

func TestGenerateSuiteDeterministic(t *testing.T) {
	cfg := SmallSuiteConfig(5)
	cfg.Specs = cfg.Specs[:1]
	cfg.Specs[0].TrainHS, cfg.Specs[0].TrainNHS = 5, 20
	cfg.Specs[0].TestHS, cfg.Specs[0].TestNHS = 3, 10

	a, err := GenerateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Benchmarks[0].Train.Samples, b.Benchmarks[0].Train.Samples
	if len(as) != len(bs) {
		t.Fatal("lengths differ across runs")
	}
	for i := range as {
		if as[i].Hotspot != bs[i].Hotspot || as[i].Family != bs[i].Family ||
			len(as[i].Clip.Shapes) != len(bs[i].Clip.Shapes) {
			t.Fatalf("sample %d differs across identical runs", i)
		}
	}
}

func TestGenerateSuiteSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Suite {
		cfg := SmallSuiteConfig(seed)
		cfg.Specs = cfg.Specs[:1]
		cfg.Specs[0].TrainHS, cfg.Specs[0].TrainNHS = 4, 12
		cfg.Specs[0].TestHS, cfg.Specs[0].TestNHS = 2, 6
		s, err := GenerateSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(1), mk(2)
	same := true
	for i, s := range a.Benchmarks[0].Train.Samples {
		o := b.Benchmarks[0].Train.Samples[i]
		if len(s.Clip.Shapes) != len(o.Clip.Shapes) {
			same = false
			break
		}
		for j := range s.Clip.Shapes {
			if !s.Clip.Shapes[j].Eq(o.Clip.Shapes[j]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical suites")
	}
}

func TestGenerateSuiteValidation(t *testing.T) {
	if _, err := GenerateSuite(SuiteConfig{Seed: 1}); err == nil {
		t.Fatal("empty spec list accepted")
	}
	cfg := SmallSuiteConfig(1)
	cfg.Specs[0].TrainHS = -1
	if _, err := GenerateSuite(cfg); err == nil {
		t.Fatal("negative quota accepted")
	}
	cfg = SmallSuiteConfig(1)
	cfg.Specs = []Spec{{Name: "Z", Style: DefaultStyle()}}
	if _, err := GenerateSuite(cfg); err == nil {
		t.Fatal("zero-size benchmark accepted")
	}
}

func TestGenerateSuiteQuotaFailure(t *testing.T) {
	cfg := SmallSuiteConfig(1)
	st := DefaultStyle()
	st.RiskProb = 0 // nearly no hotspots
	cfg.Specs = []Spec{{Name: "Z", Style: st, TrainHS: 50, TrainNHS: 1}}
	cfg.MaxAttemptsFactor = 2
	if _, err := GenerateSuite(cfg); err == nil {
		t.Fatal("unreachable quota did not error")
	}
}

func TestGenerateChip(t *testing.T) {
	st := DefaultStyle()
	chip, err := GenerateChip(3, 4096, st)
	if err != nil {
		t.Fatal(err)
	}
	if chip.NumShapes() == 0 {
		t.Fatal("empty chip")
	}
	if !geom.R(0, 0, 4096, 4096).ContainsRect(chip.Bounds()) {
		t.Fatalf("chip bounds %v exceed the die", chip.Bounds())
	}
	if _, err := GenerateChip(3, 0, st); err == nil {
		t.Fatal("zero edge accepted")
	}
	// Determinism.
	again, err := GenerateChip(3, 4096, st)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumShapes() != chip.NumShapes() {
		t.Fatal("chip generation not deterministic")
	}
}

func TestSplitCounts(t *testing.T) {
	s := Split{Samples: []Sample{{Hotspot: true}, {Hotspot: false}, {Hotspot: true}}}
	hs, nhs := s.Counts()
	if hs != 2 || nhs != 1 {
		t.Fatalf("Counts = %d/%d, want 2/1", hs, nhs)
	}
}
