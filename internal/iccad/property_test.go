package iccad

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/geom"
)

// TestPatternsOnGrid: every generated shape must sit on the 8 nm grid —
// the raster and oracle assume grid-aligned geometry.
func TestPatternsOnGrid(t *testing.T) {
	cfg := DefaultSuiteConfig(1)
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 100; trial++ {
		clip, fam, err := synthesizeClip(rng, cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range clip.Shapes {
			// Clipping to the window preserves grid alignment because the
			// window itself is grid aligned.
			if s.Min.X%Grid != 0 || s.Min.Y%Grid != 0 || s.Max.X%Grid != 0 || s.Max.Y%Grid != 0 {
				t.Fatalf("family %s: off-grid shape %v", fam, s)
			}
		}
	}
}

// TestPatternsNoDrawnOverlapWithinFamily: generated patterns may touch
// (polygon decomposition) but gross overlaps indicate a generator bug.
// Jog joints deliberately overlap at corners, so only non-jog families
// are checked.
func TestPatternsNoDrawnOverlap(t *testing.T) {
	cfg := DefaultSuiteConfig(1)
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		clip, fam, err := synthesizeClip(rng, cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if fam == "jog" {
			continue
		}
		checked++
		for i := 0; i < len(clip.Shapes); i++ {
			for j := i + 1; j < len(clip.Shapes); j++ {
				if clip.Shapes[i].Overlaps(clip.Shapes[j]) {
					t.Fatalf("family %s: overlapping shapes %v and %v",
						fam, clip.Shapes[i], clip.Shapes[j])
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-jog clips checked")
	}
}

// TestSafeClipsUseSafeDimensions: non-risky line arrays must have widths
// and spaces in the safe band (the risk machinery must not leak).
func TestSafeClipsUseSafeDimensions(t *testing.T) {
	cfg := DefaultSuiteConfig(1)
	st := DefaultStyle()
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 50; trial++ {
		shapes := genLineArray(rng, cfg, st, false)
		for _, s := range shapes {
			// Track width is the short dimension of long shapes; short
			// broken-line segments are legitimately narrow along the
			// track axis and are skipped.
			if max(s.Dx(), s.Dy()) < 300 {
				continue
			}
			w := min(s.Dx(), s.Dy())
			if w < st.SafeWidth[0]-Grid {
				t.Fatalf("safe line array has width %d below safe band", w)
			}
		}
	}
}

// TestGenerateChipDeterministicShapes: chip generation must be seed-
// deterministic shape by shape.
func TestGenerateChipDeterministicShapes(t *testing.T) {
	a, err := GenerateChip(5, 4096, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChip(5, 4096, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Shapes(), b.Shapes()
	if len(as) != len(bs) {
		t.Fatalf("shape counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if !as[i].Eq(bs[i]) {
			t.Fatalf("shape %d differs", i)
		}
	}
}

// TestChipTileInsets: tiles are inset, so no shape may cross a tile seam.
func TestChipTileInsets(t *testing.T) {
	chip, err := GenerateChip(6, 4096, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range chip.Shapes() {
		tx0, tx1 := s.Min.X/1024, (s.Max.X-1)/1024
		ty0, ty1 := s.Min.Y/1024, (s.Max.Y-1)/1024
		if tx0 != tx1 || ty0 != ty1 {
			t.Fatalf("shape %v crosses a tile seam", s)
		}
	}
}

// TestStyleDegenerateRanges: degenerate (hi <= lo) ranges fall back to lo.
func TestStyleDegenerateRanges(t *testing.T) {
	st := DefaultStyle()
	st.SafeWidth = [2]int{80, 80}
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 10; i++ {
		if w := st.width(rng, false); w != 80 {
			t.Fatalf("degenerate width range produced %d", w)
		}
	}
	_ = geom.Rect{} // keep geom import for the grid test helpers
}
