package iccad

import (
	"fmt"
	"math/rand"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// snap rounds v to the generation grid.
func snap(v int) int { return (v + Grid/2) / Grid * Grid }

// pick draws a grid-snapped uniform value from [lo, hi].
func pick(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return snap(lo)
	}
	return snap(lo + rng.Intn(hi-lo+1))
}

func (st Style) width(rng *rand.Rand, risky bool) int {
	if risky {
		return pick(rng, st.RiskWidth[0], st.RiskWidth[1])
	}
	return pick(rng, st.SafeWidth[0], st.SafeWidth[1])
}

func (st Style) space(rng *rand.Rand, risky bool) int {
	if risky {
		return pick(rng, st.RiskSpace[0], st.RiskSpace[1])
	}
	return pick(rng, st.SafeSpace[0], st.SafeSpace[1])
}

func (st Style) gap(rng *rand.Rand, risky bool) int {
	g := pick(rng, st.SafeGap[0], st.SafeGap[1])
	if risky {
		g = pick(rng, st.RiskGap[0], st.RiskGap[1])
	}
	// Gaps are centred on a grid point, so they must be even multiples of
	// the grid for both tips to stay grid-aligned.
	g = g / (2 * Grid) * (2 * Grid)
	if g < 2*Grid {
		g = 2 * Grid
	}
	return g
}

// synthesizeClip generates one random clip according to the style.
func synthesizeClip(rng *rand.Rand, cfg SuiteConfig, st Style) (layout.Clip, string, error) {
	weights := []struct {
		name string
		w    float64
		gen  func(*rand.Rand, SuiteConfig, Style, bool) []geom.Rect
	}{
		{"linearray", st.LineArrayW, genLineArray},
		{"lineend", st.LineEndW, genLineEnds},
		{"jog", st.JogW, genJogs},
		{"contact", st.ContactW, genContacts},
		{"mixed", st.MixedW, genMixed},
	}
	var total float64
	for _, w := range weights {
		total += w.w
	}
	if total <= 0 {
		return layout.Clip{}, "", fmt.Errorf("iccad: style has no enabled families")
	}
	r := rng.Float64() * total
	idx := 0
	for i, w := range weights {
		if r < w.w {
			idx = i
			break
		}
		r -= w.w
	}
	risky := rng.Float64() < st.RiskProb
	shapes := weights[idx].gen(rng, cfg, st, risky)

	l := layout.NewWithGrid("synthetic", 256)
	for _, s := range shapes {
		if s.Empty() {
			continue
		}
		if err := l.AddRect(s); err != nil {
			return layout.Clip{}, "", err
		}
	}
	c := cfg.ClipNM / 2
	clip, err := l.ClipAt(geom.Pt(c, c), cfg.ClipNM, cfg.CoreFrac)
	if err != nil {
		return layout.Clip{}, "", err
	}
	return clip, weights[idx].name, nil
}

// transpose swaps x and y of every rect (converts a horizontal pattern
// into a vertical one).
func transpose(rs []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(rs))
	for i, r := range rs {
		out[i] = geom.R(r.Min.Y, r.Min.X, r.Max.Y, r.Max.X)
	}
	return out
}

// genLineArray produces a 1-D routing track array. Risky clips narrow one
// width or one space to near the resolution limit, or cut a tight line-end
// gap into a track crossing the core.
func genLineArray(rng *rand.Rand, cfg SuiteConfig, st Style, risky bool) []geom.Rect {
	n := cfg.ClipNM
	lo, hi := -2*Grid*8, n+2*Grid*8
	var shapes []geom.Rect

	// Choose which track index gets the risky construct.
	riskTrack := -1
	riskKind := 0 // 0: narrow width, 1: tight space, 2: tight tip gap
	if risky {
		riskKind = rng.Intn(3)
	}
	y := -pick(rng, 0, 160)
	track := 0
	for y < n+160 {
		w := st.width(rng, false)
		s := st.space(rng, false)
		// Decide risk placement lazily: when the track is near the core.
		coreLo, coreHi := n/4, 3*n/4
		inCore := y+w/2 >= coreLo && y+w/2 < coreHi
		applyRisk := risky && riskTrack == -1 && inCore && rng.Float64() < 0.5
		if applyRisk {
			riskTrack = track
			switch riskKind {
			case 0:
				w = st.width(rng, true)
			case 1:
				s = st.space(rng, true)
			}
		}
		if applyRisk && riskKind == 2 {
			// Tip-to-tip break inside the core.
			g := st.gap(rng, true)
			bx := snap(n/2 + rng.Intn(n/4) - n/8)
			shapes = append(shapes,
				geom.R(lo, y, bx-g/2, y+w),
				geom.R(bx+g/2, y, hi, y+w),
			)
		} else if rng.Float64() < 0.25 {
			// Benign break with a safe gap.
			g := st.gap(rng, false)
			bx := snap(rng.Intn(n))
			shapes = append(shapes,
				geom.R(lo, y, bx-g/2, y+w),
				geom.R(bx+g/2, y, hi, y+w),
			)
		} else {
			shapes = append(shapes, geom.R(lo, y, hi, y+w))
		}
		y += w + s
		track++
	}
	if rng.Intn(2) == 0 {
		shapes = transpose(shapes)
	}
	return shapes
}

// genLineEnds produces arrays of facing line tips, the classic line-end
// pullback / tip-to-tip hotspot topology.
func genLineEnds(rng *rand.Rand, cfg SuiteConfig, st Style, risky bool) []geom.Rect {
	n := cfg.ClipNM
	lo, hi := -2*Grid*8, n+2*Grid*8
	var shapes []geom.Rect
	y := -pick(rng, 0, 128)
	placedRisk := false
	for y < n+128 {
		w := st.width(rng, false)
		s := st.space(rng, false)
		g := st.gap(rng, false)
		bx := snap(n/2 + rng.Intn(n/2) - n/4)
		coreLo, coreHi := n/4, 3*n/4
		if risky && !placedRisk && y+w/2 >= coreLo && y+w/2 < coreHi {
			// Risky construct: tight tip gap, or a narrow line whose tip
			// pulls back, centred in the core.
			placedRisk = true
			bx = snap(n/2 + rng.Intn(n/8) - n/16)
			if rng.Intn(2) == 0 {
				g = st.gap(rng, true)
			} else {
				w = st.width(rng, true)
			}
		}
		shapes = append(shapes,
			geom.R(lo, y, bx-g/2, y+w),
			geom.R(bx+g/2, y, hi, y+w),
		)
		y += w + s
	}
	if rng.Intn(2) == 0 {
		shapes = transpose(shapes)
	}
	return shapes
}

// genJogs produces a bus of parallel jogged (staircase) wires. Each wire
// follows the same up-right staircase path, translated diagonally so the
// wire-to-wire spacing stays constant. Risky clips pinch one wire's width
// or the bus spacing.
func genJogs(rng *rand.Rand, cfg SuiteConfig, st Style, risky bool) []geom.Rect {
	n := cfg.ClipNM
	w := st.width(rng, false)
	s := st.space(rng, false)
	if risky && rng.Intn(2) == 0 {
		s = st.space(rng, true)
	}
	// Base staircase path: alternating horizontal and vertical runs from
	// the lower-left to the upper-right of the window. Runs must exceed
	// w + safe space so consecutive arms of one wire stay DRC-clean.
	minRun := w + st.SafeSpace[1]
	type step struct{ x, y, runX, runY int }
	var path []step
	x := -pick(rng, 256, 384)
	y := -pick(rng, 128, 256)
	for x < n+256 && y < n+256 {
		runX := minRun + pick(rng, 32, 256)
		runY := minRun + pick(rng, 0, 160)
		path = append(path, step{x, y, runX, runY})
		x += runX
		y += runY
	}
	nWires := 3 + rng.Intn(4)
	riskWire := -1
	if risky {
		riskWire = rng.Intn(nWires)
	}
	var shapes []geom.Rect
	for k := 0; k < nWires; k++ {
		wk := w
		if k == riskWire && rng.Intn(2) == 0 {
			wk = st.width(rng, true)
		}
		// Diagonal offset keeps spacing s on both arm orientations.
		off := snap(k * (w + s))
		for _, st := range path {
			sx, sy := st.x+off, st.y-off
			shapes = append(shapes, geom.R(sx, sy, sx+st.runX+wk, sy+wk))
			shapes = append(shapes, geom.R(sx+st.runX, sy, sx+st.runX+wk, sy+st.runY+wk))
		}
	}
	if rng.Intn(2) == 0 {
		shapes = transpose(shapes)
	}
	return shapes
}

// genContacts produces a via/contact-style grid of squares; risky clips
// shrink the square or its pitch near the core. Isolated squares suffer
// two-dimensional pullback, so contact sizes run larger than wire widths:
// safe squares are >= 96 nm, risky squares 56-80 nm.
func genContacts(rng *rand.Rand, cfg SuiteConfig, st Style, risky bool) []geom.Rect {
	n := cfg.ClipNM
	var shapes []geom.Rect
	w := pick(rng, 96, 160)
	sx := st.space(rng, false) + 24
	sy := st.space(rng, false) + 24
	x0 := -pick(rng, 0, w+sx)
	y0 := -pick(rng, 0, w+sy)
	riskX, riskY := -1, -1
	if risky {
		riskX = n / 2
		riskY = n / 2
	}
	for y := y0; y < n+96; y += w + sy {
		for x := x0; x < n+96; x += w + sx {
			cw := w
			if risky && abs(x-riskX) < (w+sx) && abs(y-riskY) < (w+sy) && rng.Intn(2) == 0 {
				cw = pick(rng, 56, 80) // 2-D pullback / open risk
			}
			shapes = append(shapes, geom.R(x, y, x+cw, y+cw))
		}
	}
	if risky && rng.Intn(2) == 0 {
		// Add an extra contact squeezed tightly against the grid contact
		// nearest the core centre: a bridge risk. Grid contacts the extra
		// would collide with are removed so drawn geometry stays disjoint.
		g := pick(rng, 24, 44)
		gx := x0 + ((n/2-x0)/(w+sx))*(w+sx)
		gy := y0 + ((n/2-y0)/(w+sy))*(w+sy)
		extra := geom.R(gx+w+g, gy, gx+2*w+g, gy+w)
		kept := shapes[:0]
		for _, s := range shapes {
			if !s.Overlaps(extra) {
				kept = append(kept, s)
			}
		}
		shapes = append(kept, extra)
	}
	return shapes
}

// genMixed produces orthogonal routing regions meeting near the core, a
// common source of complex 2-D hotspot topologies.
func genMixed(rng *rand.Rand, cfg SuiteConfig, st Style, risky bool) []geom.Rect {
	n := cfg.ClipNM
	split := snap(n/2 + rng.Intn(n/4) - n/8)
	sep := st.space(rng, false)
	var shapes []geom.Rect
	// Bottom half: horizontal lines up to the split.
	topEdge := -pick(rng, 0, 128)
	y := topEdge
	for {
		w := st.width(rng, false)
		if risky && rng.Float64() < 0.15 {
			w = st.width(rng, true)
		}
		if y+w > split-sep {
			break
		}
		shapes = append(shapes, geom.R(-128, y, n+128, y+w))
		topEdge = y + w
		y += w + st.space(rng, false)
	}
	// Top half: vertical lines starting at the split.
	x := -pick(rng, 0, 128)
	protruded := false
	for x < n+128 {
		w := st.width(rng, false)
		y0 := split
		if risky && !protruded && x > n/3 && x < 2*n/3 && rng.Intn(2) == 0 {
			// One line protrudes down towards the last horizontal line
			// with a tight tip-to-edge gap: a bridge risk.
			protruded = true
			y0 = topEdge + pick(rng, 24, 44)
		}
		shapes = append(shapes, geom.R(x, y0, x+w, n+128))
		x += w + st.space(rng, false)
	}
	if rng.Intn(2) == 0 {
		shapes = transpose(shapes)
	}
	return shapes
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// GenerateChip synthesizes a full-chip layout of the given edge length by
// tiling random pattern regions. Used by the full-chip scanning example
// and the ODST scaling experiment.
func GenerateChip(seed int64, edgeNM int, st Style) (*layout.Layout, error) {
	if edgeNM <= 0 {
		return nil, fmt.Errorf("iccad: chip edge must be positive, got %d", edgeNM)
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := SuiteConfig{ClipNM: 1024, CoreFrac: 0.5}
	l := layout.NewWithGrid("chip", 2048)
	const tile = 1024
	gens := []func(*rand.Rand, SuiteConfig, Style, bool) []geom.Rect{
		genLineArray, genLineEnds, genJogs, genContacts, genMixed,
	}
	// Tiles are inset by a margin so seam truncation does not create
	// artificial tile-to-tile interactions; hotspots come from the
	// patterns themselves, as in the clip benchmarks.
	const margin = 96
	for ty := 0; ty < edgeNM; ty += tile {
		for tx := 0; tx < edgeNM; tx += tile {
			risky := rng.Float64() < st.RiskProb
			shapes := gens[rng.Intn(len(gens))](rng, cfg, st, risky)
			off := geom.Pt(tx, ty)
			window := geom.R(margin, margin, tile-margin, tile-margin)
			for _, s := range shapes {
				s = s.Intersect(window)
				if s.Empty() {
					continue
				}
				if err := l.AddRect(s.Translate(off)); err != nil {
					return nil, err
				}
			}
		}
	}
	return l, nil
}
