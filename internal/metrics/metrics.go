// Package metrics implements the evaluation measures of the ICCAD 2012
// hotspot-detection protocol (accuracy = hotspot recall, false-alarm
// count) plus the standard classification metrics (precision, F1, ROC,
// AUC) the later literature reports.
package metrics

import (
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix; "positive" means hotspot.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded samples.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the contest "accuracy": detected hotspots over actual
// hotspots (recall). Returns 1 when there are no hotspots.
func (c *Confusion) Accuracy() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FalseAlarms is the contest false-alarm count: non-hotspots flagged.
func (c *Confusion) FalseAlarms() int { return c.FP }

// Precision is TP / (TP + FP); 1 when nothing was flagged.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is an alias of Accuracy.
func (c *Confusion) Recall() float64 { return c.Accuracy() }

// FPR is FP / (FP + TN); 0 when there are no negatives.
func (c *Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 is the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.3f fa=%d",
		c.TP, c.FP, c.TN, c.FN, c.Accuracy(), c.FalseAlarms())
}

// ROCPoint is one operating point of a score threshold sweep.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC computes the ROC curve of scores (higher = more hotspot-like)
// against binary labels, and the area under it. Points are ordered by
// increasing FPR. It returns an error on length mismatch or degenerate
// label sets.
func ROC(scores []float64, labels []int) ([]ROCPoint, float64, error) {
	if len(scores) != len(labels) {
		return nil, 0, fmt.Errorf("metrics: %d scores vs %d labels", len(scores), len(labels))
	}
	pos, neg := 0, 0
	for _, l := range labels {
		switch l {
		case 1:
			pos++
		case 0:
			neg++
		default:
			return nil, 0, fmt.Errorf("metrics: label %d (want 0/1)", l)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, 0, fmt.Errorf("metrics: ROC needs both classes (%d pos, %d neg)", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var points []ROCPoint
	points = append(points, ROCPoint{Threshold: scores[idx[0]] + 1, TPR: 0, FPR: 0})
	tp, fp := 0, 0
	var auc float64
	i := 0
	for i < len(idx) {
		// Process ties together.
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		prev := points[len(points)-1]
		pt := ROCPoint{
			Threshold: scores[idx[i]],
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		}
		// Trapezoidal area increment.
		auc += (pt.FPR - prev.FPR) * (pt.TPR + prev.TPR) / 2
		points = append(points, pt)
		i = j
	}
	return points, auc, nil
}
