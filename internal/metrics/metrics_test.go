package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, false) // TN
	c.Add(false, true)  // FN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if c.FalseAlarms() != 1 {
		t.Fatalf("FalseAlarms = %d", c.FalseAlarms())
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Precision = %v", got)
	}
	if got := c.FPR(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FPR = %v", got)
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 1 || c.Precision() != 1 || c.FPR() != 0 {
		t.Fatal("degenerate confusion should be lenient")
	}
	if c.F1() != 1 {
		// precision=1, recall=1 when nothing recorded
		t.Fatalf("degenerate F1 = %v", c.F1())
	}
}

func TestF1(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2}
	// precision = 0.8, recall = 0.8, F1 = 0.8
	if math.Abs(c.F1()-0.8) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	pts, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	last := pts[len(pts)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", last)
	}
	if pts[0].TPR != 0 || pts[0].FPR != 0 {
		t.Fatalf("curve does not start at (0,0): %+v", pts[0])
	}
}

func TestROCAntiClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	_, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc) > 1e-12 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	_, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	_, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("all-ties AUC = %v, want 0.5", auc)
	}
}

func TestROCValidation(t *testing.T) {
	if _, _, err := ROC([]float64{1}, []int{1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := ROC([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("single-class accepted")
	}
	if _, _, err := ROC([]float64{1, 2}, []int{1, 5}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestROCAUCInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 10 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]int, n)
		labels[0], labels[1] = 0, 1 // guarantee both classes
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if i >= 2 {
				labels[i] = rng.Intn(2)
			}
		}
		_, auc, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		return auc >= -1e-12 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	scores := make([]float64, n)
	labels := make([]int, n)
	labels[0], labels[1] = 0, 1
	for i := range scores {
		scores[i] = rng.NormFloat64()
		if i >= 2 {
			labels[i] = rng.Intn(2)
		}
	}
	pts, _, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR-1e-12 || pts[i].TPR < pts[i-1].TPR-1e-12 {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}
