// Int8 quantized kernels: the lowest tier of the inference fast path.
//
// Quantization is symmetric and per-row: row i of a float64 matrix is
// stored as int8 codes q with one float64 scale s so that x ≈ s·q,
// s = maxabs(row)/127. Codes saturate at ±127 (the -128 slot is unused,
// keeping the scheme symmetric), NaN inputs code to 0 and non-finite
// scales collapse to 0 — quantization never emits NaN or Inf.
//
// Products accumulate in int32, which is exact: |q| ≤ 127 bounds every
// partial product by 127², so any accumulation order gives the same
// integer — the int8 kernels are deterministic across batch size, worker
// count, and sharding by construction. The int32 accumulator holds up to
// MaxInt8DotLen terms before it could overflow; kernels panic beyond it.
//
// Int8 scores are NOT equal to the float64 path's; models that opt in
// are gated by the quantization tolerance harness (internal/nn,
// internal/registry).

package tensor

import (
	"fmt"
	"math"
)

// MaxInt8DotLen is the longest int8 dot product the int32 accumulator
// provably cannot overflow: 127*127*2^17 < 2^31.
const MaxInt8DotLen = 1 << 17

// Int8Matrix is a dense row-major int8 matrix with one dequantization
// scale per row: the float value of element (i, j) is Scale[i]*Data[i*Cols+j].
type Int8Matrix struct {
	Rows, Cols int
	Data       []int8
	Scale      []float64
}

// NewInt8Matrix allocates a zeroed r x c int8 matrix (all scales 0).
func NewInt8Matrix(r, c int) *Int8Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Int8Matrix{Rows: r, Cols: c, Data: make([]int8, r*c), Scale: make([]float64, r)}
}

// Row returns a view of the codes of row i.
func (m *Int8Matrix) Row(i int) []int8 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// quantizeCode maps x/scale to a saturated int8 code.
func quantizeCode(v float64) int8 {
	if math.IsNaN(v) {
		return 0
	}
	if v >= 127 {
		return 127
	}
	if v <= -127 {
		return -127
	}
	return int8(math.Round(v))
}

// QuantizeRowInt8 quantizes one float64 row into dst (len(row) codes)
// and returns the scale. Empty rows, and rows whose finite magnitudes
// all sit below 127·2^-1022 (all-zero, non-finite-dominated, or deep in
// the subnormals), quantize to scale 0 with zero codes, so
// dequantization is always finite. Any nonzero scale is a normal
// float64 and bounds the per-element round-trip error by scale/2.
func QuantizeRowInt8(dst []int8, row []float64) float64 {
	if len(dst) < len(row) {
		panic(fmt.Sprintf("tensor: quantize dst len %d < row len %d", len(dst), len(row)))
	}
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs && !math.IsInf(a, 0) {
			maxAbs = a
		}
	}
	// A subnormal scale would overflow 1/scale and void the half-step
	// error bound (its own rounding error is amplified by the code), so
	// rows topping out below 127·2^-1022 are coded as zero outright.
	if math.IsNaN(maxAbs) || maxAbs < 127*0x1p-1022 {
		for j := range row {
			dst[j] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	if math.IsInf(scale*127, 0) {
		// maxAbs near MaxFloat64: the division rounded up far enough that
		// dequantizing a saturated code would overflow. One ulp down pulls
		// scale*127 back under MaxFloat64 (127 ulps of slack vs the at
		// most 1-ulp excess) while moving every code by < 1e-13 relative.
		scale = math.Nextafter(scale, 0)
	}
	inv := 1 / scale
	for j, v := range row {
		dst[j] = quantizeCode(v * inv)
	}
	return scale
}

// QuantizeRowsInt8 quantizes every row of m with its own scale.
func QuantizeRowsInt8(m *Matrix) *Int8Matrix {
	out := NewInt8Matrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		out.Scale[i] = QuantizeRowInt8(out.Row(i), m.Row(i))
	}
	return out
}

// Dequantize expands the codes back to float64: scale[i] * code.
func (m *Int8Matrix) Dequantize() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := m.Scale[i]
		src, dst := m.Row(i), out.Row(i)
		for j, q := range src {
			dst[j] = s * float64(q)
		}
	}
	return out
}

// Int8Dot is the exact int32 dot product of two equal-length int8 code
// vectors; the building block of every int8 kernel. Panics when the
// vectors disagree in length or exceed MaxInt8DotLen.
func Int8Dot(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: int8 dot lengths %d vs %d", len(a), len(b)))
	}
	if len(a) > MaxInt8DotLen {
		panic(fmt.Sprintf("tensor: int8 dot length %d exceeds %d (int32 accumulator)", len(a), MaxInt8DotLen))
	}
	var s0, s1 int32
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += int32(a[k])*int32(b[k]) + int32(a[k+1])*int32(b[k+1])
		s1 += int32(a[k+2])*int32(b[k+2]) + int32(a[k+3])*int32(b[k+3])
	}
	for ; k < len(a); k++ {
		s0 += int32(a[k]) * int32(b[k])
	}
	return s0 + s1
}

// Int8MatMulTransInto computes dst = A * Bᵀ over quantized operands:
// A is m x k with per-row activation scales, bT is n x k with per-row
// (i.e. per-output) weight scales, and dst must be pre-sized m x n
// float64. dst[i][j] = A.Scale[i] * bT.Scale[j] * (qA[i] · qBT[j]).
// Integer accumulation makes the result independent of evaluation
// order, so callers may shard rows freely.
func Int8MatMulTransInto(dst *Matrix, a, bT *Int8Matrix) {
	if a.Cols != bT.Cols || dst.Rows != a.Rows || dst.Cols != bT.Rows {
		panic(fmt.Sprintf("tensor: int8 matmul shapes %dx%d * (%dx%d)T -> %dx%d",
			a.Rows, a.Cols, bT.Rows, bT.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		sa := a.Scale[i]
		drow := dst.Row(i)
		for j := 0; j < bT.Rows; j++ {
			drow[j] = sa * bT.Scale[j] * float64(Int8Dot(arow, bT.Row(j)))
		}
	}
}
