// Package tensor provides the small dense linear-algebra kernel used by
// the machine-learning detectors: row-major float64 matrices with the
// operations training needs (matmul, transpose, axpy, softmax rows).
//
// The implementation favours clarity and cache-friendly loops over
// assembly-level tuning; sizes in hotspot detection are modest (feature
// dimensions in the thousands, batches in the hundreds).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r x c matrix.
func FromSlice(r, c int, data []float64) (*Matrix, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("tensor: data length %d != %d x %d", len(data), r, c)
	}
	return &Matrix{Rows: r, Cols: c, Data: data}, nil
}

// At returns element (i, j) without bounds checking beyond the slice's own.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randomize fills m with N(0, scale) entries from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
}

// MatMul computes a * b into a new matrix. Panics on dimension mismatch
// are avoided: it returns an error instead.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out, nil
}

// Cache-blocking tile sizes for MatMulInto. The k tile keeps a band of b
// rows resident while each dst row accumulates; the j tile keeps the
// dst-row segment in L1 across the band. Per-element accumulation order
// stays ascending in k (tiles are visited in order), so blocked results
// are bit-identical to the plain i-k-j loop.
const (
	mmBlockK = 64
	mmBlockJ = 512
)

// MatMulInto computes dst = a * b; dst must be pre-sized a.Rows x b.Cols.
// The i-k-j loop order keeps the inner loop contiguous in both b and dst,
// and the k/j tiles keep the working set cache-resident for large shapes.
func MatMulInto(dst, a, b *Matrix) {
	checkMatMulShapes(dst, a, b)
	matMulRows(dst, a, b, 0, a.Rows)
}

func checkMatMulShapes(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// matMulRows computes rows [r0, r1) of dst = a * b, zeroing exactly the
// rows it owns. Each dst row is produced independently, which is what
// lets ParallelMatMulInto shard rows across workers without changing any
// result bit.
//
// The inner kernel is unrolled four deep in k with explicitly
// left-associated adds: each dst element accumulates its terms in
// strictly ascending k order, one at a time, exactly like the plain
// i-k-j loop — so the unroll changes no result bit while amortizing the
// dst load/store (the serial bottleneck) over four multiply-adds.
func matMulRows(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k0 := 0; k0 < a.Cols; k0 += mmBlockK {
			k1 := min(k0+mmBlockK, a.Cols)
			for j0 := 0; j0 < n; j0 += mmBlockJ {
				j1 := min(j0+mmBlockJ, n)
				dseg := drow[j0:j1]
				w := len(dseg)
				k := k0
				for ; k+4 <= k1; k += 4 {
					av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					b0 := b.Data[k*n+j0 : k*n+j1][:w]
					b1 := b.Data[(k+1)*n+j0 : (k+1)*n+j1][:w]
					b2 := b.Data[(k+2)*n+j0 : (k+2)*n+j1][:w]
					b3 := b.Data[(k+3)*n+j0 : (k+3)*n+j1][:w]
					for j := range dseg {
						s := dseg[j]
						s += av0 * b0[j]
						s += av1 * b1[j]
						s += av2 * b2[j]
						s += av3 * b3[j]
						dseg[j] = s
					}
				}
				for ; k < k1; k++ {
					av := arow[k]
					bseg := b.Data[k*n+j0 : k*n+j1][:w]
					for j, bv := range bseg {
						dseg[j] += av * bv
					}
				}
			}
		}
	}
}

// Transpose returns a new matrix that is m transposed.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// AddRowVector adds vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float64) error {
	if len(v) != m.Cols {
		return fmt.Errorf("tensor: row vector length %d != cols %d", len(v), m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return nil
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy computes y += alpha * x element-wise over the raw data; the two
// matrices must have identical shapes.
func Axpy(alpha float64, x, y *Matrix) error {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return fmt.Errorf("tensor: axpy shape %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	for i := range x.Data {
		y.Data[i] += alpha * x.Data[i]
	}
	return nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SoftmaxRows applies an in-place numerically stable softmax to each row.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgmaxRow returns the index of the maximum element in row i.
func (m *Matrix) ArgmaxRow(i int) int {
	row := m.Row(i)
	best, bestV := 0, math.Inf(-1)
	for j, v := range row {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}
