// Float32 kernels: the reduced-precision half of the inference fast
// path. Matrix32 mirrors Matrix with float32 storage — half the memory
// traffic of float64, which is what the cache-blocked kernels are
// bounded by on wide shapes — and the same i-k-j accumulation contract,
// so the parallel variant is bit-identical to the serial one.
//
// Float32 results are NOT bit-identical to the float64 kernels; models
// that opt into the float32 inference path are gated by the quantization
// tolerance harness (see internal/nn and internal/registry).

package tensor

import "fmt"

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed r x c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Matrix32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// ToFloat32 converts a float64 matrix to a fresh Matrix32 (round to
// nearest).
func (m *Matrix) ToFloat32() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// ToFloat64 widens to a fresh float64 Matrix (exact).
func (m *Matrix32) ToFloat64() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

func checkMatMul32Shapes(dst, a, b *Matrix32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul32 shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// MatMul32Into computes dst = a * b over float32; dst must be pre-sized
// a.Rows x b.Cols. Same blocking and per-element accumulation order as
// the float64 kernel (ascending k, left-associated), so row sharding
// cannot change any bit.
func MatMul32Into(dst, a, b *Matrix32) {
	checkMatMul32Shapes(dst, a, b)
	matMul32Rows(dst, a, b, 0, a.Rows)
}

// matMul32Rows computes rows [r0, r1) of dst = a * b, zeroing exactly
// the rows it owns; the float32 twin of matMulRows.
func matMul32Rows(dst, a, b *Matrix32, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k0 := 0; k0 < a.Cols; k0 += mmBlockK {
			k1 := min(k0+mmBlockK, a.Cols)
			for j0 := 0; j0 < n; j0 += mmBlockJ {
				j1 := min(j0+mmBlockJ, n)
				dseg := drow[j0:j1]
				w := len(dseg)
				k := k0
				for ; k+4 <= k1; k += 4 {
					av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					b0 := b.Data[k*n+j0 : k*n+j1][:w]
					b1 := b.Data[(k+1)*n+j0 : (k+1)*n+j1][:w]
					b2 := b.Data[(k+2)*n+j0 : (k+2)*n+j1][:w]
					b3 := b.Data[(k+3)*n+j0 : (k+3)*n+j1][:w]
					for j := range dseg {
						s := dseg[j]
						s += av0 * b0[j]
						s += av1 * b1[j]
						s += av2 * b2[j]
						s += av3 * b3[j]
						dseg[j] = s
					}
				}
				for ; k < k1; k++ {
					av := arow[k]
					bseg := b.Data[k*n+j0 : k*n+j1][:w]
					for j, bv := range bseg {
						dseg[j] += av * bv
					}
				}
			}
		}
	}
}
