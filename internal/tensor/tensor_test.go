package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 3, make([]float64, 5)); err == nil {
		t.Fatal("bad length accepted")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Fatal("mismatched matmul accepted")
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(5, 5)
	a.Randomize(rng, 1)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A*I != A")
		}
	}
}

func TestMatMulAssociativeWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(r, k)
		a.Randomize(rng, 1)
		b := NewMatrix(k, c)
		b.Randomize(rng, 1)
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		// (AB)^T == B^T A^T
		left := ab.Transpose()
		right, err := MatMul(b.Transpose(), a.Transpose())
		if err != nil {
			return false
		}
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(4, 7)
	m.Randomize(rng, 1)
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice is not identity")
		}
	}
}

func TestAddRowVectorAndScale(t *testing.T) {
	m, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err := m.AddRowVector([]float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddRowVector: got %v", m.Data)
		}
	}
	if err := m.AddRowVector([]float64{1}); err == nil {
		t.Fatal("bad vector length accepted")
	}
	m.Scale(2)
	if m.Data[0] != 22 {
		t.Fatalf("Scale: got %v", m.Data[0])
	}
}

func TestAxpy(t *testing.T) {
	x, _ := FromSlice(1, 3, []float64{1, 2, 3})
	y, _ := FromSlice(1, 3, []float64{10, 10, 10})
	if err := Axpy(2, x, y); err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("axpy got %v", y.Data)
		}
	}
	bad := NewMatrix(2, 2)
	if err := Axpy(1, x, bad); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("norm wrong")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	// Large-value row must not produce NaN (stability).
	for _, v := range m.Row(1) {
		if math.IsNaN(v) {
			t.Fatal("softmax NaN on large inputs")
		}
	}
}

func TestArgmaxRow(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{0.1, 0.9, 0.2, -5, -2, -9})
	if m.ArgmaxRow(0) != 1 || m.ArgmaxRow(1) != 1 {
		t.Fatal("argmax wrong")
	}
}

func TestMatMulIntoPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad MatMulInto shapes")
		}
	}()
	MatMulInto(NewMatrix(1, 1), NewMatrix(2, 3), NewMatrix(4, 5))
}
