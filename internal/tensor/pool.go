// Persistent worker pool for row-sharded kernels.
//
// The first parallel kernels spawned goroutines per call, and
// BENCH_inference.json showed the spawn + schedule cost eating the whole
// parallelism win (parallel matmul measured *slower* than serial). The
// pool below keeps a fixed set of workers alive for the process lifetime
// and hands them coarse contiguous shards over a channel, so the
// per-call cost is a few channel operations instead of goroutine
// creation.
//
// Two properties make the pool safe to call from anywhere, including
// from inside another pool task (nested parallelism: PredictBatch chunks
// calling the parallel matmul):
//
//  1. The calling goroutine participates: it executes its first shard
//     itself, then *helps* — while waiting for its own shards it drains
//     the shared queue, executing whatever tasks it finds (its own or
//     other calls'). Blocked waiters therefore always make progress, so
//     nesting cannot deadlock.
//  2. A full queue or a closed pool degrades to inline execution, so a
//     Run call can always finish with no workers at all. On a
//     single-core box (GOMAXPROCS=1 ⇒ zero dedicated workers) the
//     parallel entry points cost one branch over the serial kernel
//     instead of a goroutine storm.

package tensor

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// call tracks one Run invocation's outstanding shards.
type call struct {
	pending atomic.Int32
	done    chan struct{}
}

// poolTask is one contiguous shard of a Run call.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	call   *call
}

func (t poolTask) run() {
	t.fn(t.lo, t.hi)
	if t.call.pending.Add(-1) == 0 {
		close(t.call.done)
	}
}

// Pool executes index-range shards on persistent worker goroutines.
// Safe for concurrent use: any number of goroutines may Run work on one
// pool, and shards from different calls interleave freely because every
// shard owns a disjoint index range of its caller's data.
type Pool struct {
	// lifecycle guards tasks against send-on-closed: Run holds it shared
	// for the enqueue phase, Close holds it exclusively to close.
	lifecycle sync.RWMutex
	tasks     chan poolTask
	closed    atomic.Bool
	workers   int
	done      sync.WaitGroup
}

// NewPool starts a pool with the given number of dedicated worker
// goroutines. Zero workers is valid and means every Run executes
// entirely on the calling goroutine.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	p := &Pool{
		// Buffer a few shards per executor so an enqueueing caller
		// rarely blocks before it starts helping.
		tasks:   make(chan poolTask, 4*(workers+1)),
		workers: workers,
	}
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.done.Done()
			for t := range p.tasks {
				t.run()
			}
		}()
	}
	return p
}

// Workers returns the number of dedicated worker goroutines. The
// effective parallelism of a Run call is Workers()+1: the caller
// participates.
func (p *Pool) Workers() int { return p.workers }

// Run splits [0, n) into at most maxShards contiguous ranges and
// executes fn on each, returning when every shard has finished. fn must
// confine itself to state owned by its range. maxShards <= 0 means
// Workers()+1. Run never fails: on a closed pool (or one with no
// workers) it executes every shard inline.
func (p *Pool) Run(n, maxShards int, fn func(lo, hi int)) {
	p.run(nil, n, maxShards, fn)
}

// RunCtx is Run with cooperative cancellation observed at shard
// boundaries: once ctx is cancelled, shards that have not started are
// skipped and RunCtx returns ctx.Err(). Shards already running finish
// normally — fn is never interrupted mid-range, so the caller's output
// buffers are quiescent when RunCtx returns.
func (p *Pool) RunCtx(ctx context.Context, n, maxShards int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.run(ctx, n, maxShards, fn)
	return ctx.Err()
}

func (p *Pool) run(ctx context.Context, n, maxShards int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if maxShards <= 0 {
		maxShards = p.workers + 1
	}
	if maxShards > n {
		maxShards = n
	}
	body := fn
	if ctx != nil {
		body = func(lo, hi int) {
			if ctx.Err() != nil {
				return // cancelled: skip shards that have not started
			}
			fn(lo, hi)
		}
	}
	if maxShards <= 1 || p.workers == 0 || p.closed.Load() {
		body(0, n)
		return
	}
	chunk := (n + maxShards - 1) / maxShards
	cs := &call{done: make(chan struct{})}
	cs.pending.Store(int32((n + chunk - 1) / chunk))
	// The caller keeps the first shard for itself and offers the rest to
	// the workers; whatever does not fit the queue (or races a Close) is
	// kept for inline execution, so Run can never block on the send.
	p.lifecycle.RLock()
	closed := p.closed.Load()
	var inline []poolTask
	for lo := chunk; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		t := poolTask{fn: body, lo: lo, hi: hi, call: cs}
		if closed {
			inline = append(inline, t)
			continue
		}
		select {
		case p.tasks <- t:
		default:
			inline = append(inline, t)
		}
	}
	p.lifecycle.RUnlock()
	poolTask{fn: body, lo: 0, hi: min(chunk, n), call: cs}.run()
	for _, t := range inline {
		t.run()
	}
	// Help-first wait: while our shards are outstanding, execute tasks
	// from the shared queue (ours or other calls') instead of parking.
	// This keeps nested Run calls deadlock-free — a waiter is always
	// also an executor.
	queue := p.tasks
	for {
		select {
		case <-cs.done:
			return
		case t, ok := <-queue:
			if !ok {
				// Pool closed under us; our remaining shards are being
				// finished by exiting workers. Just wait.
				queue = nil
				continue
			}
			t.run()
		}
	}
}

// Close shuts the pool down gracefully: shards already enqueued are
// executed, workers then exit, and Close returns once they have. Run
// calls racing with or following Close still complete — they execute
// their shards inline — so shutdown never strands a caller.
func (p *Pool) Close() {
	p.lifecycle.Lock()
	already := p.closed.Swap(true)
	if !already {
		close(p.tasks)
	}
	p.lifecycle.Unlock()
	p.done.Wait()
}

// defaultPool is the process-wide pool behind ParallelMatMulInto and the
// nn batched-inference path, created on first use with GOMAXPROCS-1
// dedicated workers (the caller is the final executor).
var defaultPool atomic.Pointer[Pool]

// Default returns the process-wide kernel pool, creating it on first use.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := NewPool(runtime.GOMAXPROCS(0) - 1)
	if !defaultPool.CompareAndSwap(nil, p) {
		p.Close()
	}
	return defaultPool.Load()
}

// SetDefaultWorkers replaces the process-wide pool with one whose total
// parallelism (dedicated workers + the calling goroutine) is n; n <= 0
// restores the GOMAXPROCS default. The previous pool is drained and
// closed. Intended for process boot (-kernel-workers) and tests.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	old := defaultPool.Swap(NewPool(n - 1))
	if old != nil {
		old.Close()
	}
}
