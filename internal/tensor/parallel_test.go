package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// naiveMatMul is the reference i-j-k implementation the kernels are
// checked against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	m.Randomize(rng, 1)
	// Sprinkle exact zeros so the zero-skip path is exercised.
	for i := range m.Data {
		if rng.Intn(7) == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// TestMatMulIntoMatchesNaive: the cache-blocked kernel agrees with the
// naive triple loop within 1e-9 across randomized shapes, including
// shapes that straddle the tile boundaries.
func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {7, 1, 9}, {3, 64, 2},
		{5, 63, 65}, {2, 65, 513}, {9, 128, 512}, {33, 100, 700},
	}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(200), 1 + rng.Intn(600)})
	}
	for _, sh := range shapes {
		a := randMat(rng, sh[0], sh[1])
		b := randMat(rng, sh[1], sh[2])
		want := naiveMatMul(a, b)
		got := NewMatrix(sh[0], sh[2])
		// Pre-dirty dst: the kernel must zero what it owns.
		got.Randomize(rng, 5)
		MatMulInto(got, a, b)
		for i := range want.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-9 {
				t.Fatalf("shape %v: element %d differs by %g", sh, i, d)
			}
		}
	}
}

// TestParallelMatMulEquivalence: the parallel kernel is bit-identical to
// the serial one for every worker count, across randomized shapes.
func TestParallelMatMulEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	workerCounts := []int{1, 2, 3, runtime.NumCPU(), runtime.NumCPU() + 3, 64}
	for trial := 0; trial < 25; trial++ {
		r := 1 + rng.Intn(70)
		k := 1 + rng.Intn(150)
		c := 1 + rng.Intn(300)
		a := randMat(rng, r, k)
		b := randMat(rng, k, c)
		want := NewMatrix(r, c)
		MatMulInto(want, a, b)
		for _, w := range workerCounts {
			got := NewMatrix(r, c)
			got.Randomize(rng, 3)
			ParallelMatMulIntoWorkers(got, a, b, w)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("trial %d shape %dx%dx%d workers=%d: element %d = %v, want %v (must be bit-identical)",
						trial, r, k, c, w, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestParallelMatMulDefaultEntry covers the NumCPU entry point and the
// zero-row edge.
func TestParallelMatMulDefaultEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 48, 96)
	b := randMat(rng, 96, 80)
	want := NewMatrix(48, 80)
	MatMulInto(want, a, b)
	got := NewMatrix(48, 80)
	ParallelMatMulInto(got, a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	empty := NewMatrix(0, 80)
	ParallelMatMulInto(empty, NewMatrix(0, 96), b) // must not panic
}

// TestParallelMatMulShapePanic: shape mismatches panic exactly like the
// serial kernel.
func TestParallelMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes did not panic")
		}
	}()
	ParallelMatMulInto(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

// TestParallelMatMulConcurrentUse: many goroutines running parallel
// matmuls over shared (read-only) operands into private outputs; run
// under -race this proves workers never touch rows they do not own.
func TestParallelMatMulConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 60, 120)
	b := randMat(rng, 120, 90)
	want := NewMatrix(60, 90)
	MatMulInto(want, a, b)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := NewMatrix(60, 90)
			ParallelMatMulIntoWorkers(dst, a, b, 1+g%5)
			for i := range want.Data {
				if dst.Data[i] != want.Data[i] {
					errs <- "goroutine result diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
