package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(128, 128)
	a.Randomize(rng, 1)
	c := NewMatrix(128, 128)
	c.Randomize(rng, 1)
	dst := NewMatrix(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(256, 2)
	m.Randomize(rng, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SoftmaxRows()
	}
}
