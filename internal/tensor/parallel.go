package tensor

import (
	"runtime"
	"sync"
)

// parallelMinWork is the multiply-add count below which ParallelMatMulInto
// runs sequentially: under ~64k flops the goroutine handoff costs more
// than the arithmetic it would hide.
const parallelMinWork = 1 << 16

// ParallelMatMulInto computes dst = a * b with rows sharded across up to
// runtime.NumCPU() workers. Results are bit-identical to MatMulInto for
// any worker count: each dst row is owned by exactly one worker and is
// accumulated in the same order as the serial kernel.
func ParallelMatMulInto(dst, a, b *Matrix) {
	ParallelMatMulIntoWorkers(dst, a, b, runtime.NumCPU())
}

// ParallelMatMulIntoWorkers is ParallelMatMulInto with an explicit worker
// bound, for tests and callers that manage their own parallelism budget.
// workers <= 1, tiny products (see parallelMinWork), and single-row
// outputs all fall back to the sequential kernel.
func ParallelMatMulIntoWorkers(dst, a, b *Matrix, workers int) {
	checkMatMulShapes(dst, a, b)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*b.Cols < parallelMinWork {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := 0; r0 < a.Rows; r0 += chunk {
		r1 := min(r0+chunk, a.Rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			matMulRows(dst, a, b, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
