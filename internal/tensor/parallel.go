package tensor

// parallelMinWork is the multiply-add count below which the parallel
// matmul entry points run sequentially: under ~64k flops the shard
// handoff costs more than the arithmetic it would hide.
const parallelMinWork = 1 << 16

// parallelMinRows is the smallest row-shard the parallel matmuls will
// hand to the pool. Coarser shards mean fewer channel operations per
// call; dst rows are uniform work, so load balance does not need finer
// grain than a handful of shards per executor.
const parallelMinRows = 8

// ParallelMatMulInto computes dst = a * b with rows sharded over the
// process-wide persistent worker pool (see Pool). Results are
// bit-identical to MatMulInto for any pool size: each dst row is owned
// by exactly one shard and is accumulated in the same order as the
// serial kernel.
func ParallelMatMulInto(dst, a, b *Matrix) {
	ParallelMatMulIntoWorkers(dst, a, b, 0)
}

// ParallelMatMulIntoWorkers is ParallelMatMulInto with an explicit bound
// on shard count, for tests and callers that manage their own
// parallelism budget. workers <= 0 means the pool's full width; tiny
// products (see parallelMinWork) and single-row outputs fall back to
// the sequential kernel.
func ParallelMatMulIntoWorkers(dst, a, b *Matrix, workers int) {
	checkMatMulShapes(dst, a, b)
	shards := matMulShards(a.Rows, a.Cols, b.Cols, workers)
	if shards <= 1 {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	Default().Run(a.Rows, shards, func(r0, r1 int) {
		matMulRows(dst, a, b, r0, r1)
	})
}

// ParallelMatMul32Into is the float32 twin of ParallelMatMulInto, with
// the same bit-identity guarantee against MatMul32Into.
func ParallelMatMul32Into(dst, a, b *Matrix32) {
	checkMatMul32Shapes(dst, a, b)
	shards := matMulShards(a.Rows, a.Cols, b.Cols, 0)
	if shards <= 1 {
		matMul32Rows(dst, a, b, 0, a.Rows)
		return
	}
	Default().Run(a.Rows, shards, func(r0, r1 int) {
		matMul32Rows(dst, a, b, r0, r1)
	})
}

// matMulShards sizes the shard count for an m x k x n product: bounded
// by the requested worker budget (0 = pool width), the row count at
// parallelMinRows grain, and dropped to 1 when the product is too small
// to amortize the handoff.
func matMulShards(m, k, n, workers int) int {
	if m*k*n < parallelMinWork {
		return 1
	}
	shards := workers
	if shards <= 0 {
		shards = Default().Workers() + 1
	}
	if byRows := m / parallelMinRows; shards > byRows {
		shards = byRows
	}
	if shards > m {
		shards = m
	}
	return shards
}
