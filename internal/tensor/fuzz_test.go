package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzQuantRoundTrip feeds arbitrary byte strings — reinterpreted as
// float64 rows, including NaN, ±Inf, subnormals, and signed zeros — to
// the int8 quantizer and checks its invariants: the scale is finite and
// non-negative, codes stay in [-127, 127], dequantization never emits
// NaN or Inf, and every finite element round-trips within half a
// quantization step.
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(1.0)))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1))))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.MaxFloat64)))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(5e-324)))
	mixed := binary.LittleEndian.AppendUint64(nil, math.Float64bits(-3.5))
	mixed = binary.LittleEndian.AppendUint64(mixed, math.Float64bits(math.Inf(-1)))
	mixed = binary.LittleEndian.AppendUint64(mixed, math.Float64bits(0.25))
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8
		if n > 4096 {
			n = 4096
		}
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		codes := make([]int8, n)
		scale := QuantizeRowInt8(codes, row)

		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			t.Fatalf("bad scale %v for row %v", scale, row)
		}
		for i, q := range codes {
			if q < -127 || q > 127 {
				t.Fatalf("element %d: code %d outside symmetric range", i, q)
			}
			back := scale * float64(q)
			if math.IsNaN(back) || math.IsInf(back, 0) {
				t.Fatalf("element %d: %v dequantizes to %v (scale %v)", i, row[i], back, scale)
			}
			v := row[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // coded as 0 / excluded from the scale; no bound applies
			}
			// scale==0 means the row had no finite nonzero values.
			if scale == 0 {
				if q != 0 {
					t.Fatalf("element %d: nonzero code %d with zero scale", i, q)
				}
				continue
			}
			if err := math.Abs(back - v); err > scale/2+1e-12*scale {
				t.Fatalf("element %d: %v -> %v, error %v exceeds scale/2 = %v", i, v, back, err, scale/2)
			}
		}
	})
}
