// Property-based kernel equivalence tests: every matmul variant —
// blocked/unrolled serial, pool-sharded parallel, float32, and int8 —
// against a naive reference, over randomized and adversarial shapes.
// The float kernels must match the reference BIT FOR BIT (the blocked
// and unrolled loops preserve the plain i-k-j accumulation order per
// element); the int8 kernels must match an int64 reference exactly and
// honor the analytic dequantization error bound.

package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// specMatMul is the specification kernel: plain i-k-j, ascending k, one
// add at a time. Everything else must reproduce it exactly.
func specMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func specMatMul32(a, b *Matrix32) *Matrix32 {
	out := NewMatrix32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0 // exercise the zero paths
		case 1:
			m.Data[i] = -0.0
		case 2:
			m.Data[i] = rng.NormFloat64() * 1e6 // magnitude spread
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// propertyShapes mixes random shapes with adversarial ones: empty and
// single-element matrices, shapes straddling the blocking tiles
// (mmBlockK=64, mmBlockJ=512), unroll remainders (k % 4 != 0), and rows
// around the parallel shard grain.
func propertyShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{0, 0, 0}, {0, 3, 2}, {1, 0, 4}, {3, 2, 0},
		{1, 1, 1}, {1, 4, 1}, {2, 3, 5},
		{3, 63, 7}, {3, 64, 7}, {3, 65, 7}, {5, 66, 9},
		{2, 128, 513}, {2, 4, 512}, {2, 5, 515},
		{7, 13, 1}, {8, 100, 100}, {9, 100, 100}, {33, 70, 31},
	}
	for i := 0; i < 8; i++ {
		shapes = append(shapes, [3]int{rng.Intn(40), rng.Intn(150), rng.Intn(80)})
	}
	return shapes
}

func TestMatMulVariantsBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range propertyShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := randomMatrix(rng, m, k)
			b := randomMatrix(rng, k, n)
			want := specMatMul(a, b)

			got := NewMatrix(m, n)
			MatMulInto(got, a, b)
			assertBitsEqual(t, "MatMulInto", want.Data, got.Data)

			for _, workers := range []int{1, 2, 3, 8} {
				got.Zero()
				// Poison dst: the kernel must fully overwrite its rows.
				for i := range got.Data {
					got.Data[i] = math.NaN()
				}
				ParallelMatMulIntoWorkers(got, a, b, workers)
				assertBitsEqual(t, fmt.Sprintf("ParallelMatMulIntoWorkers(%d)", workers), want.Data, got.Data)
			}
		})
	}
}

func TestMatMul32VariantsBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range propertyShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := randomMatrix(rng, m, k).ToFloat32()
			b := randomMatrix(rng, k, n).ToFloat32()
			want := specMatMul32(a, b)

			got := NewMatrix32(m, n)
			MatMul32Into(got, a, b)
			assertBits32Equal(t, "MatMul32Into", want.Data, got.Data)

			for i := range got.Data {
				got.Data[i] = float32(math.NaN())
			}
			ParallelMatMul32Into(got, a, b)
			assertBits32Equal(t, "ParallelMatMul32Into", want.Data, got.Data)
		})
	}
}

func assertBitsEqual(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func assertBits32Equal(t *testing.T, name string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestInt8DotMatchesInt64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000} {
		a := make([]int8, n)
		b := make([]int8, n)
		var want int64
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
			want += int64(a[i]) * int64(b[i])
		}
		if got := int64(Int8Dot(a, b)); got != want {
			t.Fatalf("Int8Dot len %d = %d, want %d", n, got, want)
		}
	}
	// Worst case at the accumulator bound must not overflow.
	a := make([]int8, MaxInt8DotLen)
	b := make([]int8, MaxInt8DotLen)
	for i := range a {
		a[i], b[i] = -127, -127
	}
	want := int64(127) * 127 * MaxInt8DotLen
	if got := int64(Int8Dot(a, b)); got != want {
		t.Fatalf("Int8Dot worst case = %d, want %d", got, want)
	}
}

func TestInt8MatMulTransMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sh := range [][3]int{{0, 0, 0}, {1, 1, 1}, {3, 7, 2}, {8, 64, 5}, {5, 65, 9}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := QuantizeRowsInt8(randomMatrix(rng, m, k))
		bT := QuantizeRowsInt8(randomMatrix(rng, n, k))
		got := NewMatrix(m, n)
		Int8MatMulTransInto(got, a, bT)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var dot int64
				for x := 0; x < k; x++ {
					dot += int64(a.Row(i)[x]) * int64(bT.Row(j)[x])
				}
				want := a.Scale[i] * bT.Scale[j] * float64(dot)
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want) {
					t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		}
		codes := make([]int8, n)
		scale := QuantizeRowInt8(codes, row)
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			t.Fatalf("trial %d: bad scale %v", trial, scale)
		}
		// Symmetric rounding: each element within half a step, with a
		// hair of slack for the scale division itself.
		bound := scale/2 + 1e-12*scale
		for i, q := range codes {
			back := scale * float64(q)
			if math.Abs(back-row[i]) > bound {
				t.Fatalf("trial %d: element %d: %v -> %v (err %v > bound %v)",
					trial, i, row[i], back, math.Abs(back-row[i]), bound)
			}
		}
	}
}

func TestQuantizeHandlesDegenerateRows(t *testing.T) {
	check := func(name string, row []float64) {
		t.Helper()
		codes := make([]int8, len(row))
		scale := QuantizeRowInt8(codes, row)
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			t.Fatalf("%s: non-finite scale %v", name, scale)
		}
		for i, q := range codes {
			back := scale * float64(q)
			if math.IsNaN(back) || math.IsInf(back, 0) {
				t.Fatalf("%s: element %d dequantizes to %v", name, i, back)
			}
		}
	}
	check("empty", nil)
	check("all-zero", []float64{0, 0, 0})
	check("signed-zero", []float64{0, math.Copysign(0, -1)})
	check("nan", []float64{math.NaN(), 1, -1})
	check("inf", []float64{math.Inf(1), 2, -3})
	check("neg-inf", []float64{math.Inf(-1)})
	check("all-nonfinite", []float64{math.Inf(1), math.NaN()})
	check("tiny", []float64{5e-324, -5e-324})
	check("huge", []float64{math.MaxFloat64, -math.MaxFloat64 / 2})
}
