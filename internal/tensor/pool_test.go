// Pool concurrency tests. Run with -race: the properties under test are
// exactly the ones the race detector sees — concurrent Run callers on a
// shared pool, Close racing in-flight work, nested Run from inside a
// pool task, and cancellation leaving output buffers quiescent.

package tensor

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runCovers asserts one Run call visits every index exactly once.
func runCovers(t *testing.T, p *Pool, n, maxShards int) {
	t.Helper()
	hits := make([]int32, n)
	p.Run(n, maxShards, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestPoolRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, shards := range []int{-1, 0, 1, 2, 16, 2000} {
				runCovers(t, p, n, shards)
			}
		}
		p.Close()
	}
}

func TestPoolConcurrentCallers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each caller owns its own hits slice; shards from different
			// calls interleave on the shared workers.
			for iter := 0; iter < 50; iter++ {
				hits := make([]int32, 100)
				p.Run(len(hits), 8, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i]++
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Errorf("caller saw index %d visited %d times", i, h)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolNestedRun exercises Run called from inside a pool task — the
// batched-inference shape (PredictBatch chunks calling the parallel
// matmul). The help-first wait must keep this deadlock-free even when
// every worker is itself blocked in a nested wait.
func TestPoolNestedRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		p.Run(8, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p.Run(32, 4, func(nlo, nhi int) {
					total.Add(int64(nhi - nlo))
				})
			}
		})
		if got := total.Load(); got != 8*32 {
			t.Errorf("nested runs covered %d indices, want %d", got, 8*32)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
}

func TestPoolCloseDuringInFlightRun(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	var visited atomic.Int64
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		p.Run(64, 64, func(lo, hi int) {
			started <- struct{}{}
			<-release
			visited.Add(int64(hi - lo))
		})
	}()
	<-started // at least one shard is running
	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		p.Close()
	}()
	close(release)
	<-runDone
	select {
	case <-closeDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	if got := visited.Load(); got != 64 {
		t.Fatalf("visited %d indices, want 64", got)
	}
	// A Run after Close still completes (inline).
	runCovers(t, p, 10, 4)
}

func TestPoolRunCtxCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	// Pre-cancelled: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.RunCtx(ctx, 10, 4, func(lo, hi int) { ran = true }); err == nil {
		t.Fatal("RunCtx on cancelled ctx returned nil error")
	}
	if ran {
		t.Fatal("RunCtx on cancelled ctx executed work")
	}

	// Cancel mid-run: RunCtx must return the error, and every shard
	// must have either fully run or not started — no partial shards
	// after return (the write counter must be stable).
	ctx2, cancel2 := context.WithCancel(context.Background())
	var writes atomic.Int64
	first := make(chan struct{}, 16)
	err := p.RunCtx(ctx2, 16, 16, func(lo, hi int) {
		select {
		case first <- struct{}{}:
		default:
		}
		cancel2()
		for i := lo; i < hi; i++ {
			writes.Add(1)
		}
	})
	if err == nil {
		// The caller participates and may finish all shards before
		// observing cancellation; either outcome is legal, but the
		// counter must be quiescent now.
	}
	got := writes.Load()
	time.Sleep(50 * time.Millisecond)
	if now := writes.Load(); now != got {
		t.Fatalf("writes advanced after RunCtx returned: %d -> %d", got, now)
	}
	cancel2()
}

func TestSetDefaultWorkers(t *testing.T) {
	old := Default()
	SetDefaultWorkers(4)
	defer SetDefaultWorkers(0)
	p := Default()
	if p == old {
		t.Fatal("SetDefaultWorkers did not swap the pool")
	}
	if got := p.Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3 (n-1 dedicated + caller)", got)
	}
	runCovers(t, p, 100, 8)
}
