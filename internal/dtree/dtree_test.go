package dtree

import (
	"math"
	"math/rand"
	"testing"
)

func axisData(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 10, rng.Float64()}
		if x[i][0] > 5 {
			y[i] = 1
		}
	}
	return x, y
}

func TestTreeAxisSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := axisData(rng, 300)
	tree, err := TrainTree(x, y, nil, TreeConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if tree.Predict(x[i]) != (y[i] == 1) {
			t.Fatalf("sample %d misclassified", i)
		}
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth = %d exceeds cap", tree.Depth())
	}
}

func TestTreeXor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x = append(x, []float64{float64(a) + rng.NormFloat64()*0.05, float64(b) + rng.NormFloat64()*0.05})
		y = append(y, a^b)
	}
	tree, err := TrainTree(x, y, nil, TreeConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if tree.Predict(x[i]) == (y[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(x)); frac < 0.98 {
		t.Fatalf("XOR accuracy = %v", frac)
	}
}

func TestTreeDepthZeroStopsAtRoot(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 1, 1}
	tree, err := TrainTree(x, y, nil, TreeConfig{MaxDepth: 8, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	// MinLeaf 4 forbids any split of 4 samples: root leaf with prob 0.5.
	if tree.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", tree.NumNodes())
	}
	if p := tree.Prob([]float64{0}); p != 0.5 {
		t.Fatalf("root prob = %v", p)
	}
}

func TestTreeWeightsShiftLeafProbs(t *testing.T) {
	// Same point set; heavy positive weights raise the leaf probability.
	x := [][]float64{{1}, {1}, {1}, {1}}
	y := []int{1, 0, 0, 0}
	w := []float64{9, 1, 1, 1}
	tree, err := TrainTree(x, y, w, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p := tree.Prob([]float64{1}); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("weighted prob = %v, want 0.75", p)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := TrainTree(nil, nil, nil, TreeConfig{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := TrainTree([][]float64{{1}}, []int{2}, nil, TreeConfig{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := TrainTree([][]float64{{1}, {2, 3}}, []int{0, 1}, nil, TreeConfig{}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := TrainTree([][]float64{{1}}, []int{1}, []float64{1, 2}, TreeConfig{}); err == nil {
		t.Fatal("bad weight length accepted")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func(n int) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = make([]float64, 10)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
			// True signal in features 0-2, rest noise; 10% label noise.
			if x[i][0]+x[i][1]-x[i][2] > 0 {
				y[i] = 1
			}
			if rng.Float64() < 0.1 {
				y[i] = 1 - y[i]
			}
		}
		return x, y
	}
	xTr, yTr := gen(500)
	xTe, yTe := gen(500)
	acc := func(p func([]float64) bool) float64 {
		c := 0
		for i := range xTe {
			if p(xTe[i]) == (yTe[i] == 1) {
				c++
			}
		}
		return float64(c) / float64(len(xTe))
	}
	tree, err := TrainTree(xTr, yTr, nil, TreeConfig{MaxDepth: 12, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(xTr, yTr, ForestConfig{Trees: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	at, af := acc(tree.Predict), acc(forest.Predict)
	if af < at-0.02 {
		t.Fatalf("forest (%.3f) clearly worse than single deep tree (%.3f)", af, at)
	}
	if af < 0.75 {
		t.Fatalf("forest accuracy = %v", af)
	}
}

func TestForestClassBalanceRaisesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		v := rng.NormFloat64()
		lab := 0
		if i%12 == 0 { // minority positive at +1 shift
			v += 1.5
			lab = 1
		}
		x = append(x, []float64{v, rng.NormFloat64()})
		y = append(y, lab)
	}
	recall := func(f *Forest) float64 {
		tp, pos := 0, 0
		for i := range x {
			if y[i] == 1 {
				pos++
				if f.Predict(x[i]) {
					tp++
				}
			}
		}
		return float64(tp) / float64(pos)
	}
	plain, err := TrainForest(x, y, ForestConfig{Trees: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := TrainForest(x, y, ForestConfig{Trees: 30, Seed: 6, ClassBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if recall(balanced) < recall(plain) {
		t.Fatalf("balanced recall %v below plain %v", recall(balanced), recall(plain))
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := TrainForest(nil, nil, ForestConfig{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := TrainForest([][]float64{{1}, {2}}, []int{1, 1}, ForestConfig{}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := TrainForest([][]float64{{1}, {2}}, []int{1, 7}, ForestConfig{}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestForestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := axisData(rng, 200)
	a, err := TrainForest(x, y, ForestConfig{Trees: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainForest(x, y, ForestConfig{Trees: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{4.9, 0.5}
	if a.Prob(probe) != b.Prob(probe) {
		t.Fatal("forest not deterministic")
	}
	if a.Size() != 10 {
		t.Fatalf("size = %d", a.Size())
	}
}

func TestForestProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := axisData(rng, 150)
	f, err := TrainForest(x, y, ForestConfig{Trees: 15, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		p := f.Prob(x[i])
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob %v out of range", p)
		}
	}
}
