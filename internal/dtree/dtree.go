// Package dtree implements CART-style binary decision trees and bagged
// random forests, rounding out the shallow-learning detector family
// (decision trees were among the earliest data-driven hotspot filters).
package dtree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TreeConfig parameterizes a single tree.
type TreeConfig struct {
	// MaxDepth bounds the tree height (default 8).
	MaxDepth int
	// MinLeaf is the minimum samples in a leaf (default 2).
	MinLeaf int
	// MaxFeatures limits the features examined per split; 0 means all,
	// -1 means sqrt(dim) (the forest default).
	MaxFeatures int
	// Seed drives the per-split feature subsampling.
	Seed int64
}

func (c *TreeConfig) normalize(dim int) {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MaxFeatures < 0 {
		c.MaxFeatures = int(math.Sqrt(float64(dim)))
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	if c.MaxFeatures == 0 || c.MaxFeatures > dim {
		c.MaxFeatures = dim
	}
}

// node is one tree node; leaves carry the positive-class probability.
type node struct {
	feature   int
	threshold float64
	left      int32
	right     int32
	prob      float64
	leaf      bool
}

// Tree is a trained decision tree.
type Tree struct {
	nodes []node
	dim   int
}

// TrainTree fits one tree on X with binary labels y and optional sample
// weights (nil means uniform).
func TrainTree(x [][]float64, y []int, w []float64, cfg TreeConfig) (*Tree, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("dtree: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("dtree: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
		if y[i] != 0 && y[i] != 1 {
			return nil, fmt.Errorf("dtree: label %d at sample %d", y[i], i)
		}
	}
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	} else if len(w) != n {
		return nil, fmt.Errorf("dtree: %d weights for %d samples", len(w), n)
	}
	cfg.normalize(dim)
	t := &Tree{dim: dim}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.build(x, y, w, idx, 0, cfg, rng)
	return t, nil
}

// build grows the subtree over idx and returns its node index.
func (t *Tree) build(x [][]float64, y []int, w []float64, idx []int, depth int, cfg TreeConfig, rng *rand.Rand) int32 {
	var wPos, wTot float64
	for _, i := range idx {
		wTot += w[i]
		if y[i] == 1 {
			wPos += w[i]
		}
	}
	prob := 0.0
	if wTot > 0 {
		prob = wPos / wTot
	}
	me := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{leaf: true, prob: prob})
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || prob == 0 || prob == 1 {
		return me
	}
	feat, thr, ok := bestSplit(x, y, w, idx, cfg, rng)
	if !ok {
		return me
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return me
	}
	l := t.build(x, y, w, left, depth+1, cfg, rng)
	r := t.build(x, y, w, right, depth+1, cfg, rng)
	t.nodes[me] = node{feature: feat, threshold: thr, left: l, right: r}
	return me
}

// bestSplit finds the weighted-gini-optimal (feature, threshold) over a
// random feature subset.
func bestSplit(x [][]float64, y []int, w []float64, idx []int, cfg TreeConfig, rng *rand.Rand) (int, float64, bool) {
	dim := len(x[idx[0]])
	feats := rng.Perm(dim)[:cfg.MaxFeatures]

	bestGini := math.Inf(1)
	bestFeat, bestThr := -1, 0.0
	ord := make([]int, len(idx))
	for _, f := range feats {
		copy(ord, idx)
		sort.Slice(ord, func(a, b int) bool { return x[ord[a]][f] < x[ord[b]][f] })
		var totPos, tot float64
		for _, i := range ord {
			tot += w[i]
			if y[i] == 1 {
				totPos += w[i]
			}
		}
		var leftPos, left float64
		for k := 0; k+1 < len(ord); k++ {
			i := ord[k]
			left += w[i]
			if y[i] == 1 {
				leftPos += w[i]
			}
			if x[ord[k+1]][f] == x[i][f] {
				continue
			}
			right := tot - left
			rightPos := totPos - leftPos
			g := left*gini(leftPos/left) + right*gini(rightPos/right)
			if g < bestGini {
				bestGini = g
				bestFeat = f
				bestThr = (x[i][f] + x[ord[k+1]][f]) / 2
			}
		}
	}
	return bestFeat, bestThr, bestFeat >= 0
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

// Prob returns the positive-class probability for x.
func (t *Tree) Prob(x []float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.leaf {
			return n.prob
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Predict returns the thresholded class of x.
func (t *Tree) Predict(x []float64) bool { return t.Prob(x) > 0.5 }

// Depth returns the tree height.
func (t *Tree) Depth() int { return t.depth(0) }

func (t *Tree) depth(i int32) int {
	n := t.nodes[i]
	if n.leaf {
		return 0
	}
	l, r := t.depth(n.left), t.depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// ForestConfig parameterizes a random forest.
type ForestConfig struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// Tree is the per-tree configuration; MaxFeatures defaults to
	// sqrt(dim) as usual for forests.
	Tree TreeConfig
	// Seed drives bootstrap sampling.
	Seed int64
	// ClassBalance oversamples the minority class in each bootstrap.
	ClassBalance bool
}

// Forest is a bagged ensemble of trees.
type Forest struct {
	trees []*Tree
}

// TrainForest fits a random forest on X with binary labels y.
func TrainForest(x [][]float64, y []int, cfg ForestConfig) (*Forest, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("dtree: bad training set: %d samples, %d labels", n, len(y))
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if cfg.Tree.MaxFeatures == 0 {
		cfg.Tree.MaxFeatures = -1 // sqrt(dim)
	}
	var pos, neg []int
	for i, v := range y {
		switch v {
		case 1:
			pos = append(pos, i)
		case 0:
			neg = append(neg, i)
		default:
			return nil, fmt.Errorf("dtree: label %d at sample %d", v, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("dtree: training set needs both classes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	f := &Forest{trees: make([]*Tree, 0, cfg.Trees)}
	for k := 0; k < cfg.Trees; k++ {
		var sample []int
		if cfg.ClassBalance {
			// Balanced bootstrap: n/2 draws from each class.
			for i := 0; i < n/2; i++ {
				sample = append(sample, pos[rng.Intn(len(pos))])
			}
			for i := 0; i < n-n/2; i++ {
				sample = append(sample, neg[rng.Intn(len(neg))])
			}
		} else {
			for i := 0; i < n; i++ {
				sample = append(sample, rng.Intn(n))
			}
		}
		xs := make([][]float64, len(sample))
		ys := make([]int, len(sample))
		for i, s := range sample {
			xs[i] = x[s]
			ys[i] = y[s]
		}
		tc := cfg.Tree
		tc.Seed = rng.Int63()
		tree, err := TrainTree(xs, ys, nil, tc)
		if err != nil {
			return nil, fmt.Errorf("dtree: tree %d: %w", k, err)
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Prob returns the mean positive-class probability across trees.
func (f *Forest) Prob(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Prob(x)
	}
	return s / float64(len(f.trees))
}

// Predict returns the majority decision.
func (f *Forest) Predict(x []float64) bool { return f.Prob(x) > 0.5 }

// Size returns the number of trees.
func (f *Forest) Size() int { return len(f.trees) }
