package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUnarmedSiteIsNil(t *testing.T) {
	Reset()
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("unarmed hit = %v", err)
	}
	if Fired("nowhere") != 0 {
		t.Fatal("unarmed site recorded a firing")
	}
}

func TestErrorInjectionAndCount(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("injected")
	Set("x", Fault{Err: boom, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("x"); !errors.Is(err, boom) {
			t.Fatalf("hit %d = %v, want injected error", i, err)
		}
	}
	// Count exhausted: site auto-disarms.
	if err := Hit("x"); err != nil {
		t.Fatalf("post-count hit = %v, want nil", err)
	}
	if got := Fired("x"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestUnlimitedCountAndClear(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("injected")
	Set("y", Fault{Err: boom}) // Count 0: unlimited
	for i := 0; i < 5; i++ {
		if err := Hit("y"); !errors.Is(err, boom) {
			t.Fatalf("hit %d = %v", i, err)
		}
	}
	Clear("y")
	if err := Hit("y"); err != nil {
		t.Fatalf("cleared hit = %v", err)
	}
	if got := Fired("y"); got != 5 { // fired counts survive Clear
		t.Fatalf("Fired after Clear = %d, want 5", got)
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Set("p", Fault{Panic: "chaos", Count: 1})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic injected")
		}
	}()
	_ = Hit("p")
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	Set("slow", Fault{Latency: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency fault slept %v, want >= 20ms", elapsed)
	}
}

// TestConcurrentHits exercises the counted-disarm path under the race
// detector: exactly Count of the N concurrent hits observe the fault.
func TestConcurrentHits(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("injected")
	Set("c", Fault{Err: boom, Count: 50})
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := Hit("c"); err != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 50 {
		t.Fatalf("injected %d of 200 hits, want exactly 50", injected)
	}
	if Fired("c") != 50 { // hits after auto-disarm don't fire
		t.Fatalf("Fired = %d, want 50", Fired("c"))
	}
}
