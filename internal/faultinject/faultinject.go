// Package faultinject provides deterministic, test-controllable fault
// hooks for chaos testing the serving stack. Production code places a
// named site in its hot path:
//
//	if err := faultinject.Hit("serve.primary"); err != nil { ... }
//
// and tests arm the site with latency, an error, or a panic:
//
//	faultinject.Set("serve.primary", faultinject.Fault{Panic: "chaos"})
//
// When no site is armed, Hit is a single atomic load — safe to leave in
// production binaries. Faults are keyed by site name and fire a
// configurable number of times, so failure scripts are deterministic:
// "the primary detector panics on the next 5 requests" is expressible
// and repeatable.
//
// The package is process-global because injection sites live in code
// that has no test-only configuration path; tests that arm faults must
// not run in parallel with other fault-arming tests and should defer
// Reset.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed site does when hit. Latency applies
// first, then Panic (which wins over Err), then Err.
type Fault struct {
	// Latency is slept before the site acts.
	Latency time.Duration
	// Err is returned from Hit.
	Err error
	// Panic, when non-empty, panics with this message. Takes precedence
	// over Err.
	Panic string
	// Count is how many hits fire before the site disarms itself;
	// 0 means unlimited.
	Count int
	// Skip lets this many hits pass unharmed before the fault starts
	// firing, so scripts like "crash on the 5th training epoch" are
	// expressible. Skipped hits do not count as fired.
	Skip int
}

type site struct {
	fault     Fault
	remaining int // hits left when fault.Count > 0
	skip      int // hits to pass through before firing
}

var (
	anyArmed atomic.Bool // fast-path check: false means no armed sites
	mu       sync.Mutex
	sites    = map[string]*site{}
	fired    = map[string]int{}
)

// Set arms (or re-arms) a site.
func Set(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = &site{fault: f, remaining: f.Count, skip: f.Skip}
	anyArmed.Store(true)
}

// Clear disarms a site. Fired counts survive until Reset.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, name)
	anyArmed.Store(len(sites) > 0)
}

// Reset disarms every site and zeroes fired counts.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]*site{}
	fired = map[string]int{}
	anyArmed.Store(false)
}

// Fired returns how many times the named site has fired since the last
// Reset (including hits on a since-disarmed site).
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[name]
}

// Hit fires the named site if armed: it sleeps the configured latency,
// then panics or returns the configured error. Unarmed sites return nil
// at the cost of one atomic load.
func Hit(name string) error {
	if !anyArmed.Load() {
		return nil
	}
	mu.Lock()
	st, ok := sites[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	if st.skip > 0 {
		st.skip--
		mu.Unlock()
		return nil
	}
	f := st.fault
	fired[name]++
	if f.Count > 0 {
		st.remaining--
		if st.remaining <= 0 {
			delete(sites, name)
			anyArmed.Store(len(sites) > 0)
		}
	}
	mu.Unlock()

	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", name, f.Panic))
	}
	return f.Err
}
