package router

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/golitho/hsd/internal/core"
)

// calibratedUniform builds a synthetic score distribution that is
// perfectly calibrated by construction: levels percent levels of
// probability p = (k+0.5)/levels, each with perLevel points of which
// exactly round(perLevel*p) are hotspots. For such a distribution the
// analytically optimal band at answered-error eps is Lo* ~ 2*eps and
// Hi* ~ 1-2*eps: the hotspot fraction of the prefix up to p is the mean
// of the levels below it, ~p/2.
func calibratedUniform(levels, perLevel int) (probs []float64, labels []int) {
	for k := 0; k < levels; k++ {
		p := (float64(k) + 0.5) / float64(levels)
		hot := int(math.Round(float64(perLevel) * p))
		for j := 0; j < perLevel; j++ {
			probs = append(probs, p)
			if j < hot {
				labels = append(labels, 1)
			} else {
				labels = append(labels, 0)
			}
		}
	}
	return probs, labels
}

// errFrac measures the answered-error rates the band promises: the
// hotspot fraction at or below lo, and the non-hotspot fraction at or
// above hi. Missing sides report 0.
func errFrac(probs []float64, labels []int, b Band) (loErr, hiErr float64) {
	loHot, loN, hiCold, hiN := 0, 0, 0, 0
	for i, p := range probs {
		if math.IsNaN(p) {
			continue
		}
		if p <= b.Lo {
			loN++
			if labels[i] == 1 {
				loHot++
			}
		}
		if p >= b.Hi {
			hiN++
			if labels[i] == 0 {
				hiCold++
			}
		}
	}
	if loN > 0 {
		loErr = float64(loHot) / float64(loN)
	}
	if hiN > 0 {
		hiErr = float64(hiCold) / float64(hiN)
	}
	return loErr, hiErr
}

func TestFitBandCalibratedUniformAnalytic(t *testing.T) {
	probs, labels := calibratedUniform(100, 50)
	for _, eps := range []float64{0.05, 0.10, 0.20} {
		b := FitBand(probs, labels, eps)
		wantLo, wantHi := 2*eps, 1-2*eps
		if math.Abs(b.Lo-wantLo) > 0.05 {
			t.Errorf("eps=%.2f: Lo = %.3f, analytic optimum %.3f", eps, b.Lo, wantLo)
		}
		if math.Abs(b.Hi-wantHi) > 0.05 {
			t.Errorf("eps=%.2f: Hi = %.3f, analytic optimum %.3f", eps, b.Hi, wantHi)
		}
		loErr, hiErr := errFrac(probs, labels, b)
		if loErr > eps || hiErr > eps {
			t.Errorf("eps=%.2f: band %+v violates error budget: loErr=%.3f hiErr=%.3f",
				eps, b, loErr, hiErr)
		}
	}
}

// TestFitBandMaximality: the fitted cuts are the widest that satisfy
// the budget — moving either cut one distinct probability level inward
// toward the middle of the band is allowed (still under budget by
// definition), but moving it one level outward must break the budget.
func TestFitBandMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 200 + rng.Intn(400)
		probs := make([]float64, n)
		labels := make([]int, n)
		for i := range probs {
			p := rng.Float64()
			probs[i] = p
			// Noisy-calibrated labels so neither side is trivially clean.
			if rng.Float64() < 0.8*p+0.1 {
				labels[i] = 1
			}
		}
		eps := 0.02 + rng.Float64()*0.2
		b := FitBand(probs, labels, eps)
		loErr, hiErr := errFrac(probs, labels, b)
		if loErr > eps || hiErr > eps {
			t.Fatalf("trial %d: band %+v violates budget eps=%.3f (lo=%.3f hi=%.3f)",
				trial, b, eps, loErr, hiErr)
		}
		// Maximality: the next distinct probability above Lo (below Hi)
		// must violate the budget when adopted as the cut.
		nextLo, prevHi := math.Inf(1), math.Inf(-1)
		for _, p := range probs {
			if p > b.Lo && p < nextLo {
				nextLo = p
			}
			if p < b.Hi && p > prevHi {
				prevHi = p
			}
		}
		if !math.IsInf(nextLo, 1) && nextLo < b.Hi {
			loErr, _ := errFrac(probs, labels, Band{Lo: nextLo, Hi: b.Hi})
			if loErr <= eps {
				t.Fatalf("trial %d: Lo=%.4f not maximal, %.4f also satisfies eps=%.3f",
					trial, b.Lo, nextLo, eps)
			}
		}
		if !math.IsInf(prevHi, -1) && prevHi > b.Lo {
			_, hiErr := errFrac(probs, labels, Band{Lo: b.Lo, Hi: prevHi})
			if hiErr <= eps {
				t.Fatalf("trial %d: Hi=%.4f not minimal, %.4f also satisfies eps=%.3f",
					trial, b.Hi, prevHi, eps)
			}
		}
	}
}

func TestFitBandDegenerate(t *testing.T) {
	esc := AlwaysEscalate
	cases := []struct {
		name   string
		probs  []float64
		labels []int
		eps    float64
		want   func(t *testing.T, b Band)
	}{
		{
			name: "empty",
			want: func(t *testing.T, b Band) {
				if b != esc {
					t.Fatalf("empty input: band %+v, want AlwaysEscalate", b)
				}
			},
		},
		{
			name:   "all NaN",
			probs:  []float64{math.NaN(), math.NaN(), math.NaN()},
			labels: []int{0, 1, 0},
			want: func(t *testing.T, b Band) {
				if b != esc {
					t.Fatalf("all-NaN probs: band %+v, want AlwaysEscalate", b)
				}
			},
		},
		{
			name:   "infinities filtered",
			probs:  []float64{math.Inf(1), math.Inf(-1), 0.2, 0.8},
			labels: []int{1, 0, 0, 1},
			eps:    0.1,
			want: func(t *testing.T, b Band) {
				if b.Lo != 0.2 || b.Hi != 0.8 {
					t.Fatalf("inf-filtered: band %+v, want {0.2 0.8}", b)
				}
			},
		},
		{
			name:   "all hotspot",
			probs:  []float64{0.1, 0.5, 0.9},
			labels: []int{1, 1, 1},
			eps:    0.1,
			want: func(t *testing.T, b Band) {
				// No clean cold prefix exists; every suffix is pure hotspot.
				if b.Lo != esc.Lo {
					t.Fatalf("all-hot: Lo = %v, want unreachable", b.Lo)
				}
				if b.Hi != 0.1 {
					t.Fatalf("all-hot: Hi = %v, want min prob 0.1", b.Hi)
				}
			},
		},
		{
			name:   "all cold",
			probs:  []float64{0.1, 0.5, 0.9},
			labels: []int{0, 0, 0},
			eps:    0.1,
			want: func(t *testing.T, b Band) {
				if b.Hi != esc.Hi {
					t.Fatalf("all-cold: Hi = %v, want unreachable", b.Hi)
				}
				if b.Lo != 0.9 {
					t.Fatalf("all-cold: Lo = %v, want max prob 0.9", b.Lo)
				}
			},
		},
		{
			name:   "single tied value too mixed",
			probs:  []float64{0.7, 0.7, 0.7, 0.7},
			labels: []int{1, 0, 1, 0},
			eps:    0.1,
			want: func(t *testing.T, b Band) {
				if b != esc {
					t.Fatalf("mixed tie: band %+v, want AlwaysEscalate", b)
				}
			},
		},
		{
			name: "ties share a fate",
			// Ten tied points at 0.5 with one hotspot among them: a cut
			// at 0.5 carries 10% error, legal at eps=0.15 but not at
			// eps=0.05 — and the sweep must never split the tie.
			probs:  []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
			labels: []int{1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
			eps:    0.05,
			want: func(t *testing.T, b Band) {
				if b.Lo != esc.Lo {
					t.Fatalf("tie split: Lo = %v accepted a 10%% error cut at eps=0.05", b.Lo)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.want(t, FitBand(tc.probs, tc.labels, tc.eps))
		})
	}
}

func TestCalibrationProbGuardsNaN(t *testing.T) {
	cal := Calibration{
		Weights: []float64{1, 1},
		Bias:    0.25,
		Mean:    []float64{0.5, 0.5},
		InvStd:  []float64{2, 2},
	}
	base := cal.prob([]float64{0.5, 1})
	// A NaN member score contributes exactly nothing — identical to the
	// score sitting at the mean.
	got := cal.prob([]float64{math.NaN(), 1})
	if got != base {
		t.Fatalf("NaN score prob = %v, want mean-equivalent %v", got, base)
	}
	if inf := cal.prob([]float64{math.Inf(1), 1}); inf != base {
		t.Fatalf("Inf score prob = %v, want mean-equivalent %v", inf, base)
	}
	if p := cal.prob([]float64{math.NaN(), math.NaN()}); p != 1/(1+math.Exp(-0.25)) {
		t.Fatalf("all-NaN prob = %v, want sigmoid(bias)", p)
	}
}

func TestMomentsOf(t *testing.T) {
	m, is := momentsOf([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5", m)
	}
	if sd := 1 / is; math.Abs(sd-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("sd = %v, want sqrt(1.25)", sd)
	}
	if m, is := momentsOf([]float64{7, 7, 7}); m != 7 || is != 1 {
		t.Fatalf("constant column: (%v, %v), want (7, 1)", m, is)
	}
	if m, is := momentsOf([]float64{math.NaN(), math.Inf(1)}); m != 0 || is != 1 {
		t.Fatalf("all-non-finite column: (%v, %v), want (0, 1)", m, is)
	}
	if m, is := momentsOf([]float64{math.NaN(), 3, 7}); m != 5 || is != 0.5 {
		t.Fatalf("NaN-skipping moments: (%v, %v), want (5, 0.5)", m, is)
	}
}

func TestStratifiedSplit(t *testing.T) {
	mk := func(nHot, nCold int) []core.LabeledClip {
		out := make([]core.LabeledClip, 0, nHot+nCold)
		for i := 0; i < nHot+nCold; i++ {
			out = append(out, core.LabeledClip{Hotspot: i%4 == 0 && nHot > 0 && i/4 < nHot})
		}
		// Rebuild exactly: simpler to lay out hot then cold.
		out = out[:0]
		for i := 0; i < nHot; i++ {
			out = append(out, core.LabeledClip{Hotspot: true})
		}
		for i := 0; i < nCold; i++ {
			out = append(out, core.LabeledClip{Hotspot: false})
		}
		return out
	}
	count := func(set []core.LabeledClip) (hot, cold int) {
		for _, s := range set {
			if s.Hotspot {
				hot++
			} else {
				cold++
			}
		}
		return hot, cold
	}

	train := mk(12, 40)
	fit, calib := stratifiedSplit(train, 0.25)
	fh, fc := count(fit)
	ch, cc := count(calib)
	if fh == 0 || fc == 0 || ch == 0 || cc == 0 {
		t.Fatalf("split lost a class: fit=(%d,%d) calib=(%d,%d)", fh, fc, ch, cc)
	}
	if fh+ch != 12 || fc+cc != 40 {
		t.Fatalf("split dropped samples: fit=(%d,%d) calib=(%d,%d)", fh, fc, ch, cc)
	}
	frac := float64(len(calib)) / float64(len(train))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("calib fraction %.2f, want ~0.25", frac)
	}

	// Deterministic: same input, same split.
	fit2, calib2 := stratifiedSplit(train, 0.25)
	if len(fit2) != len(fit) || len(calib2) != len(calib) {
		t.Fatal("stratifiedSplit is not deterministic")
	}

	// A singleton class lands on both sides rather than vanishing from
	// either.
	train = mk(1, 10)
	fit, calib = stratifiedSplit(train, 0.25)
	fh, _ = count(fit)
	ch, _ = count(calib)
	if fh != 1 || ch != 1 {
		t.Fatalf("singleton hotspot: fit hot=%d calib hot=%d, want 1 and 1", fh, ch)
	}

	// Degenerate fraction falls back to the default instead of panicking.
	fit, calib = stratifiedSplit(train, 0)
	if len(fit) == 0 || len(calib) == 0 {
		t.Fatalf("zero fraction: fit=%d calib=%d", len(fit), len(calib))
	}
}

func TestCalibrateProperties(t *testing.T) {
	// Two synthetic stages over 200 clips: stage 0 weakly separates,
	// stage 1 strongly separates.
	rng := rand.New(rand.NewSource(11))
	n := 200
	labels := make([]int, n)
	s0 := make([]float64, n)
	s1 := make([]float64, n)
	for i := 0; i < n; i++ {
		hot := rng.Float64() < 0.3
		if hot {
			labels[i] = 1
		}
		base := 0.0
		if hot {
			base = 1
		}
		s0[i] = base + rng.NormFloat64()*0.8
		s1[i] = base + rng.NormFloat64()*0.2
	}
	cals, err := calibrate([][]float64{s0, s1}, labels, Config{MaxStageError: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cals) != 2 {
		t.Fatalf("got %d calibrations, want 2", len(cals))
	}
	if len(cals[0].Weights) != 1 || len(cals[1].Weights) != 2 {
		t.Fatalf("stacker widths = (%d, %d), want (1, 2)",
			len(cals[0].Weights), len(cals[1].Weights))
	}
	// The final stage never answers by band; its band must be the
	// escalation sentinel.
	if cals[1].Band != AlwaysEscalate {
		t.Fatalf("final band = %+v, want AlwaysEscalate", cals[1].Band)
	}
	// Stage 0's band must honor the budget on its own calibration data.
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		probs[i] = cals[0].prob([]float64{s0[i]})
	}
	loErr, hiErr := errFrac(probs, labels, cals[0].Band)
	if loErr > 0.05 || hiErr > 0.05 {
		t.Fatalf("stage-0 band %+v violates eps=0.05: lo=%.3f hi=%.3f",
			cals[0].Band, loErr, hiErr)
	}
	// The strong stage separates the classes, so its stacker must rank
	// hotspots above non-hotspots on average.
	var hotMean, coldMean float64
	var nh, nc int
	for i := 0; i < n; i++ {
		p := cals[1].prob([]float64{s0[i], s1[i]})
		if labels[i] == 1 {
			hotMean += p
			nh++
		} else {
			coldMean += p
			nc++
		}
	}
	if hotMean/float64(nh) <= coldMean/float64(nc) {
		t.Fatalf("stacker ranks hotspots below non-hotspots: %.3f vs %.3f",
			hotMean/float64(nh), coldMean/float64(nc))
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := calibrate(nil, nil, Config{}); err == nil {
		t.Fatal("calibrate with no stages: want error")
	}
	// Single-class calibration cannot fit a stacker.
	_, err := calibrate([][]float64{{0.1, 0.2, 0.3}}, []int{1, 1, 1}, Config{})
	if err == nil || !strings.Contains(err.Error(), "stacker") {
		t.Fatalf("single-class calibrate: err = %v, want stacker error", err)
	}
}
