// Package router implements an EPIC-style meta-classifier over the
// detector zoo: a cascade of detectors ordered cheap→expensive, with a
// calibrated logistic stacker deciding after each stage whether the
// accumulated evidence is confident enough to answer or the clip must
// escalate. The pattern matcher and boost answer the easy majority in
// microseconds; the SVM/CNN tail only sees the uncertain band, so the
// cascade's ODST approaches the cheap detectors' while its accuracy
// approaches the deep one's.
//
// Routing equivalence contract (pinned by property tests):
//
//  1. A stage only answers when its calibrated confidence clears the
//     band AND its own thresholded verdict agrees, so the verdict the
//     router reports for any clip is bit-identical to the verdict of
//     the stage that answered it, for every band setting.
//  2. With every non-final band forced to AlwaysEscalate the router's
//     predictions reduce exactly to the final (deep) detector's — same
//     confusion matrix on any evaluation set.
//
// The router is a first-class core.Detector: it clones per scan worker
// (members that mutate caches clone with it), batch-scores stage-wise
// over the still-active subset, and its Score is a deterministic pure
// function of the clip — so scanfarm journals, the clip cache, and
// kill-resume scans behave exactly as they do for any other detector.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

var errNotFitted = errors.New("router: not fitted")

// Stage is one rung of the cascade: a named detector, cheapest first.
type Stage struct {
	Name     string
	Detector core.Detector
}

// Config parameterizes router fitting.
type Config struct {
	// CalibFraction of the training set is held out (deterministic
	// stratified split) to fit the stackers and bands (default 0.25).
	CalibFraction float64
	// MaxStageError is the answered-error budget per stage: each band
	// is the widest pair of cut points whose answered clips stay at or
	// below this empirical error rate on the calibration split
	// (default 0.02).
	MaxStageError float64
	// Seed drives the stacker training.
	Seed int64
	// Augment is applied to the member-fit split only, never the
	// calibration split — bands must be fitted on the real class
	// balance, not the upsampled one.
	Augment core.AugmentConfig
	// ForceBand, when non-nil, overrides every fitted non-final band —
	// the CLI threshold flags and the always-escalate equivalence mode.
	ForceBand *Band
}

func (c *Config) normalize() {
	if c.CalibFraction <= 0 || c.CalibFraction >= 1 {
		c.CalibFraction = 0.25
	}
	if c.MaxStageError <= 0 {
		c.MaxStageError = 0.02
	}
}

// Decision is the full routing outcome for one clip.
type Decision struct {
	// Stage is the index of the answering stage; StageName its name.
	Stage     int
	StageName string
	// Hotspot is the answering stage's own thresholded verdict.
	Hotspot bool
	// Confidence is the calibrated stacker probability at the
	// answering stage.
	Confidence float64
	// Score is the router score: Confidence clamped onto the Hotspot
	// side of the 0.5 threshold, so Score >= Threshold() == Hotspot.
	Score float64
}

// StageStats is a point-in-time snapshot of one stage's routing
// counters.
type StageStats struct {
	Name         string
	AnsweredHot  int64
	AnsweredCold int64
	Escalated    int64
	// Seconds is cumulative wall time spent scoring in this stage.
	Seconds float64
}

// Answered is the total clips this stage answered.
func (s StageStats) Answered() int64 { return s.AnsweredHot + s.AnsweredCold }

// stageCounters are the live atomic counters behind StageStats. They
// are shared across clones (one routing history per router, however
// many scan workers), and they never feed back into scores, so routed
// scans stay byte-deterministic.
type stageCounters struct {
	answeredHot  atomic.Int64
	answeredCold atomic.Int64
	escalated    atomic.Int64
	nanos        atomic.Int64
}

// routerStats is the state shared by every clone of one router: the
// live counters plus the telemetry binding. mets is an atomic pointer
// because hsdserve binds telemetry after serve.New has already cloned
// the detector — clones must observe a late BindMetrics, and binding
// can race with a clone that is mid-score.
type routerStats struct {
	stages []stageCounters
	mets   atomic.Pointer[[]stageMetrics]
	tap    atomic.Pointer[QualityTap]
	escTap atomic.Pointer[QualityTap]
}

// QualityTap observes one answered routing decision: the answering
// stage's name, the calibrated confidence, and the clip. Installed with
// BindQualityTap; used by quality monitoring to keep per-stage score
// sketches without the router importing the monitor.
type QualityTap func(stage string, p float64, clip layout.Clip)

// stageMetrics are the optional telemetry series per stage.
type stageMetrics struct {
	hot, cold, esc *telemetry.Counter
	sec            *telemetry.Histogram
}

// Router routes clips through the staged cascade. Fit before scoring.
// Score mutates member caches when members do, so the Router is a
// core.Cloner: scans and servers give each goroutine its own clone.
// ScoreBatch is concurrent-safe regardless (members that are cloners
// but not batch scorers are cloned per call).
type Router struct {
	name   string
	stages []Stage
	cfg    Config
	cals   []Calibration
	fitted bool
	stats  *routerStats
}

// New builds an unfitted router over stages (cheapest first; the final
// stage is the escalation anchor and always answers).
func New(name string, stages []Stage, cfg Config) *Router {
	cfg.normalize()
	if name == "" {
		name = "Router"
	}
	return &Router{
		name:   name,
		stages: stages,
		cfg:    cfg,
		stats:  &routerStats{stages: make([]stageCounters, len(stages))},
	}
}

var (
	_ core.Detector       = (*Router)(nil)
	_ core.Cloner         = (*Router)(nil)
	_ core.BatchScorer    = (*Router)(nil)
	_ core.CtxScorer      = (*Router)(nil)
	_ core.CtxBatchScorer = (*Router)(nil)
	_ core.CtxFitter      = (*Router)(nil)
)

// Name implements core.Detector.
func (r *Router) Name() string { return r.name }

// Threshold implements core.Detector: router scores are calibrated
// probabilities clamped to the verdict side of 0.5.
func (r *Router) Threshold() float64 { return 0.5 }

// Stages returns the cascade's stage list.
func (r *Router) Stages() []Stage { return r.stages }

// ForceBand overrides every non-final fitted band with b. Call before
// Fit (the CLI threshold flags route through here).
func (r *Router) ForceBand(b Band) { r.cfg.ForceBand = &b }

// SetMaxStageError overrides the per-stage answered-error budget used
// by the next Fit. Non-positive values are ignored.
func (r *Router) SetMaxStageError(eps float64) {
	if eps > 0 {
		r.cfg.MaxStageError = eps
	}
}

// Calibrations returns the fitted per-stage calibrations (nil before
// Fit).
func (r *Router) Calibrations() []Calibration { return r.cals }

// SetCalibrations installs externally built calibrations and marks the
// router fitted. The member detectors must already be fitted by the
// caller. Used by tests and by callers that persist calibration state.
func (r *Router) SetCalibrations(cals []Calibration) error {
	if len(cals) != len(r.stages) {
		return fmt.Errorf("router: %d calibrations for %d stages", len(cals), len(r.stages))
	}
	r.cals = cals
	r.fitted = true
	return nil
}

// Fit implements core.Detector.
func (r *Router) Fit(train []core.LabeledClip) error {
	return r.FitCtx(context.Background(), train)
}

// FitCtx implements core.CtxFitter: the member fits run through their
// own context-aware paths (checkpoint spans, cooperative interruption),
// then the calibration pass runs under a router.calibrate span.
func (r *Router) FitCtx(ctx context.Context, train []core.LabeledClip) error {
	if len(r.stages) == 0 {
		return errors.New("router: no stages")
	}
	if len(train) == 0 {
		return errors.New("router: empty training set")
	}
	fitSet, calibSet := stratifiedSplit(train, r.cfg.CalibFraction)
	if len(fitSet) == 0 {
		fitSet = train
	}
	if len(calibSet) == 0 {
		calibSet = train
	}
	fitSet = core.AugmentMinority(fitSet, r.cfg.Augment)
	for i, st := range r.stages {
		if err := core.FitClipsCtx(ctx, st.Detector, fitSet); err != nil {
			return fmt.Errorf("router: fit stage %d (%s): %w", i, st.Name, err)
		}
	}

	ctx, sp := trace.Start(ctx, "router.calibrate",
		trace.A("router", r.name))
	defer sp.End()
	sp.SetAttrInt("calib_clips", len(calibSet))

	clips := make([]layout.Clip, len(calibSet))
	labels := make([]int, len(calibSet))
	for i, s := range calibSet {
		clips[i] = s.Clip
		if s.Hotspot {
			labels[i] = 1
		}
	}
	scores := make([][]float64, len(r.stages))
	for i, st := range r.stages {
		s, err := core.ScoreClipsCtx(ctx, st.Detector, clips)
		if err != nil {
			sp.SetError(err)
			return fmt.Errorf("router: calibrate stage %d (%s): %w", i, st.Name, err)
		}
		scores[i] = s
	}
	cals, err := calibrate(scores, labels, r.cfg)
	if err != nil {
		sp.SetError(err)
		return err
	}
	if r.cfg.ForceBand != nil {
		for i := range cals[:len(cals)-1] {
			cals[i].Band = *r.cfg.ForceBand
		}
	}
	r.cals = cals
	r.fitted = true
	return nil
}

// decide applies the routing rule at one stage. The verdict is the
// stage detector's own raw thresholded call; the band only governs
// whether that verdict is confident enough to answer. Lo is checked
// before Hi so overlapping bands stay deterministic.
func decide(last bool, p float64, verdict bool, band Band) (hot, answered bool) {
	if last {
		return verdict, true
	}
	if p <= band.Lo && !verdict {
		return false, true
	}
	if p >= band.Hi && verdict {
		return true, true
	}
	return false, false
}

// encode clamps the calibrated confidence onto the verdict side of the
// 0.5 threshold, so core.Predict over the router reproduces the
// answering stage's raw verdict bit-for-bit. A non-finite confidence
// degrades to the boundary value for its verdict.
func encode(p float64, hot bool) float64 {
	if hot {
		if p >= 0.5 && !math.IsNaN(p) {
			return p
		}
		return 0.5
	}
	if p < 0.5 {
		return p
	}
	return math.Nextafter(0.5, 0)
}

// note records one routing outcome into the shared counters and the
// bound telemetry, attributing dt of scoring time to stage i.
func (r *Router) note(i int, hot, answered bool, dt time.Duration) {
	c := &r.stats.stages[i]
	c.nanos.Add(int64(dt))
	switch {
	case !answered:
		c.escalated.Add(1)
	case hot:
		c.answeredHot.Add(1)
	default:
		c.answeredCold.Add(1)
	}
	if mp := r.stats.mets.Load(); mp != nil && i < len(*mp) {
		m := (*mp)[i]
		switch {
		case !answered:
			m.esc.Inc()
		case hot:
			m.hot.Inc()
		default:
			m.cold.Inc()
		}
		if dt > 0 {
			m.sec.ObserveDuration(dt)
		}
	}
}

// Route scores one clip through the cascade and returns the full
// routing decision.
func (r *Router) Route(clip layout.Clip) (Decision, error) {
	return r.RouteCtx(context.Background(), clip)
}

// RouteCtx is Route with stage spans on the context's trace.
func (r *Router) RouteCtx(ctx context.Context, clip layout.Clip) (Decision, error) {
	if !r.fitted {
		return Decision{}, errNotFitted
	}
	scores := make([]float64, 0, len(r.stages))
	for i, st := range r.stages {
		t0 := time.Now()
		s, err := core.ScoreClipCtx(ctx, st.Detector, clip)
		dt := time.Since(t0)
		if err != nil {
			return Decision{}, fmt.Errorf("router: stage %d (%s): %w", i, st.Name, err)
		}
		scores = append(scores, s)
		p := r.cals[i].prob(scores)
		verdict := s >= st.Detector.Threshold()
		hot, answered := decide(i == len(r.stages)-1, p, verdict, r.cals[i].Band)
		r.note(i, hot, answered, dt)
		if answered {
			if tp := r.stats.tap.Load(); tp != nil {
				(*tp)(st.Name, p, clip)
			}
			if i == len(r.stages)-1 {
				if tp := r.stats.escTap.Load(); tp != nil {
					(*tp)(st.Name, p, clip)
				}
			}
			return Decision{
				Stage:      i,
				StageName:  st.Name,
				Hotspot:    hot,
				Confidence: p,
				Score:      encode(p, hot),
			}, nil
		}
	}
	return Decision{}, errors.New("router: no stage answered")
}

// Score implements core.Detector.
func (r *Router) Score(clip layout.Clip) (float64, error) {
	d, err := r.Route(clip)
	return d.Score, err
}

// ScoreCtx implements core.CtxScorer.
func (r *Router) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	d, err := r.RouteCtx(ctx, clip)
	return d.Score, err
}

// ScoreBatch implements core.BatchScorer: stage-wise batching over the
// still-active subset, bit-identical per clip to Score. Safe for
// concurrent use: members that clone-for-safety but lack a batch path
// are cloned per call.
func (r *Router) ScoreBatch(clips []layout.Clip) ([]float64, error) {
	return r.ScoreBatchCtx(context.Background(), clips)
}

// ScoreBatchCtx implements core.CtxBatchScorer.
func (r *Router) ScoreBatchCtx(ctx context.Context, clips []layout.Clip) ([]float64, error) {
	if !r.fitted {
		return nil, errNotFitted
	}
	out := make([]float64, len(clips))
	scores := make([][]float64, len(clips))
	active := make([]int, len(clips))
	for i := range active {
		active[i] = i
	}
	for i, st := range r.stages {
		if len(active) == 0 {
			break
		}
		sub := make([]layout.Clip, len(active))
		for k, idx := range active {
			sub[k] = clips[idx]
		}
		det := st.Detector
		if _, batch := det.(core.BatchScorer); !batch {
			if c, ok := det.(core.Cloner); ok {
				det = c.CloneDetector()
			}
		}
		t0 := time.Now()
		s, err := core.ScoreClipsCtx(ctx, det, sub)
		dt := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("router: stage %d (%s): %w", i, st.Name, err)
		}
		// Per-clip time attribution inside a batch is not observable;
		// charge the batch's stage time once and split counters per
		// clip.
		if len(active) > 0 {
			dt /= time.Duration(len(active))
		}
		last := i == len(r.stages)-1
		thr := st.Detector.Threshold()
		var next []int
		for k, idx := range active {
			scores[idx] = append(scores[idx], s[k])
			p := r.cals[i].prob(scores[idx])
			verdict := s[k] >= thr
			hot, answered := decide(last, p, verdict, r.cals[i].Band)
			r.note(i, hot, answered, dt)
			if answered {
				if tp := r.stats.tap.Load(); tp != nil {
					(*tp)(st.Name, p, clips[idx])
				}
				if last {
					if tp := r.stats.escTap.Load(); tp != nil {
						(*tp)(st.Name, p, clips[idx])
					}
				}
				out[idx] = encode(p, hot)
			} else {
				next = append(next, idx)
			}
		}
		active = next
	}
	return out, nil
}

// CloneDetector implements core.Cloner: member detectors that are
// themselves cloners get private clones (their Score mutates caches);
// calibrations are shared read-only; routing counters and telemetry
// stay shared so the stats describe the whole router, not one worker.
func (r *Router) CloneDetector() core.Detector {
	cl := *r
	cl.stages = make([]Stage, len(r.stages))
	copy(cl.stages, r.stages)
	for i := range cl.stages {
		if c, ok := cl.stages[i].Detector.(core.Cloner); ok {
			cl.stages[i].Detector = c.CloneDetector()
		}
	}
	return &cl
}

// Stats snapshots the per-stage routing counters.
func (r *Router) Stats() []StageStats {
	out := make([]StageStats, len(r.stages))
	for i, st := range r.stages {
		c := &r.stats.stages[i]
		out[i] = StageStats{
			Name:         st.Name,
			AnsweredHot:  c.answeredHot.Load(),
			AnsweredCold: c.answeredCold.Load(),
			Escalated:    c.escalated.Load(),
			Seconds:      float64(c.nanos.Load()) / 1e9,
		}
	}
	return out
}

// ResetStats zeroes the routing counters (telemetry series, being
// monotone, are left alone).
func (r *Router) ResetStats() {
	for i := range r.stats.stages {
		c := &r.stats.stages[i]
		c.answeredHot.Store(0)
		c.answeredCold.Store(0)
		c.escalated.Store(0)
		c.nanos.Store(0)
	}
}

// stageSecondsBuckets span microsecond pattern-match hits to second-
// scale CNN escalations.
var stageSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10,
}

// BindMetrics registers the router's telemetry on reg:
//
//	hotspot_router_stage_total{stage,outcome}  — clips per stage by
//	    outcome (answered_hot / answered_cold / escalated)
//	router_stage_seconds{stage}                — scoring latency
//
// The binding lands in the state shared by every clone, so binding
// after clones exist (hsdserve binds after serve.New has cloned the
// scorer) still routes their outcomes onto the series.
func (r *Router) BindMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("hotspot_router_stage_total",
		"Clips routed per cascade stage, by outcome (answered_hot, answered_cold, escalated).")
	reg.SetHelp("router_stage_seconds",
		"Wall-clock scoring latency per cascade stage.")
	mets := make([]stageMetrics, len(r.stages))
	for i, st := range r.stages {
		stage := telemetry.L("stage", st.Name)
		mets[i] = stageMetrics{
			hot:  reg.Counter("hotspot_router_stage_total", stage, telemetry.L("outcome", "answered_hot")),
			cold: reg.Counter("hotspot_router_stage_total", stage, telemetry.L("outcome", "answered_cold")),
			esc:  reg.Counter("hotspot_router_stage_total", stage, telemetry.L("outcome", "escalated")),
			sec:  reg.Histogram("router_stage_seconds", stageSecondsBuckets, stage),
		}
	}
	r.stats.mets.Store(&mets)
}

// BindQualityTap installs (or, with nil, removes) the quality tap. Like
// BindMetrics, the tap lands in the shared stats, so binding after
// clones exist reaches every clone, and a clone mid-score observes it
// on its next answered decision.
func (r *Router) BindQualityTap(tap QualityTap) {
	if tap == nil {
		r.stats.tap.Store(nil)
		return
	}
	r.stats.tap.Store(&tap)
}

// BindEscalationTap installs (or, with nil, removes) a tap over the
// escalation band: it fires for exactly the clips answered by the FINAL
// stage — the ones every cheaper stage's uncertainty band escalated.
// These clips are where the calibrated cascade was least sure, which
// makes them the router's feed into the active-learning data engine
// (internal/datengine). Same sharing semantics as BindQualityTap; same
// determinism contract (the tap never feeds back into scores).
func (r *Router) BindEscalationTap(tap QualityTap) {
	if tap == nil {
		r.stats.escTap.Store(nil)
		return
	}
	r.stats.escTap.Store(&tap)
}
