package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/boost"
	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/iccad"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/metrics"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/pm"
	"github.com/golitho/hsd/internal/telemetry"
)

// funcDetector is a deterministic pure-function detector: the property
// tests need stage scores that are exact functions of the clip with no
// training state.
type funcDetector struct {
	name string
	thr  float64
	fn   func(layout.Clip) float64
}

func (d funcDetector) Name() string                 { return d.name }
func (d funcDetector) Fit([]core.LabeledClip) error { return nil }
func (d funcDetector) Threshold() float64           { return d.thr }
func (d funcDetector) Score(c layout.Clip) (float64, error) {
	return d.fn(c), nil
}

// errDetector fails every score with a fixed error.
type errDetector struct {
	funcDetector
	err error
}

func (d errDetector) Score(layout.Clip) (float64, error) { return 0, d.err }

// fakeStages builds a three-rung cascade of density-derived detectors:
// two noisy cheap stages and an oracle-quality final stage. All scores
// are deterministic pure functions of the clip.
func fakeStages() []Stage {
	noisy := func(freq float64) func(layout.Clip) float64 {
		return func(c layout.Clip) float64 {
			d := c.Density()
			return d + 0.3*math.Sin(freq*d)
		}
	}
	return []Stage{
		{Name: "cheap", Detector: funcDetector{name: "cheap", thr: 0.5, fn: noisy(37)}},
		{Name: "mid", Detector: funcDetector{name: "mid", thr: 0.45, fn: noisy(91)}},
		{Name: "deep", Detector: funcDetector{name: "deep", thr: 0.5, fn: func(c layout.Clip) float64 {
			return c.Density()
		}}},
	}
}

// fakeCals builds hand-made calibrations for a three-stage cascade with
// the given non-final bands; stacker weights average the stage scores.
func fakeCals(b0, b1 Band) []Calibration {
	mk := func(n int, b Band) Calibration {
		w := make([]float64, n)
		mean := make([]float64, n)
		inv := make([]float64, n)
		for i := range w {
			w[i] = 4.0 / float64(n)
			mean[i] = 0.5
			inv[i] = 1
		}
		return Calibration{Weights: w, Mean: mean, InvStd: inv, Band: b}
	}
	return []Calibration{mk(1, b0), mk(2, b1), mk(3, AlwaysEscalate)}
}

// testClips builds a deterministic set of clips whose densities spread
// over (0, 1) so every routing branch gets traffic.
func testClips(t *testing.T) []layout.Clip {
	t.Helper()
	l := layout.New("router-chip")
	var clips []layout.Clip
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			x, y := i*1024, j*1024
			edge := 64 + ((i*8+j)*900)/63
			if err := l.AddRect(geom.R(x, y, x+edge, y+edge)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			c, err := l.ClipAt(geom.Pt(i*1024+512, j*1024+512), 1024, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			clips = append(clips, c)
		}
	}
	return clips
}

func mustRouter(t *testing.T, b0, b1 Band) *Router {
	t.Helper()
	r := New("Router", fakeStages(), Config{})
	if err := r.SetCalibrations(fakeCals(b0, b1)); err != nil {
		t.Fatal(err)
	}
	return r
}

// routeByHand is an independent reimplementation of the routing rule,
// kept deliberately separate from decide() so a regression in either
// shows up as disagreement.
func routeByHand(r *Router, clip layout.Clip) (stage int, hot bool, p float64) {
	var scores []float64
	for i, st := range r.Stages() {
		s, _ := st.Detector.Score(clip)
		scores = append(scores, s)
		p = r.Calibrations()[i].prob(scores)
		verdict := s >= st.Detector.Threshold()
		if i == len(r.Stages())-1 {
			return i, verdict, p
		}
		b := r.Calibrations()[i].Band
		if p <= b.Lo && !verdict {
			return i, false, p
		}
		if p >= b.Hi && verdict {
			return i, true, p
		}
	}
	panic("unreachable")
}

// TestRouterEquivalenceProperty is the core routing-equivalence
// property: for ANY band setting, the verdict the router reports is
// bit-identical to the raw thresholded verdict of the stage that
// answered — including every clip escalated to the final stage, whose
// verdicts must match running that detector directly.
func TestRouterEquivalenceProperty(t *testing.T) {
	clips := testClips(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		randBand := func() Band {
			switch rng.Intn(4) {
			case 0:
				return AlwaysEscalate
			case 1: // inverted / overlapping on purpose
				return Band{Lo: rng.Float64(), Hi: rng.Float64()}
			default:
				lo := rng.Float64() * 0.6
				return Band{Lo: lo, Hi: lo + rng.Float64()*(1-lo)}
			}
		}
		r := mustRouter(t, randBand(), randBand())
		final := r.Stages()[len(r.Stages())-1].Detector
		for ci, clip := range clips {
			d, err := r.Route(clip)
			if err != nil {
				t.Fatalf("trial %d clip %d: %v", trial, ci, err)
			}
			// 1. Verdict == answering stage's raw thresholded verdict.
			raw, _ := r.Stages()[d.Stage].Detector.Score(clip)
			if want := raw >= r.Stages()[d.Stage].Detector.Threshold(); d.Hotspot != want {
				t.Fatalf("trial %d clip %d: verdict %v != stage %d raw verdict %v",
					trial, ci, d.Hotspot, d.Stage, want)
			}
			// 2. Score encodes the verdict through the Detector contract.
			if got := d.Score >= r.Threshold(); got != d.Hotspot {
				t.Fatalf("trial %d clip %d: Score %v encodes %v, verdict %v",
					trial, ci, d.Score, got, d.Hotspot)
			}
			// 3. Clips escalated to the end agree with the final
			// detector run directly.
			if d.Stage == len(r.Stages())-1 {
				direct, err := core.Predict(final, clip)
				if err != nil {
					t.Fatal(err)
				}
				if d.Hotspot != direct {
					t.Fatalf("trial %d clip %d: escalated verdict %v != direct %v",
						trial, ci, d.Hotspot, direct)
				}
			}
			// 4. The whole decision matches an independent replay.
			stage, hot, p := routeByHand(r, clip)
			if stage != d.Stage || hot != d.Hotspot || p != d.Confidence {
				t.Fatalf("trial %d clip %d: Route = (%d,%v,%v), replay = (%d,%v,%v)",
					trial, ci, d.Stage, d.Hotspot, d.Confidence, stage, hot, p)
			}
		}
	}
}

// TestRouterAlwaysEscalateMatchesFinal: with every band forced to
// AlwaysEscalate, the router's score-derived predictions reduce exactly
// to its final detector's — identical confusion matrix, identical
// routing (every clip reaches the last stage).
func TestRouterAlwaysEscalateMatchesFinal(t *testing.T) {
	clips := testClips(t)
	r := mustRouter(t, AlwaysEscalate, AlwaysEscalate)
	final := r.Stages()[len(r.Stages())-1].Detector
	var viaRouter, direct metrics.Confusion
	for i, clip := range clips {
		actual := i%3 == 0 // arbitrary labels; the matrices must agree cell-for-cell
		got, err := core.Predict(r, clip)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Predict(final, clip)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("clip %d: router %v != final detector %v", i, got, want)
		}
		viaRouter.Add(got, actual)
		direct.Add(want, actual)
	}
	if viaRouter != direct {
		t.Fatalf("confusion mismatch: router %+v, direct %+v", viaRouter, direct)
	}
	st := r.Stats()
	n := int64(len(clips))
	if st[0].Escalated != n || st[1].Escalated != n || st[2].Answered() != n {
		t.Fatalf("always-escalate routed wrong: %+v", st)
	}
}

// TestRouterTrainedAlwaysEscalate repeats the confusion-matrix
// equivalence with REAL trained detectors (pattern matcher, boost,
// neural net) on a generated suite: forcing escalation must reproduce
// the trained final stage's confusion matrix exactly on the test split.
func TestRouterTrainedAlwaysEscalate(t *testing.T) {
	train, test := routerSplits(t)
	force := AlwaysEscalate
	r := New("Router", realStages(), Config{
		Seed: 5, ForceBand: &force,
	})
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	final := r.Stages()[len(r.Stages())-1].Detector
	var viaRouter, direct metrics.Confusion
	for _, s := range test {
		got, err := core.Predict(r, s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Predict(final, s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		viaRouter.Add(got, s.Hotspot)
		direct.Add(want, s.Hotspot)
	}
	if viaRouter != direct {
		t.Fatalf("trained always-escalate: router confusion %+v != final %+v",
			viaRouter, direct)
	}
}

// routerSuite is generated once and shared across the trained-router
// tests (suite generation and member training dominate the runtime).
var (
	routerSuiteOnce sync.Once
	routerSuite     *iccad.Suite
	routerSuiteErr  error
)

func routerSplits(t *testing.T) (train, test []core.LabeledClip) {
	t.Helper()
	routerSuiteOnce.Do(func() {
		cfg := iccad.SmallSuiteConfig(909)
		cfg.Specs = []iccad.Spec{{
			Name:    "R1",
			Style:   cfg.Specs[0].Style,
			TrainHS: 14, TrainNHS: 46,
			TestHS: 8, TestNHS: 30,
		}}
		routerSuite, routerSuiteErr = iccad.GenerateSuite(cfg)
	})
	if routerSuiteErr != nil {
		t.Fatal(routerSuiteErr)
	}
	b := routerSuite.Benchmarks[0]
	return core.FromSamples(b.Train.Samples), core.FromSamples(b.Test.Samples)
}

// realStages is a miniature version of the production cascade: pattern
// matcher, boosted stumps, and a small MLP (a NeuralDetector, so the
// Cloner and BatchScorer member paths are exercised).
func realStages() []Stage {
	shallow := features.NewConcat(
		&features.GeomStats{},
		&features.Density{Grid: 32},
	)
	return []Stage{
		{Name: "pm", Detector: core.NewPMDetector(pmConfig())},
		{Name: "boost", Detector: core.NewBoostDetector(shallow, boostConfig())},
		{Name: "mlp", Detector: core.NewMLPDetector(shallow, []int{16}, nn.TrainConfig{
			Epochs: 8, BatchSize: 16, Seed: 7,
		})},
	}
}

// TestRouterTrainedRoutesAndAnswers: a fitted real-detector router must
// answer every test clip, route a nonzero share away from the final
// stage (the point of the cascade), and stay within a loose accuracy
// floor of its final detector.
func TestRouterTrainedRoutesAndAnswers(t *testing.T) {
	train, test := routerSplits(t)
	r := New("Router", realStages(), Config{Seed: 5, MaxStageError: 0.05})
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	r.ResetStats()
	var conf metrics.Confusion
	for _, s := range test {
		got, err := core.Predict(r, s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		conf.Add(got, s.Hotspot)
	}
	st := r.Stats()
	var answered int64
	for _, s := range st {
		answered += s.Answered()
	}
	if answered != int64(len(test)) {
		t.Fatalf("answered %d of %d clips: %+v", answered, len(test), st)
	}
	if st[len(st)-1].Answered() == int64(len(test)) {
		t.Fatalf("router escalated everything; cheap stages answered nothing: %+v", st)
	}
	t.Logf("routing: %+v, confusion: %+v", st, conf)
}

// TestRouterBatchBitIdentical: ScoreBatch must return exactly the bits
// Score returns clip-by-clip, for arbitrary band settings.
func TestRouterBatchBitIdentical(t *testing.T) {
	clips := testClips(t)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 0.7
		b0 := Band{Lo: lo, Hi: lo + rng.Float64()*(1-lo)}
		lo = rng.Float64() * 0.7
		b1 := Band{Lo: lo, Hi: lo + rng.Float64()*(1-lo)}
		r := mustRouter(t, b0, b1)
		batch, err := r.ScoreBatch(clips)
		if err != nil {
			t.Fatal(err)
		}
		for i, clip := range clips {
			s, err := r.Score(clip)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(s) != math.Float64bits(batch[i]) {
				t.Fatalf("trial %d clip %d: Score %v != ScoreBatch %v", trial, i, s, batch[i])
			}
		}
	}
}

// TestRouterTrainedBatchBitIdentical repeats batch equivalence with the
// trained real-detector router, whose final stage has a true vectorized
// batch path.
func TestRouterTrainedBatchBitIdentical(t *testing.T) {
	train, test := routerSplits(t)
	r := New("Router", realStages(), Config{Seed: 5})
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	clips := make([]layout.Clip, len(test))
	for i, s := range test {
		clips[i] = s.Clip
	}
	batch, err := r.ScoreBatch(clips)
	if err != nil {
		t.Fatal(err)
	}
	for i, clip := range clips {
		s, err := r.Score(clip)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(s) != math.Float64bits(batch[i]) {
			t.Fatalf("clip %d: Score %v != ScoreBatch %v", i, s, batch[i])
		}
	}
}

// TestRouterScanDeterministicAcrossWorkers: scanning a chip with the
// router produces identical findings for every worker count — the
// routed scan is as deterministic as any single detector's.
func TestRouterScanDeterministicAcrossWorkers(t *testing.T) {
	l := layout.New("chip")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			x, y := i*1024, j*1024
			edge := 64 + ((i*8+j)*900)/63
			if err := l.AddRect(geom.R(x, y, x+edge, y+edge)); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := mustRouter(t, Band{Lo: 0.3, Hi: 0.7}, Band{Lo: 0.35, Hi: 0.65})
	cfg := core.ScanConfig{ClipNM: 1024, CoreFrac: 0.5, Workers: 1}
	ref, err := core.ScanCtx(context.Background(), l, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("reference scan found nothing; test is vacuous")
	}
	for workers := 2; workers <= 8; workers++ {
		cfg.Workers = workers
		res, err := core.ScanCtx(context.Background(), l, r, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Findings, ref.Findings) {
			t.Fatalf("workers=%d: findings differ from workers=1", workers)
		}
	}
}

// TestRouterCloneSharesStats: clones route independently but report
// into the same counters, and calibration state is shared, not copied.
func TestRouterCloneSharesStats(t *testing.T) {
	clips := testClips(t)
	r := mustRouter(t, Band{Lo: 0.3, Hi: 0.7}, AlwaysEscalate)
	cl, ok := core.Detector(r).(core.Cloner)
	if !ok {
		t.Fatal("router is not a Cloner")
	}
	clone := cl.CloneDetector()
	for _, clip := range clips[:10] {
		if _, err := clone.Score(clip); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, s := range r.Stats() {
		total += s.Answered()
	}
	if total != 10 {
		t.Fatalf("parent sees %d answered clips from clone, want 10", total)
	}
}

// TestRouterTelemetry: bound metrics mirror the routing counters.
func TestRouterTelemetry(t *testing.T) {
	clips := testClips(t)
	reg := telemetry.NewRegistry()
	r := mustRouter(t, Band{Lo: 0.3, Hi: 0.7}, Band{Lo: 0.35, Hi: 0.65})
	r.BindMetrics(reg)
	for _, clip := range clips {
		if _, err := r.Score(clip); err != nil {
			t.Fatal(err)
		}
	}
	byOutcome := map[string]float64{}
	seconds := 0
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "hotspot_router_stage_total":
			for _, lb := range s.Labels {
				if lb.Key == "outcome" {
					byOutcome[lb.Value] += s.Value
				}
			}
		case "router_stage_seconds":
			seconds++
			if s.Histogram == nil {
				t.Fatalf("router_stage_seconds is not a histogram: %+v", s)
			}
		}
	}
	answered := byOutcome["answered_hot"] + byOutcome["answered_cold"]
	if answered != float64(len(clips)) {
		t.Fatalf("telemetry answered %v clips, want %d (outcomes %v)",
			answered, len(clips), byOutcome)
	}
	var escalated int64
	for _, s := range r.Stats() {
		escalated += s.Escalated
	}
	if byOutcome["escalated"] != float64(escalated) {
		t.Fatalf("telemetry escalated %v, counters say %d", byOutcome["escalated"], escalated)
	}
	if seconds != len(r.Stages()) {
		t.Fatalf("router_stage_seconds series = %d, want one per stage", seconds)
	}
}

// TestRouterTelemetryBindsAfterClone: hsdserve clones the detector into
// its scorer before main binds telemetry, so a clone made *before*
// BindMetrics must still land its outcomes on the bound series.
func TestRouterTelemetryBindsAfterClone(t *testing.T) {
	clips := testClips(t)
	r := mustRouter(t, Band{Lo: 0.3, Hi: 0.7}, Band{Lo: 0.35, Hi: 0.65})
	clone := r.CloneDetector()
	reg := telemetry.NewRegistry()
	r.BindMetrics(reg)
	for _, clip := range clips {
		if _, err := clone.Score(clip); err != nil {
			t.Fatal(err)
		}
	}
	var answered float64
	for _, s := range reg.Snapshot() {
		if s.Name != "hotspot_router_stage_total" {
			continue
		}
		for _, lb := range s.Labels {
			if lb.Key == "outcome" && lb.Value != "escalated" {
				answered += s.Value
			}
		}
	}
	if answered != float64(len(clips)) {
		t.Fatalf("pre-bind clone routed %v clips onto telemetry, want %d", answered, len(clips))
	}
}

// TestRouterErrors: unfitted use, empty cascades, and member failures
// surface as errors with stage attribution, never panics.
func TestRouterErrors(t *testing.T) {
	r := New("Router", fakeStages(), Config{})
	if _, err := r.Score(layout.Clip{}); !errors.Is(err, errNotFitted) {
		t.Fatalf("unfitted Score err = %v, want errNotFitted", err)
	}
	if _, err := r.ScoreBatch(nil); !errors.Is(err, errNotFitted) {
		t.Fatalf("unfitted ScoreBatch err = %v, want errNotFitted", err)
	}
	if err := New("Router", nil, Config{}).Fit(nil); err == nil {
		t.Fatal("no stages: want error")
	}
	if err := New("Router", fakeStages(), Config{}).Fit(nil); err == nil {
		t.Fatal("empty training set: want error")
	}
	if err := r.SetCalibrations(make([]Calibration, 1)); err == nil {
		t.Fatal("calibration count mismatch: want error")
	}

	boom := fmt.Errorf("member detector exploded")
	stages := fakeStages()
	stages[1].Detector = errDetector{funcDetector{name: "mid", thr: 0.5}, boom}
	r = New("Router", stages, Config{})
	if err := r.SetCalibrations(fakeCals(AlwaysEscalate, AlwaysEscalate)); err != nil {
		t.Fatal(err)
	}
	clips := testClips(t)
	_, err := r.Score(clips[0])
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "mid") {
		t.Fatalf("member failure err = %v, want wrapped with stage name", err)
	}
	if _, err := r.ScoreBatch(clips[:3]); !errors.Is(err, boom) {
		t.Fatalf("batch member failure err = %v, want wrapped", err)
	}
}

func pmConfig() pm.Config       { return pm.Config{GridPx: 32, Tol: 36, Mirror: true} }
func boostConfig() boost.Config { return boost.Config{Rounds: 40, ClassBalance: true} }

// TestRouterEscalationTap: the escalation tap observes exactly the
// clips answered by the final stage — the cascade's uncertainty band —
// in both the single-clip and batch paths, reaches clones through the
// shared stats, and unbinds cleanly with nil.
func TestRouterEscalationTap(t *testing.T) {
	clips := testClips(t)
	r := mustRouter(t, Band{Lo: 0.3, Hi: 0.7}, Band{Lo: 0.35, Hi: 0.65})

	var mu sync.Mutex
	seen := map[layout.Fingerprint]int{}
	stages := map[string]int{}
	r.BindEscalationTap(func(stage string, p float64, clip layout.Clip) {
		mu.Lock()
		defer mu.Unlock()
		seen[clip.Fingerprint()]++
		stages[stage]++
	})

	for _, clip := range clips {
		if _, err := r.Score(clip); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	finalAnswered := st[len(st)-1].Answered()
	mu.Lock()
	total := 0
	for _, n := range seen {
		total += n
	}
	mu.Unlock()
	if finalAnswered == 0 || finalAnswered == int64(len(clips)) {
		t.Fatalf("degenerate routing (final answered %d of %d); bands give the tap nothing to distinguish",
			finalAnswered, len(clips))
	}
	if int64(total) != finalAnswered {
		t.Fatalf("escalation tap fired %d times, final stage answered %d", total, finalAnswered)
	}
	for name, n := range stages {
		if name != "deep" {
			t.Fatalf("escalation tap saw stage %q (%d times), want only the final stage", name, n)
		}
	}

	// The batch path must surface the identical escalation set.
	batchSeen := map[layout.Fingerprint]int{}
	r.BindEscalationTap(func(stage string, p float64, clip layout.Clip) {
		mu.Lock()
		defer mu.Unlock()
		batchSeen[clip.Fingerprint()]++
	})
	if _, err := r.ScoreBatch(clips); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if !reflect.DeepEqual(batchSeen, seen) {
		t.Fatalf("batch escalation set differs from single-clip set: %d vs %d clips",
			len(batchSeen), len(seen))
	}
	mu.Unlock()

	// Clones report into the same shared tap; nil unbinds for everyone.
	var cloneHits int
	r.BindEscalationTap(func(stage string, p float64, clip layout.Clip) {
		mu.Lock()
		defer mu.Unlock()
		cloneHits++
	})
	clone := r.CloneDetector()
	if _, err := clone.(*Router).ScoreBatch(clips); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if cloneHits != total {
		t.Fatalf("clone escalations = %d, want %d", cloneHits, total)
	}
	mu.Unlock()
	r.BindEscalationTap(nil)
	if _, err := clone.Score(clips[0]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if cloneHits != total {
		t.Fatal("nil unbind did not stop the escalation tap")
	}
	mu.Unlock()
}
