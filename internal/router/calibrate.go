// Calibration: the meta-classification layer of the router. Each stage
// gets a logistic stacker over the (standardized) raw scores of every
// stage computed so far, turning heterogeneous detector outputs — PM
// match fractions, SVM margins, boost margins, CNN probabilities — into
// one comparable hotspot probability, plus an uncertainty band on that
// probability fitted to a target answered-error rate.
//
// The band semantics are deliberately one-sided per verdict: a stage
// answers "non-hotspot" only when its confidence is at or below Band.Lo
// AND its own thresholded verdict agrees, and answers "hotspot" only
// when confidence is at or above Band.Hi AND the verdict agrees.
// Disagreement between the stacker and the stage detector is itself
// uncertainty, so those clips escalate. This is what makes the routing
// equivalence contract (see router.go) hold by construction.

package router

import (
	"fmt"
	"math"
	"sort"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/logreg"
)

// Band is the uncertainty band on a stage's calibrated confidence:
// confidence <= Lo answers non-hotspot, confidence >= Hi answers
// hotspot (both only when the stage's own verdict agrees), anything
// between escalates to the next stage.
type Band struct {
	Lo, Hi float64
}

// AlwaysEscalate is the band that never answers: every clip reaching a
// stage with this band escalates. Calibrated probabilities live in
// (0, 1), so Lo = -1 and Hi = 2 are unreachable. Forcing this band on
// every non-final stage reduces the router to its final detector —
// the anchor of the routing-equivalence test layer.
var AlwaysEscalate = Band{Lo: -1, Hi: 2}

// Calibration is one stage's fitted meta-classifier state: a logistic
// stacker over the standardized raw scores of stages 0..i, and the
// fitted uncertainty band.
type Calibration struct {
	// Weights and Bias are the logistic stacker: one weight per stage
	// score available at this rung (stages 0..i).
	Weights []float64
	Bias    float64
	// Mean and InvStd standardize the raw stage scores before the
	// stacker; fitted on the calibration split.
	Mean, InvStd []float64
	// Band is the uncertainty band on the stacker probability. The
	// final stage's band is ignored: it always answers.
	Band Band
}

// prob applies the stacker to the raw scores of stages 0..i. Non-finite
// member scores contribute nothing (their standardized value is forced
// to zero) so one NaN detector cannot poison the routing probability.
func (c *Calibration) prob(scores []float64) float64 {
	z := c.Bias
	for j, s := range scores {
		if j >= len(c.Weights) {
			break
		}
		v := (s - c.Mean[j]) * c.InvStd[j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		z += c.Weights[j] * v
	}
	return 1 / (1 + math.Exp(-z))
}

// FitBand fits the uncertainty band for one stage: the widest
// answer regions whose empirical answered-error stays at or below eps.
//
//	Lo = the largest probability p such that among calibration clips
//	     with prob <= p, the hotspot fraction is <= eps;
//	Hi = the smallest probability p such that among calibration clips
//	     with prob >= p, the non-hotspot fraction is <= eps.
//
// Clips answered below Lo get verdict non-hotspot, so hotspots there
// are exactly the errors; symmetrically above Hi. Non-finite
// probabilities are excluded from the fit (at scoring time they always
// escalate). If no prefix (suffix) meets eps, that side of the band is
// unreachable and every clip escalates past it — a degenerate stage
// costs escalations, never accuracy.
func FitBand(probs []float64, labels []int, eps float64) Band {
	type pl struct {
		p   float64
		hot bool
	}
	pts := make([]pl, 0, len(probs))
	for i, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			continue
		}
		pts = append(pts, pl{p: p, hot: i < len(labels) && labels[i] == 1})
	}
	band := AlwaysEscalate
	if len(pts) == 0 {
		return band
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].p < pts[j].p })

	hot := 0
	for k, pt := range pts {
		if pt.hot {
			hot++
		}
		// Ties share a fate: a candidate cut must include every point
		// with an equal probability.
		if k+1 < len(pts) && pts[k+1].p == pt.p {
			continue
		}
		if float64(hot)/float64(k+1) <= eps {
			band.Lo = pt.p
		}
	}
	cold := 0
	for k := len(pts) - 1; k >= 0; k-- {
		if !pts[k].hot {
			cold++
		}
		if k > 0 && pts[k-1].p == pts[k].p {
			continue
		}
		if float64(cold)/float64(len(pts)-k) <= eps {
			band.Hi = pts[k].p
		}
	}
	return band
}

// stratifiedSplit deterministically carves a calibration split off the
// training set, keeping both classes represented on both sides: every
// k-th sample of each class (k ~ 1/frac) goes to the calibration set.
// A class with fewer than two samples lands on both sides — the member
// detectors and the stacker each need to see it, and reusing one clip
// for calibration beats losing the class.
func stratifiedSplit(train []core.LabeledClip, frac float64) (fit, calib []core.LabeledClip) {
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	k := int(math.Round(1 / frac))
	if k < 2 {
		k = 2
	}
	var counts [2]int
	for _, s := range train {
		if s.Hotspot {
			counts[1]++
		} else {
			counts[0]++
		}
	}
	var seen [2]int
	for _, s := range train {
		cls := 0
		if s.Hotspot {
			cls = 1
		}
		if counts[cls] < 2 {
			fit = append(fit, s)
			calib = append(calib, s)
			continue
		}
		if seen[cls]%k == 0 {
			calib = append(calib, s)
		} else {
			fit = append(fit, s)
		}
		seen[cls]++
	}
	return fit, calib
}

// calibrate fits the per-stage stackers and bands from the calibration
// split's raw score matrix. scores[i][j] is stage i's raw score on
// calibration clip j.
func calibrate(scores [][]float64, labels []int, cfg Config) ([]Calibration, error) {
	nStages := len(scores)
	if nStages == 0 {
		return nil, fmt.Errorf("router: no stages to calibrate")
	}
	n := len(labels)
	cals := make([]Calibration, nStages)
	for i := 0; i < nStages; i++ {
		// Feature matrix: standardized scores of stages 0..i per clip.
		mean := make([]float64, i+1)
		invStd := make([]float64, i+1)
		for j := 0; j <= i; j++ {
			mean[j], invStd[j] = momentsOf(scores[j])
		}
		x := make([][]float64, n)
		for c := 0; c < n; c++ {
			row := make([]float64, i+1)
			for j := 0; j <= i; j++ {
				v := (scores[j][c] - mean[j]) * invStd[j]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				row[j] = v
			}
			x[c] = row
		}
		m, err := logreg.Train(x, labels, logreg.Config{
			Seed: cfg.Seed + int64(i), L2: 1e-3,
		})
		if err != nil {
			return nil, fmt.Errorf("router: stage %d stacker: %w", i, err)
		}
		cal := Calibration{
			Weights: m.Weights,
			Bias:    m.Bias,
			Mean:    mean,
			InvStd:  invStd,
			Band:    AlwaysEscalate,
		}
		if i < nStages-1 {
			probs := make([]float64, n)
			for c := 0; c < n; c++ {
				probs[c] = cal.prob(columnOf(scores, c, i+1))
			}
			cal.Band = FitBand(probs, labels, cfg.MaxStageError)
		}
		cals[i] = cal
	}
	return cals, nil
}

// momentsOf returns the mean and inverse standard deviation of the
// finite entries of xs, mirroring core's feature scaler: a constant (or
// empty, or all-NaN) column gets invStd 1 so it passes through instead
// of dividing by zero.
func momentsOf(xs []float64) (mean, invStd float64) {
	n := 0
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		mean += v
		n++
	}
	if n == 0 {
		return 0, 1
	}
	mean /= float64(n)
	varsum := 0.0
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		d := v - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(n))
	if sd < 1e-9 {
		return mean, 1
	}
	return mean, 1 / sd
}

// columnOf gathers clip c's raw scores for stages 0..depth-1.
func columnOf(scores [][]float64, c, depth int) []float64 {
	out := make([]float64, depth)
	for j := 0; j < depth; j++ {
		out[j] = scores[j][c]
	}
	return out
}
