package opc

import (
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
)

func sim(t *testing.T) *lithosim.Simulator {
	t.Helper()
	s, err := lithosim.New(lithosim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clipOf(t *testing.T, shapes ...geom.Rect) layout.Clip {
	t.Helper()
	l := layout.New("opc")
	for _, s := range shapes {
		if err := l.AddRect(s); err != nil {
			t.Fatal(err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestCorrectNarrowLine(t *testing.T) {
	s := sim(t)
	// A 48 nm line fails to print at defocus; widening should fix it.
	clip := clipOf(t, geom.R(0, 488, 1024, 536))
	pre, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Hotspot {
		t.Fatal("test premise broken: 48 nm line should be a hotspot")
	}
	res, err := Correct(s, clip, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed {
		t.Fatalf("OPC failed to fix a narrow line: remaining %v", res.Remaining)
	}
	// The corrected feature must be wider than drawn.
	if res.Corrected.Shapes[0].Dy() <= clip.Shapes[0].Dy() {
		t.Fatal("correction did not widen the feature")
	}
	// The input clip must not be mutated.
	if clip.Shapes[0].Dy() != 48 {
		t.Fatal("input clip mutated")
	}
}

func TestCorrectLineEndPullback(t *testing.T) {
	s := sim(t)
	// A 72 nm line ending mid-core pulls back; extension should fix it.
	clip := clipOf(t, geom.R(0, 476, 512, 548))
	pre, err := s.Simulate(clip)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Hotspot {
		t.Skip("line end not a hotspot under current oracle tuning")
	}
	res, err := Correct(s, clip, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed {
		t.Fatalf("OPC failed to fix line-end pullback: remaining %v", res.Remaining)
	}
}

func TestBridgeUncorrectable(t *testing.T) {
	s := sim(t)
	// 36 nm space bridges; growth rules must refuse and report.
	clip := clipOf(t,
		geom.R(0, 400, 1024, 500),
		geom.R(0, 536, 1024, 636),
	)
	res, err := Correct(s, clip, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed {
		t.Fatal("bridge reported as fixed by growth-only OPC")
	}
	if len(res.Remaining) == 0 {
		t.Fatal("no remaining defects reported")
	}
}

func TestCleanClipUntouched(t *testing.T) {
	s := sim(t)
	clip := clipOf(t, geom.R(0, 462, 1024, 562))
	res, err := Correct(s, clip, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed || res.Iterations != 0 {
		t.Fatalf("clean clip handled wrongly: %+v", res)
	}
	if !res.Corrected.Shapes[0].Eq(clip.Shapes[0]) {
		t.Fatal("clean clip edited")
	}
}

func TestBiasCap(t *testing.T) {
	s := sim(t)
	// A hopeless 24 nm line: the bias cap must stop the loop.
	clip := clipOf(t, geom.R(0, 500, 1024, 524))
	res, err := Correct(s, clip, Config{MaxIter: 10, StepNM: 8, MaxBiasNM: 16})
	if err != nil {
		t.Fatal(err)
	}
	grown := res.Corrected.Shapes[0].Dy() - clip.Shapes[0].Dy()
	if grown > 16 {
		t.Fatalf("bias cap exceeded: grew %d nm", grown)
	}
}

func TestWidenExtendGeometry(t *testing.T) {
	v := geom.R(100, 0, 160, 500) // vertical: 60 wide
	w := widen(v, 8)
	if w.Dx() != 68 || w.Dy() != 500 {
		t.Fatalf("widen vertical = %v", w)
	}
	e := extend(v, 8)
	if e.Dy() != 516 || e.Dx() != 60 {
		t.Fatalf("extend vertical = %v", e)
	}
	hz := geom.R(0, 100, 500, 160)
	if widen(hz, 8).Dy() != 68 {
		t.Fatal("widen horizontal wrong axis")
	}
	if extend(hz, 8).Dx() != 516 {
		t.Fatal("extend horizontal wrong axis")
	}
}

func TestNearestShape(t *testing.T) {
	shapes := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(100, 100, 110, 110)}
	if i := nearestShape(shapes, geom.Pt(5, 5)); i != 0 {
		t.Fatalf("nearest = %d", i)
	}
	if i := nearestShape(shapes, geom.Pt(99, 99)); i != 1 {
		t.Fatalf("nearest = %d", i)
	}
	if i := nearestShape(nil, geom.Pt(0, 0)); i != -1 {
		t.Fatalf("empty nearest = %d", i)
	}
}
