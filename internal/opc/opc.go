// Package opc implements a compact rule/model-hybrid optical proximity
// correction loop on top of the lithography oracle: detected printing
// failures drive local mask edits (width biasing and line-end extension)
// until the clip prints cleanly or the iteration budget runs out.
//
// This is the downstream consumer the hotspot-detection literature
// motivates: a detector flags windows, the simulator confirms defects,
// and OPC repairs them — orders of magnitude cheaper than full-chip
// inverse lithography.
package opc

import (
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
)

// Config controls the correction loop.
type Config struct {
	// MaxIter bounds the simulate-and-edit rounds (default 6).
	MaxIter int
	// StepNM is the mask edit granularity (default 8, one raster pixel).
	StepNM int
	// MaxBiasNM bounds the total bias applied to any single edge
	// (default 32): real masks cannot grow without violating spacing.
	MaxBiasNM int
}

func (c *Config) normalize() {
	if c.MaxIter <= 0 {
		c.MaxIter = 6
	}
	if c.StepNM <= 0 {
		c.StepNM = 8
	}
	if c.MaxBiasNM <= 0 {
		c.MaxBiasNM = 32
	}
}

// Result reports one correction attempt.
type Result struct {
	// Corrected is the edited clip (equal to the input when no edits
	// were possible).
	Corrected layout.Clip
	// Fixed is true when the corrected clip prints without defects.
	Fixed bool
	// Iterations actually used.
	Iterations int
	// Remaining holds the defects of the final clip (empty when Fixed).
	Remaining []lithosim.Defect
}

// Correct attempts to repair the clip's printing failures.
//
// Edits per defect type:
//   - neck/open: widen the offending feature symmetrically;
//   - EPE (line-end pullback): widen the feature (hammerhead effect);
//   - bridge: uncorrectable by growth rules (it needs spacing, i.e. a
//     shrink that would break connectivity) — left to the router.
func Correct(sim *lithosim.Simulator, clip layout.Clip, cfg Config) (Result, error) {
	cfg.normalize()
	cur := cloneClip(clip)
	bias := make([]int, len(cur.Shapes)) // total growth applied per shape

	res := Result{}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		verdict, err := sim.Simulate(cur)
		if err != nil {
			return Result{}, fmt.Errorf("opc: simulate: %w", err)
		}
		res.Iterations = iter
		if !verdict.Hotspot {
			res.Corrected = cur
			res.Fixed = true
			return res, nil
		}
		edited := false
		for _, d := range verdict.Defects {
			i := nearestShape(cur.Shapes, d.At)
			if i < 0 || bias[i] >= cfg.MaxBiasNM {
				continue
			}
			s := cur.Shapes[i]
			switch d.Type {
			case lithosim.DefectNeck, lithosim.DefectOpen:
				cur.Shapes[i] = widen(s, cfg.StepNM)
				bias[i] += cfg.StepNM
				edited = true
			case lithosim.DefectEPE:
				// In this framework the drawn shape is both mask and
				// target, so extending a line end moves the target with
				// it and never closes the gap. Widening works: a wider
				// tip has a stronger aerial image and pulls back less
				// (the hammerhead effect).
				cur.Shapes[i] = widen(s, cfg.StepNM)
				bias[i] += cfg.StepNM
				edited = true
			case lithosim.DefectBridge:
				// Growth rules cannot fix a short; skip.
			}
		}
		if !edited {
			res.Corrected = cur
			res.Remaining = verdict.Defects
			return res, nil
		}
	}
	verdict, err := sim.Simulate(cur)
	if err != nil {
		return Result{}, fmt.Errorf("opc: final simulate: %w", err)
	}
	res.Corrected = cur
	res.Fixed = !verdict.Hotspot
	res.Remaining = verdict.Defects
	res.Iterations = cfg.MaxIter
	return res, nil
}

func cloneClip(clip layout.Clip) layout.Clip {
	out := clip
	out.Shapes = make([]geom.Rect, len(clip.Shapes))
	copy(out.Shapes, clip.Shapes)
	return out
}

// nearestShape returns the index of the shape closest to p, or -1.
func nearestShape(shapes []geom.Rect, p geom.Point) int {
	best, bestD := -1, int64(math.MaxInt64)
	for i, s := range shapes {
		d := pointRectDistSq(p, s)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func pointRectDistSq(p geom.Point, r geom.Rect) int64 {
	dx, dy := 0, 0
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X >= r.Max.X:
		dx = p.X - r.Max.X + 1
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y >= r.Max.Y:
		dy = p.Y - r.Max.Y + 1
	}
	return int64(dx)*int64(dx) + int64(dy)*int64(dy)
}

// widen grows the rect by step/2 on both sides of its short axis
// (step total), keeping the centreline fixed.
func widen(r geom.Rect, step int) geom.Rect {
	h := step / 2
	if h < 1 {
		h = step
	}
	if r.Dx() < r.Dy() { // vertical feature: widen in x
		return geom.R(r.Min.X-h, r.Min.Y, r.Max.X+h, r.Max.Y)
	}
	return geom.R(r.Min.X, r.Min.Y-h, r.Max.X, r.Max.Y+h)
}

// extend grows the rect by step on both ends of its long axis
// (hammerhead-free line-end extension).
func extend(r geom.Rect, step int) geom.Rect {
	if r.Dx() >= r.Dy() { // horizontal feature: extend in x
		return geom.R(r.Min.X-step, r.Min.Y, r.Max.X+step, r.Max.Y)
	}
	return geom.R(r.Min.X, r.Min.Y-step, r.Max.X, r.Max.Y+step)
}
