// The trace store: a lock-sharded ring buffer of finished traces.
//
// Sharding by trace id keeps concurrent request completions from
// contending on one mutex; the per-shard ring keeps memory strictly
// bounded (Config.Capacity traces total) with oldest-first eviction.

package trace

import (
	"sort"
	"sync"
	"time"
)

// SpanRecord is one finished span, immutable once stored.
type SpanRecord struct {
	SpanID   string        `json:"spanId"`
	ParentID string        `json:"parentId,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// TraceRecord is one finished, retained trace.
type TraceRecord struct {
	TraceID string `json:"traceId"`
	// Root is the root span's name, e.g. "http /score".
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	// Flags lists the tail-retention classes ("slow", "error",
	// "degraded", "shed", "panic"); empty for probabilistically sampled
	// normal traces.
	Flags []string     `json:"flags,omitempty"`
	Spans []SpanRecord `json:"spans"`
}

type storeShard struct {
	mu   sync.Mutex
	ring []*TraceRecord
	next int // ring write cursor
}

func (t *Tracer) store(id uint64, rec *TraceRecord) {
	sh := &t.shards[id&t.shardMask]
	sh.mu.Lock()
	sh.ring[sh.next] = rec
	sh.next = (sh.next + 1) % len(sh.ring)
	sh.mu.Unlock()
}

// Traces returns the retained traces, most recent first, up to limit
// (limit <= 0 means all).
func (t *Tracer) Traces(limit int) []*TraceRecord {
	if t == nil {
		return nil
	}
	var out []*TraceRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.ring {
			if rec != nil {
				out = append(out, rec)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Get returns the retained trace with the given id, or nil.
func (t *Tracer) Get(id TraceID) *TraceRecord {
	if t == nil {
		return nil
	}
	sh := &t.shards[uint64(id)&t.shardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	want := id.String()
	for _, rec := range sh.ring {
		if rec != nil && rec.TraceID == want {
			return rec
		}
	}
	return nil
}
