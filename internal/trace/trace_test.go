package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
)

func testTracer(t *testing.T, cfg Config) (*Tracer, *resilience.FakeClock) {
	t.Helper()
	clk := resilience.NewFakeClock(time.Unix(1700000000, 0))
	cfg.Clock = clk
	return New(cfg), clk
}

func TestSpanTreeRetained(t *testing.T) {
	tr, clk := testTracer(t, Config{})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "http /score", A("method", "POST"))
	if root == nil {
		t.Fatal("root span is nil with enabled tracer")
	}
	clk.Advance(time.Millisecond)
	cctx, child := Start(ctx, "raster")
	clk.Advance(2 * time.Millisecond)
	_, grand := Start(cctx, "features")
	grand.SetAttrInt("dim", 128)
	clk.Advance(3 * time.Millisecond)
	grand.End()
	child.End()
	root.AddEvent("verdict", A("hotspot", "true"))
	clk.Advance(time.Millisecond)
	root.End()

	got := tr.Get(root.TraceID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	if got.Root != "http /score" {
		t.Fatalf("root name = %q", got.Root)
	}
	if got.Duration != 7*time.Millisecond {
		t.Fatalf("root duration = %v", got.Duration)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
	}
	if byName["raster"].ParentID != root.ID().String() {
		t.Fatalf("raster parent = %q, want %q", byName["raster"].ParentID, root.ID())
	}
	if byName["features"].ParentID != byName["raster"].SpanID {
		t.Fatal("features span not parented to raster")
	}
	if byName["features"].Duration != 3*time.Millisecond {
		t.Fatalf("features duration = %v", byName["features"].Duration)
	}
	if len(byName["http /score"].Events) != 1 || byName["http /score"].Events[0].Name != "verdict" {
		t.Fatalf("root events = %+v", byName["http /score"].Events)
	}

	list := tr.Traces(0)
	if len(list) != 1 || list[0].TraceID != got.TraceID {
		t.Fatalf("Traces() = %+v", list)
	}
}

func TestDisabledIsNilAndFree(t *testing.T) {
	// No tracer in context: nil span, ctx unchanged.
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start without tracer should return nil span and same ctx")
	}
	if !Disabled(ctx) {
		t.Fatal("Disabled(plain ctx) = false")
	}
	// All methods are nil-safe.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.AddEvent("e")
	sp.SetError(errors.New("x"))
	sp.SetFlag(FlagPanic)
	sp.End()

	// Tracer toggled off: same behaviour.
	tr, _ := testTracer(t, Config{})
	tr.SetEnabled(false)
	ctx = WithTracer(context.Background(), tr)
	if !Disabled(ctx) {
		t.Fatal("Disabled(ctx with disabled tracer) = false")
	}
	if _, sp := Start(ctx, "x"); sp != nil {
		t.Fatal("Start on disabled tracer returned a span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, s := Start(ctx, "x")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start allocates %v/op, want 0", allocs)
	}
}

func TestTailSamplingKeepsFlagged(t *testing.T) {
	// Rand always says "drop": only flagged traces survive.
	cfg := Config{SampleRate: 0.5, SlowThreshold: 100 * time.Millisecond}
	cfg.Rand = func() float64 { return 0.99 }
	tr, clk := testTracer(t, cfg)
	ctx := WithTracer(context.Background(), tr)

	mk := func(name string, dur time.Duration, flag Flag, err error) TraceID {
		_, sp := Start(ctx, name)
		clk.Advance(dur)
		if flag != 0 {
			sp.SetFlag(flag)
		}
		sp.SetError(err)
		sp.End()
		return sp.TraceID()
	}

	fast := mk("normal", time.Millisecond, 0, nil)
	slow := mk("slow", 200*time.Millisecond, 0, nil)
	degraded := mk("degraded", time.Millisecond, FlagDegraded, nil)
	shed := mk("shed", time.Millisecond, FlagShed, nil)
	panicked := mk("panicked", time.Millisecond, FlagPanic, nil)
	errored := mk("errored", time.Millisecond, 0, errors.New("boom"))

	if tr.Get(fast) != nil {
		t.Fatal("unflagged fast trace retained despite drop-everything sampler")
	}
	for name, id := range map[string]TraceID{
		"slow": slow, "degraded": degraded, "shed": shed,
		"panic": panicked, "error": errored,
	} {
		rec := tr.Get(id)
		if rec == nil {
			t.Fatalf("%s trace was sampled out; tail sampling must retain it", name)
		}
		if len(rec.Flags) == 0 {
			t.Fatalf("%s trace retained without flags: %+v", name, rec)
		}
	}
	st := tr.Stats()
	if st.Kept != 5 || st.SampledOut != 1 {
		t.Fatalf("stats = %+v, want kept=5 sampledOut=1", st)
	}
}

func TestSampleRateHonored(t *testing.T) {
	// Deterministic coin: keep every 4th normal trace at rate 0.25.
	i := 0
	cfg := Config{SampleRate: 0.25, Capacity: 4096}
	cfg.Rand = func() float64 {
		i++
		if i%4 == 0 {
			return 0.1 // < rate: keep
		}
		return 0.9
	}
	tr, clk := testTracer(t, cfg)
	ctx := WithTracer(context.Background(), tr)
	const n = 400
	for j := 0; j < n; j++ {
		_, sp := Start(ctx, "normal")
		clk.Advance(time.Microsecond)
		sp.End()
	}
	st := tr.Stats()
	if st.Kept != n/4 || st.SampledOut != n-n/4 {
		t.Fatalf("stats = %+v, want kept=%d sampledOut=%d", st, n/4, n-n/4)
	}
}

func TestRingEviction(t *testing.T) {
	tr, clk := testTracer(t, Config{Capacity: 8, Shards: 2})
	ctx := WithTracer(context.Background(), tr)
	for j := 0; j < 100; j++ {
		_, sp := Start(ctx, "t")
		clk.Advance(time.Microsecond)
		sp.End()
	}
	got := tr.Traces(0)
	if len(got) > 8 {
		t.Fatalf("store holds %d traces, capacity 8", len(got))
	}
	if len(got) == 0 {
		t.Fatal("store empty after 100 traces")
	}
	// Most recent first.
	for i := 1; i < len(got); i++ {
		if got[i].Start.After(got[i-1].Start) {
			t.Fatal("Traces() not sorted most recent first")
		}
	}
}

func TestLateChildAfterRootEndIsDropped(t *testing.T) {
	tr, clk := testTracer(t, Config{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "req")
	_, bg := Start(ctx, "background")
	clk.Advance(time.Millisecond)
	root.End()
	clk.Advance(time.Millisecond)
	bg.End() // after the trace finished: must not corrupt the record
	rec := tr.Get(root.TraceID())
	if rec == nil {
		t.Fatal("trace missing")
	}
	if len(rec.Spans) != 1 {
		t.Fatalf("late child was attached: %d spans", len(rec.Spans))
	}
}

func TestStageHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr, clk := testTracer(t, Config{Metrics: reg})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "scan.window")
	_, child := Start(ctx, "raster")
	clk.Advance(3 * time.Millisecond)
	child.End()
	clk.Advance(time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hotspot_stage_seconds_count{stage="raster"} 1`,
		`hotspot_stage_seconds_count{stage="scan.window"} 1`,
		`traces_retained_total 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := TraceID(0xdeadbeef)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := ParseTraceID("zzz"); err == nil {
		t.Fatal("bad id parsed")
	}
}

func TestChromeExport(t *testing.T) {
	tr, clk := testTracer(t, Config{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "req")
	clk.Advance(time.Millisecond)
	// Two overlapping children, as concurrent corner workers produce.
	_, c1 := Start(ctx, "corner")
	_, c2 := Start(ctx, "corner")
	clk.Advance(2 * time.Millisecond)
	c1.End()
	clk.Advance(time.Millisecond)
	c2.End()
	clk.Advance(time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Traces(0)); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	var xTIDs []float64
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		if ev["ph"] == "X" && ev["name"] == "corner" {
			xTIDs = append(xTIDs, ev["tid"].(float64))
		}
	}
	if !names["process_name"] || !names["req"] || !names["corner"] {
		t.Fatalf("missing events: %v", names)
	}
	if len(xTIDs) != 2 || xTIDs[0] == xTIDs[1] {
		t.Fatalf("overlapping corner spans must land on distinct lanes, got tids %v", xTIDs)
	}
}

func TestChromeExportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}
