package trace

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppendRead hammers the sharded store from writer
// goroutines while readers list and fetch traces; run under -race (the
// ci.sh trace gate does) to prove the sharding is sound.
func TestConcurrentAppendRead(t *testing.T) {
	tr := New(Config{Capacity: 64, Shards: 4})
	ctx := WithTracer(context.Background(), tr)

	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range tr.Traces(16) {
					id, err := ParseTraceID(rec.TraceID)
					if err != nil {
						t.Errorf("stored trace has bad id %q", rec.TraceID)
						return
					}
					tr.Get(id)
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				wctx, root := Start(ctx, fmt.Sprintf("writer-%d", w))
				_, child := Start(wctx, "stage")
				child.SetAttrInt("i", i)
				child.End()
				if i%7 == 0 {
					root.SetFlag(FlagDegraded)
				}
				root.End()
			}
		}(w)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Writers are the first writers+0 Adds... simplest: poll kept count.
		for tr.Stats().Kept+tr.Stats().SampledOut < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done

	if got := len(tr.Traces(0)); got > 64 {
		t.Fatalf("store grew past capacity: %d traces", got)
	}
	if tr.Stats().Kept != writers*perWriter {
		t.Fatalf("kept = %d, want %d (default sampler keeps everything)",
			tr.Stats().Kept, writers*perWriter)
	}
}

// TestChaosTailSampling drives a randomized mix of normal, slow,
// errored, degraded, shed, and panicked traces through a sampler
// configured to keep 20% of normal traffic, and proves every flagged
// trace survived while normal traffic was thinned at the configured
// rate. This is the acceptance property of the tail sampler: the
// interesting 0.1% is never lost.
func TestChaosTailSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	const rate = 0.20
	tr := New(Config{
		Capacity:      2 * n, // retention, not eviction, is under test
		SampleRate:    rate,
		SlowThreshold: 50 * time.Millisecond,
		Rand:          rng.Float64,
	})
	ctx := WithTracer(context.Background(), tr)

	flagged := map[TraceID]string{}
	normal := 0
	for i := 0; i < n; i++ {
		_, sp := Start(ctx, "req")
		kind := rng.Intn(10)
		switch kind {
		case 0:
			sp.SetFlag(FlagDegraded)
		case 1:
			sp.SetFlag(FlagShed)
		case 2:
			sp.SetFlag(FlagPanic)
		case 3:
			sp.SetError(errors.New("chaos"))
		}
		// Slow traces are classified by duration at finish time; the
		// wall clock advances too little between Start and End for real
		// slowness, so this case is exercised in TestTailSamplingKeepsFlagged
		// with the fake clock. Here kinds 0-3 are the chaos classes.
		sp.End()
		switch {
		case kind <= 3:
			flagged[sp.TraceID()] = [...]string{"degraded", "shed", "panic", "error"}[kind]
		default:
			normal++
		}
	}

	for id, kind := range flagged {
		if tr.Get(id) == nil {
			t.Fatalf("%s trace %v lost by tail sampler", kind, id)
		}
	}
	st := tr.Stats()
	keptNormal := st.Kept - int64(len(flagged))
	if keptNormal+st.SampledOut != int64(normal) {
		t.Fatalf("accounting: keptNormal=%d sampledOut=%d normal=%d",
			keptNormal, st.SampledOut, normal)
	}
	got := float64(keptNormal) / float64(normal)
	if got < rate-0.05 || got > rate+0.05 {
		t.Fatalf("normal traffic sampled at %.3f, configured %.2f", got, rate)
	}
}
