// Package trace is a dependency-free, allocation-conscious span tracer
// for the hotspot-detection stack. It decomposes the paper's headline
// ODST metric (overall detection simulation time) from one opaque number
// into a per-stage budget: every scored request or scanned window becomes
// a trace whose child spans attribute time to rasterization, feature
// extraction, neural inference, and lithography-simulation corners.
//
// Spans are carried through context.Context. A request (or scan window,
// or benchmark run) starts a root span; downstream stages start child
// spans from the same context. When the root span ends, the completed
// trace is handed to a lock-sharded ring-buffer store under a tail
// sampling policy: traces flagged slow, errored, degraded, shed, or
// panicked are always retained, the rest are sampled at a configured
// rate. Tail sampling — deciding after the trace is complete — is what
// guarantees the interesting 0.1% is never lost while normal traffic
// stays cheap to keep.
//
// Tracing is zero-cost when disabled: Start on a context without an
// enabled tracer performs two context lookups and returns a nil span,
// and every Span method is a nil-receiver no-op, so instrumented hot
// paths need no conditional plumbing.
//
// Like internal/resilience, the tracer takes an injectable clock so
// span timing and slow-trace classification are testable without
// wall-clock sleeps.
package trace

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/telemetry"
)

// Clock abstracts time for span timestamps. resilience.Clock satisfies
// it, so tests can drive tracing and breakers from one fake clock.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// TraceID identifies one trace (a tree of spans).
type TraceID uint64

// String renders the id as fixed-width hex, the form the HTTP debug
// endpoints accept.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// Flag marks a trace as belonging to a tail-sampling class that is
// always retained.
type Flag uint32

// Retention classes. A trace carrying any flag bypasses probabilistic
// sampling.
const (
	// FlagSlow is set automatically when the root span's duration
	// reaches Config.SlowThreshold.
	FlagSlow Flag = 1 << iota
	// FlagError marks traces whose request failed (5xx, scoring error).
	FlagError
	// FlagDegraded marks traces answered by the fallback detector or
	// rejected by an open breaker.
	FlagDegraded
	// FlagShed marks traces rejected by admission control.
	FlagShed
	// FlagPanic marks traces that recovered a panic.
	FlagPanic
)

// flagNames orders flags for rendering.
var flagNames = []struct {
	f    Flag
	name string
}{
	{FlagSlow, "slow"},
	{FlagError, "error"},
	{FlagDegraded, "degraded"},
	{FlagShed, "shed"},
	{FlagPanic, "panic"},
}

// Names expands a flag set into its lower-case names.
func (f Flag) Names() []string {
	var out []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Attr is one key=value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for Attr{k, v}.
func A(k, v string) Attr { return Attr{Key: k, Value: v} }

// Event is a point-in-time annotation within a span (a decision, not a
// duration): "breaker-open", "shed", "batch-joined".
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed stage of a trace. A span is owned by the goroutine
// that started it; concurrent stages (scan workers, corner workers)
// each start their own span from a shared parent context. All methods
// are nil-receiver no-ops so disabled tracing costs nothing at call
// sites.
type Span struct {
	tr   *Tracer
	data *traceData

	traceID  TraceID
	id       SpanID
	parentID SpanID
	name     string
	start    time.Time
	attrs    []Attr
	events   []Event
	errMsg   string
}

// TraceID returns the id of the trace this span belongs to (0 for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.traceID
}

// ID returns the span id (0 for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(k string, v int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: strconv.Itoa(v)})
}

// AddEvent records a point-in-time annotation.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, Time: s.tr.now(), Attrs: attrs})
}

// SetError records err on the span and flags the whole trace for tail
// retention. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
	s.data.setFlag(FlagError)
}

// SetFlag marks the span's trace with a tail-retention class.
func (s *Span) SetFlag(f Flag) {
	if s == nil {
		return
	}
	s.data.setFlag(f)
}

// End completes the span. Ending the root span finalizes the trace and
// submits it to the store under the tail-sampling policy; child spans
// that end after the root (e.g. an abandoned primary scoring goroutine
// finishing past its deadline) are dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tr.now()
	s.tr.observeStage(s.name, end.Sub(s.start))
	s.data.endSpan(s, end)
}

// traceData accumulates the ended spans of one in-flight trace.
type traceData struct {
	tr   *Tracer
	id   TraceID
	root SpanID

	mu        sync.Mutex
	spans     []SpanRecord
	flags     Flag
	finalized bool
}

func (d *traceData) setFlag(f Flag) {
	d.mu.Lock()
	d.flags |= f
	d.mu.Unlock()
}

func (d *traceData) endSpan(s *Span, end time.Time) {
	rec := SpanRecord{
		SpanID:   s.id.String(),
		ParentID: "",
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
		Error:    s.errMsg,
	}
	if s.parentID != 0 {
		rec.ParentID = s.parentID.String()
	}
	d.mu.Lock()
	if d.finalized {
		// Late child of an already-finished trace (background work that
		// outlived its request): nothing to attach it to.
		d.mu.Unlock()
		return
	}
	d.spans = append(d.spans, rec)
	if s.id == d.root {
		d.finalized = true
		spans := d.spans
		flags := d.flags
		d.mu.Unlock()
		d.tr.finish(d.id, rec, spans, flags)
		return
	}
	d.mu.Unlock()
}

// Config tunes a Tracer. The zero value is usable: keep everything,
// default capacity, wall clock.
type Config struct {
	// Capacity is how many finished traces the ring store retains
	// (default 256). Oldest traces are evicted per shard.
	Capacity int
	// Shards is the number of store shards (default 8, rounded up to a
	// power of two).
	Shards int
	// SampleRate is the probability an unflagged trace is retained
	// ((0, 1], out-of-range values mean 1). Flagged traces are always
	// retained regardless of the rate.
	SampleRate float64
	// SlowThreshold flags traces whose root span lasts at least this
	// long. Zero disables the slow class.
	SlowThreshold time.Duration
	// Clock drives span timestamps (default the wall clock).
	Clock Clock
	// Rand is the sampling coin ([0,1) variate); injectable so tail
	// sampling is deterministic in tests. Default math/rand.
	Rand func() float64
	// Metrics, when non-nil, receives a per-stage span-duration
	// histogram hotspot_stage_seconds{stage=<span name>} so ODST
	// decomposes directly in /metrics.
	Metrics *telemetry.Registry
}

// Tracer creates spans and retains finished traces. Safe for concurrent
// use.
type Tracer struct {
	cfg     Config
	enabled atomic.Bool
	nextID  atomic.Uint64

	shards    []storeShard
	shardMask uint64

	kept    atomic.Int64
	sampled atomic.Int64 // unflagged traces dropped by the sampler

	stageMu sync.Mutex
	stages  map[string]*telemetry.Histogram
}

// New constructs an enabled Tracer.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.Rand == nil {
		rng := rand.New(rand.NewSource(cfg.Clock.Now().UnixNano()))
		var mu sync.Mutex
		cfg.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64()
		}
	}
	per := (cfg.Capacity + shards - 1) / shards
	if per < 1 {
		per = 1
	}
	t := &Tracer{
		cfg:       cfg,
		shards:    make([]storeShard, shards),
		shardMask: uint64(shards - 1),
		stages:    make(map[string]*telemetry.Histogram),
	}
	for i := range t.shards {
		t.shards[i].ring = make([]*TraceRecord, per)
	}
	t.nextID.Store(uint64(cfg.Clock.Now().UnixNano()))
	t.enabled.Store(true)
	if cfg.Metrics != nil {
		cfg.Metrics.SetHelp("hotspot_stage_seconds",
			"Span durations per pipeline stage: the ODST decomposition.")
		cfg.Metrics.SetHelp("traces_retained_total", "Traces kept by the tail sampler.")
		cfg.Metrics.SetHelp("traces_sampled_out_total", "Unflagged traces dropped by probabilistic sampling.")
	}
	return t
}

// SetEnabled toggles the tracer at runtime. While disabled, Start
// returns nil spans and running traces are abandoned on completion.
func (t *Tracer) SetEnabled(v bool) {
	if t != nil {
		t.enabled.Store(v)
	}
}

// Disabled reports whether the tracer is off (or nil): one atomic load,
// no allocations — the fast path guarding every instrumentation site.
func (t *Tracer) Disabled() bool {
	return t == nil || !t.enabled.Load()
}

// Stats reports tail-sampling outcomes since construction.
type Stats struct {
	// Kept is how many finished traces entered the store.
	Kept int64
	// SampledOut is how many unflagged traces the sampler dropped.
	SampledOut int64
}

// Stats returns cumulative sampling counters.
func (t *Tracer) Stats() Stats {
	return Stats{Kept: t.kept.Load(), SampledOut: t.sampled.Load()}
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.cfg.Clock.Now()
}

func (t *Tracer) newID() uint64 {
	// Sequential ids seeded from the clock: unique within a process
	// lifetime, cheap, and stable enough for debug endpoints.
	return t.nextID.Add(1)
}

// observeStage feeds the per-stage duration histogram, creating the
// series on first use. Handles are cached so the steady-state cost is
// one mutex-guarded map read plus the histogram's atomic adds.
func (t *Tracer) observeStage(stage string, d time.Duration) {
	if t.cfg.Metrics == nil {
		return
	}
	t.stageMu.Lock()
	h, ok := t.stages[stage]
	if !ok {
		h = t.cfg.Metrics.Histogram("hotspot_stage_seconds", nil, telemetry.L("stage", stage))
		t.stages[stage] = h
	}
	t.stageMu.Unlock()
	h.ObserveDuration(d)
}

// finish applies tail sampling to a completed trace and stores it when
// retained.
func (t *Tracer) finish(id TraceID, root SpanRecord, spans []SpanRecord, flags Flag) {
	if t.Disabled() {
		return
	}
	if t.cfg.SlowThreshold > 0 && root.Duration >= t.cfg.SlowThreshold {
		flags |= FlagSlow
	}
	if flags == 0 && t.cfg.Rand() >= t.cfg.SampleRate {
		t.sampled.Add(1)
		if t.cfg.Metrics != nil {
			t.cfg.Metrics.Counter("traces_sampled_out_total").Inc()
		}
		return
	}
	rec := &TraceRecord{
		TraceID:  id.String(),
		Root:     root.Name,
		Start:    root.Start,
		Duration: root.Duration,
		Flags:    flags.Names(),
		Spans:    spans,
	}
	t.kept.Add(1)
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Counter("traces_retained_total").Inc()
	}
	t.store(uint64(id), rec)
}
