// Context plumbing: the tracer and the current span travel through
// context.Context so instrumentation sites need no extra parameters.

package trace

import "context"

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context from which Start creates root spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// FromContext returns the context's current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Disabled reports whether tracing is off for this context: no current
// span and no enabled tracer. The check is two context lookups and one
// atomic load, with no allocations — instrumented hot paths may call it
// every iteration.
func Disabled(ctx context.Context) bool {
	if FromContext(ctx) != nil {
		return false
	}
	return TracerFrom(ctx).Disabled()
}

// Start begins a span named name: a child of the context's current span
// when one exists, otherwise a new root trace on the context's tracer.
// The returned context carries the new span for further nesting. When
// tracing is disabled (no tracer, or tracer off) it returns ctx
// unchanged and a nil span, at zero allocation cost.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		if parent.tr.Disabled() {
			return ctx, nil
		}
		s := &Span{
			tr:       parent.tr,
			data:     parent.data,
			traceID:  parent.traceID,
			id:       SpanID(parent.tr.newID()),
			parentID: parent.id,
			name:     name,
			start:    parent.tr.now(),
			attrs:    attrs,
		}
		return context.WithValue(ctx, spanKey, s), s
	}
	tr := TracerFrom(ctx)
	if tr.Disabled() {
		return ctx, nil
	}
	id := TraceID(tr.newID())
	data := &traceData{tr: tr, id: id}
	s := &Span{
		tr:      tr,
		data:    data,
		traceID: id,
		id:      SpanID(tr.newID()),
		name:    name,
		start:   tr.now(),
		attrs:   attrs,
	}
	data.root = s.id
	return context.WithValue(ctx, spanKey, s), s
}
