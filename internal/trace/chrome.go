// Chrome trace_event export: renders retained traces in the JSON array
// format consumed by about:tracing and Perfetto, so a served request or
// an offline benchmark run can be inspected as a flame chart.
//
// Each trace becomes one "process" (pid) named after its root span;
// spans become complete ("X") events. Because concurrent sibling spans
// (scan workers, lithosim corners) overlap in time, spans are assigned
// to "thread" lanes greedily — a span goes to the first lane free at
// its start time — which renders parallelism as parallel rows instead
// of bogus nesting.

package trace

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the trace_event array.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`            // microseconds
	Dur   int64             `json:"dur,omitempty"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

func micros(t time.Time, base time.Time) int64 {
	return t.Sub(base).Microseconds()
}

// WriteChrome renders traces as a Chrome trace_event JSON array.
// Timestamps are rebased to the earliest span so the viewer opens at
// t=0 regardless of wall-clock epoch.
func WriteChrome(w io.Writer, traces []*TraceRecord) error {
	var events []chromeEvent
	var base time.Time
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			if base.IsZero() || sp.Start.Before(base) {
				base = sp.Start
			}
		}
	}
	for ti, tr := range traces {
		pid := ti + 1
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]string{"name": tr.Root + " [" + tr.TraceID + "]"},
		})
		lanes := assignLanes(tr.Spans)
		for si, sp := range tr.Spans {
			args := make(map[string]string, len(sp.Attrs)+2)
			args["traceId"] = tr.TraceID
			if sp.ParentID != "" {
				args["parent"] = sp.ParentID
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			if sp.Error != "" {
				args["error"] = sp.Error
			}
			dur := sp.Duration.Microseconds()
			if dur < 1 {
				dur = 1 // sub-microsecond spans still render
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Phase: "X",
				TS: micros(sp.Start, base), Dur: dur,
				PID: pid, TID: lanes[si],
				Args: args,
			})
			for _, ev := range sp.Events {
				evArgs := make(map[string]string, len(ev.Attrs))
				for _, a := range ev.Attrs {
					evArgs[a.Key] = a.Value
				}
				events = append(events, chromeEvent{
					Name: ev.Name, Phase: "i",
					TS: micros(ev.Time, base),
					PID: pid, TID: lanes[si],
					Args: evArgs,
				})
			}
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// assignLanes gives each span a lane such that spans sharing a lane are
// either disjoint in time or properly nested — exactly the invariant
// the Chrome viewer needs to stack "X" events on one thread row. A
// sequential parent→child chain stays in lane 0 and renders as a flame
// graph; concurrent siblings (scan workers, corner workers) spill to
// higher lanes and render side by side. Greedy first-fit in start
// order, each lane tracking its stack of still-open intervals.
func assignLanes(spans []SpanRecord) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by start time, longest span first on ties, so a
	// parent sharing a start timestamp with its child (coarse or fake
	// clocks) is placed before the child and the child can nest into
	// its lane. Record order alone is not chronological: children are
	// recorded before their parents.
	before := func(a, b SpanRecord) bool {
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.Duration > b.Duration
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && before(spans[order[j]], spans[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	parentOf := make(map[string]string, len(spans))
	for _, sp := range spans {
		parentOf[sp.SpanID] = sp.ParentID
	}
	// isAncestor reports whether span a is on span b's parent chain.
	isAncestor := func(a, b string) bool {
		for p := parentOf[b]; p != ""; p = parentOf[p] {
			if p == a {
				return true
			}
		}
		return false
	}
	type openSpan struct {
		id  string
		end time.Time
	}
	lanes := make([]int, len(spans))
	var open [][]openSpan // per lane: stack of still-open spans
	for _, si := range order {
		sp := spans[si]
		end := sp.Start.Add(sp.Duration)
		placed := false
		for li := range open {
			stack := open[li]
			// Close spans that ended before this one starts.
			for len(stack) > 0 && !stack[len(stack)-1].end.After(sp.Start) {
				stack = stack[:len(stack)-1]
			}
			// The lane fits when it is idle, or its innermost open span
			// is an ancestor that fully contains this one: true
			// parent-chain nesting, never sibling-on-sibling stacking.
			if len(stack) == 0 ||
				(isAncestor(stack[len(stack)-1].id, sp.SpanID) && !stack[len(stack)-1].end.Before(end)) {
				lanes[si] = li
				open[li] = append(stack, openSpan{sp.SpanID, end})
				placed = true
				break
			}
			open[li] = stack
		}
		if !placed {
			lanes[si] = len(open)
			open = append(open, []openSpan{{sp.SpanID, end}})
		}
	}
	return lanes
}
