// Drift scores over binned distributions. Both metrics compare the
// live window's bin proportions against the baseline's and are computed
// from integer counts, so they inherit the sketches' order independence.

package qualitymon

import "math"

// driftEps smooths zero bins before taking logs. PSI is undefined when
// either distribution has an empty bin the other does not; the standard
// fix is to floor proportions at a small epsilon, which bounds the
// per-bin contribution at ~ln(1/eps) instead of infinity.
const driftEps = 1e-4

// proportions normalizes counts to a probability vector with epsilon
// flooring. An all-zero vector returns nil (no data, not "no drift").
func proportions(counts []int64) []float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		p := float64(c) / float64(total)
		if p < driftEps {
			p = driftEps
		}
		out[i] = p
	}
	return out
}

// PSI is the Population Stability Index between a live and a baseline
// bin-count vector: sum over bins of (p_live - p_base) * ln(p_live /
// p_base). The conventional reading: < 0.1 stable, 0.1-0.25 moderate
// shift, > 0.25 significant shift (the default page threshold). Returns
// 0 when either side has no data — drift is only meaningful once both
// distributions exist.
func PSI(live, base []int64) float64 {
	p, q := proportions(live), proportions(base)
	if p == nil || q == nil || len(p) != len(q) {
		return 0
	}
	var psi float64
	for i := range p {
		psi += (p[i] - q[i]) * math.Log(p[i]/q[i])
	}
	return psi
}

// MaxBinKL is the largest single-bin contribution to KL(live ||
// baseline): max over bins of p * ln(p/q). Where PSI integrates shift
// across the distribution, this localizes it — a mass spike into one
// bin (the signature of degenerate inputs or a stuck feature) shows up
// here first. Returns 0 when either side has no data.
func MaxBinKL(live, base []int64) float64 {
	p, q := proportions(live), proportions(base)
	if p == nil || q == nil || len(p) != len(q) {
		return 0
	}
	var worst float64
	for i := range p {
		if kl := p[i] * math.Log(p[i]/q[i]); kl > worst {
			worst = kl
		}
	}
	return worst
}
