// Monitor is the live aggregation point: serve, scanfarm, and the
// router feed scored events in; drift scores, online confusion, SLO
// burn rates, and the alert state machine come out — through the
// telemetry registry, the /debug/quality JSON endpoint, and trace-store
// drift events. A nil *Monitor is a valid disabled monitor: every
// method no-ops, so call sites thread it unconditionally.

package qualitymon

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// Event is one scored clip as seen by a tap point.
type Event struct {
	Detector  string
	Stage     string // "primary", "fallback", "scan", router stage names
	Score     float64
	Threshold float64 // the detector's hot cut, for verdict + low-confidence margin
	// Clip is the scored geometry (canonical form preferred); HasClip
	// gates the spot-checker and low-confidence tap, which both need it.
	Clip    layout.Clip
	HasClip bool
}

// LowConfidenceTap receives (fingerprint, clip, score, stage) for
// every observed event whose score lands within LowConfMargin of the
// detector's threshold — the sensor feed the active-learning data
// engine (internal/datengine) mines. The clip is the event's geometry
// so the tap can journal a labelable candidate, not just a key. It is
// called synchronously from Observe on whatever goroutine scored the
// clip, so implementations must be concurrency-safe and fast; sampling
// decisions should key on the fingerprint (content-addressed,
// order-independent), never on arrival order.
type LowConfidenceTap func(fp layout.Fingerprint, clip layout.Clip, score float64, stage string)

// SpotMissTap receives every spot-check where the shadow oracle
// disagreed with the model — the highest-value mining signal the
// monitor produces, since a miss is a *confirmed* labeling error, not
// just uncertainty. Called from the spot-check worker goroutine (or
// inline in sync mode); implementations must be concurrency-safe.
type SpotMissTap func(clip layout.Clip, predicted, actual bool)

// Options configures a Monitor. The zero value gets sane defaults from
// New.
type Options struct {
	Clock Clock // nil = wall clock

	// SubWindow is the sliding-window rotation granularity; FastSubs
	// and SlowSubs are the fast/slow window lengths in sub-windows.
	// Defaults: 10s sub-windows, fast = 3 (30s), slow = 18 (3m).
	SubWindow time.Duration
	FastSubs  int
	SlowSubs  int

	// Bins is the sketch resolution for series without a baseline
	// (baseline entries carry their own edges). Default 20.
	Bins int

	// DriftThreshold is the PSI at which a series is drifting hard
	// enough to page (warning at half). Default 0.25, the conventional
	// "significant shift" PSI cut.
	DriftThreshold float64

	// SLOTarget is the good-event fraction objective (e.g. 0.99);
	// PageBurn is the fast-window burn-rate multiple that pages
	// (default 2: burning error budget at twice the sustainable rate).
	// Slow-window burn >= 1 raises warning. Values outside (0, 1)
	// disable burn alerting.
	SLOTarget float64
	PageBurn  float64

	// ClearHold is how long the alert inputs must stay below a level
	// before the state steps down (hysteresis; default 2*SubWindow).
	ClearHold time.Duration

	// SpotCheckRate is the fraction of scored clips rescored by the
	// shadow oracle, selected deterministically by content fingerprint
	// (0 disables). Oracle is the ground-truth scorer (lithosim).
	SpotCheckRate float64
	Oracle        func(layout.Clip) (bool, error)
	// SpotQueue bounds the async spot-check backlog (default 256);
	// overflow increments a drop counter instead of blocking the
	// scoring path. SyncSpotChecks runs checks inline for
	// deterministic tests and CLI scans.
	SpotQueue      int
	SyncSpotChecks bool

	// LowConfMargin enables the low-confidence tap for scores within
	// the margin of the threshold (0 disables).
	LowConfMargin    float64
	LowConfidenceTap LowConfidenceTap
	// SpotMissTap, when non-nil, receives spot-check mismatches (needs
	// an Oracle and SpotCheckRate > 0 to ever fire).
	SpotMissTap SpotMissTap

	Logf func(format string, args ...any) // nil = silent
}

// seriesKey identifies one (detector, stage) sketch.
type seriesKey struct{ detector, stage string }

// alert state machine levels, exported through
// hotspot_quality_alert_state and /debug/quality.
const (
	AlertOK      = 0
	AlertWarning = 1
	AlertPage    = 2
)

func alertName(s int) string {
	switch s {
	case AlertWarning:
		return "warning"
	case AlertPage:
		return "page"
	default:
		return "ok"
	}
}

// qmMetrics are the event-time counter handles, bound once by
// BindMetrics and read through an atomic pointer so late binding (after
// traffic started) is safe.
type qmMetrics struct {
	spotChecks     *telemetry.Counter
	spotMismatches *telemetry.Counter
	spotErrors     *telemetry.Counter
	spotDropped    *telemetry.Counter
	driftEvents    *telemetry.Counter
}

// Monitor aggregates quality signals. All exported methods are safe for
// concurrent use; a nil receiver disables everything.
type Monitor struct {
	opts   Options
	clock  Clock
	tracer atomic.Pointer[trace.Tracer]
	mets   atomic.Pointer[qmMetrics]

	mu       sync.Mutex
	sketches map[seriesKey]*sketch
	conf     *windowRing // confusion counters: tp, fp, tn, fn
	slo      *windowRing // slo counters: good, bad
	// alert state machine: upgrades are immediate, downgrades wait out
	// ClearHold below the current level.
	alertState int
	belowSince time.Time // zero = inputs currently at/above alertState

	// cumulative spot-check counters (also exported as telemetry
	// counters when bound).
	spotSampled, spotDropped, spotErrors, spotMismatch atomic.Int64

	spotq   chan spotJob
	pending atomic.Int64 // queued + running spot checks, for Drain
	wg      sync.WaitGroup
	closed  atomic.Bool
}

const (
	confTP = iota
	confFP
	confTN
	confFN
	confWidth
)

const (
	sloGood = iota
	sloBad
	sloWidth
)

// New builds a Monitor, applying defaults for zero Options fields, and
// starts the spot-check worker when an oracle is configured in async
// mode. Call Close to stop the worker.
func New(opts Options) *Monitor {
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.SubWindow <= 0 {
		opts.SubWindow = 10 * time.Second
	}
	if opts.FastSubs <= 0 {
		opts.FastSubs = 3
	}
	if opts.SlowSubs <= 0 {
		opts.SlowSubs = 18
	}
	if opts.SlowSubs < opts.FastSubs {
		opts.SlowSubs = opts.FastSubs
	}
	if opts.Bins <= 0 {
		opts.Bins = 20
	}
	if opts.DriftThreshold <= 0 {
		opts.DriftThreshold = 0.25
	}
	if opts.PageBurn <= 0 {
		opts.PageBurn = 2
	}
	if opts.ClearHold <= 0 {
		opts.ClearHold = 2 * opts.SubWindow
	}
	if opts.SpotQueue <= 0 {
		opts.SpotQueue = 256
	}
	m := &Monitor{
		opts:     opts,
		clock:    opts.Clock,
		sketches: make(map[seriesKey]*sketch),
		conf:     newWindowRing(opts.SubWindow, opts.SlowSubs, confWidth),
		slo:      newWindowRing(opts.SubWindow, opts.SlowSubs, sloWidth),
	}
	if opts.Oracle != nil && opts.SpotCheckRate > 0 && !opts.SyncSpotChecks {
		m.spotq = make(chan spotJob, opts.SpotQueue)
		m.wg.Add(1)
		go m.spotWorker()
	}
	return m
}

// Close stops the spot-check worker and waits for in-flight checks.
func (m *Monitor) Close() {
	if m == nil || !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.spotq != nil {
		close(m.spotq)
	}
	m.wg.Wait()
}

func (m *Monitor) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// BindTracer routes drift events into tr's trace store (as "quality.
// drift" root spans flagged degraded, so tail sampling always retains
// them). Safe to call after traffic started.
func (m *Monitor) BindTracer(tr *trace.Tracer) {
	if m == nil || tr == nil {
		return
	}
	m.tracer.Store(tr)
}

// Observe records one scored clip: bins the score into the (detector,
// stage) sketch, hands low-confidence events to the tap, and samples
// the spot-checker. The hot-path cost with all extras disabled is one
// mutex plus one binary search and an integer add.
func (m *Monitor) Observe(ev Event) {
	if m == nil {
		return
	}
	at := m.clock.Now()
	k := seriesKey{ev.Detector, ev.Stage}
	m.mu.Lock()
	sk, ok := m.sketches[k]
	if !ok {
		sk = newSketch(defaultEdges(m.opts.Bins), m.opts.SubWindow, m.opts.SlowSubs)
		m.sketches[k] = sk
	}
	sk.observe(ev.Score, at, sk.ring.epochOf(at))
	m.mu.Unlock()

	if !ev.HasClip {
		return
	}
	var fp layout.Fingerprint
	haveFP := false
	if tap := m.opts.LowConfidenceTap; tap != nil && m.opts.LowConfMargin > 0 {
		if d := ev.Score - ev.Threshold; d <= m.opts.LowConfMargin && d >= -m.opts.LowConfMargin {
			fp = ev.Clip.Fingerprint()
			haveFP = true
			tap(fp, ev.Clip, ev.Score, ev.Stage)
		}
	}
	if m.opts.Oracle != nil && m.opts.SpotCheckRate > 0 {
		if !haveFP {
			fp = ev.Clip.Fingerprint()
		}
		if sampleFingerprint(fp, m.opts.SpotCheckRate) {
			m.enqueueSpot(spotJob{clip: ev.Clip, predicted: ev.Score >= ev.Threshold, at: at})
		}
	}
}

// ReportServeOutcome feeds the SLO window from the serving path: ok is
// whether the primary answered within its deadline (a degraded or
// failed request spends error budget even before the oracle weighs in).
func (m *Monitor) ReportServeOutcome(ok bool) {
	if m == nil {
		return
	}
	m.addSLO(m.clock.Now(), ok)
}

func (m *Monitor) addSLO(at time.Time, good bool) {
	idx := sloBad
	if good {
		idx = sloGood
	}
	m.mu.Lock()
	m.slo.add(at, m.slo.epochOf(m.clock.Now()), idx, 1)
	m.mu.Unlock()
}

// Reset clears all live windows — called by the registry when a new
// model generation swaps in (or is rolled back), so the old model's
// traffic never counts against the new one. Installed baselines and
// cumulative counters survive; InstallBaseline replaces the reference
// when the new generation ships its own sidecar. The alert state is
// deliberately NOT zeroed: it steps down through the state machine's
// ClearHold hysteresis once the inputs actually look healthy, so a
// rollback clears a page only by demonstrating clean traffic.
func (m *Monitor) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sk := range m.sketches {
		sk.ring.reset()
		sk.over = false
	}
	m.conf.reset()
	m.slo.reset()
}

// InstallBaseline makes b the drift reference: existing baselines are
// dropped, and any series whose bin edges differ from its entry is
// rebuilt on the entry's edges (resetting its window, which is what a
// model change means anyway).
func (m *Monitor) InstallBaseline(b *Baseline) {
	if m == nil || b == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sk := range m.sketches {
		sk.baseline = nil
	}
	for _, e := range b.Entries {
		k := seriesKey{e.Detector, e.Stage}
		sk, ok := m.sketches[k]
		if !ok || !equalEdges(sk.edges, e.Edges) {
			sk = newSketch(e.Edges, m.opts.SubWindow, m.opts.SlowSubs)
			m.sketches[k] = sk
		}
		sk.baseline = append([]int64(nil), e.Counts...)
	}
}

// InstallBaselineSidecar loads the quality baseline persisted next to
// modelPath (see SidecarPath) and installs it. A missing sidecar is
// normal (logged, not an error): the model predates quality baselines
// or the trainer skipped -quality-baseline.
func (m *Monitor) InstallBaselineSidecar(modelPath string) {
	if m == nil {
		return
	}
	path := SidecarPath(modelPath)
	if _, err := os.Stat(path); err != nil {
		m.logf("qualitymon: no baseline sidecar at %s", path)
		return
	}
	b, err := LoadBaselineFile(path)
	if err != nil {
		m.logf("qualitymon: %v", err)
		return
	}
	m.InstallBaseline(b)
	m.logf("qualitymon: installed baseline %s (%d series)", path, len(b.Entries))
}

func equalEdges(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BindMetrics exports the monitor through reg:
//
//	hotspot_drift_score{detector,stage}      gauge  PSI, fast window vs baseline
//	hotspot_drift_max_bin_kl{detector,stage} gauge  worst single-bin KL term
//	hotspot_online_recall                    gauge  spot-check recall, slow window
//	hotspot_online_false_alarm               gauge  spot-check false-alarm rate
//	hotspot_slo_burn_rate{window}            gauge  fast/slow burn multiple
//	hotspot_quality_alert_state              gauge  0 ok, 1 warning, 2 page
//	hotspot_spot_checks_total                counter sampled clips sent to the oracle
//	hotspot_spot_check_mismatches_total      counter oracle disagreed with the model
//	hotspot_spot_checks_dropped_total        counter queue-full drops
//	hotspot_spot_check_errors_total          counter oracle failures
//	hotspot_quality_drift_events_total       counter drift threshold crossings
//
// Gauges refresh on every scrape via OnCollect (which also advances the
// alert state machine), so alerting needs no background poller.
func (m *Monitor) BindMetrics(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.SetHelp("hotspot_drift_score", "Population Stability Index of the live score distribution vs the training baseline, per detector and stage (fast window).")
	reg.SetHelp("hotspot_drift_max_bin_kl", "Largest single-bin KL contribution of live vs baseline score distribution.")
	reg.SetHelp("hotspot_online_recall", "Shadow-oracle spot-check recall over the slow window (0 when no checks).")
	reg.SetHelp("hotspot_online_false_alarm", "Shadow-oracle spot-check false-alarm rate over the slow window.")
	reg.SetHelp("hotspot_slo_burn_rate", "Error-budget burn-rate multiple per alert window (1 = burning exactly the budget).")
	reg.SetHelp("hotspot_quality_alert_state", "Quality alert state machine: 0 ok, 1 warning, 2 page.")
	reg.SetHelp("hotspot_spot_checks_total", "Clips sampled for shadow-oracle rescoring.")
	reg.SetHelp("hotspot_spot_check_mismatches_total", "Spot checks where the oracle verdict disagreed with the model's.")
	reg.SetHelp("hotspot_spot_checks_dropped_total", "Spot checks dropped because the queue was full.")
	reg.SetHelp("hotspot_spot_check_errors_total", "Spot checks whose oracle simulation failed.")
	reg.SetHelp("hotspot_quality_drift_events_total", "Rising-edge drift threshold crossings (each also emits a quality.drift trace).")
	m.mets.Store(&qmMetrics{
		spotChecks:     reg.Counter("hotspot_spot_checks_total"),
		spotMismatches: reg.Counter("hotspot_spot_check_mismatches_total"),
		spotErrors:     reg.Counter("hotspot_spot_check_errors_total"),
		spotDropped:    reg.Counter("hotspot_spot_checks_dropped_total"),
		driftEvents:    reg.Counter("hotspot_quality_drift_events_total"),
	})
	reg.OnCollect(func() {
		snap := m.Snapshot()
		for _, sk := range snap.Sketches {
			ls := []telemetry.Label{telemetry.L("detector", sk.Detector), telemetry.L("stage", sk.Stage)}
			reg.Gauge("hotspot_drift_score", ls...).Set(sk.PSI)
			reg.Gauge("hotspot_drift_max_bin_kl", ls...).Set(sk.MaxBinKL)
		}
		reg.Gauge("hotspot_online_recall").Set(snap.SpotCheck.Recall)
		reg.Gauge("hotspot_online_false_alarm").Set(snap.SpotCheck.FalseAlarm)
		reg.Gauge("hotspot_slo_burn_rate", telemetry.L("window", "fast")).Set(snap.SLO.BurnFast)
		reg.Gauge("hotspot_slo_burn_rate", telemetry.L("window", "slow")).Set(snap.SLO.BurnSlow)
		reg.Gauge("hotspot_quality_alert_state").Set(float64(snap.Alert.State))
	})
}
