package qualitymon

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testBaseline() *Baseline {
	return &Baseline{Entries: []BaselineEntry{
		NewBaselineEntry("MLP", "primary", []float64{0.1, 0.2, 0.2, 0.3, 0.8, 0.9}, 4),
		NewBaselineEntry("SVM", "fallback", []float64{0.4, 0.5, 0.6}, 4),
	}}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob.qb")
	b := testBaseline()
	if err := SaveBaselineFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != baselineVersion {
		t.Fatalf("version = %d, want %d", got.Version, baselineVersion)
	}
	want := testBaseline()
	want.Sort()
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatalf("entries round-trip mismatch:\ngot  %+v\nwant %+v", got.Entries, want.Entries)
	}
}

func TestBaselineEntryOrderIndependent(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	rev := []float64{0.7, 0.3, 0.5, 0.1, 0.9}
	a := NewBaselineEntry("d", "s", scores, 8)
	b := NewBaselineEntry("d", "s", rev, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("entry depends on score order:\n%+v\n%+v", a, b)
	}
}

func TestBaselineCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.qb")
	if err := SaveBaselineFile(path, testBaseline()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit: the CRC must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(path); err == nil {
		t.Fatalf("bit-flipped baseline loaded without error")
	}
	// Truncate mid-payload: torn write.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(path); err == nil {
		t.Fatalf("truncated baseline loaded without error")
	}
	// Wrong magic.
	if err := os.WriteFile(path, append([]byte("NOTQB!!\n"), raw[8:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(path); err == nil {
		t.Fatalf("wrong-magic baseline loaded without error")
	}
}

func TestBaselineSaveDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := SaveBaseline(&a, testBaseline()); err != nil {
		t.Fatal(err)
	}
	// Reversed entry order must serialize identically (entries are
	// sorted on save).
	rev := testBaseline()
	rev.Entries[0], rev.Entries[1] = rev.Entries[1], rev.Entries[0]
	if err := SaveBaseline(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("baseline bytes depend on entry order")
	}
}

func TestBaselineValidates(t *testing.T) {
	bad := &Baseline{Entries: []BaselineEntry{{
		Detector: "d", Stage: "s",
		Edges:  []float64{0.5, 0.25}, // unsorted
		Counts: []int64{1, 1, 1},
	}}}
	var buf bytes.Buffer
	if err := SaveBaseline(&buf, bad); err == nil {
		t.Fatalf("unsorted edges accepted")
	}
	bad = &Baseline{Entries: []BaselineEntry{{
		Detector: "d", Stage: "s",
		Edges:  []float64{0.5},
		Counts: []int64{1}, // want len(edges)+1
	}}}
	buf.Reset()
	if err := SaveBaseline(&buf, bad); err == nil {
		t.Fatalf("count/edge length mismatch accepted")
	}
}

func TestSidecarPath(t *testing.T) {
	if got := SidecarPath("models/mlp.gob"); got != "models/mlp.gob.qb" {
		t.Fatalf("SidecarPath = %q", got)
	}
}
