package qualitymon

import (
	"testing"
)

// The monitor-overhead pair behind run_bench.sh chunk H
// (BENCH_monitor.json): the per-event cost of a live monitor vs the
// nil-monitor fast path every tap point ships with. The disabled cost
// is what every request pays when quality monitoring is off, so it must
// stay negligible (the ci gate holds the scan-path regression at 2%).

func BenchmarkMonitorObserve(b *testing.B) {
	m := New(Options{Clock: newFakeClock()})
	defer m.Close()
	ev := Event{Detector: "MLP", Stage: "primary", Score: 0.42, Threshold: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(ev)
	}
}

func BenchmarkMonitorObserveDisabled(b *testing.B) {
	var m *Monitor
	ev := Event{Detector: "MLP", Stage: "primary", Score: 0.42, Threshold: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(ev)
	}
}

func BenchmarkMonitorSnapshot(b *testing.B) {
	m := New(Options{Clock: newFakeClock()})
	defer m.Close()
	m.InstallBaseline(testBaseline())
	for i := 0; i < 1000; i++ {
		m.Observe(Event{Detector: "MLP", Stage: "primary", Score: float64(i%100) / 100})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Snapshot()
	}
}
