package qualitymon

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded settable clock shared by the tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowRingRotation(t *testing.T) {
	sub := 10 * time.Second
	r := newWindowRing(sub, 3, 1)
	base := time.Unix(1000, 0)
	ep := func(at time.Time) int64 { return r.epochOf(at) }

	r.add(base, ep(base), 0, 1)
	r.add(base.Add(sub), ep(base.Add(sub)), 0, 1)
	r.add(base.Add(2*sub), ep(base.Add(2*sub)), 0, 1)
	if got := r.merged(ep(base.Add(2*sub)), 3)[0]; got != 3 {
		t.Fatalf("3 sub-windows merged: got %d, want 3", got)
	}
	if got := r.merged(ep(base.Add(2*sub)), 1)[0]; got != 1 {
		t.Fatalf("fast window: got %d, want 1", got)
	}
	// Advancing one more sub-window drops the oldest slot when written.
	at := base.Add(3 * sub)
	r.add(at, ep(at), 0, 5)
	if got := r.merged(ep(at), 3)[0]; got != 7 {
		t.Fatalf("after rotation: got %d, want 7 (1+1+5)", got)
	}
	// A timestamp older than the ring's span is discarded, not counted
	// into a recycled slot.
	r.add(base.Add(-10*sub), ep(at), 0, 100)
	if got := r.merged(ep(at), 3)[0]; got != 7 {
		t.Fatalf("stale event leaked into ring: got %d, want 7", got)
	}
}

func TestWindowRingFutureEpochExcluded(t *testing.T) {
	r := newWindowRing(time.Second, 4, 1)
	base := time.Unix(2000, 0)
	r.add(base.Add(2*time.Second), r.epochOf(base.Add(2*time.Second)), 0, 1)
	// Merging "as of" base must not see the future slot.
	if got := r.merged(r.epochOf(base), 4)[0]; got != 0 {
		t.Fatalf("future slot visible in past merge: got %d", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	edges := []float64{0.25, 0.5, 0.75} // 4 bins over ~[0,1]
	counts := []int64{10, 10, 10, 10}
	p50 := quantile(edges, counts, 0.5)
	if math.Abs(p50-0.5) > 1e-9 {
		t.Fatalf("uniform p50 = %v, want 0.5", p50)
	}
	p99 := quantile(edges, counts, 0.99)
	if p99 <= 0.75 || p99 > 1.0 {
		t.Fatalf("uniform p99 = %v, want in (0.75, 1]", p99)
	}
	if !math.IsNaN(quantile(edges, []int64{0, 0, 0, 0}, 0.5)) {
		t.Fatalf("empty counts should produce NaN")
	}
	// All mass in one bin: every quantile lands inside that bin.
	q := quantile(edges, []int64{0, 0, 42, 0}, 0.5)
	if q <= 0.5 || q > 0.75 {
		t.Fatalf("single-bin p50 = %v, want in (0.5, 0.75]", q)
	}
}

func TestPSIAndMaxBinKL(t *testing.T) {
	base := []int64{25, 25, 25, 25}
	if psi := PSI(base, base); math.Abs(psi) > 1e-12 {
		t.Fatalf("PSI(self) = %v, want 0", psi)
	}
	if kl := MaxBinKL(base, base); math.Abs(kl) > 1e-12 {
		t.Fatalf("MaxBinKL(self) = %v, want 0", kl)
	}
	shifted := []int64{97, 1, 1, 1}
	if psi := PSI(shifted, base); psi < 0.25 {
		t.Fatalf("PSI(concentrated vs uniform) = %v, want >= 0.25", psi)
	}
	if kl := MaxBinKL(shifted, base); kl <= 0 {
		t.Fatalf("MaxBinKL(concentrated vs uniform) = %v, want > 0", kl)
	}
	// No data on either side means "no drift", not a spurious score.
	if psi := PSI(nil, base); psi != 0 {
		t.Fatalf("PSI(no live data) = %v, want 0", psi)
	}
	if psi := PSI([]int64{0, 0, 0, 0}, base); psi != 0 {
		t.Fatalf("PSI(zero live counts) = %v, want 0", psi)
	}
	// Mild shift scores below a hard one.
	mild := []int64{30, 25, 25, 20}
	if PSI(mild, base) >= PSI(shifted, base) {
		t.Fatalf("PSI ordering violated: mild %v >= hard %v", PSI(mild, base), PSI(shifted, base))
	}
}
