// Package qualitymon is the model-quality observability layer: streaming
// score-distribution sketches per (detector, stage), drift scoring
// against a training-time baseline (PSI and max-bin KL), a deterministic
// shadow-oracle spot-checker maintaining online confusion estimates, and
// a multi-window SLO burn-rate alert state machine. It is dependency
// free, exports through the telemetry registry, and is built so that
// every output is a pure function of the observed event multiset — not
// of arrival order — which is what makes /debug/quality byte-identical
// across worker counts (the same property the router equivalence layer
// pins for verdicts).
//
// The core data structure is a fixed-bin histogram over a ring of
// sub-windows keyed by absolute epoch (time / sub-window duration).
// Integer bin increments commute, sub-window assignment depends only on
// the event timestamp, and quantiles are interpolated from the merged
// bins rather than kept in an order-sensitive streaming sketch (GK, P²
// and friends reorder under concurrency). See DESIGN.md §16.
package qualitymon

import (
	"math"
	"sort"
	"time"
)

// Clock abstracts time for deterministic tests; resilience.Clock and
// serve's fake clocks satisfy it.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// subWindow is one rotation slot of a window ring: the counts observed
// during one absolute epoch.
type subWindow struct {
	epoch  int64 // at.UnixNano() / subDur; -1 = empty slot
	counts []int64
}

// windowRing is a ring of S sub-windows over a fixed-size counter
// vector. Events land in the slot for their timestamp's epoch; slots
// whose epoch has rotated out are lazily cleared. Merging the most
// recent F slots yields the fast window, all S the slow window. Not
// safe for concurrent use — callers hold the owning sketch's mutex.
type windowRing struct {
	subDur int64 // sub-window duration in nanoseconds
	width  int   // counters per sub-window
	subs   []subWindow
}

func newWindowRing(subDur time.Duration, slots, width int) *windowRing {
	if subDur <= 0 {
		subDur = 10 * time.Second
	}
	if slots <= 0 {
		slots = 1
	}
	r := &windowRing{subDur: int64(subDur), width: width, subs: make([]subWindow, slots)}
	r.reset()
	return r
}

func (r *windowRing) reset() {
	for i := range r.subs {
		r.subs[i].epoch = -1
		if r.subs[i].counts == nil {
			r.subs[i].counts = make([]int64, r.width)
		} else {
			clear(r.subs[i].counts)
		}
	}
}

func (r *windowRing) epochOf(at time.Time) int64 {
	return at.UnixNano() / r.subDur
}

// slot returns the sub-window for the epoch, clearing a stale occupant.
// Events older than the ring's span land nowhere (nil): counting them
// into a recycled slot would attribute stale traffic to the present.
func (r *windowRing) slot(epoch, now int64) *subWindow {
	if epoch <= now-int64(len(r.subs)) {
		return nil
	}
	s := &r.subs[((epoch%int64(len(r.subs)))+int64(len(r.subs)))%int64(len(r.subs))]
	if s.epoch != epoch {
		s.epoch = epoch
		clear(s.counts)
	}
	return s
}

// add counts one event with timestamp at into counter idx. now is the
// current epoch (usually epochOf(clock.Now())); it bounds how stale an
// event may be and guards slot recycling.
func (r *windowRing) add(at time.Time, now int64, idx int, delta int64) {
	if s := r.slot(r.epochOf(at), now); s != nil {
		s.counts[idx] += delta
	}
}

// merged sums the counter vectors of the last n sub-windows ending at
// the epoch containing now (inclusive). n > len(subs) is clamped.
func (r *windowRing) merged(now int64, n int) []int64 {
	if n <= 0 || n > len(r.subs) {
		n = len(r.subs)
	}
	out := make([]int64, r.width)
	for i := range r.subs {
		s := &r.subs[i]
		if s.epoch < 0 || s.epoch > now || s.epoch <= now-int64(n) {
			continue
		}
		for j, c := range s.counts {
			out[j] += c
		}
	}
	return out
}

// sketch is the per-(detector, stage) score-distribution state: bin
// edges shared with the baseline (when installed) and a window ring of
// per-bin counts. Owned by Monitor; guarded by Monitor.mu.
type sketch struct {
	// edges are sorted upper bounds; bin i counts scores v with
	// edges[i-1] < v <= edges[i], bin len(edges) is the overflow bin, so
	// there are len(edges)+1 bins.
	edges    []float64
	ring     *windowRing
	baseline []int64 // len(edges)+1 reference counts; nil = no baseline
	over     bool    // drift above threshold (edge-triggered event latch)
}

func newSketch(edges []float64, subDur time.Duration, slots int) *sketch {
	return &sketch{
		edges: append([]float64(nil), edges...),
		ring:  newWindowRing(subDur, slots, len(edges)+1),
	}
}

func (s *sketch) observe(v float64, at time.Time, now int64) {
	s.ring.add(at, now, sort.SearchFloat64s(s.edges, v), 1)
}

// defaultEdges spans [0,1] — where calibrated probabilities and the
// neural detectors' scores live — with bins-1 interior cuts. Raw scores
// outside [0,1] pile into the open end bins, which PSI still sees.
func defaultEdges(bins int) []float64 {
	if bins < 2 {
		bins = 2
	}
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = float64(i+1) / float64(bins)
	}
	return edges
}

// quantile interpolates the q-quantile (0..1) from binned counts,
// assuming mass is uniform within a bin. The open end bins borrow the
// width of their interior neighbor. Returns NaN when the counts are
// empty. Because it reads only (edges, merged counts), it is as
// order-independent as the counts themselves.
func quantile(edges []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(edges) == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum)+float64(c) < rank || c == 0 {
			cum += c
			continue
		}
		lo, hi := binBounds(edges, i)
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	_, hi := binBounds(edges, len(counts)-1)
	return hi
}

// binBounds returns the (lo, hi] interval bin i covers, synthesizing
// finite bounds for the open underflow/overflow bins.
func binBounds(edges []float64, i int) (lo, hi float64) {
	n := len(edges)
	width := 1.0
	if n >= 2 {
		width = edges[1] - edges[0]
	}
	switch {
	case i == 0:
		return edges[0] - width, edges[0]
	case i >= n:
		if n >= 2 {
			width = edges[n-1] - edges[n-2]
		}
		return edges[n-1], edges[n-1] + width
	default:
		return edges[i-1], edges[i]
	}
}
