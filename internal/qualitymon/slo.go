// SLO burn-rate math and the alert state machine, following the
// multi-window burn-rate pattern: with target T, the error budget is
// 1-T; the burn rate of a window is (bad fraction) / (1-T) — 1 means
// the budget exactly runs out over the SLO period, PageBurn (default 2)
// over the fast window pages, slow-window burn >= 1 warns. Drift joins
// the same machine: PSI >= DriftThreshold pages, >= half warns.
// Upgrades are immediate; downgrades wait out ClearHold below the
// current level, so a flapping signal cannot strobe the pager.
//
// The machine advances inside Snapshot (and therefore on every metrics
// scrape via OnCollect) rather than on a timer — the same pull-style
// contract the rest of the telemetry stack uses.

package qualitymon

import (
	"context"
	"math"
	"sort"
	"strconv"
	"time"

	"github.com/golitho/hsd/internal/trace"
)

// SketchSnapshot is one (detector, stage) series in a quality snapshot.
type SketchSnapshot struct {
	Detector string  `json:"detector"`
	Stage    string  `json:"stage"`
	Fast     int64   `json:"fast_count"`
	Slow     int64   `json:"slow_count"`
	Baseline bool    `json:"has_baseline"`
	PSI      float64 `json:"psi"`
	MaxBinKL float64 `json:"max_bin_kl"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
	// FastBins are the fast-window bin counts (the live side of PSI);
	// Edges their upper bounds.
	Edges    []float64 `json:"edges"`
	FastBins []int64   `json:"fast_bins"`
}

// ConfusionSnapshot is the slow-window spot-check confusion state.
type ConfusionSnapshot struct {
	TP int64 `json:"tp"`
	FP int64 `json:"fp"`
	TN int64 `json:"tn"`
	FN int64 `json:"fn"`
	// Recall and FalseAlarm are 0 when their denominator is empty
	// (check the counts, not the rates, for "no data").
	Recall     float64 `json:"recall"`
	FalseAlarm float64 `json:"false_alarm"`
}

// SpotCheckSnapshot covers the shadow-oracle pipeline.
type SpotCheckSnapshot struct {
	Sampled    int64             `json:"sampled_total"`
	Mismatches int64             `json:"mismatches_total"`
	Dropped    int64             `json:"dropped_total"`
	Errors     int64             `json:"errors_total"`
	Window     ConfusionSnapshot `json:"window"`
	Recall     float64           `json:"recall"`
	FalseAlarm float64           `json:"false_alarm"`
}

// SLOSnapshot is the burn-rate state.
type SLOSnapshot struct {
	Target   float64 `json:"target"`
	FastGood int64   `json:"fast_good"`
	FastBad  int64   `json:"fast_bad"`
	SlowGood int64   `json:"slow_good"`
	SlowBad  int64   `json:"slow_bad"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// AlertSnapshot is the state machine's output.
type AlertSnapshot struct {
	State    int     `json:"state"` // 0 ok, 1 warning, 2 page
	Name     string  `json:"name"`
	MaxPSI   float64 `json:"max_psi"`
	MaxPSIBy string  `json:"max_psi_series,omitempty"`
}

// Snapshot is the full /debug/quality document. With a fake clock and
// identical event multisets it is byte-identical regardless of worker
// count or arrival order.
type Snapshot struct {
	At        time.Time         `json:"at"`
	Sketches  []SketchSnapshot  `json:"sketches"`
	SpotCheck SpotCheckSnapshot `json:"spot_check"`
	SLO       SLOSnapshot       `json:"slo"`
	Alert     AlertSnapshot     `json:"alert"`
}

// ratio is a/(a+b), 0 when empty — snapshots must be JSON-marshalable,
// which NaN is not.
func ratio(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// finite maps NaN/Inf (empty-window quantiles) to 0 for JSON.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// burnRate is the burn multiple of a window: bad fraction over error
// budget. Disabled (or empty) inputs burn nothing.
func burnRate(good, bad int64, target float64) float64 {
	if target <= 0 || target >= 1 || good+bad == 0 {
		return 0
	}
	return (float64(bad) / float64(good+bad)) / (1 - target)
}

// Snapshot evaluates drift, confusion, and burn rates at the current
// clock reading, advances the alert state machine, emits drift events
// for rising-edge threshold crossings, and returns the full document.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{Alert: AlertSnapshot{Name: alertName(AlertOK)}}
	}
	now := m.clock.Now()
	type driftEvent struct {
		detector, stage string
		psi             float64
	}
	var events []driftEvent

	m.mu.Lock()
	epoch := m.conf.epochOf(now)
	keys := make([]seriesKey, 0, len(m.sketches))
	for k := range m.sketches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].detector != keys[j].detector {
			return keys[i].detector < keys[j].detector
		}
		return keys[i].stage < keys[j].stage
	})

	snap := Snapshot{At: now}
	maxPSI, maxPSIBy := 0.0, ""
	for _, k := range keys {
		sk := m.sketches[k]
		fast := sk.ring.merged(epoch, m.opts.FastSubs)
		slow := sk.ring.merged(epoch, m.opts.SlowSubs)
		ss := SketchSnapshot{
			Detector: k.detector,
			Stage:    k.stage,
			Baseline: sk.baseline != nil,
			Edges:    append([]float64(nil), sk.edges...),
			FastBins: fast,
			P50:      finite(quantile(sk.edges, fast, 0.50)),
			P90:      finite(quantile(sk.edges, fast, 0.90)),
			P99:      finite(quantile(sk.edges, fast, 0.99)),
		}
		for _, c := range fast {
			ss.Fast += c
		}
		for _, c := range slow {
			ss.Slow += c
		}
		if sk.baseline != nil {
			ss.PSI = PSI(fast, sk.baseline)
			ss.MaxBinKL = MaxBinKL(fast, sk.baseline)
		}
		if ss.PSI > maxPSI {
			maxPSI, maxPSIBy = ss.PSI, k.detector+"/"+k.stage
		}
		// Rising-edge drift latch: one event per excursion above the
		// threshold, re-armed only after PSI falls to 80% of it.
		thr := m.opts.DriftThreshold
		if ss.PSI >= thr && !sk.over {
			sk.over = true
			events = append(events, driftEvent{k.detector, k.stage, ss.PSI})
		} else if sk.over && ss.PSI < 0.8*thr {
			sk.over = false
		}
		snap.Sketches = append(snap.Sketches, ss)
	}

	conf := m.conf.merged(epoch, m.opts.SlowSubs)
	snap.SpotCheck = SpotCheckSnapshot{
		Sampled:    m.spotSampled.Load(),
		Mismatches: m.spotMismatch.Load(),
		Dropped:    m.spotDropped.Load(),
		Errors:     m.spotErrors.Load(),
		Window: ConfusionSnapshot{
			TP: conf[confTP], FP: conf[confFP], TN: conf[confTN], FN: conf[confFN],
			Recall:     ratio(conf[confTP], conf[confFN]),
			FalseAlarm: ratio(conf[confFP], conf[confTN]),
		},
	}
	snap.SpotCheck.Recall = snap.SpotCheck.Window.Recall
	snap.SpotCheck.FalseAlarm = snap.SpotCheck.Window.FalseAlarm

	fastSLO := m.slo.merged(epoch, m.opts.FastSubs)
	slowSLO := m.slo.merged(epoch, m.opts.SlowSubs)
	snap.SLO = SLOSnapshot{
		Target:   m.opts.SLOTarget,
		FastGood: fastSLO[sloGood], FastBad: fastSLO[sloBad],
		SlowGood: slowSLO[sloGood], SlowBad: slowSLO[sloBad],
		BurnFast: burnRate(fastSLO[sloGood], fastSLO[sloBad], m.opts.SLOTarget),
		BurnSlow: burnRate(slowSLO[sloGood], slowSLO[sloBad], m.opts.SLOTarget),
	}

	// Desired level from the raw inputs, then hysteresis.
	desired := AlertOK
	if maxPSI >= m.opts.DriftThreshold/2 || snap.SLO.BurnSlow >= 1 {
		desired = AlertWarning
	}
	if maxPSI >= m.opts.DriftThreshold || snap.SLO.BurnFast >= m.opts.PageBurn {
		desired = AlertPage
	}
	switch {
	case desired >= m.alertState:
		m.alertState = desired
		m.belowSince = time.Time{}
	case m.belowSince.IsZero():
		m.belowSince = now
	case now.Sub(m.belowSince) >= m.opts.ClearHold:
		m.alertState = desired
		m.belowSince = time.Time{}
	}
	snap.Alert = AlertSnapshot{
		State:    m.alertState,
		Name:     alertName(m.alertState),
		MaxPSI:   maxPSI,
		MaxPSIBy: maxPSIBy,
	}
	m.mu.Unlock()

	for _, e := range events {
		m.emitDriftEvent(e.detector, e.stage, e.psi)
	}
	return snap
}

// emitDriftEvent records a threshold crossing in the trace store as a
// synthetic "quality.drift" root span (flagged degraded, so tail
// sampling always retains it) and bumps the drift-event counter — the
// link from a paged alert to the traces around the shift.
func (m *Monitor) emitDriftEvent(detector, stage string, psi float64) {
	if mets := m.mets.Load(); mets != nil {
		mets.driftEvents.Inc()
	}
	m.logf("qualitymon: drift detected: detector=%s stage=%s psi=%.4f", detector, stage, psi)
	tr := m.tracer.Load()
	if tr == nil {
		return
	}
	ctx := trace.WithTracer(context.Background(), tr)
	_, sp := trace.Start(ctx, "quality.drift",
		trace.A("detector", detector),
		trace.A("stage", stage))
	sp.SetAttr("psi", strconv.FormatFloat(psi, 'g', 6, 64))
	sp.SetFlag(trace.FlagDegraded)
	sp.AddEvent("drift.threshold.crossed", trace.A("detector", detector), trace.A("stage", stage))
	sp.End()
}
