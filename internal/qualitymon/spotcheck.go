// The shadow-oracle spot-checker: a deterministic sample of scored
// clips is rescored with the lithography-simulation oracle, and the
// (model verdict, oracle verdict) pairs maintain sliding-window
// confusion estimates — online recall and false-alarm rate without
// labels. Sampling keys on the clip's content fingerprint, not a
// counter or RNG, so the sampled set is a pure function of the traffic:
// identical under any worker count or arrival order, and stable across
// process restarts.

package qualitymon

import (
	"encoding/binary"

	"time"

	"github.com/golitho/hsd/internal/layout"
)

// spotJob is one sampled clip awaiting oracle rescoring. at is the
// observation time, so the confusion window reflects when the model
// answered, not when the (possibly backlogged) oracle got to it.
type spotJob struct {
	clip      layout.Clip
	predicted bool
	at        time.Time
}

// sampleFingerprint decides membership in the spot-check sample: the
// first 8 bytes of the content fingerprint, read as a uniform uint64,
// fall below rate's share of the space. Translation-invariant and
// order-independent by construction.
func sampleFingerprint(fp layout.Fingerprint, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	u := binary.BigEndian.Uint64(fp[:8])
	return float64(u) < rate*float64(1<<64)
}

// enqueueSpot hands a job to the checker: inline in sync mode, through
// the bounded queue otherwise. A full queue drops the job (counted) —
// spot checking is sampling, and blocking the scoring path on the
// oracle would invert the cost model the cascade exists to protect.
func (m *Monitor) enqueueSpot(j spotJob) {
	m.spotSampled.Add(1)
	if mets := m.mets.Load(); mets != nil {
		mets.spotChecks.Inc()
	}
	if m.opts.SyncSpotChecks || m.spotq == nil {
		m.pending.Add(1)
		m.runSpotJob(j)
		return
	}
	m.pending.Add(1)
	select {
	case m.spotq <- j:
	default:
		m.pending.Add(-1)
		m.spotDropped.Add(1)
		if mets := m.mets.Load(); mets != nil {
			mets.spotDropped.Inc()
		}
	}
}

func (m *Monitor) spotWorker() {
	defer m.wg.Done()
	for j := range m.spotq {
		m.runSpotJob(j)
	}
}

func (m *Monitor) runSpotJob(j spotJob) {
	defer m.pending.Add(-1)
	actual, err := m.opts.Oracle(j.clip)
	if err != nil {
		m.spotErrors.Add(1)
		if mets := m.mets.Load(); mets != nil {
			mets.spotErrors.Inc()
		}
		m.logf("qualitymon: spot-check oracle: %v", err)
		return
	}
	idx := confTN
	switch {
	case actual && j.predicted:
		idx = confTP
	case actual && !j.predicted:
		idx = confFN
	case !actual && j.predicted:
		idx = confFP
	}
	match := actual == j.predicted
	if !match {
		m.spotMismatch.Add(1)
		if mets := m.mets.Load(); mets != nil {
			mets.spotMismatches.Inc()
		}
		if tap := m.opts.SpotMissTap; tap != nil {
			tap(j.clip, j.predicted, actual)
		}
	}
	m.mu.Lock()
	now := m.conf.epochOf(m.clock.Now())
	m.conf.add(j.at, now, idx, 1)
	sloIdx := sloBad
	if match {
		sloIdx = sloGood
	}
	m.slo.add(j.at, now, sloIdx, 1)
	m.mu.Unlock()
}

// DrainSpotChecks blocks until every enqueued spot check has been
// processed (or the timeout passes); for tests and end-of-scan
// summaries. Returns false on timeout.
func (m *Monitor) DrainSpotChecks(timeout time.Duration) bool {
	if m == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for m.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}
