// The training-time baseline: the reference score distribution drift is
// measured against. hsdtrain writes one as a sidecar next to the saved
// model (<model>.qb); the registry installs it on every hot reload so
// the drift reference always matches the live generation. The file
// shares the repo's integrity convention — framed CRC32 + gob payload,
// written atomically — so a torn write is detected, never half-loaded.

package qualitymon

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// baselineMagic opens the quality-baseline file format.
var baselineMagic = []byte("HSDQBv1\n")

const (
	baselineVersion = 1
	// frameHeaderLen is uint64 payload length + uint32 CRC32 (IEEE).
	frameHeaderLen = 8 + 4
	// maxPayloadBytes bounds the declared payload so a corrupted length
	// field cannot drive a giant allocation.
	maxPayloadBytes = 1 << 28
)

// BaselineEntry is the reference distribution for one (detector, stage)
// series: shared bin edges plus the training-split bin counts.
type BaselineEntry struct {
	Detector string
	Stage    string
	Edges    []float64 // sorted upper bounds; len(Counts) = len(Edges)+1
	Counts   []int64
}

// Baseline is the persisted snapshot: every series the trainer scored.
type Baseline struct {
	Version int
	Entries []BaselineEntry
}

// SidecarPath is where a model's quality baseline lives: next to the
// model file, so the pair travels (and reloads) together.
func SidecarPath(modelPath string) string { return modelPath + ".qb" }

// NewBaselineEntry bins scores into an equi-width histogram with bins-1
// interior edges spanning the observed range. Scores are sorted before
// binning so the entry is independent of input order.
func NewBaselineEntry(detector, stage string, scores []float64, bins int) BaselineEntry {
	if bins < 2 {
		bins = 20
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	lo, hi := 0.0, 1.0
	if len(sorted) > 0 {
		lo, hi = sorted[0], sorted[len(sorted)-1]
	}
	if !(hi > lo) { // degenerate or empty: synthesize a unit span
		hi = lo + 1
	}
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i+1)/float64(bins)
	}
	counts := make([]int64, bins)
	for _, v := range sorted {
		counts[sort.SearchFloat64s(edges, v)]++
	}
	return BaselineEntry{Detector: detector, Stage: stage, Edges: edges, Counts: counts}
}

// Sort orders entries by (detector, stage) so a saved baseline is
// deterministic regardless of how the trainer accumulated them.
func (b *Baseline) Sort() {
	sort.Slice(b.Entries, func(i, j int) bool {
		if b.Entries[i].Detector != b.Entries[j].Detector {
			return b.Entries[i].Detector < b.Entries[j].Detector
		}
		return b.Entries[i].Stage < b.Entries[j].Stage
	})
}

func (b *Baseline) validate() error {
	for _, e := range b.Entries {
		if len(e.Counts) != len(e.Edges)+1 {
			return fmt.Errorf("qualitymon: baseline entry %s/%s: %d counts for %d edges",
				e.Detector, e.Stage, len(e.Counts), len(e.Edges))
		}
		if !sort.Float64sAreSorted(e.Edges) {
			return fmt.Errorf("qualitymon: baseline entry %s/%s: edges not sorted", e.Detector, e.Stage)
		}
		for _, v := range e.Edges {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("qualitymon: baseline entry %s/%s: non-finite edge", e.Detector, e.Stage)
			}
		}
	}
	return nil
}

// SaveBaseline writes the framed format: magic, payload length, payload
// CRC32, gob payload.
func SaveBaseline(w io.Writer, b *Baseline) error {
	cp := *b
	cp.Version = baselineVersion
	cp.Sort()
	if err := cp.validate(); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("qualitymon: encode baseline: %w", err)
	}
	header := make([]byte, len(baselineMagic)+frameHeaderLen)
	copy(header, baselineMagic)
	binary.BigEndian.PutUint64(header[len(baselineMagic):], uint64(payload.Len()))
	binary.BigEndian.PutUint32(header[len(baselineMagic)+8:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("qualitymon: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("qualitymon: write payload: %w", err)
	}
	return nil
}

// LoadBaseline reads a baseline written by SaveBaseline, rejecting
// torn, truncated, or bit-flipped files before gob sees them.
func LoadBaseline(r io.Reader) (*Baseline, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(baselineMagic)+frameHeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("qualitymon: baseline truncated in header (torn write?): %w", err)
	}
	if !bytes.Equal(head[:len(baselineMagic)], baselineMagic) {
		return nil, fmt.Errorf("qualitymon: not a quality baseline file (bad magic)")
	}
	size := binary.BigEndian.Uint64(head[len(baselineMagic):])
	wantCRC := binary.BigEndian.Uint32(head[len(baselineMagic)+8:])
	if size > maxPayloadBytes {
		return nil, fmt.Errorf("qualitymon: baseline corrupt: implausible payload size %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("qualitymon: baseline truncated: want %d payload bytes (torn write?): %w", size, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("qualitymon: baseline corrupt: checksum %08x, want %08x", got, wantCRC)
	}
	var b Baseline
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
		return nil, fmt.Errorf("qualitymon: decode baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("qualitymon: unsupported baseline version %d", b.Version)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// SaveBaselineFile writes crash-safely: temp file in the same
// directory, fsync, atomic rename — a crash leaves the previous file
// (or nothing), never a torn one.
func SaveBaselineFile(path string, b *Baseline) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("qualitymon: create temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := SaveBaseline(tmp, b); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("qualitymon: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("qualitymon: close %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil // committed: disable the cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("qualitymon: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadBaselineFile reads path with the integrity checks of LoadBaseline.
func LoadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qualitymon: open baseline: %w", err)
	}
	defer f.Close()
	b, err := LoadBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("qualitymon: load %s: %w", path, err)
	}
	return b, nil
}
