package qualitymon

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// testClip builds a clip whose geometry (and therefore fingerprint) is
// a deterministic function of i.
func testClip(i int) layout.Clip {
	y := (i * 16) % 960
	return layout.Clip{
		Window: geom.R(0, 0, 1024, 1024),
		Core:   geom.R(256, 256, 768, 768),
		Shapes: []geom.Rect{
			geom.R(0, y, 128+i%64, y+8),
			geom.R(200, y, 328, y+8),
		},
	}
}

func testMonitorOpts(clk Clock) Options {
	return Options{
		Clock:     clk,
		SubWindow: 10 * time.Second,
		FastSubs:  3,
		SlowSubs:  6,
		Bins:      10,
		SLOTarget: 0.9,
	}
}

func TestNilMonitorNoOps(t *testing.T) {
	var m *Monitor
	m.Observe(Event{Detector: "d", Stage: "s", Score: 0.5})
	m.ReportServeOutcome(true)
	m.Reset()
	m.InstallBaseline(testBaseline())
	m.InstallBaselineSidecar("nope.gob")
	m.BindMetrics(telemetry.NewRegistry())
	m.BindTracer(nil)
	m.Close()
	snap := m.Snapshot()
	if snap.Alert.Name != "ok" {
		t.Fatalf("nil monitor alert = %q, want ok", snap.Alert.Name)
	}
}

func TestObserveAndSnapshotCounts(t *testing.T) {
	clk := newFakeClock()
	m := New(testMonitorOpts(clk))
	defer m.Close()
	for i := 0; i < 50; i++ {
		m.Observe(Event{Detector: "MLP", Stage: "primary", Score: float64(i) / 50})
	}
	snap := m.Snapshot()
	if len(snap.Sketches) != 1 {
		t.Fatalf("sketch count = %d, want 1", len(snap.Sketches))
	}
	sk := snap.Sketches[0]
	if sk.Detector != "MLP" || sk.Stage != "primary" {
		t.Fatalf("series = %s/%s", sk.Detector, sk.Stage)
	}
	if sk.Fast != 50 || sk.Slow != 50 {
		t.Fatalf("fast/slow = %d/%d, want 50/50", sk.Fast, sk.Slow)
	}
	if sk.PSI != 0 || sk.Baseline {
		t.Fatalf("no baseline installed but PSI=%v baseline=%v", sk.PSI, sk.Baseline)
	}
	if sk.P50 <= 0 || sk.P50 >= 1 {
		t.Fatalf("p50 = %v, want interior", sk.P50)
	}
	// Events age out of the fast window but stay in the slow one.
	clk.Advance(40 * time.Second) // 4 sub-windows: outside fast (3), inside slow (6)
	snap = m.Snapshot()
	sk = snap.Sketches[0]
	if sk.Fast != 0 || sk.Slow != 50 {
		t.Fatalf("after aging: fast/slow = %d/%d, want 0/50", sk.Fast, sk.Slow)
	}
}

func TestDriftAlertAndClear(t *testing.T) {
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.ClearHold = 15 * time.Second
	m := New(opts)
	defer m.Close()

	// Baseline: scores spread uniformly over [0,1].
	var scores []float64
	for i := 0; i < 100; i++ {
		scores = append(scores, float64(i)/100)
	}
	m.InstallBaseline(&Baseline{Entries: []BaselineEntry{
		NewBaselineEntry("MLP", "primary", scores, 10),
	}})

	// In-distribution traffic: no alert.
	for i := 0; i < 100; i++ {
		m.Observe(Event{Detector: "MLP", Stage: "primary", Score: float64(i) / 100})
	}
	snap := m.Snapshot()
	if snap.Alert.State != AlertOK {
		t.Fatalf("in-distribution alert = %s (psi %v)", snap.Alert.Name, snap.Alert.MaxPSI)
	}
	if !snap.Sketches[0].Baseline {
		t.Fatalf("baseline not installed on sketch")
	}

	// Covariate shift: all mass collapses into one bin.
	for i := 0; i < 200; i++ {
		m.Observe(Event{Detector: "MLP", Stage: "primary", Score: 0.01})
	}
	snap = m.Snapshot()
	if snap.Alert.State != AlertPage {
		t.Fatalf("shifted alert = %s (psi %v), want page", snap.Alert.Name, snap.Alert.MaxPSI)
	}
	if snap.Sketches[0].MaxBinKL <= 0 {
		t.Fatalf("MaxBinKL = %v, want > 0 under shift", snap.Sketches[0].MaxBinKL)
	}

	// Rollback: Reset clears the windows; the page holds through
	// ClearHold, then steps down.
	m.Reset()
	snap = m.Snapshot()
	if snap.Alert.State != AlertPage {
		t.Fatalf("alert cleared instantly, want ClearHold hysteresis")
	}
	clk.Advance(20 * time.Second) // > ClearHold
	snap = m.Snapshot()
	if snap.Alert.State != AlertOK {
		t.Fatalf("alert after hold = %s, want ok", snap.Alert.Name)
	}
}

func TestDriftEventEmission(t *testing.T) {
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	m := New(opts)
	defer m.Close()
	reg := telemetry.NewRegistry()
	m.BindMetrics(reg)
	tr := trace.New(trace.Config{Capacity: 8, Shards: 1})
	m.BindTracer(tr)

	m.InstallBaseline(&Baseline{Entries: []BaselineEntry{
		NewBaselineEntry("MLP", "primary", []float64{0.1, 0.3, 0.5, 0.7, 0.9}, 5),
	}})
	for i := 0; i < 100; i++ {
		m.Observe(Event{Detector: "MLP", Stage: "primary", Score: 0.05})
	}
	// Two snapshots: the rising edge fires exactly once (latched).
	m.Snapshot()
	m.Snapshot()

	traces := tr.Traces(0)
	drift := 0
	for _, rec := range traces {
		if rec.Root == "quality.drift" {
			drift++
			if len(rec.Flags) == 0 {
				t.Fatalf("drift trace has no retention flag")
			}
		}
	}
	if drift != 1 {
		t.Fatalf("drift traces = %d, want exactly 1 (latched rising edge)", drift)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hotspot_quality_drift_events_total 1") {
		t.Fatalf("drift event counter missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `hotspot_drift_score{detector="MLP",stage="primary"}`) {
		t.Fatalf("drift score gauge missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "hotspot_quality_alert_state 2") {
		t.Fatalf("alert state gauge missing or not paging:\n%s", sb.String())
	}
}

func TestSpotCheckerConfusion(t *testing.T) {
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.SpotCheckRate = 1
	opts.SyncSpotChecks = true
	// Oracle: hot iff the clip index encoded in the first shape's width
	// is even (deterministic, disagrees with half the predictions).
	opts.Oracle = func(c layout.Clip) (bool, error) {
		return c.Shapes[0].Dx()%2 == 0, nil
	}
	m := New(opts)
	defer m.Close()

	// Predictions: score 1.0 (hot) for i%4<2, else 0.0 — a mix of all
	// four confusion cells against the oracle's i%2 parity.
	for i := 0; i < 40; i++ {
		score := 0.0
		if i%4 < 2 {
			score = 1.0
		}
		m.Observe(Event{
			Detector: "MLP", Stage: "primary",
			Score: score, Threshold: 0.5,
			Clip: testClip(i), HasClip: true,
		})
	}
	snap := m.Snapshot()
	sc := snap.SpotCheck
	if sc.Sampled != 40 {
		t.Fatalf("sampled = %d, want 40 at rate 1", sc.Sampled)
	}
	w := sc.Window
	if w.TP+w.FP+w.TN+w.FN != 40 {
		t.Fatalf("confusion total = %d, want 40 (%+v)", w.TP+w.FP+w.TN+w.FN, w)
	}
	// i%4 in {0,1} predicted hot; oracle hot iff (128+i%64) even ⇔ i even.
	// i%4==0: TP, i%4==1: FP, i%4==2: actual hot missed → FN, i%4==3: TN.
	if w.TP != 10 || w.FP != 10 || w.FN != 10 || w.TN != 10 {
		t.Fatalf("confusion = %+v, want 10 each", w)
	}
	if w.Recall != 0.5 || w.FalseAlarm != 0.5 {
		t.Fatalf("recall/FAR = %v/%v, want 0.5/0.5", w.Recall, w.FalseAlarm)
	}
	if sc.Mismatches != 20 {
		t.Fatalf("mismatches = %d, want 20", sc.Mismatches)
	}
	// 50% bad at a 90% target burns 5x the budget: page.
	if snap.SLO.BurnFast < 2 {
		t.Fatalf("burn fast = %v, want >= 2", snap.SLO.BurnFast)
	}
	if snap.Alert.State != AlertPage {
		t.Fatalf("alert = %s, want page on burn", snap.Alert.Name)
	}
}

// TestSpotMissTap: only the checks where the oracle disagrees reach
// the miss tap, with the clip and both verdicts intact.
func TestSpotMissTap(t *testing.T) {
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.SpotCheckRate = 1
	opts.SyncSpotChecks = true
	opts.Oracle = func(c layout.Clip) (bool, error) {
		return c.Shapes[0].Dx()%2 == 0, nil
	}
	type miss struct{ predicted, actual bool }
	var mu sync.Mutex
	misses := make(map[layout.Fingerprint]miss)
	opts.SpotMissTap = func(clip layout.Clip, predicted, actual bool) {
		mu.Lock()
		misses[clip.Fingerprint()] = miss{predicted, actual}
		mu.Unlock()
	}
	m := New(opts)
	defer m.Close()
	for i := 0; i < 40; i++ {
		score := 0.0
		if i%4 < 2 {
			score = 1.0
		}
		m.Observe(Event{
			Detector: "MLP", Stage: "primary",
			Score: score, Threshold: 0.5,
			Clip: testClip(i), HasClip: true,
		})
	}
	// Same setup as TestSpotCheckerConfusion: 10 FP + 10 FN = 20 misses.
	if len(misses) != 20 {
		t.Fatalf("miss tap saw %d clips, want 20", len(misses))
	}
	for fp, ms := range misses {
		if ms.predicted == ms.actual {
			t.Fatalf("tap received a non-miss for %x: %+v", fp[:4], ms)
		}
	}
}

func TestSpotCheckSamplingDeterministic(t *testing.T) {
	rate := 0.5
	for i := 0; i < 64; i++ {
		fp := testClip(i).Fingerprint()
		a := sampleFingerprint(fp, rate)
		b := sampleFingerprint(fp, rate)
		if a != b {
			t.Fatalf("sampling not deterministic for clip %d", i)
		}
	}
	if sampleFingerprint(testClip(0).Fingerprint(), 0) {
		t.Fatalf("rate 0 sampled")
	}
	if !sampleFingerprint(testClip(0).Fingerprint(), 1) {
		t.Fatalf("rate 1 skipped")
	}
	// Rate 0.5 should select a nontrivial subset, not everything.
	n := 0
	for i := 0; i < 256; i++ {
		if sampleFingerprint(testClip(i).Fingerprint(), rate) {
			n++
		}
	}
	if n == 0 || n == 256 {
		t.Fatalf("rate 0.5 sampled %d/256", n)
	}
}

func TestServeOutcomeSLO(t *testing.T) {
	clk := newFakeClock()
	m := New(testMonitorOpts(clk))
	defer m.Close()
	for i := 0; i < 90; i++ {
		m.ReportServeOutcome(true)
	}
	for i := 0; i < 10; i++ {
		m.ReportServeOutcome(false)
	}
	snap := m.Snapshot()
	// 10% bad at target 0.9 = burning exactly 1x the budget.
	if snap.SLO.BurnFast < 0.99 || snap.SLO.BurnFast > 1.01 {
		t.Fatalf("burn = %v, want ~1", snap.SLO.BurnFast)
	}
	if snap.SLO.FastGood != 90 || snap.SLO.FastBad != 10 {
		t.Fatalf("fast good/bad = %d/%d", snap.SLO.FastGood, snap.SLO.FastBad)
	}
	if snap.Alert.State != AlertWarning {
		t.Fatalf("alert = %s, want warning at slow burn 1", snap.Alert.Name)
	}
}

func TestLowConfidenceTap(t *testing.T) {
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.LowConfMargin = 0.1
	var mu sync.Mutex
	got := make(map[layout.Fingerprint]float64)
	opts.LowConfidenceTap = func(fp layout.Fingerprint, clip layout.Clip, score float64, stage string) {
		if stage != "primary" {
			t.Errorf("tap stage = %q", stage)
		}
		if got := clip.Fingerprint(); got != fp {
			t.Errorf("tap clip fingerprint %x != fp %x", got[:4], fp[:4])
		}
		mu.Lock()
		got[fp] = score
		mu.Unlock()
	}
	m := New(opts)
	defer m.Close()
	scores := []float64{0.1, 0.45, 0.5, 0.55, 0.9, 0.61}
	for i, s := range scores {
		m.Observe(Event{
			Detector: "MLP", Stage: "primary",
			Score: s, Threshold: 0.5,
			Clip: testClip(i), HasClip: true,
		})
	}
	// Only |score-0.5| <= 0.1 qualifies: 0.45, 0.5, 0.55.
	if len(got) != 3 {
		t.Fatalf("tap saw %d clips, want 3: %v", len(got), got)
	}
	for fp, s := range got {
		if s < 0.4 || s > 0.6 {
			t.Fatalf("tap leaked out-of-margin score %v (fp %v)", s, fp)
		}
	}
}

func TestInstallBaselineSidecar(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "mlp.gob")
	if err := SaveBaselineFile(SidecarPath(model), testBaseline()); err != nil {
		t.Fatal(err)
	}
	var logs []string
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.Logf = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	m := New(opts)
	defer m.Close()
	m.InstallBaselineSidecar(model)
	m.Observe(Event{Detector: "MLP", Stage: "primary", Score: 0.2})
	snap := m.Snapshot()
	found := false
	for _, sk := range snap.Sketches {
		if sk.Detector == "MLP" && sk.Stage == "primary" && sk.Baseline {
			found = true
		}
	}
	if !found {
		t.Fatalf("sidecar baseline not installed; logs: %v; snap: %+v", logs, snap.Sketches)
	}
	// Missing sidecar: logged, not fatal.
	m.InstallBaselineSidecar(filepath.Join(dir, "other.gob"))
}

func TestAsyncSpotCheckerDrains(t *testing.T) {
	opts := testMonitorOpts(newFakeClock())
	opts.SpotCheckRate = 1
	opts.Oracle = func(c layout.Clip) (bool, error) { return true, nil }
	m := New(opts)
	for i := 0; i < 16; i++ {
		m.Observe(Event{
			Detector: "MLP", Stage: "primary", Score: 1, Threshold: 0.5,
			Clip: testClip(i), HasClip: true,
		})
	}
	if !m.DrainSpotChecks(5 * time.Second) {
		t.Fatalf("spot checks did not drain")
	}
	snap := m.Snapshot()
	if got := snap.SpotCheck.Window.TP; got != 16 {
		t.Fatalf("TP = %d, want 16", got)
	}
	m.Close()
}
