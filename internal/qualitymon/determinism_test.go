package qualitymon

import (
	"encoding/json"

	"github.com/golitho/hsd/internal/layout"
	"sync"
	"testing"
	"time"
)

// The worker-count determinism property (mirroring the router
// equivalence layer): feeding an identical event multiset through 1..8
// concurrent workers must produce byte-identical /debug/quality JSON.
// This is the property that makes the monitor trustworthy under the
// scanfarm and the batched serve path, where arrival order is whatever
// the scheduler felt like. It holds because sketches are commutative
// integer bins keyed by (content, timestamp) — never by arrival order —
// and quantiles/drift are pure functions of the merged bins.

// buildEvents is the shared deterministic workload: three series, a
// spread of scores, clips for the spot-check path.
func buildEvents() []Event {
	var evs []Event
	for i := 0; i < 400; i++ {
		score := float64(i%97) / 97
		ev := Event{
			Detector: "MLP", Stage: "primary",
			Score: score, Threshold: 0.5,
			Clip: testClip(i), HasClip: true,
		}
		switch i % 3 {
		case 1:
			ev.Detector, ev.Stage = "MLP", "scan"
		case 2:
			ev.Detector, ev.Stage = "SVM", "fallback"
		}
		evs = append(evs, ev)
	}
	return evs
}

// runWorkers pushes the events through n goroutines, interleaved, and
// returns the monitor's snapshot JSON.
func runWorkers(t *testing.T, n int) []byte {
	t.Helper()
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.SpotCheckRate = 0.5
	opts.SyncSpotChecks = true
	opts.Oracle = func(c layout.Clip) (bool, error) { return c.Shapes[0].Dx()%2 == 0, nil }
	m := New(opts)
	defer m.Close()
	m.InstallBaseline(testBaseline())

	evs := buildEvents()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Strided assignment: each worker gets a different
			// interleaved subset, so orderings genuinely differ by n.
			for i := w; i < len(evs); i += n {
				m.Observe(evs[i])
				if i%5 == 0 {
					m.ReportServeOutcome(i%10 != 0)
				}
			}
		}(w)
	}
	wg.Wait()
	clk.Advance(time.Second) // same snapshot instant for every n
	snap := m.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	return raw
}

func TestSnapshotDeterministicAcrossWorkerCounts(t *testing.T) {
	want := runWorkers(t, 1)
	for n := 2; n <= 8; n++ {
		got := runWorkers(t, n)
		if string(got) != string(want) {
			t.Fatalf("snapshot differs at %d workers:\n1: %s\n%d: %s", n, want, n, got)
		}
	}
}

// The same property repeated across seeds of interleaving: shuffling
// which worker sees which event (not just the stride) must not matter.
func TestSnapshotDeterministicUnderReassignment(t *testing.T) {
	base := runWorkers(t, 4)
	// A different but equally valid schedule: reverse the event list.
	clk := newFakeClock()
	opts := testMonitorOpts(clk)
	opts.SpotCheckRate = 0.5
	opts.SyncSpotChecks = true
	opts.Oracle = func(c layout.Clip) (bool, error) { return c.Shapes[0].Dx()%2 == 0, nil }
	m := New(opts)
	defer m.Close()
	m.InstallBaseline(testBaseline())
	evs := buildEvents()
	for i := len(evs) - 1; i >= 0; i-- {
		m.Observe(evs[i])
		if i%5 == 0 {
			m.ReportServeOutcome(i%10 != 0)
		}
	}
	clk.Advance(time.Second)
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(base) {
		t.Fatalf("snapshot depends on event order:\nfwd: %s\nrev: %s", base, raw)
	}
}
