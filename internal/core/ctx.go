// Context-aware scoring: the span-attributing twins of Score and
// ScoreClips. Feature-based detectors decompose a scored clip into
// "raster" + "features" spans (via features.ExtractCtx) followed by an
// "inference" span, which is exactly the per-stage ODST breakdown the
// tracer exports as hotspot_stage_seconds.
//
// Plain Score/ScoreBatch delegate here with context.Background(), so
// untraced callers pay only the nil-span fast path.

package core

import (
	"context"
	"fmt"

	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/trace"
)

// CtxScorer is implemented by detectors that attribute scoring stages
// (raster, features, inference) to trace spans.
type CtxScorer interface {
	// ScoreCtx is Score with stage spans on the context's trace.
	ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error)
}

// CtxBatchScorer is the span-attributing twin of BatchScorer.
type CtxBatchScorer interface {
	// ScoreBatchCtx is ScoreBatch with stage spans on the context's trace.
	ScoreBatchCtx(ctx context.Context, clips []layout.Clip) ([]float64, error)
}

// CtxFitter is implemented by detectors whose training observes context
// cancellation (halting with nn.ErrInterrupted after cutting a final
// checkpoint) and attributes checkpoint work to train.checkpoint spans.
type CtxFitter interface {
	// FitCtx is Fit with cooperative interruption.
	FitCtx(ctx context.Context, train []LabeledClip) error
}

// FitClipsCtx trains through the detector's context-aware path when it
// has one, falling back to plain Fit.
func FitClipsCtx(ctx context.Context, d Detector, train []LabeledClip) error {
	if cf, ok := d.(CtxFitter); ok {
		return cf.FitCtx(ctx, train)
	}
	return d.Fit(train)
}

// ScoreClipCtx scores one clip through the detector's span-attributing
// path when it has one, falling back to plain Score.
func ScoreClipCtx(ctx context.Context, d Detector, clip layout.Clip) (float64, error) {
	if cs, ok := d.(CtxScorer); ok {
		return cs.ScoreCtx(ctx, clip)
	}
	return d.Score(clip)
}

// ScoreClipsCtx is ScoreClips with span attribution: the vectorized
// CtxBatchScorer when available, then per-clip CtxScorer, then the
// plain paths.
func ScoreClipsCtx(ctx context.Context, d Detector, clips []layout.Clip) ([]float64, error) {
	if cbs, ok := d.(CtxBatchScorer); ok {
		return cbs.ScoreBatchCtx(ctx, clips)
	}
	if trace.Disabled(ctx) {
		return ScoreClips(d, clips)
	}
	if cs, ok := d.(CtxScorer); ok {
		if _, isBatch := d.(BatchScorer); !isBatch {
			out := make([]float64, len(clips))
			for i, clip := range clips {
				s, err := cs.ScoreCtx(ctx, clip)
				if err != nil {
					return nil, fmt.Errorf("core: score clip %d: %w", i, err)
				}
				out[i] = s
			}
			return out, nil
		}
	}
	return ScoreClips(d, clips)
}

// scoreFeatures is the shared span path of the feature-based detectors:
// extraction under ExtractCtx (one "raster" + "features" span pair per
// extractor), then the fitted model under an "inference" span.
func scoreFeatures(ctx context.Context, name string, ex features.Extractor,
	clip layout.Clip, model func(v []float64) float64) (float64, error) {
	v, err := features.ExtractCtx(ctx, ex, clip)
	if err != nil {
		return 0, err
	}
	_, sp := trace.Start(ctx, "inference", trace.A("detector", name))
	s := model(v)
	sp.End()
	return s, nil
}

var (
	_ CtxScorer      = (*SVMDetector)(nil)
	_ CtxScorer      = (*BoostDetector)(nil)
	_ CtxScorer      = (*ForestDetector)(nil)
	_ CtxScorer      = (*LogRegDetector)(nil)
	_ CtxScorer      = (*NeuralDetector)(nil)
	_ CtxBatchScorer = (*NeuralDetector)(nil)
	_ CtxFitter      = (*NeuralDetector)(nil)
)

// ScoreCtx implements CtxScorer.
func (d *SVMDetector) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	return scoreFeatures(ctx, d.Name(), d.Ex, clip, func(v []float64) float64 {
		return d.model.Decision(d.scale.apply(v))
	})
}

// ScoreCtx implements CtxScorer.
func (d *BoostDetector) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	return scoreFeatures(ctx, d.Name(), d.Ex, clip, func(v []float64) float64 {
		return d.model.Score(d.scale.apply(v))
	})
}

// ScoreCtx implements CtxScorer.
func (d *ForestDetector) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	return scoreFeatures(ctx, d.Name(), d.Ex, clip, func(v []float64) float64 {
		return d.model.Prob(d.scale.apply(v))
	})
}

// ScoreCtx implements CtxScorer.
func (d *LogRegDetector) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	return scoreFeatures(ctx, d.Name(), d.Ex, clip, func(v []float64) float64 {
		return d.model.Prob(d.scale.apply(v))
	})
}

// ScoreCtx implements CtxScorer. Like Score, it mutates layer caches:
// concurrent callers need clones.
func (d *NeuralDetector) ScoreCtx(ctx context.Context, clip layout.Clip) (float64, error) {
	if d.net == nil {
		return 0, errNotFitted
	}
	return scoreFeatures(ctx, d.Name(), d.Ex, clip, func(v []float64) float64 {
		return nn.Score(d.inferNet(), d.scale.apply(v))
	})
}

// ScoreBatchCtx implements CtxBatchScorer: per-clip extraction spans,
// then the batched forward pass under nn.PredictBatchCtx (arena and
// matmul stage spans). Safe for concurrent use like ScoreBatch.
func (d *NeuralDetector) ScoreBatchCtx(ctx context.Context, clips []layout.Clip) ([]float64, error) {
	if d.net == nil {
		return nil, errNotFitted
	}
	xs := make([][]float64, len(clips))
	for i, clip := range clips {
		v, err := features.ExtractCtx(ctx, d.Ex, clip)
		if err != nil {
			return nil, fmt.Errorf("core: extract clip %d: %w", i, err)
		}
		xs[i] = d.scale.apply(v)
	}
	return nn.PredictBatchCtx(ctx, d.inferNet(), xs, 0)
}
