package core

import (
	"math"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/boost"
	"github.com/golitho/hsd/internal/dtree"
	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/iccad"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/logreg"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/pm"
	"github.com/golitho/hsd/internal/svm"
)

// tinySuite is generated once and shared by the package tests.
var (
	tinyOnce  sync.Once
	tinySuite *iccad.Suite
	tinyErr   error
)

func getTinySuite(t *testing.T) *iccad.Suite {
	t.Helper()
	tinyOnce.Do(func() {
		cfg := iccad.SmallSuiteConfig(404)
		cfg.Specs = []iccad.Spec{{
			Name:    "T1",
			Style:   cfg.Specs[0].Style,
			TrainHS: 12, TrainNHS: 40,
			TestHS: 8, TestNHS: 30,
		}}
		tinySuite, tinyErr = iccad.GenerateSuite(cfg)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinySuite
}

func tinySplits(t *testing.T) (train, test []LabeledClip) {
	s := getTinySuite(t)
	return FromSamples(s.Benchmarks[0].Train.Samples), FromSamples(s.Benchmarks[0].Test.Samples)
}

func TestAugmentMinority(t *testing.T) {
	train, _ := tinySplits(t)
	hs := 0
	for _, s := range train {
		if s.Hotspot {
			hs++
		}
	}
	aug := AugmentMinority(train, AugmentConfig{UpsampleFactor: 3})
	wantLen := len(train) + 2*hs
	if len(aug) != wantLen {
		t.Fatalf("upsampled length = %d, want %d", len(aug), wantLen)
	}
	for _, s := range aug[len(train):] {
		if !s.Hotspot {
			t.Fatal("augmentation produced a non-hotspot")
		}
	}

	augM := AugmentMinority(train, AugmentConfig{Mirror: true, Rotate: true})
	if len(augM) != len(train)+3*hs {
		t.Fatalf("mirror+rotate length = %d, want %d", len(augM), len(train)+3*hs)
	}
	// No-op config returns an equal copy.
	same := AugmentMinority(train, AugmentConfig{})
	if len(same) != len(train) {
		t.Fatalf("no-op augmentation changed length: %d", len(same))
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	s := fitScaler(x)
	out := s.applyAll(x)
	for j := 0; j < 3; j++ {
		var mean, varr float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			varr += d * d
		}
		varr /= 3
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, mean)
		}
		if j != 1 && math.Abs(varr-1) > 1e-9 {
			t.Fatalf("col %d var = %v", j, varr)
		}
	}
	// Constant column passes through centred but unscaled.
	if out[0][1] != 0 {
		t.Fatalf("constant column = %v", out[0][1])
	}
}

func TestPMDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewPMDetector(pm.Config{GridPx: 32, Tol: 30, Mirror: true})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(test) {
		t.Fatalf("scored %d of %d", res.Confusion.Total(), len(test))
	}
	// Pattern matching should rarely false-alarm.
	if res.FalseAlarms() > len(test)/4 {
		t.Fatalf("pm false alarms = %d", res.FalseAlarms())
	}
	// Training hotspots must match themselves.
	selfTP := 0
	for _, s := range train {
		if !s.Hotspot {
			continue
		}
		ok, err := Predict(det, s.Clip)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			selfTP++
		}
	}
	if selfTP == 0 {
		t.Fatal("pm missed every training hotspot")
	}
}

func TestSVMDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewSVMDetector(
		&features.GeomStats{},
		svm.Config{Kernel: svm.Linear{}, C: 1, PosWeight: 4, Seed: 1},
	)
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("svm AUC = %v, want better than chance", res.AUC)
	}
}

func TestBoostDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewBoostDetector(&features.GeomStats{}, boost.Config{Rounds: 60, ClassBalance: true})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("adaboost AUC = %v, want better than chance", res.AUC)
	}
}

func TestCNNDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	ex := &features.DCT{Blocks: 8, Coefs: 8}
	det := NewCNNDetector(ex,
		nn.CNNConfig{Conv1: 8, Conv2: 8, Hidden: 16},
		nn.TrainConfig{Epochs: 6, BatchSize: 16, Seed: 2},
		"cnn")
	res, err := Evaluate(det, "T1", train, test, EvalOptions{
		Augment: AugmentConfig{UpsampleFactor: 3, Mirror: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.6 {
		t.Fatalf("cnn AUC = %v, want clearly better than chance", res.AUC)
	}
	if det.History() == nil {
		t.Fatal("missing training history")
	}
}

func TestMLPDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewMLPDetector(&features.CCAS{Rings: 8, Sectors: 12}, []int{32},
		nn.TrainConfig{Epochs: 20, BatchSize: 16, Seed: 3})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("mlp AUC = %v", res.AUC)
	}
}

func TestEvaluateODST(t *testing.T) {
	train, test := tinySplits(t)
	sim, err := lithosim.New(lithosim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	det := NewBoostDetector(&features.Density{Grid: 16}, boost.Config{Rounds: 30})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	if res.ODST() <= 0 {
		t.Fatal("ODST not measured")
	}
	if res.FullSimTime <= 0 {
		t.Fatal("full-sim baseline not estimated")
	}
	if res.ODST() >= res.FullSimTime {
		t.Logf("warning: ODST %v >= full sim %v (tiny test set)", res.ODST(), res.FullSimTime)
	}
	if res.Speedup() <= 0 {
		t.Fatal("speedup not computed")
	}
}

func TestEvaluateValidation(t *testing.T) {
	det := NewPMDetector(pm.Config{})
	if _, err := Evaluate(det, "x", nil, nil, EvalOptions{}); err == nil {
		t.Fatal("empty splits accepted")
	}
}

func TestNotFittedErrors(t *testing.T) {
	clip := layout.Clip{Window: geom.R(0, 0, 1024, 1024)}
	for _, det := range []Detector{
		NewPMDetector(pm.Config{}),
		NewSVMDetector(&features.Density{Grid: 8}, svm.Config{}),
		NewBoostDetector(&features.Density{Grid: 8}, boost.Config{}),
		NewMLPDetector(&features.Density{Grid: 8}, []int{4}, nn.TrainConfig{}),
		NewEnsemble(NewPMDetector(pm.Config{})),
	} {
		if _, err := det.Score(clip); err == nil {
			t.Errorf("%s scored before Fit", det.Name())
		}
	}
}

// stubDetector flags any clip whose shapes overlap Target.
type stubDetector struct {
	Target geom.Rect
}

func (s *stubDetector) Name() string                  { return "stub" }
func (s *stubDetector) Fit(train []LabeledClip) error { return nil }
func (s *stubDetector) Threshold() float64            { return 0.5 }
func (s *stubDetector) Score(clip layout.Clip) (float64, error) {
	for _, r := range clip.Shapes {
		if r.Overlaps(s.Target) {
			return 1, nil
		}
	}
	return 0, nil
}

func TestScanFindsTarget(t *testing.T) {
	chip := layout.New("chip")
	// Background geometry plus one marked region.
	for y := 0; y < 8192; y += 512 {
		if err := chip.AddRect(geom.R(0, y, 8192, y+96)); err != nil {
			t.Fatal(err)
		}
	}
	target := geom.R(4096, 4096, 4200, 4200)
	if err := chip.AddRect(target); err != nil {
		t.Fatal(err)
	}
	det := &stubDetector{Target: target}
	findings, err := Scan(chip, det, ScanConfig{ClipNM: 1024, CoreFrac: 0.5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("scan found nothing")
	}
	found := false
	for _, f := range findings {
		win := geom.R(f.Center.X-512, f.Center.Y-512, f.Center.X+512, f.Center.Y+512)
		if win.Overlaps(target) {
			found = true
		}
		if f.Score < det.Threshold() {
			t.Fatal("finding below threshold")
		}
	}
	if !found {
		t.Fatal("no finding near the target region")
	}
	// Deterministic ordering: descending score, then Y, then X.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Score < b.Score {
			t.Fatal("findings not sorted by score")
		}
	}
}

func TestScanEmptyChip(t *testing.T) {
	chip := layout.New("empty")
	findings, err := Scan(chip, &stubDetector{}, ScanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if findings != nil {
		t.Fatalf("empty chip produced findings: %v", findings)
	}
}

func TestScanDeterministicAcrossWorkerCounts(t *testing.T) {
	chip := layout.New("chip")
	for y := 0; y < 4096; y += 256 {
		if err := chip.AddRect(geom.R(0, y, 4096, y+96)); err != nil {
			t.Fatal(err)
		}
	}
	det := &stubDetector{Target: geom.R(1000, 1000, 1200, 1200)}
	a, err := Scan(chip, det, ScanConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(chip, det, ScanConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("worker counts disagree: %d vs %d findings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finding %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEnsembleVoting(t *testing.T) {
	train, test := tinySplits(t)
	ens := NewEnsemble(
		NewBoostDetector(&features.Density{Grid: 16}, boost.Config{Rounds: 30}),
		NewBoostDetector(&features.CCAS{Rings: 6, Sectors: 8}, boost.Config{Rounds: 30}),
		NewPMDetector(pm.Config{GridPx: 32, Tol: 20}),
	)
	res, err := Evaluate(ens, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(test) {
		t.Fatal("ensemble did not score everything")
	}
	for _, s := range res.Scores {
		if s < 0 || s > 1 {
			t.Fatalf("ensemble score %v outside [0,1]", s)
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	e := NewEnsemble()
	if err := e.Fit(nil); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestPredictUsesThreshold(t *testing.T) {
	det := &stubDetector{Target: geom.R(0, 0, 10, 10)}
	clip := layout.Clip{
		Window: geom.R(0, 0, 100, 100),
		Shapes: []geom.Rect{geom.R(0, 0, 5, 5)},
	}
	got, err := Predict(det, clip)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("expected positive prediction")
	}
}

func TestForestDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewForestDetector(&features.GeomStats{},
		dtree.ForestConfig{Trees: 25, Seed: 1, ClassBalance: true})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("forest AUC = %v", res.AUC)
	}
	if _, err := NewForestDetector(&features.Density{Grid: 8}, dtree.ForestConfig{}).Score(test[0].Clip); err == nil {
		t.Fatal("unfitted forest scored")
	}
}

func TestLogRegDetectorEvaluate(t *testing.T) {
	train, test := tinySplits(t)
	det := NewLogRegDetector(&features.GeomStats{},
		logreg.Config{Epochs: 150, LR: 0.3, PosWeight: 4, Seed: 1})
	res, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("logreg AUC = %v", res.AUC)
	}
	if _, err := NewLogRegDetector(&features.Density{Grid: 8}, logreg.Config{}).Score(test[0].Clip); err == nil {
		t.Fatal("unfitted logreg scored")
	}
}
