package core

import (
	"sync/atomic"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
)

// buildScanChip lays horizontal background lines plus one target block.
func buildScanChip(t *testing.T, edge int) (*layout.Layout, geom.Rect) {
	t.Helper()
	chip := layout.New("chip")
	for y := 0; y < edge; y += 512 {
		if err := chip.AddRect(geom.R(0, y, edge, y+96)); err != nil {
			t.Fatal(err)
		}
	}
	target := geom.R(edge/2, edge/2, edge/2+128, edge/2+128)
	if err := chip.AddRect(target); err != nil {
		t.Fatal(err)
	}
	return chip, target
}

// enumerateCenters mirrors Scan's core-anchored window enumeration for
// assertions.
func enumerateCenters(bounds geom.Rect, clipNM int, coreFrac float64, strideNM int) []geom.Point {
	coreHalf := int(float64(clipNM) * coreFrac / 2)
	if strideNM <= 0 {
		strideNM = 2 * coreHalf
	}
	var centers []geom.Point
	for cy := bounds.Min.Y + coreHalf; cy-coreHalf < bounds.Max.Y; cy += strideNM {
		for cx := bounds.Min.X + coreHalf; cx-coreHalf < bounds.Max.X; cx += strideNM {
			centers = append(centers, geom.Pt(cx, cy))
		}
	}
	return centers
}

// TestScanTelemetryCountsWindows is the acceptance check: scan telemetry
// reports exactly as many scanned windows as the scan enumerates, and
// the flagged counter matches the findings (here every flagged window is
// unique, so findings == flagged).
func TestScanTelemetryCountsWindows(t *testing.T) {
	chip, target := buildScanChip(t, 4096)
	cfg := ScanConfig{ClipNM: 1024, CoreFrac: 0.5, Workers: 4, Metrics: telemetry.NewRegistry()}
	det := &stubDetector{Target: target}
	findings, err := Scan(chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(enumerateCenters(chip.Bounds(), 1024, 0.5, 0))
	if total == 0 {
		t.Fatal("no windows enumerated")
	}

	reg := cfg.Metrics
	if got := reg.Counter("scan_windows_total").Value(); got != float64(total) {
		t.Errorf("scan_windows_total = %v, want %d", got, total)
	}
	// Without SkipEmpty every enumerated window is scored.
	if got := reg.Counter("scan_windows_scanned_total").Value(); got != float64(total) {
		t.Errorf("scan_windows_scanned_total = %v, want %d", got, total)
	}
	if got := reg.Counter("scan_windows_skipped_total").Value(); got != 0 {
		t.Errorf("scan_windows_skipped_total = %v, want 0", got)
	}
	if got := reg.Counter("scan_windows_flagged_total").Value(); got != float64(len(findings)) {
		t.Errorf("scan_windows_flagged_total = %v, want %d findings", got, len(findings))
	}
	if got := reg.Histogram("scan_score_seconds", nil).Count(); got != int64(total) {
		t.Errorf("scan_score_seconds count = %d, want %d", got, total)
	}
	if got := reg.Gauge("scan_workers").Value(); got != 4 {
		t.Errorf("scan_workers = %v, want 4", got)
	}
	if reg.Counter("scan_wall_seconds_total").Value() <= 0 {
		t.Error("scan_wall_seconds_total not recorded")
	}
}

// TestScanTelemetrySkippedPlusScannedIsTotal checks the accounting
// identity under SkipEmpty: every enumerated window is either scored or
// skipped.
func TestScanTelemetrySkippedPlusScannedIsTotal(t *testing.T) {
	// Sparse chip: two far-apart shapes leave many empty windows.
	chip := layout.New("sparse")
	if err := chip.AddRect(geom.R(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := chip.AddRect(geom.R(8000, 8000, 8100, 8100)); err != nil {
		t.Fatal(err)
	}
	cfg := ScanConfig{ClipNM: 1024, CoreFrac: 0.5, Workers: 3, SkipEmpty: true,
		Metrics: telemetry.NewRegistry()}
	if _, err := Scan(chip, &stubDetector{}, cfg); err != nil {
		t.Fatal(err)
	}
	reg := cfg.Metrics
	total := reg.Counter("scan_windows_total").Value()
	scanned := reg.Counter("scan_windows_scanned_total").Value()
	skipped := reg.Counter("scan_windows_skipped_total").Value()
	if total == 0 || scanned == 0 || skipped == 0 {
		t.Fatalf("expected all three counters nonzero: total=%v scanned=%v skipped=%v",
			total, scanned, skipped)
	}
	if scanned+skipped != total {
		t.Fatalf("scanned(%v) + skipped(%v) != total(%v)", scanned, skipped, total)
	}
}

func TestScanProgressCallback(t *testing.T) {
	chip, target := buildScanChip(t, 4096)
	var calls atomic.Int64
	var lastDone, sawTotal int
	cfg := ScanConfig{
		ClipNM: 1024, CoreFrac: 0.5, Workers: 4,
		Progress: func(done, total int) {
			calls.Add(1)
			// Calls are serialized, so done must be strictly increasing.
			if done <= lastDone {
				t.Errorf("progress done went from %d to %d", lastDone, done)
			}
			lastDone = done
			sawTotal = total
		},
	}
	if _, err := Scan(chip, &stubDetector{Target: target}, cfg); err != nil {
		t.Fatal(err)
	}
	total := len(enumerateCenters(chip.Bounds(), 1024, 0.5, 0))
	if got := calls.Load(); got != int64(total) {
		t.Fatalf("progress called %d times, want %d", got, total)
	}
	if lastDone != total || sawTotal != total {
		t.Fatalf("final progress = (%d, %d), want (%d, %d)", lastDone, sawTotal, total, total)
	}
}

// TestScanDefaultStrideTilesExactlyOnce is the tiling property: with the
// default stride (core size), the core regions of the enumerated windows
// partition the chip bounds — every point of the die is covered by
// exactly one core.
func TestScanDefaultStrideTilesExactlyOnce(t *testing.T) {
	for _, tc := range []struct {
		name     string
		clipNM   int
		coreFrac float64
		edgeX    int
		edgeY    int
	}{
		{"square-pow2", 1024, 0.5, 4096, 4096},
		{"non-multiple", 1024, 0.5, 4000, 3000},
		{"full-core", 512, 1.0, 2048, 1536},
		{"rect-chip", 1024, 0.25, 2048, 1024},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bounds := geom.R(0, 0, tc.edgeX, tc.edgeY)
			centers := enumerateCenters(bounds, tc.clipNM, tc.coreFrac, 0)
			coreHalf := int(float64(tc.clipNM) * tc.coreFrac / 2)

			// Sample the die on a fine grid and count covering cores.
			const step = 64
			for y := 0; y < tc.edgeY; y += step {
				for x := 0; x < tc.edgeX; x += step {
					covered := 0
					for _, c := range centers {
						core := geom.R(c.X-coreHalf, c.Y-coreHalf, c.X+coreHalf, c.Y+coreHalf)
						if geom.Pt(x, y).In(core) {
							covered++
						}
					}
					if covered != 1 {
						t.Fatalf("point (%d,%d) covered by %d cores, want exactly 1", x, y, covered)
					}
				}
			}
		})
	}
}
