package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/golitho/hsd/internal/iccad"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/metrics"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/trace"
)

// EvalOptions controls Evaluate.
type EvalOptions struct {
	// Sim, when non-nil, is used to verify flagged clips with lithography
	// simulation so ODST reflects real verification cost. When nil, the
	// verification term of ODST is zero.
	Sim *lithosim.Simulator
	// Augment is applied to the training split before fitting.
	Augment AugmentConfig
}

// Result is one detector-on-benchmark evaluation in the contest protocol.
type Result struct {
	Detector  string
	Benchmark string

	Confusion metrics.Confusion
	// AUC of the score sweep (NaN-free; 0 when not computable).
	AUC float64
	// Scores and Labels retain the per-clip outputs for ROC plotting.
	Scores []float64
	Labels []int

	TrainTime time.Duration
	// InferTime is the pure detector runtime over the test split.
	InferTime time.Duration
	// VerifyTime is the lithography-simulation time spent on flagged clips.
	VerifyTime time.Duration
	// FullSimTime estimates simulating every test clip (the no-ML flow).
	FullSimTime time.Duration
}

// ODST is the overall detection and simulation time: detector inference
// plus verification of flagged clips.
func (r Result) ODST() time.Duration { return r.InferTime + r.VerifyTime }

// Speedup is the ODST advantage over simulating everything.
func (r Result) Speedup() float64 {
	o := r.ODST()
	if o <= 0 {
		return 0
	}
	return float64(r.FullSimTime) / float64(o)
}

// Accuracy is the contest accuracy (hotspot recall).
func (r Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// FalseAlarms is the contest false-alarm count.
func (r Result) FalseAlarms() int { return r.Confusion.FalseAlarms() }

// FromSamples converts generator output into evaluation clips.
func FromSamples(samples []iccad.Sample) []LabeledClip {
	out := make([]LabeledClip, len(samples))
	for i, s := range samples {
		out[i] = LabeledClip{Clip: s.Clip, Hotspot: s.Hotspot}
	}
	return out
}

// Evaluate trains det on the training split and measures it on the test
// split under the ICCAD-2012 protocol.
func Evaluate(det Detector, benchName string, train, test []LabeledClip, opt EvalOptions) (Result, error) {
	return EvaluateCtx(context.Background(), det, benchName, train, test, opt)
}

// EvaluateCtx is Evaluate with trace attribution: the run becomes an
// "eval" span whose "fit", "score", and "verify" children decompose the
// reported ODST terms directly — InferTime is the "score" span,
// VerifyTime the "verify" span, with the per-clip pipeline spans nested
// inside each.
func EvaluateCtx(ctx context.Context, det Detector, benchName string, train, test []LabeledClip, opt EvalOptions) (Result, error) {
	if len(train) == 0 || len(test) == 0 {
		return Result{}, fmt.Errorf("core: evaluate %s/%s: empty split", det.Name(), benchName)
	}
	res := Result{Detector: det.Name(), Benchmark: benchName}
	ectx, esp := trace.Start(ctx, "eval",
		trace.A("detector", det.Name()), trace.A("benchmark", benchName))
	defer esp.End()

	fitSet := AugmentMinority(train, opt.Augment)
	t0 := time.Now()
	fctx, fitSp := trace.Start(ectx, "fit")
	fitSp.SetAttrInt("samples", len(fitSet))
	err := FitClipsCtx(fctx, det, fitSet)
	fitSp.SetError(err)
	fitSp.End()
	// An interrupted fit (SIGTERM mid-training) leaves a usable partial
	// model: score it and report metrics for the completed epochs,
	// returning the partial Result alongside the interruption error.
	interrupted := err != nil && errors.Is(err, nn.ErrInterrupted)
	if err != nil && !interrupted {
		return Result{}, fmt.Errorf("core: fit %s on %s: %w", det.Name(), benchName, err)
	}
	fitErr := err
	if interrupted {
		// The context that interrupted the fit is cancelled, but the
		// partial model must still be measured — scoring and
		// verification below run to completion so the interrupted run
		// reports its contest metrics. Trace values survive.
		ectx = context.WithoutCancel(ectx)
	}
	res.TrainTime = time.Since(t0)

	res.Scores = make([]float64, len(test))
	res.Labels = make([]int, len(test))
	flagged := make([]bool, len(test))
	t1 := time.Now()
	sctx, scoreSp := trace.Start(ectx, "score")
	scoreSp.SetAttrInt("samples", len(test))
	for i, s := range test {
		score, err := ScoreClipCtx(sctx, det, s.Clip)
		if err != nil {
			scoreSp.SetError(err)
			scoreSp.End()
			return Result{}, fmt.Errorf("core: score %s sample %d: %w", det.Name(), i, err)
		}
		res.Scores[i] = score
		if s.Hotspot {
			res.Labels[i] = 1
		}
		flagged[i] = score >= det.Threshold()
	}
	scoreSp.End()
	res.InferTime = time.Since(t1)
	for i, s := range test {
		res.Confusion.Add(flagged[i], s.Hotspot)
	}

	if _, auc, err := metrics.ROC(res.Scores, res.Labels); err == nil {
		res.AUC = auc
	}

	if opt.Sim != nil {
		nFlagged := 0
		t2 := time.Now()
		vctx, verifySp := trace.Start(ectx, "verify")
		for i, s := range test {
			if !flagged[i] {
				continue
			}
			nFlagged++
			if _, err := opt.Sim.SimulateCtx(vctx, s.Clip); err != nil {
				verifySp.SetError(err)
				verifySp.End()
				return Result{}, fmt.Errorf("core: verify sample %d: %w", i, err)
			}
		}
		verifySp.SetAttrInt("flagged", nFlagged)
		verifySp.End()
		res.VerifyTime = time.Since(t2)
		if nFlagged > 0 {
			perClip := res.VerifyTime / time.Duration(nFlagged)
			res.FullSimTime = perClip * time.Duration(len(test))
		} else {
			// Estimate the per-clip cost on a small sample.
			n := len(test)
			if n > 8 {
				n = 8
			}
			t3 := time.Now()
			for i := 0; i < n; i++ {
				if _, err := opt.Sim.Simulate(test[i].Clip); err != nil {
					return Result{}, fmt.Errorf("core: probe sim: %w", err)
				}
			}
			res.FullSimTime = time.Since(t3) / time.Duration(n) * time.Duration(len(test))
		}
	}
	if interrupted {
		return res, fmt.Errorf("core: fit %s on %s: %w", det.Name(), benchName, fitErr)
	}
	return res, nil
}

// EvaluateSuite runs one detector factory across every benchmark of a
// suite. The factory is invoked per benchmark so that per-benchmark
// training state never leaks.
func EvaluateSuite(factory func() Detector, suite *iccad.Suite, opt EvalOptions) ([]Result, error) {
	out := make([]Result, 0, len(suite.Benchmarks))
	for _, b := range suite.Benchmarks {
		det := factory()
		r, err := Evaluate(det, b.Name, FromSamples(b.Train.Samples), FromSamples(b.Test.Samples), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
