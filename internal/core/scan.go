package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// ScanScoreSite is the faultinject hook name fired before each window
// score, for chaos-testing scan error handling.
const ScanScoreSite = "core.scan.score"

// ScanConfig controls full-chip scanning.
type ScanConfig struct {
	// ClipNM is the detection window edge (default 1024).
	ClipNM int
	// CoreFrac is the scored core fraction (default 0.5).
	CoreFrac float64
	// StrideNM is the window step; it defaults to the core size so cores
	// tile the chip without gaps.
	StrideNM int
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// SkipEmpty skips windows with no geometry (always sound: empty
	// windows cannot print defects).
	SkipEmpty bool
	// Progress, when non-nil, is called after each window completes with
	// the number of windows done so far and the total enumerated.
	// Invocations are serialized; the callback must not block for long or
	// it stalls the worker pool.
	Progress func(done, total int)
	// Metrics, when non-nil, receives scan telemetry under the scan_*
	// namespace (see scanMetrics for the series emitted). The same
	// registry may be reused across scans; counters accumulate.
	Metrics *telemetry.Registry
}

func (c *ScanConfig) normalize() {
	if c.ClipNM <= 0 {
		c.ClipNM = 1024
	}
	if c.CoreFrac <= 0 || c.CoreFrac > 1 {
		c.CoreFrac = 0.5
	}
	if c.StrideNM <= 0 {
		// Exactly the core edge as ClipAt computes it (2 * coreHalf), so
		// cores tile without hairline gaps when ClipNM*CoreFrac is odd.
		c.StrideNM = 2 * c.coreHalf()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// coreHalf is the half-edge of the scored core region, matching
// layout.ClipAt's rounding.
func (c *ScanConfig) coreHalf() int {
	return int(float64(c.ClipNM) * c.CoreFrac / 2)
}

// Finding is one flagged window of a full-chip scan.
type Finding struct {
	// Center of the flagged window in chip coordinates.
	Center geom.Point
	// Score is the detector output for the window.
	Score float64
}

// scanMetrics bundles the telemetry series of one scan. A nil receiver
// disables every method, so the hot path stays branch-light when no
// registry is supplied.
type scanMetrics struct {
	enumerated *telemetry.Counter   // scan_windows_total
	scanned    *telemetry.Counter   // scan_windows_scanned_total
	skipped    *telemetry.Counter   // scan_windows_skipped_total
	flagged    *telemetry.Counter   // scan_windows_flagged_total
	errored    *telemetry.Counter   // scan_errors_total
	latency    *telemetry.Histogram // scan_score_seconds
	workers    *telemetry.Gauge     // scan_workers
	busy       *telemetry.Counter   // scan_worker_busy_seconds_total
	wall       *telemetry.Counter   // scan_wall_seconds_total
}

func newScanMetrics(reg *telemetry.Registry) *scanMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp("scan_windows_total", "Windows enumerated by the sliding-window scan.")
	reg.SetHelp("scan_windows_scanned_total", "Windows actually scored by the detector.")
	reg.SetHelp("scan_windows_skipped_total", "Empty windows skipped under SkipEmpty.")
	reg.SetHelp("scan_windows_flagged_total", "Windows whose score reached the threshold.")
	reg.SetHelp("scan_errors_total", "Windows that failed to clip or score.")
	reg.SetHelp("scan_score_seconds", "Per-window detector latency.")
	reg.SetHelp("scan_workers", "Worker goroutines of the most recent scan.")
	reg.SetHelp("scan_worker_busy_seconds_total", "Cumulative worker busy time; divide by scan_workers * scan_wall_seconds_total for utilization.")
	reg.SetHelp("scan_wall_seconds_total", "Cumulative scan wall-clock time.")
	return &scanMetrics{
		enumerated: reg.Counter("scan_windows_total"),
		scanned:    reg.Counter("scan_windows_scanned_total"),
		skipped:    reg.Counter("scan_windows_skipped_total"),
		flagged:    reg.Counter("scan_windows_flagged_total"),
		errored:    reg.Counter("scan_errors_total"),
		latency:    reg.Histogram("scan_score_seconds", nil),
		workers:    reg.Gauge("scan_workers"),
		busy:       reg.Counter("scan_worker_busy_seconds_total"),
		wall:       reg.Counter("scan_wall_seconds_total"),
	}
}

func (m *scanMetrics) start(windows, workers int) {
	if m == nil {
		return
	}
	m.enumerated.Add(float64(windows))
	m.workers.Set(float64(workers))
}

func (m *scanMetrics) window(scoreTime time.Duration, scored, skipped, flagged, errored bool) {
	if m == nil {
		return
	}
	switch {
	case errored:
		m.errored.Inc()
	case skipped:
		m.skipped.Inc()
	case scored:
		m.scanned.Inc()
		m.latency.ObserveDuration(scoreTime)
		if flagged {
			m.flagged.Inc()
		}
	}
}

func (m *scanMetrics) finish(busy, wall time.Duration) {
	if m == nil {
		return
	}
	m.busy.AddDuration(busy)
	m.wall.AddDuration(wall)
}

// ScanResult is the outcome of a context-aware scan.
type ScanResult struct {
	// Findings are the flagged windows in deterministic enumeration
	// order (row-major over window centers) — not score order. A
	// cancelled scan's Findings are guaranteed to be a prefix of the
	// Findings an uncancelled scan of the same inputs would return.
	Findings []Finding
	// Windows is the number of windows enumerated.
	Windows int
	// Completed is the length of the contiguous prefix of windows fully
	// processed; equal to Windows when the scan ran to completion.
	// Findings only reports flags from this prefix.
	Completed int
	// Interrupted is true when the context was cancelled or its
	// deadline expired before every window was scored.
	Interrupted bool
	// Cause is the context error when Interrupted, nil otherwise.
	Cause error
}

// Scan slides a detection window across the chip and returns the flagged
// windows ordered by descending score. Cores tile the die (given the
// default stride), so every location is scored exactly once.
//
// When det implements Cloner, windows are scored in parallel with one
// detector clone per worker; otherwise det.Score is assumed safe for
// concurrent use (true for the fitted PM/SVM/AdaBoost detectors, whose
// models are immutable after Fit).
func Scan(chip *layout.Layout, det Detector, cfg ScanConfig) ([]Finding, error) {
	res, err := ScanCtx(context.Background(), chip, det, cfg)
	if err != nil {
		return nil, err
	}
	out := res.Findings
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Center.Y != out[j].Center.Y {
			return out[i].Center.Y < out[j].Center.Y
		}
		return out[i].Center.X < out[j].Center.X
	})
	return out, nil
}

// scoreWindowSafe scores one window with panic isolation: a panicking
// detector (or an armed ScanScoreSite panic fault) fails the window
// with an error instead of crashing the whole scan. The caller attaches
// the window index and center when it propagates the error, so a poison
// window is identifiable from the failure alone.
func scoreWindowSafe(ctx context.Context, d Detector, clip layout.Clip) (score float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("detector panic: %v", r)
		}
	}()
	if err := faultinject.Hit(ScanScoreSite); err != nil {
		return 0, err
	}
	return ScoreClipCtx(ctx, d, clip)
}

// ScanCtx is the context-aware Scan: it honors cancellation and
// deadlines, returning the partial findings gathered so far with an
// explicit Interrupted marker instead of an error. Findings are in
// window-enumeration order and cover exactly the contiguous prefix of
// completed windows, so a cancelled scan's findings are a prefix of the
// deterministic uncancelled result — resumable and comparable.
//
// Window errors inside the completed prefix still abort with an error
// (matching Scan); errors beyond the prefix of an interrupted scan are
// unreported, since their windows are not part of the result.
func ScanCtx(ctx context.Context, chip *layout.Layout, det Detector, cfg ScanConfig) (ScanResult, error) {
	cfg.normalize()
	bounds := chip.Bounds()
	if bounds.Empty() {
		return ScanResult{}, nil
	}
	// Anchor window centers so the first core starts at bounds.Min: the
	// cores (not the windows) must tile the die, otherwise geometry in
	// the border margin of width (ClipNM-core)/2 is never scored inside
	// a core. Windows overhang the die edge instead, which is harmless.
	coreHalf := cfg.coreHalf()
	if coreHalf <= 0 {
		coreHalf = cfg.ClipNM / 2
	}
	var centers []geom.Point
	for cy := bounds.Min.Y + coreHalf; cy-coreHalf < bounds.Max.Y; cy += cfg.StrideNM {
		for cx := bounds.Min.X + coreHalf; cx-coreHalf < bounds.Max.X; cx += cfg.StrideNM {
			centers = append(centers, geom.Pt(cx, cy))
		}
	}

	mets := newScanMetrics(cfg.Metrics)
	mets.start(len(centers), cfg.Workers)
	scanStart := time.Now()

	var done atomic.Int64
	var progressMu sync.Mutex
	report := func() {
		n := int(done.Add(1))
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(n, len(centers))
			progressMu.Unlock()
		}
	}

	var busyNanos atomic.Int64
	findings := make([]*Finding, len(centers))
	errs := make([]error, len(centers))
	processed := make([]atomic.Bool, len(centers))
	// Resolve the tracer once: with tracing off, the per-window loop must
	// not pay even the context lookups (the scan hot path is the
	// zero-cost-when-disabled acceptance surface; see
	// BenchmarkScanTracedVsUntraced).
	traced := !trace.Disabled(ctx)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		d := det
		if c, ok := det.(Cloner); ok {
			d = c.CloneDetector()
		}
		wg.Add(1)
		go func(d Detector) {
			defer wg.Done()
			for {
				var i int
				select {
				case <-ctx.Done():
					return
				case j, ok := <-jobs:
					if !ok {
						return
					}
					i = j
				}
				jobStart := time.Now()
				wctx, wsp := ctx, (*trace.Span)(nil)
				if traced {
					wctx, wsp = trace.Start(ctx, "scan.window")
					wsp.SetAttrInt("index", i)
				}
				done := func() {
					wsp.End()
					processed[i].Store(true)
					busyNanos.Add(int64(time.Since(jobStart)))
					report()
				}
				clip, err := chip.ClipAt(centers[i], cfg.ClipNM, cfg.CoreFrac)
				if err != nil {
					errs[i] = err
					wsp.SetError(err)
					mets.window(0, false, false, false, true)
					done()
					continue
				}
				if cfg.SkipEmpty && len(clip.Shapes) == 0 {
					wsp.SetAttr("skipped", "empty")
					mets.window(0, false, true, false, false)
					done()
					continue
				}
				scoreStart := time.Now()
				score, err := scoreWindowSafe(wctx, d, clip)
				scoreTime := time.Since(scoreStart)
				if err != nil {
					errs[i] = err
					wsp.SetError(err)
					mets.window(0, false, false, false, true)
					done()
					continue
				}
				flagged := score >= d.Threshold()
				if flagged {
					findings[i] = &Finding{Center: centers[i], Score: score}
					wsp.SetAttr("flagged", "true")
				}
				mets.window(scoreTime, true, false, flagged, false)
				done()
			}
		}(d)
	}
dispatch:
	for i := range centers {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	mets.finish(time.Duration(busyNanos.Load()), time.Since(scanStart))

	res := ScanResult{Windows: len(centers)}
	// Completed is the maximal contiguous prefix of processed windows:
	// the portion of the deterministic enumeration the scan fully
	// covered before cancellation (workers finish out of order, so
	// isolated later windows may also be done; they are not reported).
	for res.Completed < len(centers) && processed[res.Completed].Load() {
		res.Completed++
	}
	if err := ctx.Err(); err != nil && res.Completed < len(centers) {
		res.Interrupted = true
		res.Cause = err
	}
	for i := 0; i < res.Completed; i++ {
		if errs[i] != nil {
			return ScanResult{}, fmt.Errorf("core: scan window %d at %v: %w", i, centers[i], errs[i])
		}
	}
	for _, f := range findings[:res.Completed] {
		if f != nil {
			res.Findings = append(res.Findings, *f)
		}
	}
	return res, nil
}
