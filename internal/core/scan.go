package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// ScanConfig controls full-chip scanning.
type ScanConfig struct {
	// ClipNM is the detection window edge (default 1024).
	ClipNM int
	// CoreFrac is the scored core fraction (default 0.5).
	CoreFrac float64
	// StrideNM is the window step; it defaults to the core size so cores
	// tile the chip without gaps.
	StrideNM int
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// SkipEmpty skips windows with no geometry (always sound: empty
	// windows cannot print defects).
	SkipEmpty bool
}

func (c *ScanConfig) normalize() {
	if c.ClipNM <= 0 {
		c.ClipNM = 1024
	}
	if c.CoreFrac <= 0 || c.CoreFrac > 1 {
		c.CoreFrac = 0.5
	}
	if c.StrideNM <= 0 {
		c.StrideNM = int(float64(c.ClipNM) * c.CoreFrac)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Finding is one flagged window of a full-chip scan.
type Finding struct {
	// Center of the flagged window in chip coordinates.
	Center geom.Point
	// Score is the detector output for the window.
	Score float64
}

// Scan slides a detection window across the chip and returns the flagged
// windows ordered by descending score. Cores tile the die (given the
// default stride), so every location is scored exactly once.
//
// When det implements Cloner, windows are scored in parallel with one
// detector clone per worker; otherwise det.Score is assumed safe for
// concurrent use (true for the fitted PM/SVM/AdaBoost detectors, whose
// models are immutable after Fit).
func Scan(chip *layout.Layout, det Detector, cfg ScanConfig) ([]Finding, error) {
	cfg.normalize()
	bounds := chip.Bounds()
	if bounds.Empty() {
		return nil, nil
	}
	half := cfg.ClipNM / 2
	var centers []geom.Point
	for cy := bounds.Min.Y + half; cy-half < bounds.Max.Y; cy += cfg.StrideNM {
		for cx := bounds.Min.X + half; cx-half < bounds.Max.X; cx += cfg.StrideNM {
			centers = append(centers, geom.Pt(cx, cy))
		}
	}

	findings := make([]*Finding, len(centers))
	errs := make([]error, len(centers))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		d := det
		if c, ok := det.(Cloner); ok {
			d = c.CloneDetector()
		}
		wg.Add(1)
		go func(d Detector) {
			defer wg.Done()
			for i := range jobs {
				clip, err := chip.ClipAt(centers[i], cfg.ClipNM, cfg.CoreFrac)
				if err != nil {
					errs[i] = err
					continue
				}
				if cfg.SkipEmpty && len(clip.Shapes) == 0 {
					continue
				}
				score, err := d.Score(clip)
				if err != nil {
					errs[i] = err
					continue
				}
				if score >= d.Threshold() {
					findings[i] = &Finding{Center: centers[i], Score: score}
				}
			}
		}(d)
	}
	for i := range centers {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: scan window %d at %v: %w", i, centers[i], err)
		}
	}
	out := make([]Finding, 0, 16)
	for _, f := range findings {
		if f != nil {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Center.Y != out[j].Center.Y {
			return out[i].Center.Y < out[j].Center.Y
		}
		return out[i].Center.X < out[j].Center.X
	})
	return out, nil
}
