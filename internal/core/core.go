// Package core ties the hotspot-detection stack together: a unified
// Detector interface over the shallow and deep classifiers, minority-class
// augmentation, the contest evaluation harness (accuracy / false alarms /
// ODST), and a parallel full-chip scanner.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/boost"
	"github.com/golitho/hsd/internal/dtree"
	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/logreg"
	"github.com/golitho/hsd/internal/nn"
	"github.com/golitho/hsd/internal/pm"
	"github.com/golitho/hsd/internal/svm"
)

// LabeledClip is one training or evaluation sample.
type LabeledClip struct {
	Clip    layout.Clip
	Hotspot bool
}

// Detector is a trainable hotspot classifier over layout clips.
// Implementations are safe for concurrent Score calls after Fit unless
// they also implement Cloner, in which case callers must give each
// goroutine its own clone.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Fit trains on labelled clips.
	Fit(train []LabeledClip) error
	// Score returns a hotspot likelihood; higher means more suspicious.
	Score(clip layout.Clip) (float64, error)
	// Threshold is the decision cut: Score >= Threshold flags a hotspot.
	Threshold() float64
}

// Cloner is implemented by detectors whose Score is not concurrency-safe;
// each goroutine must use its own clone.
type Cloner interface {
	CloneDetector() Detector
}

// BatchScorer is implemented by detectors with a vectorized scoring path.
// ScoreBatch returns one score per clip, in input order, identical to
// what Score would return for each clip alone. Implementations must be
// safe for concurrent use after Fit — even when the detector is also a
// Cloner — so servers can batch across requests without cloning.
type BatchScorer interface {
	ScoreBatch(clips []layout.Clip) ([]float64, error)
}

// ScoreClips scores every clip through the detector's fastest safe path:
// the vectorized BatchScorer when available, otherwise sequential Score.
func ScoreClips(d Detector, clips []layout.Clip) ([]float64, error) {
	if bs, ok := d.(BatchScorer); ok {
		return bs.ScoreBatch(clips)
	}
	out := make([]float64, len(clips))
	for i, clip := range clips {
		s, err := d.Score(clip)
		if err != nil {
			return nil, fmt.Errorf("core: score clip %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Predict applies the detector's threshold to a clip.
func Predict(d Detector, clip layout.Clip) (bool, error) {
	s, err := d.Score(clip)
	if err != nil {
		return false, err
	}
	return s >= d.Threshold(), nil
}

// AugmentConfig controls minority-class augmentation, the imbalance
// treatment of the deep hotspot literature (upsampling + mirror flips).
type AugmentConfig struct {
	// UpsampleFactor duplicates each hotspot clip this many times in
	// total (1 = no upsampling).
	UpsampleFactor int
	// Mirror adds X- and Y-mirrored variants of hotspot clips.
	Mirror bool
	// Rotate adds the 90-degree rotation of hotspot clips.
	Rotate bool
}

// AugmentMinority expands the hotspot class of a training set. Geometry
// transforms preserve printability, so labels carry over. The result
// interleaves originals first, then augmented copies.
func AugmentMinority(train []LabeledClip, cfg AugmentConfig) []LabeledClip {
	out := make([]LabeledClip, len(train))
	copy(out, train)
	if cfg.UpsampleFactor < 1 {
		cfg.UpsampleFactor = 1
	}
	for _, s := range train {
		if !s.Hotspot {
			continue
		}
		variants := []layout.Clip{}
		if cfg.Mirror {
			variants = append(variants, features.MirrorClipX(s.Clip), features.MirrorClipY(s.Clip))
		}
		if cfg.Rotate {
			variants = append(variants, features.Rotate90Clip(s.Clip))
		}
		// Duplicate the original up to the upsample factor, cycling
		// through transformed variants for diversity when available.
		for k := 1; k < cfg.UpsampleFactor; k++ {
			clip := s.Clip
			if len(variants) > 0 {
				clip = variants[(k-1)%len(variants)]
			}
			out = append(out, LabeledClip{Clip: clip, Hotspot: true})
		}
		// Always include each variant at least once.
		for i, v := range variants {
			if cfg.UpsampleFactor-1 > i {
				continue // already emitted by the cycle above
			}
			out = append(out, LabeledClip{Clip: v, Hotspot: true})
		}
	}
	return out
}

// scaler standardizes feature vectors to zero mean and unit variance,
// fitted on training data. Constant features pass through unchanged.
type scaler struct {
	mean, invStd []float64
}

func fitScaler(x [][]float64) *scaler {
	if len(x) == 0 {
		return &scaler{}
	}
	dim := len(x[0])
	s := &scaler{mean: make([]float64, dim), invStd: make([]float64, dim)}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.invStd[j] += d * d
		}
	}
	for j := range s.invStd {
		sd := math.Sqrt(s.invStd[j] / float64(len(x)))
		if sd < 1e-9 {
			s.invStd[j] = 1
		} else {
			s.invStd[j] = 1 / sd
		}
	}
	return s
}

func (s *scaler) apply(x []float64) []float64 {
	if s.mean == nil {
		return x
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) * s.invStd[j]
	}
	return out
}

func (s *scaler) applyAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.apply(row)
	}
	return out
}

// extract computes features for every clip, in order.
func extract(ex features.Extractor, clips []LabeledClip) ([][]float64, []int, error) {
	x := make([][]float64, len(clips))
	y := make([]int, len(clips))
	for i, s := range clips {
		v, err := ex.Extract(s.Clip)
		if err != nil {
			return nil, nil, fmt.Errorf("core: extract sample %d: %w", i, err)
		}
		x[i] = v
		if s.Hotspot {
			y[i] = 1
		}
	}
	return x, y, nil
}

// errNotFitted is returned by Score before Fit.
var errNotFitted = errors.New("core: detector is not fitted")

// PMDetector wraps the pattern-matching library.
type PMDetector struct {
	Cfg pm.Config

	lib *pm.Library
	thr float64
}

var _ Detector = (*PMDetector)(nil)

// NewPMDetector constructs a pattern-matching detector.
func NewPMDetector(cfg pm.Config) *PMDetector { return &PMDetector{Cfg: cfg} }

// Name implements Detector.
func (d *PMDetector) Name() string {
	if d.Cfg.Tol > 0 {
		return fmt.Sprintf("pm-fuzzy(tol=%d)", d.Cfg.Tol)
	}
	return "pm-exact"
}

// Fit implements Detector: all training hotspots enter the library.
func (d *PMDetector) Fit(train []LabeledClip) error {
	lib, err := pm.New(d.Cfg)
	if err != nil {
		return err
	}
	for i, s := range train {
		if !s.Hotspot {
			continue
		}
		if err := lib.AddHotspot(s.Clip); err != nil {
			return fmt.Errorf("core: pm add hotspot %d: %w", i, err)
		}
	}
	d.lib = lib
	grid := d.Cfg.GridPx
	if grid <= 0 {
		grid = 32
	}
	d.thr = 1 - float64(d.Cfg.Tol)/float64(grid*grid)
	return nil
}

// Score implements Detector.
func (d *PMDetector) Score(clip layout.Clip) (float64, error) {
	if d.lib == nil {
		return 0, errNotFitted
	}
	return d.lib.Score(clip)
}

// Threshold implements Detector.
func (d *PMDetector) Threshold() float64 { return d.thr }

// SVMDetector is a kernel SVM over a feature extractor.
type SVMDetector struct {
	Ex  features.Extractor
	Cfg svm.Config

	scale *scaler
	model *svm.Model
}

var _ Detector = (*SVMDetector)(nil)

// NewSVMDetector constructs an SVM detector over the extractor.
func NewSVMDetector(ex features.Extractor, cfg svm.Config) *SVMDetector {
	return &SVMDetector{Ex: ex, Cfg: cfg}
}

// Name implements Detector.
func (d *SVMDetector) Name() string { return "svm+" + d.Ex.Name() }

// Fit implements Detector.
func (d *SVMDetector) Fit(train []LabeledClip) error {
	x, y, err := extract(d.Ex, train)
	if err != nil {
		return err
	}
	d.scale = fitScaler(x)
	m, err := svm.Train(d.scale.applyAll(x), y, d.Cfg)
	if err != nil {
		return fmt.Errorf("core: svm fit: %w", err)
	}
	d.model = m
	return nil
}

// Score implements Detector: the signed SVM margin.
func (d *SVMDetector) Score(clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	v, err := d.Ex.Extract(clip)
	if err != nil {
		return 0, err
	}
	return d.model.Decision(d.scale.apply(v)), nil
}

// Threshold implements Detector.
func (d *SVMDetector) Threshold() float64 { return 0 }

// BoostDetector is AdaBoost over a feature extractor.
type BoostDetector struct {
	Ex  features.Extractor
	Cfg boost.Config

	scale *scaler
	model *boost.Model
}

var _ Detector = (*BoostDetector)(nil)

// NewBoostDetector constructs an AdaBoost detector over the extractor.
func NewBoostDetector(ex features.Extractor, cfg boost.Config) *BoostDetector {
	return &BoostDetector{Ex: ex, Cfg: cfg}
}

// Name implements Detector.
func (d *BoostDetector) Name() string { return "adaboost+" + d.Ex.Name() }

// Fit implements Detector.
func (d *BoostDetector) Fit(train []LabeledClip) error {
	x, y, err := extract(d.Ex, train)
	if err != nil {
		return err
	}
	d.scale = fitScaler(x)
	m, err := boost.Train(d.scale.applyAll(x), y, d.Cfg)
	if err != nil {
		return fmt.Errorf("core: boost fit: %w", err)
	}
	d.model = m
	return nil
}

// Score implements Detector: the normalized ensemble margin in [-1, 1].
func (d *BoostDetector) Score(clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	v, err := d.Ex.Extract(clip)
	if err != nil {
		return 0, err
	}
	return d.model.Score(d.scale.apply(v)), nil
}

// Threshold implements Detector.
func (d *BoostDetector) Threshold() float64 { return 0 }

// NeuralDetector wraps an MLP or CNN; Score is the hotspot probability.
type NeuralDetector struct {
	// Label distinguishes variants in reports (e.g. "cnn", "cnn-biased").
	Label string
	Ex    features.Extractor
	// Build constructs the (untrained) network for the extractor's
	// dimensionality.
	Build func() (*nn.Network, error)
	Cfg   nn.TrainConfig
	// Decision threshold on the hotspot probability (default 0.5).
	Thr float64
	// NoScale disables per-feature standardization. Spectral feature
	// tensors are already bounded, and standardizing them amplifies
	// near-constant high-frequency channels into noise.
	NoScale bool

	scale *scaler
	net   *nn.Network
	hist  []nn.EpochStats

	// prec and infer are the reduced-precision serving state: infer is
	// the nn.Compress result of net at prec, used by every scoring path
	// when non-nil. The float64 net is always retained — it is the
	// training/serialization source of truth.
	prec  nn.Precision
	infer *nn.Network
}

var _ Detector = (*NeuralDetector)(nil)
var _ Cloner = (*NeuralDetector)(nil)
var _ BatchScorer = (*NeuralDetector)(nil)

// Name implements Detector.
func (d *NeuralDetector) Name() string { return d.Label + "+" + d.Ex.Name() }

// Fit implements Detector.
func (d *NeuralDetector) Fit(train []LabeledClip) error {
	return d.FitCtx(context.Background(), train)
}

// FitCtx implements CtxFitter. A run halted by cancellation keeps the
// partially trained network and history alongside the returned
// nn.ErrInterrupted, so callers can still score and report metrics for
// the epochs that completed.
func (d *NeuralDetector) FitCtx(ctx context.Context, train []LabeledClip) error {
	x, y, err := extract(d.Ex, train)
	if err != nil {
		return err
	}
	if d.NoScale {
		d.scale = &scaler{}
	} else {
		d.scale = fitScaler(x)
	}
	net, err := d.Build()
	if err != nil {
		return fmt.Errorf("core: build network: %w", err)
	}
	hist, ferr := nn.FitCtx(ctx, net, d.scale.applyAll(x), y, d.Cfg)
	if ferr != nil && !errors.Is(ferr, nn.ErrInterrupted) {
		return fmt.Errorf("core: nn fit: %w", ferr)
	}
	d.net = net
	d.hist = hist
	if err := d.SetPrecision(d.prec); err != nil {
		return err
	}
	if ferr != nil {
		return fmt.Errorf("core: nn fit: %w", ferr)
	}
	return nil
}

// WithNetwork returns a copy of the detector serving net through the
// same fitted feature extractor, scaler, and threshold. This is the hot
// reload path: weights come from a model file, everything else carries
// over from the live detector. Training history does not transfer.
func (d *NeuralDetector) WithNetwork(net *nn.Network) (*NeuralDetector, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	if net.OutDim() != 2 {
		return nil, fmt.Errorf("core: network ends with %d logits, want 2", net.OutDim())
	}
	if d.scale == nil {
		return nil, errNotFitted
	}
	out := *d
	out.net = net
	out.hist = nil
	if err := out.SetPrecision(d.prec); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetPrecision selects the inference kernel tier. Float64 serves the
// trained network directly (bit-identical scores); Float32 and Int8
// compress it into an inference-only copy whose scores drift within the
// quantization tolerance — callers are expected to pass the candidate
// through registry.Gate (or an equivalent golden-set check) before
// serving reduced precision. Callable before Fit (the choice applies to
// every future network) or after (the current network is recompressed).
func (d *NeuralDetector) SetPrecision(p nn.Precision) error {
	if d.net != nil && p != nn.Float64 {
		inf, err := nn.Compress(d.net, p)
		if err != nil {
			return fmt.Errorf("core: compress to %s: %w", p, err)
		}
		d.infer = inf
	} else {
		d.infer = nil
	}
	d.prec = p
	return nil
}

// Precision returns the serving precision set by SetPrecision.
func (d *NeuralDetector) Precision() nn.Precision { return d.prec }

// inferNet returns the network the scoring paths use: the compressed
// inference copy when reduced precision is active, the trained float64
// network otherwise.
func (d *NeuralDetector) inferNet() *nn.Network {
	if d.infer != nil {
		return d.infer
	}
	return d.net
}

// History returns the training history of the last Fit.
func (d *NeuralDetector) History() []nn.EpochStats { return d.hist }

// Network returns the trained network (nil before Fit).
func (d *NeuralDetector) Network() *nn.Network { return d.net }

// Score implements Detector.
func (d *NeuralDetector) Score(clip layout.Clip) (float64, error) {
	if d.net == nil {
		return 0, errNotFitted
	}
	v, err := d.Ex.Extract(clip)
	if err != nil {
		return 0, err
	}
	return nn.Score(d.inferNet(), d.scale.apply(v)), nil
}

// ScoreBatch implements BatchScorer through the nn batched inference
// engine: feature extraction per clip, then one parallel arena-backed
// forward pass. Scores are bit-identical to per-clip Score calls, and
// the path is read-only on the network, so it is safe for concurrent
// use without cloning.
func (d *NeuralDetector) ScoreBatch(clips []layout.Clip) ([]float64, error) {
	return d.ScoreBatchCtx(context.Background(), clips)
}

// Threshold implements Detector.
func (d *NeuralDetector) Threshold() float64 {
	if d.Thr <= 0 {
		return 0.5
	}
	return d.Thr
}

// CloneDetector implements Cloner: neural forward passes mutate layer
// caches, so concurrent scoring needs clones. The compressed inference
// network is stateless and immutable, so clones share it.
func (d *NeuralDetector) CloneDetector() Detector {
	out := *d
	if d.net != nil {
		out.net = d.net.Clone()
	}
	return &out
}

// NewMLPDetector builds the shallow neural-network baseline.
func NewMLPDetector(ex features.Extractor, hidden []int, cfg nn.TrainConfig) *NeuralDetector {
	return &NeuralDetector{
		Label: "mlp",
		Ex:    ex,
		Build: func() (*nn.Network, error) { return nn.BuildMLP(ex.Dim(), hidden...), nil },
		Cfg:   cfg,
	}
}

// NewCNNDetector builds the deep feature-tensor CNN detector. The
// extractor must be a *features.DCT so the tensor shape is known.
func NewCNNDetector(ex *features.DCT, cnn nn.CNNConfig, cfg nn.TrainConfig, label string) *NeuralDetector {
	if label == "" {
		label = "cnn"
	}
	c, h, w := ex.TensorShape()
	if cnn.InC == 0 {
		cnn.InC, cnn.InH, cnn.InW = c, h, w
	}
	return &NeuralDetector{
		Label: label,
		Ex:    ex,
		Build: func() (*nn.Network, error) { return nn.BuildCNN(cnn) },
		Cfg:   cfg,
	}
}

// ForestDetector is a bagged random forest over a feature extractor.
type ForestDetector struct {
	Ex  features.Extractor
	Cfg dtree.ForestConfig

	scale *scaler
	model *dtree.Forest
}

var _ Detector = (*ForestDetector)(nil)

// NewForestDetector constructs a random-forest detector over the extractor.
func NewForestDetector(ex features.Extractor, cfg dtree.ForestConfig) *ForestDetector {
	return &ForestDetector{Ex: ex, Cfg: cfg}
}

// Name implements Detector.
func (d *ForestDetector) Name() string { return "rforest+" + d.Ex.Name() }

// Fit implements Detector.
func (d *ForestDetector) Fit(train []LabeledClip) error {
	x, y, err := extract(d.Ex, train)
	if err != nil {
		return err
	}
	d.scale = fitScaler(x)
	m, err := dtree.TrainForest(d.scale.applyAll(x), y, d.Cfg)
	if err != nil {
		return fmt.Errorf("core: forest fit: %w", err)
	}
	d.model = m
	return nil
}

// Score implements Detector: the mean tree probability.
func (d *ForestDetector) Score(clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	v, err := d.Ex.Extract(clip)
	if err != nil {
		return 0, err
	}
	return d.model.Prob(d.scale.apply(v)), nil
}

// Threshold implements Detector.
func (d *ForestDetector) Threshold() float64 { return 0.5 }

// LogRegDetector is L2-regularized logistic regression over a feature
// extractor: the probabilistic shallow baseline.
type LogRegDetector struct {
	Ex  features.Extractor
	Cfg logreg.Config

	scale *scaler
	model *logreg.Model
}

var _ Detector = (*LogRegDetector)(nil)

// NewLogRegDetector constructs a logistic-regression detector.
func NewLogRegDetector(ex features.Extractor, cfg logreg.Config) *LogRegDetector {
	return &LogRegDetector{Ex: ex, Cfg: cfg}
}

// Name implements Detector.
func (d *LogRegDetector) Name() string { return "logreg+" + d.Ex.Name() }

// Fit implements Detector.
func (d *LogRegDetector) Fit(train []LabeledClip) error {
	x, y, err := extract(d.Ex, train)
	if err != nil {
		return err
	}
	d.scale = fitScaler(x)
	m, err := logreg.Train(d.scale.applyAll(x), y, d.Cfg)
	if err != nil {
		return fmt.Errorf("core: logreg fit: %w", err)
	}
	d.model = m
	return nil
}

// Score implements Detector: the hotspot probability.
func (d *LogRegDetector) Score(clip layout.Clip) (float64, error) {
	if d.model == nil {
		return 0, errNotFitted
	}
	v, err := d.Ex.Extract(clip)
	if err != nil {
		return 0, err
	}
	return d.model.Prob(d.scale.apply(v)), nil
}

// Threshold implements Detector.
func (d *LogRegDetector) Threshold() float64 { return 0.5 }
