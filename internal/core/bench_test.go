package core

import (
	"context"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/trace"
)

// BenchmarkScan4225Windows measures full-chip scan throughput with a
// trivial detector: the harness overhead (clip extraction, worker pool,
// dedup/ordering) independent of model cost.
func BenchmarkScan4225Windows(b *testing.B) {
	chip := layout.NewWithGrid("bench", 2048)
	for y := 0; y < 32768; y += 512 {
		if err := chip.AddRect(geom.R(0, y, 32768, y+96)); err != nil {
			b.Fatal(err)
		}
	}
	det := &stubBenchDetector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(chip, det, ScanConfig{SkipEmpty: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanTracedVsUntraced pins the cost of the tracing hooks on
// the scan hot path. "untraced" is a context with no tracer at all;
// "disabled" carries a toggled-off tracer, exercising the nil-span fast
// path every window takes in production when tracing is off — it must
// stay within ~2% of untraced (the acceptance bound; see
// BENCH_trace.json for the recorded runs). "enabled" records a span per
// window and shows the full price of turning tracing on.
func BenchmarkScanTracedVsUntraced(b *testing.B) {
	chip := layout.NewWithGrid("bench", 2048)
	for y := 0; y < 16384; y += 512 {
		if err := chip.AddRect(geom.R(0, y, 16384, y+96)); err != nil {
			b.Fatal(err)
		}
	}
	det := &stubBenchDetector{}
	run := func(b *testing.B, ctx context.Context) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ScanCtx(ctx, chip, det, ScanConfig{SkipEmpty: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("disabled", func(b *testing.B) {
		tr := trace.New(trace.Config{})
		tr.SetEnabled(false)
		run(b, trace.WithTracer(context.Background(), tr))
	})
	b.Run("enabled", func(b *testing.B) {
		tr := trace.New(trace.Config{Capacity: 4})
		ctx := trace.WithTracer(context.Background(), tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sctx, root := trace.Start(ctx, "scan")
			if _, err := ScanCtx(sctx, chip, det, ScanConfig{SkipEmpty: true}); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}

type stubBenchDetector struct{}

func (stubBenchDetector) Name() string                       { return "stub" }
func (stubBenchDetector) Fit([]LabeledClip) error            { return nil }
func (stubBenchDetector) Threshold() float64                 { return 0.5 }
func (stubBenchDetector) Score(layout.Clip) (float64, error) { return 0, nil }
