package core

import (
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// BenchmarkScan4225Windows measures full-chip scan throughput with a
// trivial detector: the harness overhead (clip extraction, worker pool,
// dedup/ordering) independent of model cost.
func BenchmarkScan4225Windows(b *testing.B) {
	chip := layout.NewWithGrid("bench", 2048)
	for y := 0; y < 32768; y += 512 {
		if err := chip.AddRect(geom.R(0, y, 32768, y+96)); err != nil {
			b.Fatal(err)
		}
	}
	det := &stubBenchDetector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(chip, det, ScanConfig{SkipEmpty: true}); err != nil {
			b.Fatal(err)
		}
	}
}

type stubBenchDetector struct{}

func (stubBenchDetector) Name() string                       { return "stub" }
func (stubBenchDetector) Fit([]LabeledClip) error            { return nil }
func (stubBenchDetector) Threshold() float64                 { return 0.5 }
func (stubBenchDetector) Score(layout.Clip) (float64, error) { return 0, nil }
