package core

import (
	"errors"
	"fmt"
	"strings"

	"github.com/golitho/hsd/internal/layout"
)

// Ensemble combines heterogeneous detectors by thresholded voting: its
// score is the fraction of members that flag the clip.
type Ensemble struct {
	// Members are fitted together on the same training split.
	Members []Detector
	// Vote is the member fraction required to flag (default 0.5, i.e.
	// majority).
	Vote float64

	fitted bool
}

var _ Detector = (*Ensemble)(nil)
var _ Cloner = (*Ensemble)(nil)

// NewEnsemble builds a majority-voting ensemble.
func NewEnsemble(members ...Detector) *Ensemble { return &Ensemble{Members: members} }

// Name implements Detector.
func (e *Ensemble) Name() string {
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Name()
	}
	return "ensemble(" + strings.Join(names, ",") + ")"
}

// Fit implements Detector.
func (e *Ensemble) Fit(train []LabeledClip) error {
	if len(e.Members) == 0 {
		return errors.New("core: ensemble has no members")
	}
	for i, m := range e.Members {
		if err := m.Fit(train); err != nil {
			return fmt.Errorf("core: ensemble member %d (%s): %w", i, m.Name(), err)
		}
	}
	e.fitted = true
	return nil
}

// Score implements Detector: the fraction of members voting hotspot.
func (e *Ensemble) Score(clip layout.Clip) (float64, error) {
	if !e.fitted {
		return 0, errNotFitted
	}
	votes := 0
	for _, m := range e.Members {
		s, err := m.Score(clip)
		if err != nil {
			return 0, err
		}
		if s >= m.Threshold() {
			votes++
		}
	}
	return float64(votes) / float64(len(e.Members)), nil
}

// Threshold implements Detector.
func (e *Ensemble) Threshold() float64 {
	if e.Vote <= 0 {
		return 0.5
	}
	return e.Vote
}

// CloneDetector implements Cloner: members that are themselves Cloners
// get cloned; immutable members are shared.
func (e *Ensemble) CloneDetector() Detector {
	out := &Ensemble{Vote: e.Vote, fitted: e.fitted}
	out.Members = make([]Detector, len(e.Members))
	for i, m := range e.Members {
		if c, ok := m.(Cloner); ok {
			out.Members[i] = c.CloneDetector()
		} else {
			out.Members[i] = m
		}
	}
	return out
}
