package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// errDetector fails on clips overlapping Bad.
type errDetector struct {
	Bad geom.Rect
}

var errInjected = errors.New("injected failure")

func (e *errDetector) Name() string                  { return "err" }
func (e *errDetector) Fit(train []LabeledClip) error { return nil }
func (e *errDetector) Threshold() float64            { return 0.5 }
func (e *errDetector) Score(clip layout.Clip) (float64, error) {
	if clip.Window.Overlaps(e.Bad) {
		return 0, errInjected
	}
	return 0, nil
}

func TestScanPropagatesDetectorErrors(t *testing.T) {
	chip := layout.New("chip")
	if err := chip.AddRect(geom.R(0, 0, 4096, 96)); err != nil {
		t.Fatal(err)
	}
	det := &errDetector{Bad: geom.R(2000, 0, 2100, 100)}
	_, err := Scan(chip, det, ScanConfig{Workers: 3})
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan error = %v, want injected failure", err)
	}
}

func TestEvaluatePropagatesScoreErrors(t *testing.T) {
	train, test := tinySplits(t)
	det := &errDetector{Bad: test[0].Clip.Window}
	_, err := Evaluate(det, "T1", train, test, EvalOptions{})
	if !errors.Is(err, errInjected) {
		t.Fatalf("evaluate error = %v, want injected failure", err)
	}
}

// fitFailDetector always fails to train.
type fitFailDetector struct{}

func (fitFailDetector) Name() string                       { return "fitfail" }
func (fitFailDetector) Fit([]LabeledClip) error            { return errInjected }
func (fitFailDetector) Threshold() float64                 { return 0.5 }
func (fitFailDetector) Score(layout.Clip) (float64, error) { return 0, nil }

func TestEvaluatePropagatesFitErrors(t *testing.T) {
	train, test := tinySplits(t)
	_, err := Evaluate(fitFailDetector{}, "T1", train, test, EvalOptions{})
	if !errors.Is(err, errInjected) {
		t.Fatalf("evaluate error = %v, want injected failure", err)
	}
}

func TestEnsemblePropagatesMemberFitError(t *testing.T) {
	train, _ := tinySplits(t)
	ens := NewEnsemble(fitFailDetector{})
	if err := ens.Fit(train); !errors.Is(err, errInjected) {
		t.Fatalf("ensemble fit error = %v", err)
	}
}

func TestEvaluateSuiteSmoke(t *testing.T) {
	s := getTinySuite(t)
	results, err := EvaluateSuite(func() Detector {
		return &stubDetector{Target: geom.R(0, 0, 10, 10)}
	}, s, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(s.Benchmarks) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Confusion.Total() == 0 {
			t.Fatal("empty confusion in suite evaluation")
		}
	}
}

func TestScanStrideCoversChip(t *testing.T) {
	chip := layout.New("chip")
	// A hotspot-marker shape in every corner and the centre.
	marks := []geom.Rect{
		geom.R(10, 10, 30, 30),
		geom.R(4000, 10, 4050, 60),
		geom.R(10, 4000, 60, 4050),
		geom.R(4000, 4000, 4060, 4060),
		geom.R(2000, 2000, 2080, 2080),
	}
	for _, m := range marks {
		if err := chip.AddRect(m); err != nil {
			t.Fatal(err)
		}
	}
	// A detector that flags any window with geometry: every mark must be
	// covered by at least one flagged window.
	det := &stubDetector{Target: geom.R(0, 0, 4096, 4096)}
	findings, err := Scan(chip, det, ScanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range marks {
		hit := false
		for _, f := range findings {
			win := geom.R(f.Center.X-512, f.Center.Y-512, f.Center.X+512, f.Center.Y+512)
			if win.ContainsRect(m) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("mark %v not covered by any flagged window", m)
		}
	}
}

// panicDetector panics on clips overlapping Bad, the worst-case failure
// mode of a buggy detector: without window-boundary recovery it would
// kill the whole scan process.
type panicDetector struct {
	Bad geom.Rect
}

func (p *panicDetector) Name() string                  { return "panic" }
func (p *panicDetector) Fit(train []LabeledClip) error { return nil }
func (p *panicDetector) Threshold() float64            { return 0.5 }
func (p *panicDetector) Score(clip layout.Clip) (float64, error) {
	if clip.Window.Overlaps(p.Bad) {
		panic("poison window")
	}
	return 0, nil
}

func TestScanIsolatesDetectorPanic(t *testing.T) {
	chip := layout.New("chip")
	if err := chip.AddRect(geom.R(0, 0, 4096, 96)); err != nil {
		t.Fatal(err)
	}
	det := &panicDetector{Bad: geom.R(2000, 0, 2100, 100)}
	_, err := Scan(chip, det, ScanConfig{Workers: 3})
	if err == nil {
		t.Fatal("scan swallowed a detector panic")
	}
	if !strings.Contains(err.Error(), "detector panic") {
		t.Fatalf("error %v does not identify the panic", err)
	}
	// The offending window must be identifiable from the error alone:
	// the panicking window's center coordinates are attached.
	if !strings.Contains(err.Error(), "at (") {
		t.Fatalf("error %v lacks window coordinates", err)
	}
}

// TestScanPanicAttributionDeterministic: with several poison windows
// and racing workers, the reported window must not depend on which
// worker hit its poison first — the scan always attributes the
// lowest-index failing window, so the error string is identical from
// serial to 8-way parallel.
func TestScanPanicAttributionDeterministic(t *testing.T) {
	chip := layout.New("chip")
	if err := chip.AddRect(geom.R(0, 0, 4096, 96)); err != nil {
		t.Fatal(err)
	}
	// The poison region overlaps two adjacent windows, so with parallel
	// workers either may fail first; attribution must still pick the
	// lower-index one.
	det := &panicDetector{Bad: geom.R(2000, 0, 2100, 100)}
	var want string
	for workers := 1; workers <= 8; workers++ {
		_, err := Scan(chip, det, ScanConfig{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: scan swallowed the panic", workers)
		}
		if workers == 1 {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: attribution drifted:\ngot  %s\nwant %s",
				workers, err, want)
		}
	}
}

// panicBatchDetector is the batch-capable twin of panicDetector: it
// implements BatchScorer and CtxScorer like the neural detectors and
// the router, so the scan's ScoreClipCtx dispatch takes the ctx-scoring
// path rather than plain Score. Panic isolation must hold there too.
type panicBatchDetector struct {
	Bad geom.Rect
}

func (p *panicBatchDetector) Name() string            { return "panic-batch" }
func (p *panicBatchDetector) Fit([]LabeledClip) error { return nil }
func (p *panicBatchDetector) Threshold() float64      { return 0.5 }
func (p *panicBatchDetector) Score(clip layout.Clip) (float64, error) {
	if clip.Window.Overlaps(p.Bad) {
		panic("poison window (score)")
	}
	return 0, nil
}
func (p *panicBatchDetector) ScoreCtx(_ context.Context, clip layout.Clip) (float64, error) {
	if clip.Window.Overlaps(p.Bad) {
		panic("poison window (ctx)")
	}
	return 0, nil
}
func (p *panicBatchDetector) ScoreBatch(clips []layout.Clip) ([]float64, error) {
	out := make([]float64, len(clips))
	for i, clip := range clips {
		if clip.Window.Overlaps(p.Bad) {
			panic("poison window (batch)")
		}
		out[i] = 0
	}
	return out, nil
}

var (
	_ BatchScorer = (*panicBatchDetector)(nil)
	_ CtxScorer   = (*panicBatchDetector)(nil)
)

// TestScanIsolatesBatchDetectorPanic: the parallel scan isolates panics
// raised on the batch-capable dispatch path (CtxScorer/BatchScorer
// detectors) exactly like plain-Score panics, with identical
// window attribution across worker counts.
func TestScanIsolatesBatchDetectorPanic(t *testing.T) {
	chip := layout.New("chip")
	if err := chip.AddRect(geom.R(0, 0, 4096, 96)); err != nil {
		t.Fatal(err)
	}
	det := &panicBatchDetector{Bad: geom.R(2000, 0, 2100, 100)}
	var want string
	for workers := 1; workers <= 8; workers++ {
		_, err := Scan(chip, det, ScanConfig{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: scan swallowed a batch-path panic", workers)
		}
		if !strings.Contains(err.Error(), "detector panic") ||
			!strings.Contains(err.Error(), "at (") {
			t.Fatalf("workers=%d: error %v lacks panic attribution", workers, err)
		}
		if workers == 1 {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: batch-path attribution drifted:\ngot  %s\nwant %s",
				workers, err, want)
		}
	}
	// ScoreClips (the eval/serve batch path) has no isolation contract —
	// but Evaluate and the scan must never share a poison process. The
	// scan's recovery is the boundary; verify the panic really came
	// through the ctx path, proving the dispatch under test.
	if !strings.Contains(want, "poison window (ctx)") {
		t.Fatalf("panic did not route through the ctx-scoring path: %s", want)
	}
}
