package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// densityDetector deterministically flags windows by drawn density.
type densityDetector struct{ thr float64 }

func (d densityDetector) Name() string            { return "density" }
func (d densityDetector) Fit([]LabeledClip) error { return nil }
func (d densityDetector) Threshold() float64      { return d.thr }
func (densityDetector) Score(c layout.Clip) (float64, error) {
	return c.Density(), nil
}

// scanChip builds a chip with a deterministic mix of dense and sparse
// regions so a density scan flags a scattered subset of windows.
func scanChip(t *testing.T) *layout.Layout {
	t.Helper()
	l := layout.New("chip")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			x, y := i*1024, j*1024
			var r geom.Rect
			if (i+j)%3 == 0 {
				r = geom.R(x, y, x+900, y+900) // dense: flagged
			} else {
				r = geom.R(x, y, x+64, y+64) // sparse
			}
			if err := l.AddRect(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l
}

// TestChaosScanCancelPrefix asserts the core interruption contract: a
// cancelled ScanCtx returns partial findings that are exactly a prefix
// of the uncancelled deterministic result.
func TestChaosScanCancelPrefix(t *testing.T) {
	chip := scanChip(t)
	det := densityDetector{thr: 0.5}
	cfg := ScanConfig{ClipNM: 1024, CoreFrac: 0.5, Workers: 4}

	full, err := ScanCtx(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Interrupted || full.Completed != full.Windows {
		t.Fatalf("uncancelled scan marked interrupted: %+v", full)
	}
	if len(full.Findings) == 0 {
		t.Fatal("test chip produced no findings; scan test is vacuous")
	}

	// Cancel mid-scan via the serialized progress callback, at several
	// cut points to exercise different prefix lengths.
	for _, cut := range []int{1, full.Windows / 4, full.Windows / 2} {
		ctx, cancel := context.WithCancel(context.Background())
		cutCfg := cfg
		cutCfg.Progress = func(done, total int) {
			if done >= cut {
				cancel()
			}
		}
		partial, err := ScanCtx(ctx, chip, det, cutCfg)
		cancel()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !partial.Interrupted {
			// The scan may legitimately finish before cancellation
			// lands when cut is near the end; only a truly partial
			// result must carry the marker.
			if partial.Completed != partial.Windows {
				t.Fatalf("cut %d: partial scan without Interrupted marker: %+v", cut, partial)
			}
			continue
		}
		if !errors.Is(partial.Cause, context.Canceled) {
			t.Fatalf("cut %d: Cause = %v, want context.Canceled", cut, partial.Cause)
		}
		if partial.Completed > full.Windows {
			t.Fatalf("cut %d: Completed %d > Windows %d", cut, partial.Completed, full.Windows)
		}
		if len(partial.Findings) > len(full.Findings) {
			t.Fatalf("cut %d: more findings than the full scan", cut)
		}
		for i, f := range partial.Findings {
			if f != full.Findings[i] {
				t.Fatalf("cut %d: finding %d = %+v, want prefix of full scan (%+v)",
					cut, i, f, full.Findings[i])
			}
		}
	}
}

// TestScanCtxPreCancelled returns immediately with an empty interrupted
// result.
func TestScanCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ScanCtx(ctx, scanChip(t), densityDetector{thr: 0.5},
		ScanConfig{ClipNM: 1024, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Completed != 0 || len(res.Findings) != 0 {
		t.Fatalf("pre-cancelled scan = %+v, want empty interrupted result", res)
	}
}

// TestScanCtxDeadline exercises the deadline path with a slow detector.
type slowDetector struct {
	densityDetector
	delay time.Duration
	calls atomic.Int64
}

func (d *slowDetector) Score(c layout.Clip) (float64, error) {
	d.calls.Add(1)
	time.Sleep(d.delay)
	return c.Density(), nil
}

func (d *slowDetector) CloneDetector() Detector { return d } // share the counter

func TestScanCtxDeadline(t *testing.T) {
	det := &slowDetector{densityDetector: densityDetector{thr: 0.5}, delay: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	res, err := ScanCtx(ctx, scanChip(t), det, ScanConfig{ClipNM: 1024, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || !errors.Is(res.Cause, context.DeadlineExceeded) {
		t.Fatalf("deadline scan = %+v, want Interrupted with DeadlineExceeded", res)
	}
	if res.Completed >= res.Windows {
		t.Fatalf("deadline scan completed all %d windows", res.Windows)
	}
}

// TestScanFaultInjection: an injected scoring error inside the completed
// prefix aborts the scan like a real detector error.
func TestScanFaultInjection(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	injected := errors.New("injected scan fault")
	faultinject.Set(ScanScoreSite, faultinject.Fault{Err: injected, Count: 1})
	_, err := Scan(scanChip(t), densityDetector{thr: 0.5}, ScanConfig{ClipNM: 1024, Workers: 2})
	if err == nil || !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if !strings.Contains(err.Error(), "scan window") {
		t.Fatalf("err = %v, want window context", err)
	}
}
