package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker state machine position. The
// numeric values are stable and exported as a telemetry gauge:
// 0 = closed, 1 = half-open, 2 = open.
type BreakerState int32

const (
	// StateClosed admits every call; consecutive failures trip the
	// breaker.
	StateClosed BreakerState = iota
	// StateHalfOpen admits a bounded number of probe calls after the
	// cool-down; one failure re-opens, enough successes close.
	StateHalfOpen
	// StateOpen rejects every call until the cool-down elapses.
	StateOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// ErrOpen is returned (or reported) when the breaker rejects a call.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes a Breaker. The zero value gets sensible defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures in the
	// closed state that trips the breaker (default 5).
	FailureThreshold int
	// OpenTimeout is the cool-down after tripping before probe calls
	// are admitted (default 5s).
	OpenTimeout time.Duration
	// HalfOpenProbes is the number of probe calls admitted — and the
	// number of successes required — in the half-open state before the
	// breaker closes (default 1).
	HalfOpenProbes int
	// Clock drives the cool-down timer (default the wall clock).
	Clock Clock
	// OnStateChange, when non-nil, is called synchronously on every
	// transition (and once with the initial state at construction). It
	// runs with the breaker lock held and must not call back into the
	// breaker; setting a telemetry gauge is the intended use.
	OnStateChange func(BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = Real
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker. Allow admits or
// rejects a call; Record reports the outcome of an admitted call. Safe
// for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	probes   int // probes admitted while half-open
	probeOK  int // probe successes while half-open
	openedAt time.Time
}

// NewBreaker constructs a Breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(StateClosed)
	}
	return b
}

// setState transitions and notifies. Callers hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(s)
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.setState(StateOpen)
	b.openedAt = b.cfg.Clock.Now()
	b.fails = 0
}

// Allow reports whether a call may proceed. In the open state it
// returns false until OpenTimeout has elapsed, then moves to half-open
// and admits up to HalfOpenProbes probes. Every admitted call must be
// followed by exactly one Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.setState(StateHalfOpen)
		b.probes, b.probeOK = 0, 0
		fallthrough
	default: // StateHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports the outcome of an admitted call; a nil error is a
// success.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		switch b.state {
		case StateClosed:
			b.fails = 0
		case StateHalfOpen:
			b.probeOK++
			if b.probeOK >= b.cfg.HalfOpenProbes {
				b.setState(StateClosed)
				b.fails = 0
			}
		}
		return
	}
	switch b.state {
	case StateClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		b.trip()
	}
	// StateOpen: a straggler outcome from before the trip; ignore.
}

// State returns the current state without side effects: an elapsed
// cool-down is reported as open until an Allow performs the transition.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns the remaining cool-down when the breaker is open,
// and zero otherwise.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	rem := b.cfg.OpenTimeout - b.cfg.Clock.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
