package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// TestBreakerStateTable drives the breaker through its full state
// machine with a scripted sequence of operations.
func TestBreakerStateTable(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var transitions []BreakerState
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenTimeout:      10 * time.Second,
		HalfOpenProbes:   2,
		Clock:            clk,
		OnStateChange:    func(s BreakerState) { transitions = append(transitions, s) },
	})

	steps := []struct {
		name string
		op   func()
		want BreakerState
	}{
		{"initially closed", func() {}, StateClosed},
		{"fail 1", func() { b.Record(errBoom) }, StateClosed},
		{"fail 2", func() { b.Record(errBoom) }, StateClosed},
		{"success resets streak", func() { b.Record(nil) }, StateClosed},
		{"fail 1 again", func() { b.Record(errBoom) }, StateClosed},
		{"fail 2 again", func() { b.Record(errBoom) }, StateClosed},
		{"fail 3 trips", func() { b.Record(errBoom) }, StateOpen},
		{"open rejects", func() {
			if b.Allow() {
				t.Error("open breaker admitted a call")
			}
		}, StateOpen},
		{"cool-down not elapsed", func() { clk.Advance(9 * time.Second) }, StateOpen},
		{"still rejecting", func() {
			if b.Allow() {
				t.Error("breaker admitted before cool-down")
			}
		}, StateOpen},
		{"cool-down elapses, probe admitted", func() {
			clk.Advance(time.Second)
			if !b.Allow() {
				t.Error("half-open breaker rejected first probe")
			}
		}, StateHalfOpen},
		{"second probe admitted", func() {
			if !b.Allow() {
				t.Error("half-open breaker rejected second probe")
			}
		}, StateHalfOpen},
		{"probe overflow rejected", func() {
			if b.Allow() {
				t.Error("half-open breaker over-admitted probes")
			}
		}, StateHalfOpen},
		{"one probe success not enough", func() { b.Record(nil) }, StateHalfOpen},
		{"second probe success closes", func() { b.Record(nil) }, StateClosed},
	}
	for _, s := range steps {
		s.op()
		if got := b.State(); got != s.want {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.want)
		}
	}

	// A probe failure in half-open re-opens immediately.
	for i := 0; i < 3; i++ {
		b.Record(errBoom)
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected after cool-down")
	}
	b.Record(errBoom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if ra := b.RetryAfter(); ra != 10*time.Second {
		t.Fatalf("RetryAfter = %v, want 10s", ra)
	}

	wantTransitions := []BreakerState{
		StateClosed, StateOpen, StateHalfOpen, StateClosed, StateOpen, StateHalfOpen, StateOpen,
	}
	if len(transitions) != len(wantTransitions) {
		t.Fatalf("transitions = %v, want %v", transitions, wantTransitions)
	}
	for i := range transitions {
		if transitions[i] != wantTransitions[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], wantTransitions[i])
		}
	}
}

// TestBreakerConcurrent hammers Allow/Record from many goroutines under
// the race detector; only invariant checked here is "no race, no panic"
// plus a terminal state that is one of the three valid states.
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 4, OpenTimeout: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Record(errBoom)
					} else {
						b.Record(nil)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
		t.Fatalf("invalid terminal state %d", s)
	}
}

// TestShedderBurstAndRefill checks exact token accounting on a frozen
// clock and refill after advancing it.
func TestShedderBurstAndRefill(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	s := NewShedder(ShedderConfig{Rate: 2, Burst: 3, Clock: clk})
	for i := 0; i < 3; i++ {
		if ok, _ := s.Allow(); !ok {
			t.Fatalf("request %d shed within burst", i)
		}
	}
	ok, retry := s.Allow()
	if ok {
		t.Fatal("admitted past burst on frozen clock")
	}
	// One token accrues in 1/Rate = 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	clk.Advance(retry)
	if ok, _ := s.Allow(); !ok {
		t.Fatal("shed after advertised retry-after elapsed")
	}
	// Refill never exceeds burst.
	clk.Advance(time.Hour)
	admitted := 0
	for {
		ok, _ := s.Allow()
		if !ok {
			break
		}
		admitted++
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst=3", admitted)
	}
}

// TestShedderConcurrent runs concurrent Allow calls on a frozen clock:
// exactly Burst requests may be admitted, regardless of interleaving.
func TestShedderConcurrent(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := NewShedder(ShedderConfig{Rate: 1, Burst: 100, Clock: clk})
	var admitted sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for g := 0; g < 10; g++ {
		admitted.Add(1)
		go func() {
			defer admitted.Done()
			for i := 0; i < 100; i++ {
				if ok, _ := s.Allow(); ok {
					mu.Lock()
					count++
					mu.Unlock()
				}
			}
		}()
	}
	admitted.Wait()
	if count != 100 {
		t.Fatalf("admitted %d of 1000 on frozen clock, want exactly burst=100", count)
	}
}

// recordClock satisfies Clock, fires After immediately, and records the
// requested delays so Retry's backoff schedule is observable without
// sleeping.
type recordClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (c *recordClock) Now() time.Time { return time.Unix(0, 0) }

func (c *recordClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.delays = append(c.delays, d)
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

// TestRetryBackoffBounds asserts every delay Retry schedules lies in
// the documented jitter envelope, with no wall-clock sleeps involved.
func TestRetryBackoffBounds(t *testing.T) {
	clk := &recordClock{}
	cfg := RetryConfig{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.25,
		Seed:        42,
		Clock:       clk,
	}
	calls := 0
	err := Retry(context.Background(), cfg, func(context.Context) error {
		calls++
		return errBoom
	})
	if err == nil || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped errBoom", err)
	}
	if calls != 6 {
		t.Fatalf("calls = %d, want 6", calls)
	}
	if len(clk.delays) != 5 {
		t.Fatalf("delays scheduled = %d, want 5", len(clk.delays))
	}
	nominal := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond,
	}
	for i, d := range clk.delays {
		lo := time.Duration(float64(nominal[i]) * (1 - cfg.Jitter))
		hi := time.Duration(float64(nominal[i]) * (1 + cfg.Jitter))
		if d < lo || d > hi {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	// Jitter is deterministic per seed.
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	for a := 0; a < 8; a++ {
		if d1, d2 := BackoffDelay(cfg, a, rng1), BackoffDelay(cfg, a, rng2); d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", a, d1, d2)
		}
	}
	// MaxDelay caps the nominal delay even for huge attempt numbers.
	if d := BackoffDelay(cfg, 50, nil); d != cfg.MaxDelay {
		t.Fatalf("un-jittered capped delay = %v, want %v", d, cfg.MaxDelay)
	}
}

func TestRetrySucceedsEarly(t *testing.T) {
	clk := &recordClock{}
	calls := 0
	err := Retry(context.Background(), RetryConfig{MaxAttempts: 5, Clock: clk}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 || len(clk.delays) != 2 {
		t.Fatalf("calls = %d, delays = %d; want 3 and 2", calls, len(clk.delays))
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0)) // never advanced: backoff blocks
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, RetryConfig{MaxAttempts: 3, Clock: clk}, func(context.Context) error {
			return errBoom
		})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return after cancellation")
	}
}

func TestWithBudget(t *testing.T) {
	// No parent deadline: budget becomes the deadline.
	ctx, cancel := WithBudget(context.Background(), 50*time.Millisecond)
	defer cancel()
	rem, ok := Remaining(ctx)
	if !ok || rem <= 0 || rem > 50*time.Millisecond {
		t.Fatalf("remaining = %v ok=%v, want (0, 50ms]", rem, ok)
	}
	// Tighter parent deadline wins.
	parent, pcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer pcancel()
	child, ccancel := WithBudget(parent, time.Hour)
	defer ccancel()
	if dl, _ := child.Deadline(); time.Until(dl) > 20*time.Millisecond {
		t.Fatalf("budget loosened a tighter parent deadline: %v", time.Until(dl))
	}
	// Non-positive budget is a no-op.
	same, scancel := WithBudget(parent, 0)
	defer scancel()
	if same != parent {
		t.Fatal("zero budget should return the parent context")
	}
	if _, ok := Remaining(context.Background()); ok {
		t.Fatal("Remaining reported a deadline on a deadline-free context")
	}
}

func TestSpendFraction(t *testing.T) {
	parent, pcancel := context.WithTimeout(context.Background(), time.Second)
	defer pcancel()
	child, cancel := SpendFraction(parent, 0.5)
	defer cancel()
	rem, ok := Remaining(child)
	if !ok || rem > 510*time.Millisecond {
		t.Fatalf("child remaining = %v ok=%v, want about half the parent's", rem, ok)
	}
	// No parent deadline: unchanged.
	if ctx, c := SpendFraction(context.Background(), 0.5); ctx != context.Background() {
		c()
		t.Fatal("SpendFraction invented a deadline")
	}
}

func TestFakeClockAfter(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	ch := clk.After(time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	clk.Advance(999 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired before deadline")
	default:
	}
	clk.Advance(time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at deadline")
	}
	// Non-positive durations fire immediately.
	select {
	case <-clk.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}
