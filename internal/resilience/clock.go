// Package resilience provides the dependency-free availability
// primitives of the serving stack: a circuit breaker, a token-bucket
// load shedder, jittered-backoff retry, and deadline-budget helpers.
//
// The paper's shallow-to-deep detector spectrum trades accuracy for
// cost; this package turns that spectrum into an availability ladder.
// When the deep (expensive) path saturates or fails, these primitives
// decide — deterministically and observably — when to stop sending it
// traffic, when to probe it again, and how much of a request's deadline
// each stage may spend.
//
// All types take an injectable Clock so state transitions are testable
// without wall-clock sleeps.
package resilience

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so breaker cool-downs, bucket refills, and retry
// backoffs can be driven deterministically in tests.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Real is the wall clock.
var Real Clock = realClock{}

// FakeClock is a manually advanced Clock for tests. The zero value is
// not usable; use NewFakeClock.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock: the returned channel fires when Advance moves
// the clock past the requested duration. Non-positive durations fire
// immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline
// has been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.waiters, func(i, j int) bool {
		return c.waiters[i].at.Before(c.waiters[j].at)
	})
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
}
