package resilience

import (
	"context"
	"time"
)

// Deadline budgets are wall-clock by necessity: context deadlines are
// enforced by the runtime against real time, so these helpers do not
// take a Clock.

// WithBudget derives a context that expires budget from now, unless the
// parent already expires sooner. A non-positive budget returns the
// parent unchanged. The cancel func must always be called.
func WithBudget(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= budget {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// Remaining returns the time left before ctx's deadline, and whether a
// deadline is set. An expired deadline reports zero.
func Remaining(ctx context.Context) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	rem := time.Until(dl)
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// SpendFraction derives a context whose deadline budget is frac of the
// parent's remaining budget, for splitting one request deadline across
// pipeline stages (e.g. give the primary detector 80% and keep the rest
// for the fallback). Without a parent deadline the parent is returned
// unchanged.
func SpendFraction(ctx context.Context, frac float64) (context.Context, context.CancelFunc) {
	rem, ok := Remaining(ctx)
	if !ok || frac <= 0 || frac >= 1 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(float64(rem)*frac))
}
