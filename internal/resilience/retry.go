package resilience

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// RetryConfig tunes Retry. The zero value gets sensible defaults.
type RetryConfig struct {
	// MaxAttempts is the total number of calls, including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the un-jittered backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly within ±Jitter fraction of
	// its nominal value, decorrelating retry storms. Must lie in
	// [0, 1); zero and out-of-range values fall back to the default 0.2.
	Jitter float64
	// Seed makes the jitter sequence deterministic (default 1).
	Seed int64
	// Clock drives the backoff sleeps (default the wall clock).
	Clock Clock
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.Multiplier <= 1 {
		c.Multiplier = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = Real
	}
	return c
}

// BackoffDelay returns the jittered backoff before retry number attempt
// (0-based: attempt 0 is the delay between the first and second calls).
// The result lies in [d*(1-Jitter), d*(1+Jitter)] where
// d = min(BaseDelay * Multiplier^attempt, MaxDelay).
func BackoffDelay(cfg RetryConfig, attempt int, rng *rand.Rand) time.Duration {
	cfg = cfg.withDefaults()
	d := float64(cfg.BaseDelay) * math.Pow(cfg.Multiplier, float64(attempt))
	if d > float64(cfg.MaxDelay) {
		d = float64(cfg.MaxDelay)
	}
	if rng != nil && cfg.Jitter > 0 {
		d *= 1 + cfg.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Retry calls fn up to MaxAttempts times with jittered exponential
// backoff between attempts, stopping early on success or context
// cancellation. The returned error wraps the last attempt's error (or
// the context's when cancelled mid-backoff).
func Retry(ctx context.Context, cfg RetryConfig, fn func(context.Context) error) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var err error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-cfg.Clock.After(BackoffDelay(cfg, attempt-1, rng)):
			case <-ctx.Done():
				return fmt.Errorf("resilience: retry cancelled after %d attempts (last: %v): %w",
					attempt, err, ctx.Err())
			}
		}
		if err = fn(ctx); err == nil {
			return nil
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", cfg.MaxAttempts, err)
}
