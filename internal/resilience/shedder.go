package resilience

import (
	"sync"
	"time"
)

// ShedderConfig tunes a Shedder.
type ShedderConfig struct {
	// Rate is the sustained admission rate in requests per second.
	// Must be positive.
	Rate float64
	// Burst is the bucket capacity: how many requests may be admitted
	// back-to-back after an idle period (default max(Rate, 1)).
	Burst float64
	// Clock drives refill accounting (default the wall clock).
	Clock Clock
}

// Shedder is a token-bucket admission controller: each admitted request
// spends one token, tokens refill at Rate per second up to Burst.
// Rejections happen before any work is queued, so an overloaded server
// spends no compute on traffic it cannot serve. Safe for concurrent
// use.
type Shedder struct {
	cfg ShedderConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewShedder constructs a full bucket. Rate must be positive.
func NewShedder(cfg ShedderConfig) *Shedder {
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = Real
	}
	return &Shedder{cfg: cfg, tokens: cfg.Burst, last: cfg.Clock.Now()}
}

// Allow spends one token if available. When the bucket is empty it
// returns false and the duration until the next token accrues — the
// Retry-After hint for a 429 response.
func (s *Shedder) Allow() (ok bool, retryAfter time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens += dt * s.cfg.Rate
		if s.tokens > s.cfg.Burst {
			s.tokens = s.cfg.Burst
		}
	}
	s.last = now
	if s.tokens >= 1 {
		s.tokens--
		return true, 0
	}
	return false, time.Duration((1 - s.tokens) / s.cfg.Rate * float64(time.Second))
}
