package fft

import (
	"math/rand"
	"testing"
)

func BenchmarkFFT1K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT2D128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128*128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FFT2D(x, 128, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvolveSame128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	img := make([]float64, 128*128)
	for i := range img {
		img[i] = rng.Float64()
	}
	k := make([]float64, 25*25)
	for i := range k {
		k[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConvolveSame(img, 128, 128, k, 25, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCT2D16(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	block := make([]float64, 16*16)
	for i := range block {
		block[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DCT2D(block, 16); err != nil {
			b.Fatal(err)
		}
	}
}
