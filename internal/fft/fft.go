// Package fft implements the numeric transforms the lithography simulator
// and feature extractors rely on: an iterative radix-2 complex FFT, 2-D
// transforms, FFT-based 2-D convolution, and an orthonormal 2-D DCT-II.
//
// All transforms are pure Go on the standard library, sized for the small
// images (<= 512 x 512) used in hotspot detection.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two.
func FFT(x []complex128) error { return transform(x, false) }

// IFFT computes the in-place inverse DFT of x (including the 1/N scale).
// len(x) must be a power of two.
func IFFT(x []complex128) error { return transform(x, true) }

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		half := size / 2
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// FFT2D computes the in-place forward 2-D DFT of a row-major h x w grid.
// Both dimensions must be powers of two and len(x) must equal w*h.
func FFT2D(x []complex128, w, h int) error { return transform2D(x, w, h, false) }

// IFFT2D computes the in-place inverse 2-D DFT of a row-major h x w grid.
func IFFT2D(x []complex128, w, h int) error { return transform2D(x, w, h, true) }

func transform2D(x []complex128, w, h int, inverse bool) error {
	if len(x) != w*h {
		return fmt.Errorf("fft: buffer length %d != %d x %d", len(x), w, h)
	}
	if !IsPow2(w) || !IsPow2(h) {
		return fmt.Errorf("fft: dimensions %dx%d must be powers of two", w, h)
	}
	// Rows.
	for y := 0; y < h; y++ {
		if err := transform(x[y*w:(y+1)*w], inverse); err != nil {
			return err
		}
	}
	// Columns via a scratch buffer.
	col := make([]complex128, h)
	for cx := 0; cx < w; cx++ {
		for y := 0; y < h; y++ {
			col[y] = x[y*w+cx]
		}
		if err := transform(col, inverse); err != nil {
			return err
		}
		for y := 0; y < h; y++ {
			x[y*w+cx] = col[y]
		}
	}
	return nil
}

// ConvolveSame computes the 2-D convolution of a w x h real image with a
// centred kw x kh real kernel, returning a w x h result ("same" padding
// with zeros outside the image). The kernel centre is at
// (kw/2, kh/2). Implemented by zero-padded FFT multiplication.
func ConvolveSame(img []float64, w, h int, kernel []float64, kw, kh int) ([]float64, error) {
	if len(img) != w*h {
		return nil, fmt.Errorf("fft: image length %d != %dx%d", len(img), w, h)
	}
	if len(kernel) != kw*kh {
		return nil, fmt.Errorf("fft: kernel length %d != %dx%d", len(kernel), kw, kh)
	}
	pw := NextPow2(w + kw)
	ph := NextPow2(h + kh)

	a := make([]complex128, pw*ph)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a[y*pw+x] = complex(img[y*w+x], 0)
		}
	}
	b := make([]complex128, pw*ph)
	for y := 0; y < kh; y++ {
		for x := 0; x < kw; x++ {
			b[y*pw+x] = complex(kernel[y*kw+x], 0)
		}
	}
	if err := FFT2D(a, pw, ph); err != nil {
		return nil, err
	}
	if err := FFT2D(b, pw, ph); err != nil {
		return nil, err
	}
	for i := range a {
		a[i] *= b[i]
	}
	if err := IFFT2D(a, pw, ph); err != nil {
		return nil, err
	}
	// Full convolution lives at offset 0; "same" extraction starts at the
	// kernel centre.
	ox, oy := kw/2, kh/2
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[y*w+x] = real(a[(y+oy)*pw+x+ox])
		}
	}
	return out, nil
}

// DCT2D computes the orthonormal 2-D DCT-II of a row-major n x n block and
// returns a new n x n coefficient grid. n must be positive.
func DCT2D(block []float64, n int) ([]float64, error) {
	if n <= 0 || len(block) != n*n {
		return nil, fmt.Errorf("fft: dct block length %d != %d^2", len(block), n)
	}
	c := dctMatrix(n)
	// tmp = C * X
	tmp := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += c[i*n+k] * block[k*n+j]
			}
			tmp[i*n+j] = s
		}
	}
	// out = tmp * C^T
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += tmp[i*n+k] * c[j*n+k]
			}
			out[i*n+j] = s
		}
	}
	return out, nil
}

// IDCT2D inverts DCT2D (orthonormal, so the inverse is the transpose pair).
func IDCT2D(coef []float64, n int) ([]float64, error) {
	if n <= 0 || len(coef) != n*n {
		return nil, fmt.Errorf("fft: idct block length %d != %d^2", len(coef), n)
	}
	c := dctMatrix(n)
	// tmp = C^T * Y
	tmp := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += c[k*n+i] * coef[k*n+j]
			}
			tmp[i*n+j] = s
		}
	}
	// out = tmp * C
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += tmp[i*n+k] * c[k*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out, nil
}

// dctMatrix returns the n x n orthonormal DCT-II basis matrix.
func dctMatrix(n int) []float64 {
	c := make([]float64, n*n)
	a0 := math.Sqrt(1 / float64(n))
	a := math.Sqrt(2 / float64(n))
	for i := 0; i < n; i++ {
		scale := a
		if i == 0 {
			scale = a0
		}
		for j := 0; j < n; j++ {
			c[i*n+j] = scale * math.Cos(math.Pi*float64(i)*(2*float64(j)+1)/(2*float64(n)))
		}
	}
	return c
}

// Zigzag returns the zigzag scan order for an n x n block: a permutation
// of indices ordering coefficients from low to high spatial frequency.
func Zigzag(n int) []int {
	order := make([]int, 0, n*n)
	for s := 0; s < 2*n-1; s++ {
		if s%2 == 0 { // walk up-right
			i := min(s, n-1)
			j := s - i
			for i >= 0 && j < n {
				order = append(order, i*n+j)
				i--
				j++
			}
		} else { // walk down-left
			j := min(s, n-1)
			i := s - j
			for j >= 0 && i < n {
				order = append(order, i*n+j)
				i++
				j--
			}
		}
	}
	return order
}
