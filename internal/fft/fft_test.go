package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestIsPow2(t *testing.T) {
	for n, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true, 6: false, 1024: true, -4: false} {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 100: 128} {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("length 3 accepted")
	}
	if err := FFT2D(make([]complex128, 12), 3, 4); err == nil {
		t.Fatal("3x4 accepted")
	}
	if err := FFT2D(make([]complex128, 10), 4, 4); err == nil {
		t.Fatal("bad buffer length accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > eps {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == 3 {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip differs at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func() bool {
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqEnergy/float64(n)-timeEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const w, h = 16, 8
	x := make([]complex128, w*h)
	orig := make([]complex128, w*h)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		orig[i] = x[i]
	}
	if err := FFT2D(x, w, h); err != nil {
		t.Fatal(err)
	}
	if err := IFFT2D(x, w, h); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip differs at %d", i)
		}
	}
}

func directConvolveSame(img []float64, w, h int, k []float64, kw, kh int) []float64 {
	out := make([]float64, w*h)
	ox, oy := kw/2, kh/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for j := 0; j < kh; j++ {
				for i := 0; i < kw; i++ {
					// out[y][x] = sum img[y - (j-oy)][x - (i-ox)] * k[j][i]
					yy := y - (j - oy)
					xx := x - (i - ox)
					if yy < 0 || xx < 0 || yy >= h || xx >= w {
						continue
					}
					s += img[yy*w+xx] * k[j*kw+i]
				}
			}
			out[y*w+x] = s
		}
	}
	return out
}

func TestConvolveSameMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const w, h, kw, kh = 13, 9, 5, 3
	img := make([]float64, w*h)
	for i := range img {
		img[i] = rng.Float64()
	}
	k := make([]float64, kw*kh)
	for i := range k {
		k[i] = rng.NormFloat64()
	}
	got, err := ConvolveSame(img, w, h, k, kw, kh)
	if err != nil {
		t.Fatal(err)
	}
	want := directConvolveSame(img, w, h, k, kw, kh)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("conv differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestConvolveIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const w, h = 8, 8
	img := make([]float64, w*h)
	for i := range img {
		img[i] = rng.Float64()
	}
	k := []float64{0, 0, 0, 0, 1, 0, 0, 0, 0} // 3x3 delta
	got, err := ConvolveSame(img, w, h, k, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img {
		if math.Abs(got[i]-img[i]) > 1e-9 {
			t.Fatalf("identity convolution changed pixel %d", i)
		}
	}
}

func TestConvolveValidation(t *testing.T) {
	if _, err := ConvolveSame(make([]float64, 5), 2, 2, nil, 0, 0); err == nil {
		t.Fatal("bad image length accepted")
	}
	if _, err := ConvolveSame(make([]float64, 4), 2, 2, make([]float64, 3), 2, 2); err == nil {
		t.Fatal("bad kernel length accepted")
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{1, 2, 4, 8, 16} {
		block := make([]float64, n*n)
		for i := range block {
			block[i] = rng.NormFloat64()
		}
		coef, err := DCT2D(block, n)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IDCT2D(coef, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range block {
			if math.Abs(back[i]-block[i]) > 1e-9 {
				t.Fatalf("n=%d: DCT round trip differs at %d", n, i)
			}
		}
	}
}

func TestDCTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	f := func() bool {
		n := 1 + rng.Intn(12)
		block := make([]float64, n*n)
		var e1 float64
		for i := range block {
			block[i] = rng.NormFloat64()
			e1 += block[i] * block[i]
		}
		coef, err := DCT2D(block, n)
		if err != nil {
			return false
		}
		var e2 float64
		for _, v := range coef {
			e2 += v * v
		}
		return math.Abs(e1-e2) < 1e-6*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTDCTerm(t *testing.T) {
	const n = 4
	block := make([]float64, n*n)
	for i := range block {
		block[i] = 2.5
	}
	coef, err := DCT2D(block, n)
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal DCT: DC term = n * mean value; all others 0.
	if math.Abs(coef[0]-2.5*n) > eps {
		t.Fatalf("DC = %v, want %v", coef[0], 2.5*n)
	}
	for i := 1; i < len(coef); i++ {
		if math.Abs(coef[i]) > eps {
			t.Fatalf("AC term %d = %v, want 0", i, coef[i])
		}
	}
}

func TestDCTValidation(t *testing.T) {
	if _, err := DCT2D(make([]float64, 5), 2); err == nil {
		t.Fatal("bad block accepted")
	}
	if _, err := IDCT2D(make([]float64, 5), 2); err == nil {
		t.Fatal("bad block accepted")
	}
	if _, err := DCT2D(nil, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestZigzag(t *testing.T) {
	got := Zigzag(3)
	want := []int{0, 1, 3, 6, 4, 2, 5, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zigzag = %v, want %v", got, want)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 12} {
		order := Zigzag(n)
		if len(order) != n*n {
			t.Fatalf("n=%d: len = %d", n, len(order))
		}
		seen := make([]bool, n*n)
		for _, idx := range order {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("n=%d: invalid or duplicate index %d", n, idx)
			}
			seen[idx] = true
		}
	}
}
