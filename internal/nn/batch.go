// Batched inference engine: an allocation-free, concurrency-safe forward
// path over reusable scratch arenas.
//
// Network.Forward mutates per-layer caches even in eval mode, so a
// Network cannot be shared across goroutines. The inference path below
// reads only layer parameters and writes only arena-owned scratch, which
// makes one Network safely shareable by any number of workers — each
// with its own Arena. Determinism contract: every sample's score is
// computed row-independently with a fixed operation order, so results
// are bit-identical to the serial Forward/Score path regardless of batch
// size, chunking, or worker count.

package nn

import (
	"context"
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/tensor"
	"github.com/golitho/hsd/internal/trace"
)

// inferencer is the optional allocation-free inference path of a layer:
// read-only on the layer, scratch from the arena. Every in-package layer
// implements it; foreign layers fall back to Forward(x, false), which
// loses the concurrency guarantee for that network.
type inferencer interface {
	forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix
}

// ForwardBatch runs an inference-only forward pass over a batch (one
// sample per row) using ar for every intermediate activation. Unlike
// Forward it does not mutate the network, so a single Network may serve
// concurrent ForwardBatch calls as long as each caller owns its arena.
//
// The returned matrix is arena-backed: it is valid until the arena is
// Reset or used for another pass. A nil arena allocates a private one.
func (n *Network) ForwardBatch(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	if ar == nil {
		ar = NewArena()
	}
	for _, l := range n.Layers {
		if inf, ok := l.(inferencer); ok {
			x = inf.forwardInfer(x, ar)
		} else {
			x = l.Forward(x, false)
		}
	}
	return x
}

// predictChunk is the micro-batch row count of PredictBatch: small
// enough that per-worker scratch stays cache-resident, large enough to
// amortize the batched matmuls.
const predictChunk = 32

// PredictBatch scores many samples through the batched inference engine
// and returns the per-sample hotspot probability, in input order.
// Chunks of predictChunk rows are sharded over the persistent kernel
// pool (tensor.Default) with up to `workers` concurrent shards
// (workers <= 0 means the pool's full width), each shard scoring its
// chunks with a pooled scratch arena.
//
// Output is deterministic: identical inputs yield bit-identical scores
// for any worker count, and identical to the serial Score path.
func PredictBatch(net *Network, x [][]float64, workers int) ([]float64, error) {
	return PredictBatchCtx(context.Background(), net, x, workers)
}

// PredictBatchCtx is PredictBatch with cancellation and trace
// attribution: the whole pass runs under an "nn.batch" span, and each
// micro-batch emits an "nn.arena" span (scratch reset + input staging)
// and an "nn.matmul" span (the layer forward passes + softmax).
// Concurrent chunk spans parent to the batch span and render as
// parallel lanes in the Chrome export. With tracing disabled the added
// cost is nil-span no-ops.
//
// Cancellation is observed at chunk boundaries: once ctx is done,
// unstarted chunks are skipped and PredictBatchCtx returns ctx's error
// with a nil result. In-flight chunks always finish first, so no
// goroutine writes the output slice after return.
func PredictBatchCtx(ctx context.Context, net *Network, x [][]float64, workers int) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
	}
	if net.OutDim() != 2 {
		return nil, fmt.Errorf("nn: PredictBatch needs a 2-logit head, got %d", net.OutDim())
	}
	pool := tensor.Default()
	if workers <= 0 {
		workers = pool.Workers() + 1
	}
	nchunks := (len(x) + predictChunk - 1) / predictChunk
	if workers > nchunks {
		workers = nchunks
	}
	bctx, bsp := trace.Start(ctx, "nn.batch")
	bsp.SetAttrInt("samples", len(x))
	bsp.SetAttrInt("workers", workers)
	defer bsp.End()
	out := make([]float64, len(x))
	scoreChunk := func(ar *Arena, start int) {
		end := min(start+predictChunk, len(x))
		_, asp := trace.Start(bctx, "nn.arena")
		ar.Reset()
		xb := ar.get(end-start, dim)
		for i := start; i < end; i++ {
			copy(xb.Row(i-start), x[i])
		}
		asp.End()
		_, msp := trace.Start(bctx, "nn.matmul")
		msp.SetAttrInt("rows", end-start)
		logits := net.ForwardBatch(xb, ar)
		logits.SoftmaxRows()
		msp.End()
		for i := 0; i < logits.Rows; i++ {
			out[start+i] = logits.At(i, 1)
		}
	}
	// One pool shard covers a contiguous run of chunks; each shard
	// borrows a scratch arena for its lifetime. The pool's caller
	// participation means workers==1 runs entirely inline here.
	if err := pool.RunCtx(ctx, nchunks, workers, func(lo, hi int) {
		ar := getArena()
		defer putArena(ar)
		for ci := lo; ci < hi; ci++ {
			if ctx.Err() != nil {
				return
			}
			scoreChunk(ar, ci*predictChunk)
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// forwardInfer implements inferencer: y = x*W + b without touching the
// input cache.
func (d *Dense) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(d.Name(), d.In, x.Cols)
	out := ar.get(x.Rows, d.Out)
	tensor.ParallelMatMulInto(out, x, d.W)
	if err := out.AddRowVector(d.B); err != nil {
		panic(err) // impossible: dimensions fixed at construction
	}
	return out
}

// forwardInfer implements inferencer.
func (r *ReLU) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(r.Name(), r.Dim, x.Cols)
	out := ar.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// forwardInfer implements inferencer: inference dropout is the identity.
func (d *Dropout) forwardInfer(x *tensor.Matrix, _ *Arena) *tensor.Matrix {
	checkCols(d.Name(), d.Dim, x.Cols)
	return x
}

// forwardInfer implements inferencer: the running-statistics eval path.
func (b *BatchNorm) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(b.Name(), b.Dim, x.Cols)
	out := ar.get(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src, dst := x.Row(i), out.Row(i)
		for j := range src {
			xhat := (src[j] - b.RunMean[j]) / math.Sqrt(b.RunVar[j]+b.Eps)
			dst[j] = b.Gamma[j]*xhat + b.Beta[j]
		}
	}
	return out
}

// forwardInfer implements inferencer via the tiled fused im2col+matmul
// kernel (see fused.go): bands of output rows are gathered into a
// bounded column tile and multiplied with the blocked kernel, so the
// result is bit-identical to Forward's full-materialization im2col +
// matmul while the scratch stays cache-sized.
func (c *Conv2D) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(c.Name(), c.InC*c.InH*c.InW, x.Cols)
	g := c.geom()
	out := ar.get(x.Rows, c.OutDim())
	klen := g.inC * g.k * g.k
	rowsPer := convTileRows(g)
	tpMax := rowsPer * g.ow
	colsBuf := ar.get(klen, tpMax)
	prodBuf := ar.get(g.outC, tpMax)
	positions := g.oh * g.ow
	for i := 0; i < x.Rows; i++ {
		sample, dst := x.Row(i), out.Row(i)
		for oyA := 0; oyA < g.oh; oyA += rowsPer {
			oyB := min(oyA+rowsPer, g.oh)
			tp := (oyB - oyA) * g.ow
			cols := tensor.Matrix{Rows: klen, Cols: tp, Data: colsBuf.Data[:klen*tp]}
			prod := tensor.Matrix{Rows: g.outC, Cols: tp, Data: prodBuf.Data[:g.outC*tp]}
			im2colTile(g, sample, oyA, oyB, cols.Data)
			tensor.MatMulInto(&prod, c.W, &cols)
			for oc := 0; oc < g.outC; oc++ {
				bias := c.B[oc]
				base := oc*positions + oyA*g.ow
				for p, v := range prod.Row(oc) {
					dst[base+p] = v + bias
				}
			}
		}
	}
	return out
}

// forwardInfer implements inferencer: max pooling without argmax caches.
func (m *MaxPool2D) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(m.Name(), m.C*m.H*m.W, x.Cols)
	oh, ow := m.H/m.Size, m.W/m.Size
	out := ar.get(x.Rows, m.OutDim())
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := out.Row(i)
		for ch := 0; ch < m.C; ch++ {
			chOff := ch * m.H * m.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					for dy := 0; dy < m.Size; dy++ {
						row := chOff + (oy*m.Size+dy)*m.W
						for dx := 0; dx < m.Size; dx++ {
							if v := src[row+ox*m.Size+dx]; v > best {
								best = v
							}
						}
					}
					dst[(ch*oh+oy)*ow+ox] = best
				}
			}
		}
	}
	return out
}
