package nn

import (
	"sync"
	"testing"
	"time"
)

// stepClock is a deterministic Clock whose Now advances a fixed step per
// call, so epoch durations are exact regardless of scheduler pressure
// (wall-clock timing flaked under parallel test execution).
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *stepClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.now.Add(d)
	return ch
}

// TestFitRecordsEpochTiming checks every epoch of the history carries
// exactly the duration the injected clock reports: Fit reads the clock
// once at epoch start and once at epoch end.
func TestFitRecordsEpochTiming(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.2, 0.1}, {0.9, 0.8}}
	y := []int{0, 1, 1, 0, 0, 1}
	net := BuildMLP(2, 8)
	clk := &stepClock{step: time.Millisecond}
	hist, err := Fit(net, x, y, TrainConfig{Epochs: 3, BatchSize: 2, Seed: 7, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d", len(hist))
	}
	for _, st := range hist {
		if st.Elapsed != clk.step {
			t.Fatalf("epoch %d Elapsed = %v, want exactly %v", st.Epoch, st.Elapsed, clk.step)
		}
	}
}

// TestFitDefaultClock: without an injected clock Fit still records a
// non-negative wall-clock duration per epoch.
func TestFitDefaultClock(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}}
	y := []int{0, 1}
	hist, err := Fit(BuildMLP(2, 4), x, y, TrainConfig{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Elapsed < 0 {
		t.Fatalf("history = %+v", hist)
	}
}
