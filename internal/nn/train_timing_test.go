package nn

import "testing"

// TestFitRecordsEpochTiming checks every epoch of the history carries a
// positive wall-clock duration.
func TestFitRecordsEpochTiming(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.2, 0.1}, {0.9, 0.8}}
	y := []int{0, 1, 1, 0, 0, 1}
	net := BuildMLP(2, 8)
	hist, err := Fit(net, x, y, TrainConfig{Epochs: 3, BatchSize: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d", len(hist))
	}
	for _, st := range hist {
		if st.Elapsed <= 0 {
			t.Fatalf("epoch %d has no Elapsed: %+v", st.Epoch, st)
		}
	}
}
