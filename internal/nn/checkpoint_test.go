package nn

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/golitho/hsd/internal/faultinject"
)

// ckptNet builds the architecture used across checkpoint tests: it
// includes dropout so RNG-state capture is exercised.
func ckptNet() *Network {
	return NewNetwork(
		NewDense(6, 8), NewReLU(8),
		NewDropout(8, 0.3, 42),
		NewDense(8, 2),
	)
}

// ckptData synthesizes a deterministic two-blob training set.
func ckptData(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, 6)
		label := i % 2
		for j := range row {
			row[j] = rng.NormFloat64()*0.4 + float64(label)
		}
		x[i], y[i] = row, label
	}
	return x, y
}

// ckptConfig is the shared training config; Adam + LR step decay so
// both optimizer slots and the decayed rate must survive the round
// trip for equivalence to hold.
func ckptConfig(ck Checkpointer) TrainConfig {
	return TrainConfig{
		Epochs:          9,
		BatchSize:       8,
		Optimizer:       NewAdam(5e-3),
		Seed:            3,
		LRStepEvery:     3,
		LRStepFactor:    0.5,
		Checkpointer:    ck,
		CheckpointEvery: 2,
	}
}

// saveBytes serializes a network in memory for byte-level comparison.
func saveBytes(t *testing.T, net *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestKillResumeEquivalence is the core crash-tolerance contract: a run
// killed at several epochs via fault injection and resumed from the
// newest on-disk checkpoint must produce a byte-identical saved model
// to the uninterrupted run.
func TestKillResumeEquivalence(t *testing.T) {
	x, y := ckptData(40)

	ref := ckptNet()
	refHist, err := Fit(ref, x, y, ckptConfig(nil))
	if err != nil {
		t.Fatalf("reference Fit: %v", err)
	}
	want := saveBytes(t, ref)

	for _, killEpoch := range []int{2, 3, 5, 8} {
		t.Run(checkpointName(killEpoch), func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()

			// Phase 1: train until the injected crash at killEpoch.
			errBoom := errors.New("boom")
			faultinject.Set(TrainEpochSite, faultinject.Fault{Err: errBoom, Skip: killEpoch - 1, Count: 1})
			net1 := ckptNet()
			_, err := Fit(net1, x, y, ckptConfig(&DirCheckpointer{Dir: dir}))
			if !errors.Is(err, errBoom) {
				t.Fatalf("killed run: got err %v, want injected crash", err)
			}

			// Phase 2: resume from whatever the crash left on disk. A
			// kill before the first persist (epoch 2 with cadence 2)
			// leaves nothing: recovery is a fresh start, which must
			// still converge to the same bytes.
			path, ck, err := LatestCheckpoint(dir)
			if err != nil {
				t.Fatalf("LatestCheckpoint: %v", err)
			}
			if ck == nil && killEpoch > 2 {
				t.Fatalf("no checkpoint found after crash at epoch %d", killEpoch)
			}
			// CheckpointEvery=2: the newest persisted epoch is the last
			// even epoch (or the final one) before the kill.
			if ck != nil && ck.Epoch >= killEpoch {
				t.Fatalf("checkpoint %s at epoch %d, but run died entering epoch %d", path, ck.Epoch, killEpoch)
			}
			net2 := ckptNet()
			cfg := ckptConfig(&DirCheckpointer{Dir: dir})
			cfg.Resume = ck
			hist, err := Fit(net2, x, y, cfg)
			if err != nil {
				t.Fatalf("resumed Fit: %v", err)
			}
			from := 0
			if ck != nil {
				from = ck.Epoch
			}
			if got := saveBytes(t, net2); !bytes.Equal(got, want) {
				t.Errorf("resumed model differs from uninterrupted run (kill at epoch %d, resumed from %d)", killEpoch, from)
			}
			if len(hist) != len(refHist) {
				t.Fatalf("resumed history has %d epochs, want %d", len(hist), len(refHist))
			}
			for i := range hist {
				if hist[i].Epoch != refHist[i].Epoch ||
					math.Abs(hist[i].Loss-refHist[i].Loss) > 0 ||
					math.Abs(hist[i].Acc-refHist[i].Acc) > 0 {
					t.Errorf("epoch %d stats differ: resumed %+v, reference %+v", i+1, hist[i], refHist[i])
				}
			}
		})
	}
}

// TestStopResumeEquivalence covers the graceful-interrupt path: a run
// cancelled between epochs cuts a final checkpoint, and resuming from
// it reproduces the uninterrupted model exactly.
func TestStopResumeEquivalence(t *testing.T) {
	x, y := ckptData(40)

	ref := ckptNet()
	if _, err := Fit(ref, x, y, ckptConfig(nil)); err != nil {
		t.Fatalf("reference Fit: %v", err)
	}
	want := saveBytes(t, ref)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := ckptConfig(&DirCheckpointer{Dir: dir})
	// Cancel mid-run from the verbose hook: it fires at the end of an
	// epoch, so the next boundary check observes the cancellation.
	cfg.Verbose = func(format string, args ...any) {
		if len(args) > 0 {
			if e, ok := args[0].(int); ok && e == 5 {
				cancel()
			}
		}
	}
	net1 := ckptNet()
	hist, err := FitCtx(ctx, net1, x, y, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled run: got err %v, want ErrInterrupted", err)
	}
	if len(hist) != 5 {
		t.Fatalf("cancelled run returned %d epochs of history, want 5", len(hist))
	}

	// The SIGTERM-style final cut must exist even though epoch 5 is not
	// on the CheckpointEvery=2 cadence.
	_, ck, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if ck == nil || ck.Epoch != 5 {
		t.Fatalf("final checkpoint epoch = %v, want 5", ck)
	}

	net2 := ckptNet()
	cfg2 := ckptConfig(nil)
	cfg2.Resume = ck
	if _, err := Fit(net2, x, y, cfg2); err != nil {
		t.Fatalf("resumed Fit: %v", err)
	}
	if got := saveBytes(t, net2); !bytes.Equal(got, want) {
		t.Error("resumed model differs from uninterrupted run after graceful stop")
	}
}

// TestResumeRejectsMismatch guards the determinism contract's
// preconditions.
func TestResumeRejectsMismatch(t *testing.T) {
	x, y := ckptData(16)
	dir := t.TempDir()
	cfg := ckptConfig(&DirCheckpointer{Dir: dir})
	cfg.Epochs = 4
	if _, err := Fit(ckptNet(), x, y, cfg); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	_, ck, err := LatestCheckpoint(dir)
	if err != nil || ck == nil {
		t.Fatalf("LatestCheckpoint: %v %v", ck, err)
	}

	bad := ckptConfig(nil)
	bad.Epochs = 4
	bad.Seed = 99
	bad.Resume = ck
	if _, err := Fit(ckptNet(), x, y, bad); err == nil {
		t.Error("resume with mismatched seed succeeded, want error")
	}

	short := ckptConfig(nil)
	short.Epochs = 2
	short.Resume = ck
	if _, err := Fit(ckptNet(), x, y, short); err == nil {
		t.Error("resume past configured epochs succeeded, want error")
	}

	wrongArch := NewNetwork(NewDense(6, 4), NewReLU(4), NewDense(4, 2))
	arch := ckptConfig(nil)
	arch.Epochs = 4
	arch.Resume = ck
	if _, err := Fit(wrongArch, x, y, arch); err == nil {
		t.Error("resume into a different architecture succeeded, want error")
	}

	sgd := ckptConfig(nil)
	sgd.Epochs = 4
	sgd.Optimizer = &SGD{LR: 0.1}
	sgd.Resume = ck
	if _, err := Fit(ckptNet(), x, y, sgd); err == nil {
		t.Error("resume with a different optimizer kind succeeded, want error")
	}
}

// TestNonFiniteHaltsAndCheckpoints blows up the learning rate mid-run
// via step decay and asserts the NaN guard halts with the last good
// epoch preserved on disk.
func TestNonFiniteHaltsAndCheckpoints(t *testing.T) {
	x, y := ckptData(32)
	dir := t.TempDir()
	cfg := TrainConfig{
		Epochs:    8,
		BatchSize: 8,
		Optimizer: &SGD{LR: 1e-3},
		Seed:      3,
		// After epoch 3 the LR explodes; the following epochs diverge
		// to overflow and the guard must catch it before Step.
		LRStepEvery:     3,
		LRStepFactor:    1e150,
		Checkpointer:    &DirCheckpointer{Dir: dir, Keep: 10},
		CheckpointEvery: 1,
	}
	net := ckptNet()
	hist, err := Fit(net, x, y, cfg)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got err %v, want ErrNonFinite", err)
	}
	if len(hist) < 3 {
		t.Fatalf("halted before the LR explosion: %d epochs", len(hist))
	}
	_, ck, lerr := LatestCheckpoint(dir)
	if lerr != nil {
		t.Fatalf("LatestCheckpoint: %v", lerr)
	}
	if ck == nil || ck.Epoch != len(hist) {
		t.Fatalf("last good checkpoint = %v, want epoch %d", ck, len(hist))
	}
	// A pre-explosion checkpoint must be finite and resumable. The last
	// good one carries the exploded LR (captured post-decay, by design),
	// so resume from the epoch before the decay fired.
	pre, err := LoadCheckpointFile(filepath.Join(dir, checkpointName(2)))
	if err != nil {
		t.Fatalf("load pre-explosion checkpoint: %v", err)
	}
	net2 := ckptNet()
	cfg2 := cfg
	cfg2.Optimizer = &SGD{LR: 1e-3}
	cfg2.LRStepFactor = 0.5
	cfg2.Checkpointer = nil
	cfg2.Resume = pre
	if _, err := Fit(net2, x, y, cfg2); err != nil {
		t.Fatalf("resume from pre-NaN checkpoint: %v", err)
	}
	for _, l := range net2.Layers {
		for _, p := range l.Params() {
			for _, v := range p.W.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("resumed network contains non-finite weights")
				}
			}
		}
	}
}

// TestCheckpointTornWriteFallback corrupts the newest checkpoint at
// every byte boundary (truncation) and asserts LatestCheckpoint falls
// back to the previous good one with a descriptive error.
func TestCheckpointTornWriteFallback(t *testing.T) {
	x, y := ckptData(16)
	dir := t.TempDir()
	cfg := ckptConfig(&DirCheckpointer{Dir: dir, Keep: 2})
	cfg.Epochs = 4
	cfg.CheckpointEvery = 2
	if _, err := Fit(ckptNet(), x, y, cfg); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	newest := filepath.Join(dir, checkpointName(4))
	prev := filepath.Join(dir, checkpointName(2))
	full, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if _, err := os.Stat(prev); err != nil {
		t.Fatalf("previous checkpoint missing: %v", err)
	}

	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(newest, full[:cut], 0o644); err != nil {
			t.Fatalf("truncate at %d: %v", cut, err)
		}
		path, ck, err := LatestCheckpoint(dir)
		if ck == nil {
			t.Fatalf("cut=%d: no fallback checkpoint (err=%v)", cut, err)
		}
		if path != prev || ck.Epoch != 2 {
			t.Fatalf("cut=%d: fell back to %s (epoch %d), want %s", cut, path, ck.Epoch, prev)
		}
		if err == nil {
			t.Fatalf("cut=%d: fallback was silent, want an error naming the torn file", cut)
		}
	}

	// Bit flips anywhere in the payload must also be detected.
	for _, flip := range []int{0, len(ckptMagic), len(ckptMagic) + frameHeaderLen, len(full) / 2, len(full) - 1} {
		bad := append([]byte(nil), full...)
		bad[flip] ^= 0x40
		if err := os.WriteFile(newest, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		path, ck, err := LatestCheckpoint(dir)
		if ck == nil || path != prev || err == nil {
			t.Fatalf("flip@%d: got path=%s ck=%v err=%v, want loud fallback to %s", flip, path, ck, err, prev)
		}
	}

	// Restore the original bytes: the newest file loads cleanly again.
	if err := os.WriteFile(newest, full, 0o644); err != nil {
		t.Fatal(err)
	}
	path, ck, err := LatestCheckpoint(dir)
	if err != nil || ck == nil || path != newest || ck.Epoch != 4 {
		t.Fatalf("restored: got path=%s ck=%v err=%v", path, ck, err)
	}
}

// TestCheckpointRoundTripPreservesDropoutState asserts the dropout RNG
// position survives save/load: two more training epochs after a round
// trip match two more epochs without one.
func TestCheckpointRoundTripPreservesDropoutState(t *testing.T) {
	x, y := ckptData(24)
	cfg := ckptConfig(nil)
	cfg.Epochs = 6

	netA := ckptNet()
	if _, err := Fit(netA, x, y, cfg); err != nil {
		t.Fatalf("Fit: %v", err)
	}

	dir := t.TempDir()
	cfg4 := ckptConfig(&DirCheckpointer{Dir: dir})
	cfg4.Epochs = 6
	netB := ckptNet()
	// Kill after epoch 4 (entering 5), resume through a disk round trip.
	defer faultinject.Reset()
	errBoom := errors.New("boom")
	faultinject.Set(TrainEpochSite, faultinject.Fault{Err: errBoom, Skip: 4, Count: 1})
	if _, err := Fit(netB, x, y, cfg4); !errors.Is(err, errBoom) {
		t.Fatalf("want injected crash, got %v", err)
	}
	_, ck, err := LatestCheckpoint(dir)
	if err != nil || ck == nil || ck.Epoch != 4 {
		t.Fatalf("LatestCheckpoint: %v %v", ck, err)
	}
	netC := ckptNet()
	cfgR := ckptConfig(nil)
	cfgR.Epochs = 6
	cfgR.Resume = ck
	if _, err := Fit(netC, x, y, cfgR); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !bytes.Equal(saveBytes(t, netA), saveBytes(t, netC)) {
		t.Error("model after disk round trip differs: dropout RNG state not preserved")
	}
}

// TestDirCheckpointerPrunes bounds disk usage.
func TestDirCheckpointerPrunes(t *testing.T) {
	x, y := ckptData(16)
	dir := t.TempDir()
	cfg := ckptConfig(&DirCheckpointer{Dir: dir, Keep: 2})
	cfg.Epochs = 6
	cfg.CheckpointEvery = 1
	if _, err := Fit(ckptNet(), x, y, cfg); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, checkpointPattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("kept %d checkpoints, want 2: %v", len(paths), paths)
	}
}

// TestSaveCheckpointDoesNotMutate asserts capturing and saving twice in
// a row produces identical bytes — the non-mutating capture contract
// that bit-identical resume rests on.
func TestSaveCheckpointDoesNotMutate(t *testing.T) {
	x, y := ckptData(16)
	cfg := ckptConfig(nil)
	cfg.Epochs = 2
	net := ckptNet()
	hist, err := Fit(net, x, y, cfg)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c1, err := captureCheckpoint(net, &cfg, 2, hist)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	c2, err := captureCheckpoint(net, &cfg, 2, hist)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	var b1, b2 bytes.Buffer
	if err := SaveCheckpoint(&b1, c1); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(&b2, c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("back-to-back captures differ: capture mutates training state")
	}
	// And the network still saves identically after both captures.
	if !bytes.Equal(saveBytes(t, net), saveBytes(t, net)) {
		t.Error("Save mutates the network")
	}
}
