package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/golitho/hsd/internal/tensor"
)

// Dense is a fully connected layer: y = x*W + b.
type Dense struct {
	In, Out int
	W       *tensor.Matrix // In x Out
	B       []float64

	gw   *tensor.Matrix
	gb   []float64
	last *tensor.Matrix // cached input
}

var _ Layer = (*Dense)(nil)

// NewDense constructs a Dense layer with zeroed weights; call Network.Init
// (or Trainer) to randomize.
func NewDense(in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		W:  tensor.NewMatrix(in, out),
		B:  make([]float64, out),
		gw: tensor.NewMatrix(in, out),
		gb: make([]float64, out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%dx%d)", d.In, d.Out) }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.Out }

func (d *Dense) init(rng *rand.Rand) {
	d.W.Randomize(rng, math.Sqrt(2/float64(d.In)))
	for i := range d.B {
		d.B[i] = 0
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(d.Name(), d.In, x.Cols)
	out := tensor.NewMatrix(x.Rows, d.Out)
	tensor.MatMulInto(out, x, d.W)
	if err := out.AddRowVector(d.B); err != nil {
		panic(err) // impossible: dimensions fixed at construction
	}
	if train {
		d.last = x
	} else {
		d.last = nil
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.last == nil {
		panic("nn: Dense.Backward without training Forward")
	}
	// dW += x^T * grad
	gw := tensor.NewMatrix(d.In, d.Out)
	tensor.MatMulInto(gw, d.last.Transpose(), grad)
	if err := tensor.Axpy(1, gw, d.gw); err != nil {
		panic(err)
	}
	// db += column sums of grad
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j := range row {
			d.gb[j] += row[j]
		}
	}
	// dX = grad * W^T
	dx := tensor.NewMatrix(grad.Rows, d.In)
	tensor.MatMulInto(dx, grad, d.W.Transpose())
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param {
	gbm, _ := tensor.FromSlice(1, d.Out, d.gb)
	bm, _ := tensor.FromSlice(1, d.Out, d.B)
	return []*Param{{W: d.W, G: d.gw}, {W: bm, G: gbm}}
}

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	out := NewDense(d.In, d.Out)
	copy(out.W.Data, d.W.Data)
	copy(out.B, d.B)
	return out
}

// ReLU is the rectified linear activation.
type ReLU struct {
	Dim  int
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU over vectors of the given width.
func NewReLU(dim int) *ReLU { return &ReLU{Dim: dim} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.Dim }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(r.Name(), r.Dim, x.Cols)
	out := x.Clone()
	if train {
		r.mask = make([]bool, len(out.Data))
	}
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if r.mask == nil {
		panic("nn: ReLU.Backward without training Forward")
	}
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return NewReLU(r.Dim) }

// Dropout zeroes activations with probability P during training and
// rescales the survivors (inverted dropout).
type Dropout struct {
	Dim int
	P   float64
	rng *rand.Rand

	// seed and draws make the RNG state capturable without mutating it:
	// the stream is fully determined by the construction seed and the
	// number of Float64 draws consumed, so a checkpoint records (seed,
	// draws) and resume replays the discarded prefix. See fastForward.
	seed  int64
	draws int64

	mask []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer; seed fixes its randomness.
func NewDropout(dim int, p float64, seed int64) *Dropout {
	return &Dropout{Dim: dim, P: p, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// fastForward discards draws Float64 variates, restoring the RNG to the
// state a checkpoint captured. Replaying the same call sequence on the
// same seed is exact: math/rand is deterministic.
func (d *Dropout) fastForward(draws int64) {
	for i := int64(0); i < draws; i++ {
		d.rng.Float64()
	}
	d.draws = draws
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// OutDim implements Layer.
func (d *Dropout) OutDim() int { return d.Dim }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(d.Name(), d.Dim, x.Cols)
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	d.mask = make([]bool, len(out.Data))
	d.draws += int64(len(out.Data))
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Clone implements Layer. The clone's stream is derived from the
// source's (seed, draws) state instead of drawing from it, so cloning
// never perturbs a live training run; clones are used for inference,
// where dropout is inactive anyway.
func (d *Dropout) Clone() Layer {
	return NewDropout(d.Dim, d.P, d.seed^0x5E3779B97F4A7C15+d.draws)
}
