package nn

import (
	"sync"

	"github.com/golitho/hsd/internal/tensor"
)

// Arena is a reusable scratch allocator for inference forward passes.
// A forward pass requests the same sequence of matrix shapes every call,
// so the arena hands back the same buffers in order: after the first
// pass through a network, repeated ForwardBatch calls with the same
// arena allocate nothing.
//
// An Arena is not safe for concurrent use; give each worker its own
// (PredictBatch does this via a sync.Pool).
type Arena struct {
	bufs []*tensor.Matrix
	next int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// get returns a zeroed r x c matrix, reusing the buffer at the cursor
// when its capacity suffices and replacing it otherwise.
func (a *Arena) get(r, c int) *tensor.Matrix {
	need := r * c
	if a.next < len(a.bufs) && cap(a.bufs[a.next].Data) >= need {
		m := a.bufs[a.next]
		a.next++
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:need]
		for i := range m.Data {
			m.Data[i] = 0
		}
		return m
	}
	m := tensor.NewMatrix(r, c)
	if a.next < len(a.bufs) {
		a.bufs[a.next] = m
	} else {
		a.bufs = append(a.bufs, m)
	}
	a.next++
	return m
}

// Reset rewinds the cursor so the next forward pass reuses the buffers
// from the start. Matrices returned by the previous pass (including the
// network output) are invalidated.
func (a *Arena) Reset() { a.next = 0 }

// arenaPool recycles arenas across PredictBatch calls so steady-state
// batched inference allocates no scratch at all.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

func getArena() *Arena { return arenaPool.Get().(*Arena) }

func putArena(a *Arena) {
	a.Reset()
	arenaPool.Put(a)
}
