package nn

import (
	"sync"

	"github.com/golitho/hsd/internal/tensor"
)

// Arena is a reusable scratch allocator for inference forward passes.
// A forward pass requests the same sequence of matrix shapes every call,
// so the arena hands back the same buffers in order: after the first
// pass through a network, repeated ForwardBatch calls with the same
// arena allocate nothing.
//
// An Arena is not safe for concurrent use; give each worker its own
// (PredictBatch does this via a sync.Pool).
// The float64, float32, and int8 pools are independent cursors so a
// mixed-precision network draws from each without disturbing the others.
type Arena struct {
	bufs []*tensor.Matrix
	next int

	bufs32 []*tensor.Matrix32
	next32 int

	bufsI8 []*tensor.Int8Matrix
	nextI8 int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// get returns a zeroed r x c matrix, reusing the buffer at the cursor
// when its capacity suffices and replacing it otherwise.
func (a *Arena) get(r, c int) *tensor.Matrix {
	need := r * c
	if a.next < len(a.bufs) && cap(a.bufs[a.next].Data) >= need {
		m := a.bufs[a.next]
		a.next++
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:need]
		for i := range m.Data {
			m.Data[i] = 0
		}
		return m
	}
	m := tensor.NewMatrix(r, c)
	if a.next < len(a.bufs) {
		a.bufs[a.next] = m
	} else {
		a.bufs = append(a.bufs, m)
	}
	a.next++
	return m
}

// get32 is get for float32 scratch, used by the reduced-precision
// inference layers.
func (a *Arena) get32(r, c int) *tensor.Matrix32 {
	need := r * c
	if a.next32 < len(a.bufs32) && cap(a.bufs32[a.next32].Data) >= need {
		m := a.bufs32[a.next32]
		a.next32++
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:need]
		for i := range m.Data {
			m.Data[i] = 0
		}
		return m
	}
	m := tensor.NewMatrix32(r, c)
	if a.next32 < len(a.bufs32) {
		a.bufs32[a.next32] = m
	} else {
		a.bufs32 = append(a.bufs32, m)
	}
	a.next32++
	return m
}

// geti8 is get for int8 scratch (zeroed codes, zeroed scales), used by
// the quantized inference layers.
func (a *Arena) geti8(r, c int) *tensor.Int8Matrix {
	need := r * c
	if a.nextI8 < len(a.bufsI8) && cap(a.bufsI8[a.nextI8].Data) >= need && cap(a.bufsI8[a.nextI8].Scale) >= r {
		m := a.bufsI8[a.nextI8]
		a.nextI8++
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:need]
		m.Scale = m.Scale[:r]
		for i := range m.Data {
			m.Data[i] = 0
		}
		for i := range m.Scale {
			m.Scale[i] = 0
		}
		return m
	}
	m := tensor.NewInt8Matrix(r, c)
	if a.nextI8 < len(a.bufsI8) {
		a.bufsI8[a.nextI8] = m
	} else {
		a.bufsI8 = append(a.bufsI8, m)
	}
	a.nextI8++
	return m
}

// Reset rewinds the cursors so the next forward pass reuses the buffers
// from the start. Matrices returned by the previous pass (including the
// network output) are invalidated.
func (a *Arena) Reset() { a.next, a.next32, a.nextI8 = 0, 0, 0 }

// arenaPool recycles arenas across PredictBatch calls so steady-state
// batched inference allocates no scratch at all.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

func getArena() *Arena { return arenaPool.Get().(*Arena) }

func putArena(a *Arena) {
	a.Reset()
	arenaPool.Put(a)
}
