package nn

import (
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its gradient; gradients are not
	// cleared (call Network.ZeroGrad afterwards).
	Step(params []*Param)
	// Name identifies the optimizer in reports.
	Name() string
}

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Matrix
}

var _ Optimizer = (*SGD)(nil)

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

func (s *SGD) scaleLR(f float64) { s.LR *= f }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.velocity == nil {
		s.velocity = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
	}
	for i, p := range params {
		v := s.velocity[i]
		for j := range p.W.Data {
			g := p.G.Data[j] + s.WeightDecay*p.W.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*g
			p.W.Data[j] += v.Data[j]
		}
	}
}

// optState is the serializable state of an optimizer: a kind tag, the
// step count, the current (possibly decayed) learning rate, and the
// flat contents of each slot-matrix group (velocity for SGD; first and
// second moments for Adam). Slot geometry is not stored: it is
// recovered from the network's parameters on restore.
type optState struct {
	Kind  string
	T     int
	LR    float64
	Slots [][][]float64
}

// statefulOptimizer is satisfied by optimizers whose internal state can
// round-trip through a checkpoint.
type statefulOptimizer interface {
	captureState() optState
	restoreState(st optState, params []*Param) error
}

func flattenSlots(mats []*tensor.Matrix) [][]float64 {
	out := make([][]float64, len(mats))
	for i, m := range mats {
		out[i] = append([]float64(nil), m.Data...)
	}
	return out
}

func restoreSlots(flat [][]float64, params []*Param) ([]*tensor.Matrix, error) {
	if len(flat) != len(params) {
		return nil, fmt.Errorf("nn: optimizer state has %d slots, network has %d params", len(flat), len(params))
	}
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		m := tensor.NewMatrix(p.W.Rows, p.W.Cols)
		if len(flat[i]) != len(m.Data) {
			return nil, fmt.Errorf("nn: optimizer slot %d has %d values, param has %d", i, len(flat[i]), len(m.Data))
		}
		copy(m.Data, flat[i])
		out[i] = m
	}
	return out, nil
}

func (s *SGD) captureState() optState {
	st := optState{Kind: "sgd", LR: s.LR}
	if s.velocity != nil {
		st.Slots = [][][]float64{flattenSlots(s.velocity)}
	}
	return st
}

func (s *SGD) restoreState(st optState, params []*Param) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("nn: checkpoint has %s optimizer state, run uses sgd", st.Kind)
	}
	s.LR = st.LR
	if len(st.Slots) == 0 {
		s.velocity = nil
		return nil
	}
	if len(st.Slots) != 1 {
		return fmt.Errorf("nn: sgd state has %d slot groups, want 1", len(st.Slots))
	}
	v, err := restoreSlots(st.Slots[0], params)
	if err != nil {
		return err
	}
	s.velocity = v
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t    int
	m, v []*tensor.Matrix
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns Adam with standard defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

func (a *Adam) scaleLR(f float64) { a.LR *= f }

func (a *Adam) captureState() optState {
	st := optState{Kind: "adam", T: a.t, LR: a.LR}
	if a.m != nil {
		st.Slots = [][][]float64{flattenSlots(a.m), flattenSlots(a.v)}
	}
	return st
}

func (a *Adam) restoreState(st optState, params []*Param) error {
	if st.Kind != "adam" {
		return fmt.Errorf("nn: checkpoint has %s optimizer state, run uses adam", st.Kind)
	}
	a.LR = st.LR
	a.t = st.T
	if len(st.Slots) == 0 {
		a.m, a.v = nil, nil
		return nil
	}
	if len(st.Slots) != 2 {
		return fmt.Errorf("nn: adam state has %d slot groups, want 2", len(st.Slots))
	}
	m, err := restoreSlots(st.Slots[0], params)
	if err != nil {
		return err
	}
	v, err := restoreSlots(st.Slots[1], params)
	if err != nil {
		return err
	}
	a.m, a.v = m, v
	return nil
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([]*tensor.Matrix, len(params))
		a.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			a.m[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
			a.v[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.G.Data[j] + a.WeightDecay*p.W.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
