package nn

import (
	"math"

	"github.com/golitho/hsd/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its gradient; gradients are not
	// cleared (call Network.ZeroGrad afterwards).
	Step(params []*Param)
	// Name identifies the optimizer in reports.
	Name() string
}

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Matrix
}

var _ Optimizer = (*SGD)(nil)

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

func (s *SGD) scaleLR(f float64) { s.LR *= f }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.velocity == nil {
		s.velocity = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
	}
	for i, p := range params {
		v := s.velocity[i]
		for j := range p.W.Data {
			g := p.G.Data[j] + s.WeightDecay*p.W.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*g
			p.W.Data[j] += v.Data[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t    int
	m, v []*tensor.Matrix
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns Adam with standard defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

func (a *Adam) scaleLR(f float64) { a.LR *= f }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([]*tensor.Matrix, len(params))
		a.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			a.m[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
			a.v[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.G.Data[j] + a.WeightDecay*p.W.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
