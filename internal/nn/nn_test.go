package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/tensor"
)

// numericalGradCheck compares analytic parameter gradients of a network
// against central finite differences on a fixed batch.
func numericalGradCheck(t *testing.T, net *Network, dim int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	net.Init(rng)
	const bs = 3
	x := tensor.NewMatrix(bs, dim)
	x.Randomize(rng, 1)
	y := []int{0, 1, 0}
	loss := SoftmaxCE{}

	lossAt := func() float64 {
		logits := net.Forward(x, true)
		l, _, _ := loss.Loss(logits, y)
		return l
	}

	// Analytic gradients.
	logits := net.Forward(x, true)
	_, grad, _ := loss.Loss(logits, y)
	net.ZeroGrad()
	net.Backward(grad)

	const h = 1e-5
	checked := 0
	for pi, p := range net.Params() {
		// Sample a few entries per parameter to keep runtime sane.
		step := len(p.W.Data)/7 + 1
		for j := 0; j < len(p.W.Data); j += step {
			orig := p.W.Data[j]
			p.W.Data[j] = orig + h
			lp := lossAt()
			p.W.Data[j] = orig - h
			lm := lossAt()
			p.W.Data[j] = orig
			num := (lp - lm) / (2 * h)
			ana := p.G.Data[j]
			if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d entry %d: analytic %v vs numeric %v", pi, j, ana, num)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradient check covered no entries")
	}
}

func TestGradCheckDense(t *testing.T) {
	net := NewNetwork(NewDense(6, 5), NewReLU(5), NewDense(5, 2))
	numericalGradCheck(t, net, 6, 1e-5)
}

func TestGradCheckConv(t *testing.T) {
	conv := NewConv2D(2, 4, 4, 3, 3, 1, 1)
	net := NewNetwork(conv, NewReLU(conv.OutDim()), NewDense(conv.OutDim(), 2))
	numericalGradCheck(t, net, 2*4*4, 1e-5)
}

func TestGradCheckConvPool(t *testing.T) {
	conv := NewConv2D(1, 4, 4, 2, 3, 1, 1)
	pool := NewMaxPool2D(2, 4, 4, 2)
	net := NewNetwork(conv, NewReLU(conv.OutDim()), pool, NewDense(pool.OutDim(), 2))
	numericalGradCheck(t, net, 16, 1e-5)
}

func TestGradCheckStride(t *testing.T) {
	conv := NewConv2D(1, 5, 5, 2, 3, 2, 0)
	net := NewNetwork(conv, NewDense(conv.OutDim(), 2))
	numericalGradCheck(t, net, 25, 1e-5)
}

func TestConvOutputShape(t *testing.T) {
	c := NewConv2D(3, 8, 8, 5, 3, 1, 1)
	if c.OutH() != 8 || c.OutW() != 8 || c.OutDim() != 5*64 {
		t.Fatalf("same-pad conv shape wrong: %d %d %d", c.OutH(), c.OutW(), c.OutDim())
	}
	c2 := NewConv2D(1, 8, 8, 4, 3, 2, 0)
	if c2.OutH() != 3 || c2.OutW() != 3 {
		t.Fatalf("strided conv shape wrong: %dx%d", c2.OutH(), c2.OutW())
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 kernel with weight 1 must reproduce its input channel.
	c := NewConv2D(1, 3, 3, 1, 1, 1, 0)
	c.W.Data[0] = 1
	x := tensor.NewMatrix(1, 9)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := c.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv differs at %d", i)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2, 2)
	x, _ := tensor.FromSlice(1, 4, []float64{1, 5, 3, 2})
	out := p.Forward(x, false)
	if out.Cols != 1 || out.Data[0] != 5 {
		t.Fatalf("maxpool = %v", out.Data)
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2, 2)
	x, _ := tensor.FromSlice(1, 4, []float64{1, 5, 3, 2})
	p.Forward(x, true)
	g, _ := tensor.FromSlice(1, 1, []float64{7})
	dx := p.Backward(g)
	want := []float64{0, 7, 0, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("pool grad = %v", dx.Data)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU(3)
	x, _ := tensor.FromSlice(1, 3, []float64{-1, 0, 2})
	out := r.Forward(x, true)
	if out.Data[0] != 0 || out.Data[2] != 2 {
		t.Fatalf("relu forward = %v", out.Data)
	}
	g, _ := tensor.FromSlice(1, 3, []float64{10, 10, 10})
	dx := r.Backward(g)
	if dx.Data[0] != 0 || dx.Data[2] != 10 {
		t.Fatalf("relu backward = %v", dx.Data)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(4, 0.5, 1)
	x, _ := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	out := d.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("dropout changed eval-mode values")
		}
	}
}

func TestDropoutTrainZeroesSome(t *testing.T) {
	d := NewDropout(1000, 0.5, 2)
	x := tensor.NewMatrix(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor not rescaled: %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000 at p=0.5", zeros)
	}
}

func TestSoftmaxCELoss(t *testing.T) {
	logits, _ := tensor.FromSlice(2, 2, []float64{10, -10, -10, 10})
	loss, grad, correct := SoftmaxCE{}.Loss(logits, []int{0, 1})
	if loss > 1e-6 {
		t.Fatalf("confident correct loss = %v", loss)
	}
	if correct != 2 {
		t.Fatalf("correct = %d", correct)
	}
	for _, g := range grad.Data {
		if math.Abs(g) > 1e-6 {
			t.Fatalf("grad should be ~0, got %v", g)
		}
	}
}

func TestSoftmaxCEBiasedTargets(t *testing.T) {
	// With bias eps, a confident non-hotspot prediction still carries
	// gradient pushing probability toward eps on class 1.
	logits, _ := tensor.FromSlice(1, 2, []float64{10, -10})
	_, g0, _ := SoftmaxCE{}.Loss(logits, []int{0})
	_, gb, _ := SoftmaxCE{BiasEps: 0.3}.Loss(logits.Clone(), []int{0})
	if math.Abs(g0.Data[1]) > 1e-6 {
		t.Fatal("unbiased gradient should vanish")
	}
	if gb.Data[1] >= 0 {
		t.Fatalf("biased loss should push class-1 probability up, grad %v", gb.Data[1])
	}
}

func TestFitXor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x = append(x, []float64{float64(a) + rng.NormFloat64()*0.05, float64(b) + rng.NormFloat64()*0.05})
		y = append(y, a^b)
	}
	net := BuildMLP(2, 16)
	hist, err := Fit(net, x, y, TrainConfig{Epochs: 60, BatchSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := hist[len(hist)-1]
	if final.Acc < 0.97 {
		t.Fatalf("XOR accuracy = %v", final.Acc)
	}
	if final.Loss > hist[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", hist[0].Loss, final.Loss)
	}
}

func TestFitCNNBlobs(t *testing.T) {
	// Class 1: bright top-left quadrant; class 0: bright bottom-right.
	rng := rand.New(rand.NewSource(6))
	const c, h, w = 1, 8, 8
	var x [][]float64
	var y []int
	for i := 0; i < 160; i++ {
		img := make([]float64, c*h*w)
		label := rng.Intn(2)
		for yy := 0; yy < 4; yy++ {
			for xx := 0; xx < 4; xx++ {
				if label == 1 {
					img[yy*w+xx] = 1 + rng.NormFloat64()*0.1
				} else {
					img[(yy+4)*w+xx+4] = 1 + rng.NormFloat64()*0.1
				}
			}
		}
		x = append(x, img)
		y = append(y, label)
	}
	net, err := BuildCNN(CNNConfig{InC: c, InH: h, InW: w, Conv1: 4, Conv2: 8, Hidden: 16})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Fit(net, x, y, TrainConfig{Epochs: 8, BatchSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := hist[len(hist)-1].Acc; acc < 0.95 {
		t.Fatalf("CNN blob accuracy = %v", acc)
	}
	scores, err := ScoreBatch(net, x)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, s := range scores {
		if (s > 0.5) == (y[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(x)); frac < 0.95 {
		t.Fatalf("ScoreBatch accuracy = %v", frac)
	}
}

func TestFitValidation(t *testing.T) {
	net := BuildMLP(2, 4)
	if _, err := Fit(net, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Fit(net, [][]float64{{1, 2}}, []int{3}, TrainConfig{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := Fit(net, [][]float64{{1, 2}, {1}}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("ragged input accepted")
	}
	bad := NewNetwork(NewDense(2, 3))
	if _, err := Fit(bad, [][]float64{{1, 2}}, []int{0}, TrainConfig{}); err == nil {
		t.Fatal("non-2-logit network accepted")
	}
}

func TestBuildCNNValidation(t *testing.T) {
	if _, err := BuildCNN(CNNConfig{InC: 1, InH: 6, InW: 8, Conv1: 2, Conv2: 2, Hidden: 4}); err == nil {
		t.Fatal("non-divisible height accepted")
	}
	if _, err := BuildCNN(CNNConfig{InC: 0, InH: 8, InW: 8, Conv1: 2, Conv2: 2, Hidden: 4}); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net, err := BuildCNN(CNNConfig{InC: 2, InH: 4, InW: 4, Conv1: 3, Conv2: 4, Hidden: 8, DropoutP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rand.New(rand.NewSource(7)))
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2*4*4)
	rng := rand.New(rand.NewSource(8))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if math.Abs(Score(net, x)-Score(got, x)) > 1e-12 {
		t.Fatal("loaded network scores differently")
	}
	if got.NumParams() != net.NumParams() {
		t.Fatal("parameter count differs after round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	net := BuildMLP(3, 4)
	net.Init(rand.New(rand.NewSource(9)))
	clone := net.Clone()
	x := []float64{0.5, -0.3, 0.8}
	before := Score(clone, x)
	// Mutate the original's weights.
	net.Params()[0].W.Data[0] += 100
	if Score(clone, x) != before {
		t.Fatal("clone shares weights with original")
	}
}

func TestNetworkNumParams(t *testing.T) {
	net := NewNetwork(NewDense(3, 4), NewReLU(4), NewDense(4, 2))
	want := 3*4 + 4 + 4*2 + 2
	if net.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), want)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 via the optimizer interface.
	w := tensor.NewMatrix(1, 1)
	g := tensor.NewMatrix(1, 1)
	p := []*Param{{W: w, G: g}}
	opt := &SGD{LR: 0.1, Momentum: 0.5}
	for i := 0; i < 100; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		opt.Step(p)
	}
	if math.Abs(w.Data[0]-3) > 1e-3 {
		t.Fatalf("sgd converged to %v", w.Data[0])
	}
}

func TestAdamConverges(t *testing.T) {
	w := tensor.NewMatrix(1, 1)
	g := tensor.NewMatrix(1, 1)
	p := []*Param{{W: w, G: g}}
	opt := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		opt.Step(p)
	}
	if math.Abs(w.Data[0]-3) > 1e-2 {
		t.Fatalf("adam converged to %v", w.Data[0])
	}
}

func TestGradCheckBatchNorm(t *testing.T) {
	net := NewNetwork(NewDense(5, 4), NewBatchNorm(4), NewReLU(4), NewDense(4, 2))
	numericalGradCheck(t, net, 5, 1e-4)
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	bn := NewBatchNorm(2)
	x := tensor.NewMatrix(64, 2)
	rng := rand.New(rand.NewSource(10))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()*3 + 7
	}
	out := bn.Forward(x, true)
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for i := 0; i < out.Rows; i++ {
			mean += out.At(i, j)
		}
		mean /= float64(out.Rows)
		for i := 0; i < out.Rows; i++ {
			d := out.At(i, j) - mean
			varr += d * d
		}
		varr /= float64(out.Rows)
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-2 {
			t.Fatalf("col %d: mean=%v var=%v", j, mean, varr)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	rng := rand.New(rand.NewSource(11))
	// Train on many batches centred at 5.
	for k := 0; k < 200; k++ {
		x := tensor.NewMatrix(16, 1)
		for i := range x.Data {
			x.Data[i] = 5 + rng.NormFloat64()
		}
		bn.Forward(x, true)
	}
	// Eval on the training distribution: output approx standardized.
	probe, _ := tensor.FromSlice(1, 1, []float64{5})
	out := bn.Forward(probe, false)
	if math.Abs(out.Data[0]) > 0.2 {
		t.Fatalf("eval-mode output = %v, want ~0", out.Data[0])
	}
}

func TestBatchNormSerializeRoundTrip(t *testing.T) {
	net, err := BuildCNN(CNNConfig{InC: 1, InH: 4, InW: 4, Conv1: 2, Conv2: 2, Hidden: 4, BatchNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rand.New(rand.NewSource(12)))
	// Push a batch through to move running stats off their defaults.
	x := tensor.NewMatrix(8, 16)
	x.Randomize(rand.New(rand.NewSource(13)), 1)
	net.Forward(x, true)

	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, 16)
	for i := range probe {
		probe[i] = float64(i) / 16
	}
	if math.Abs(Score(net, probe)-Score(got, probe)) > 1e-12 {
		t.Fatal("batchnorm network scores differently after round trip")
	}
}

func TestLRStepDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var x [][]float64
	var y []int
	for i := 0; i < 64; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		if x[i][0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	opt := NewAdam(1e-2)
	net := BuildMLP(1, 4)
	_, err := Fit(net, x, y, TrainConfig{
		Epochs: 4, BatchSize: 16, Seed: 1,
		Optimizer: opt, LRStepEvery: 2, LRStepFactor: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.LR-1e-2*0.25) > 1e-12 {
		t.Fatalf("LR after decay = %v, want %v", opt.LR, 1e-2*0.25)
	}
}
