package nn

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzSeedNet trains nothing but exercises every serializable layer
// kind, so corpus seeds cover the full decode surface.
func fuzzSeedNet(f *testing.F) *Network {
	f.Helper()
	net, err := BuildCNN(CNNConfig{
		InC: 2, InH: 8, InW: 8,
		Conv1: 3, Conv2: 4, Hidden: 6,
		DropoutP: 0.2, BatchNorm: true, Seed: 11,
	})
	if err != nil {
		f.Fatal(err)
	}
	return net
}

// reframe wraps payload in a fresh, CRC-consistent frame, so the fuzzer
// can reach the gob decoder instead of bouncing off the checksum.
func reframe(magic, payload []byte) []byte {
	var buf bytes.Buffer
	header := make([]byte, len(magic)+frameHeaderLen)
	copy(header, magic)
	binary.BigEndian.PutUint64(header[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload))
	buf.Write(header)
	buf.Write(payload)
	return buf.Bytes()
}

// FuzzLoadNetwork throws arbitrary bytes at the framed network loader.
// Load must never panic; accepted inputs must re-save and re-load to
// the same layer count and output width.
func FuzzLoadNetwork(f *testing.F) {
	var buf bytes.Buffer
	if err := Save(&buf, fuzzSeedNet(f)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])       // torn mid-payload
	f.Add(valid[:len(fileMagic)+4])   // torn mid-header
	f.Add([]byte{})                   // empty
	f.Add([]byte("HSDNNv2\n"))        // magic only
	f.Add([]byte("not a model file")) // legacy path: raw gob attempt
	// CRC-consistent frames with hostile payloads reach the gob layer.
	f.Add(reframe(fileMagic, []byte("garbage gob")))
	f.Add(reframe(fileMagic, valid[len(fileMagic)+frameHeaderLen:len(fileMagic)+frameHeaderLen+32]))
	// Implausible declared size must be rejected before allocation.
	huge := append([]byte(nil), valid[:len(fileMagic)+frameHeaderLen]...)
	binary.BigEndian.PutUint64(huge[len(fileMagic):], 1<<40)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Save(&out, net); err != nil {
			t.Fatalf("accepted network fails to re-save: %v", err)
		}
		again, err := Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-saved network fails to re-load: %v", err)
		}
		if len(again.Layers) != len(net.Layers) || again.OutDim() != net.OutDim() {
			t.Fatalf("round trip changed shape: %d/%d layers, %d/%d out",
				len(again.Layers), len(net.Layers), again.OutDim(), net.OutDim())
		}
	})
}

// FuzzLoadCheckpoint does the same for the checkpoint loader, seeded
// with a checkpoint from a real (tiny) training run.
func FuzzLoadCheckpoint(f *testing.F) {
	x, y := [][]float64{{0, 1, 0, 1, 0, 1}, {1, 0, 1, 0, 1, 0}}, []int{0, 1}
	net := NewNetwork(NewDense(6, 4), NewReLU(4), NewDropout(4, 0.2, 5), NewDense(4, 2))
	cfg := TrainConfig{Epochs: 2, BatchSize: 2, Seed: 1, Optimizer: NewAdam(1e-3)}
	hist, err := Fit(net, x, y, cfg)
	if err != nil {
		f.Fatal(err)
	}
	ck, err := captureCheckpoint(net, &cfg, 2, hist)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, ck); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(ckptMagic)+6])
	f.Add([]byte{})
	f.Add([]byte("HSDCKv1\n"))
	f.Add(reframe(ckptMagic, []byte("garbage gob")))
	// A network file is not a checkpoint and vice versa.
	var netBuf bytes.Buffer
	if err := Save(&netBuf, fuzzSeedNet(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(netBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		c, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := SaveCheckpoint(&out, c); err != nil {
			t.Fatalf("accepted checkpoint fails to re-save: %v", err)
		}
		again, err := LoadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-saved checkpoint fails to re-load: %v", err)
		}
		if again.Epoch != c.Epoch || again.Seed != c.Seed || len(again.History) != len(c.History) {
			t.Fatal("round trip changed checkpoint identity")
		}
	})
}
