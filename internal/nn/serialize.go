package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// snapshot is the serialized form of one layer: a kind tag plus the
// integer geometry and float payloads needed to reconstruct it.
type snapshot struct {
	Kind   string
	Ints   []int
	Seeds  []int64
	Floats [][]float64
}

const formatVersion = 1

type netFile struct {
	Version int
	Layers  []snapshot
}

// init pins the gob wire-type ids of the network file format. Gob
// allocates type ids from a process-global counter in first-encode
// order, so without this the exact bytes of a saved network depend on
// what else the process happened to gob-encode earlier (journal
// records, WAL replay, checkpoints). Encoding a zero netFile here
// allocates the format's ids at a fixed point — package init, before
// any runtime traffic — which is what makes "a resumed run ships a
// byte-identical model" hold across processes with different
// histories.
func init() {
	_ = gob.NewEncoder(io.Discard).Encode(netFile{Layers: []snapshot{{}}})
}

// fileMagic opens the framed network file format: a fixed tag, the
// payload length, and a CRC32 of the payload, so Load can distinguish a
// torn or corrupted file from a valid one before handing bytes to gob.
// Files written before the frame existed are raw gob streams; Load
// still accepts those.
var fileMagic = []byte("HSDNNv2\n")

// frameHeaderLen is the byte length of the frame after the magic:
// uint64 payload length + uint32 CRC32 (IEEE) of the payload.
const frameHeaderLen = 8 + 4

// maxPayloadBytes bounds the declared payload so a corrupted length
// field cannot drive a giant allocation.
const maxPayloadBytes = 1 << 31

// writeFramed emits magic, payload length, payload CRC32, then the
// payload itself: the shared integrity frame of the network and
// checkpoint formats.
func writeFramed(w io.Writer, magic, payload []byte) error {
	header := make([]byte, len(magic)+frameHeaderLen)
	copy(header, magic)
	binary.BigEndian.PutUint64(header[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("nn: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("nn: write payload: %w", err)
	}
	return nil
}

// readFramed consumes a frame written by writeFramed (the magic has
// already been peeked and matched) and returns the verified payload.
// kind names the file type in errors ("network", "checkpoint").
func readFramed(br *bufio.Reader, magic []byte, kind string) ([]byte, error) {
	if _, err := br.Discard(len(magic)); err != nil {
		return nil, fmt.Errorf("nn: read magic: %w", err)
	}
	header := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("nn: %s file truncated in header (torn write?): %w", kind, err)
	}
	size := binary.BigEndian.Uint64(header)
	wantCRC := binary.BigEndian.Uint32(header[8:])
	if size > maxPayloadBytes {
		return nil, fmt.Errorf("nn: %s file corrupt: implausible payload size %d", kind, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("nn: %s file truncated: want %d payload bytes (torn write?): %w", kind, size, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("nn: %s file corrupt: checksum %08x, want %08x", kind, got, wantCRC)
	}
	return payload, nil
}

// Save serializes the network's architecture and weights in the framed
// format: magic, payload length, payload CRC32, gob payload. The frame
// lets Load reject truncated or bit-flipped files with a clear error
// instead of reconstructing garbage weights. Save does not mutate the
// network: saving the same state twice produces identical bytes.
func Save(w io.Writer, net *Network) error {
	var payload bytes.Buffer
	if err := encodeNet(&payload, net); err != nil {
		return err
	}
	return writeFramed(w, fileMagic, payload.Bytes())
}

// snapshotLayer captures one layer without mutating it; the shared
// serialization of the network and checkpoint formats.
func snapshotLayer(l Layer) (snapshot, error) {
	switch v := l.(type) {
	case *Dense:
		return snapshot{Kind: "dense", Ints: []int{v.In, v.Out},
			Floats: [][]float64{append([]float64(nil), v.W.Data...), append([]float64(nil), v.B...)}}, nil
	case *ReLU:
		return snapshot{Kind: "relu", Ints: []int{v.Dim}}, nil
	case *Dropout:
		// (seed, draws) reconstructs the RNG stream position exactly,
		// so a restored layer continues the same dropout sequence.
		return snapshot{Kind: "dropout", Ints: []int{v.Dim},
			Seeds: []int64{v.seed, v.draws}, Floats: [][]float64{{v.P}}}, nil
	case *Conv2D:
		return snapshot{Kind: "conv2d",
			Ints:   []int{v.InC, v.InH, v.InW, v.OutC, v.K, v.Stride, v.Pad},
			Floats: [][]float64{append([]float64(nil), v.W.Data...), append([]float64(nil), v.B...)}}, nil
	case *MaxPool2D:
		return snapshot{Kind: "maxpool2d", Ints: []int{v.C, v.H, v.W, v.Size}}, nil
	case *BatchNorm:
		return snapshot{Kind: "batchnorm", Ints: []int{v.Dim},
			Floats: [][]float64{
				append([]float64(nil), v.Gamma...),
				append([]float64(nil), v.Beta...),
				append([]float64(nil), v.RunMean...),
				append([]float64(nil), v.RunVar...),
				{v.Eps, v.Momentum},
			}}, nil
	default:
		return snapshot{}, fmt.Errorf("nn: cannot serialize layer %T", l)
	}
}

func snapshotNet(net *Network) ([]snapshot, error) {
	out := make([]snapshot, 0, len(net.Layers))
	for _, l := range net.Layers {
		s, err := snapshotLayer(l)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func encodeNet(w io.Writer, net *Network) error {
	layers, err := snapshotNet(net)
	if err != nil {
		return err
	}
	file := netFile{Version: formatVersion, Layers: layers}
	if err := gob.NewEncoder(w).Encode(file); err != nil {
		return fmt.Errorf("nn: encode network: %w", err)
	}
	return nil
}

// Load reconstructs a network saved with Save. Framed files are
// integrity-checked first: a truncated or corrupted file fails with a
// clear error instead of yielding garbage weights. Legacy raw-gob files
// (written before the frame existed) are still accepted.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(fileMagic))
	if err == nil && bytes.Equal(head, fileMagic) {
		payload, err := readFramed(br, fileMagic, "network")
		if err != nil {
			return nil, err
		}
		return decodeNet(bytes.NewReader(payload))
	}
	return decodeNet(br)
}

// atomicWriteFile writes a file crash-safely: the bytes go to a temp
// file in the same directory, are fsynced, and atomically renamed over
// path. A crash mid-save leaves the previous file (or nothing) intact —
// never a torn file.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("nn: create temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("nn: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("nn: close %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil // committed past this point: disable the cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("nn: rename into place: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// not all platforms/filesystems support it.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SaveFile writes the network to path crash-safely (temp file, fsync,
// atomic rename).
func SaveFile(path string, net *Network) error {
	return atomicWriteFile(path, func(w io.Writer) error { return Save(w, net) })
}

// LoadFile reads a network from path with the integrity checks of Load.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open network file: %w", err)
	}
	defer f.Close()
	net, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	return net, nil
}

func decodeNet(r io.Reader) (*Network, error) {
	var file netFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if file.Version != formatVersion {
		return nil, fmt.Errorf("nn: unsupported format version %d", file.Version)
	}
	net := &Network{}
	for i, s := range file.Layers {
		l, err := restoreLayer(s)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}

func restoreLayer(s snapshot) (Layer, error) {
	switch s.Kind {
	case "dense":
		if len(s.Ints) != 2 || len(s.Floats) != 2 {
			return nil, fmt.Errorf("malformed dense snapshot")
		}
		d := NewDense(s.Ints[0], s.Ints[1])
		if len(s.Floats[0]) != len(d.W.Data) || len(s.Floats[1]) != len(d.B) {
			return nil, fmt.Errorf("dense weight size mismatch")
		}
		copy(d.W.Data, s.Floats[0])
		copy(d.B, s.Floats[1])
		return d, nil
	case "relu":
		if len(s.Ints) != 1 {
			return nil, fmt.Errorf("malformed relu snapshot")
		}
		return NewReLU(s.Ints[0]), nil
	case "dropout":
		// One seed is the legacy form (a fresh stream); two is
		// (seed, draws), the exact RNG state for resumable training.
		if len(s.Ints) != 1 || len(s.Seeds) < 1 || len(s.Seeds) > 2 ||
			len(s.Floats) != 1 || len(s.Floats[0]) != 1 {
			return nil, fmt.Errorf("malformed dropout snapshot")
		}
		d := NewDropout(s.Ints[0], s.Floats[0][0], s.Seeds[0])
		if len(s.Seeds) == 2 {
			if s.Seeds[1] < 0 || s.Seeds[1] > 1<<40 {
				return nil, fmt.Errorf("implausible dropout draw count %d", s.Seeds[1])
			}
			d.fastForward(s.Seeds[1])
		}
		return d, nil
	case "conv2d":
		if len(s.Ints) != 7 || len(s.Floats) != 2 {
			return nil, fmt.Errorf("malformed conv2d snapshot")
		}
		c := NewConv2D(s.Ints[0], s.Ints[1], s.Ints[2], s.Ints[3], s.Ints[4], s.Ints[5], s.Ints[6])
		if len(s.Floats[0]) != len(c.W.Data) || len(s.Floats[1]) != len(c.B) {
			return nil, fmt.Errorf("conv2d weight size mismatch")
		}
		copy(c.W.Data, s.Floats[0])
		copy(c.B, s.Floats[1])
		return c, nil
	case "maxpool2d":
		if len(s.Ints) != 4 {
			return nil, fmt.Errorf("malformed maxpool2d snapshot")
		}
		return NewMaxPool2D(s.Ints[0], s.Ints[1], s.Ints[2], s.Ints[3]), nil
	case "batchnorm":
		if len(s.Ints) != 1 || len(s.Floats) != 5 || len(s.Floats[4]) != 2 {
			return nil, fmt.Errorf("malformed batchnorm snapshot")
		}
		bn := NewBatchNorm(s.Ints[0])
		if len(s.Floats[0]) != bn.Dim {
			return nil, fmt.Errorf("batchnorm size mismatch")
		}
		copy(bn.Gamma, s.Floats[0])
		copy(bn.Beta, s.Floats[1])
		copy(bn.RunMean, s.Floats[2])
		copy(bn.RunVar, s.Floats[3])
		bn.Eps, bn.Momentum = s.Floats[4][0], s.Floats[4][1]
		return bn, nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", s.Kind)
	}
}
