package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialized form of one layer: a kind tag plus the
// integer geometry and float payloads needed to reconstruct it.
type snapshot struct {
	Kind   string
	Ints   []int
	Seeds  []int64
	Floats [][]float64
}

const formatVersion = 1

type netFile struct {
	Version int
	Layers  []snapshot
}

// Save serializes the network's architecture and weights.
func Save(w io.Writer, net *Network) error {
	file := netFile{Version: formatVersion}
	for _, l := range net.Layers {
		var s snapshot
		switch v := l.(type) {
		case *Dense:
			s = snapshot{Kind: "dense", Ints: []int{v.In, v.Out},
				Floats: [][]float64{append([]float64(nil), v.W.Data...), append([]float64(nil), v.B...)}}
		case *ReLU:
			s = snapshot{Kind: "relu", Ints: []int{v.Dim}}
		case *Dropout:
			s = snapshot{Kind: "dropout", Ints: []int{v.Dim},
				Seeds: []int64{v.rng.Int63()}, Floats: [][]float64{{v.P}}}
		case *Conv2D:
			s = snapshot{Kind: "conv2d",
				Ints:   []int{v.InC, v.InH, v.InW, v.OutC, v.K, v.Stride, v.Pad},
				Floats: [][]float64{append([]float64(nil), v.W.Data...), append([]float64(nil), v.B...)}}
		case *MaxPool2D:
			s = snapshot{Kind: "maxpool2d", Ints: []int{v.C, v.H, v.W, v.Size}}
		case *BatchNorm:
			s = snapshot{Kind: "batchnorm", Ints: []int{v.Dim},
				Floats: [][]float64{
					append([]float64(nil), v.Gamma...),
					append([]float64(nil), v.Beta...),
					append([]float64(nil), v.RunMean...),
					append([]float64(nil), v.RunVar...),
					{v.Eps, v.Momentum},
				}}
		default:
			return fmt.Errorf("nn: cannot serialize layer %T", l)
		}
		file.Layers = append(file.Layers, s)
	}
	if err := gob.NewEncoder(w).Encode(file); err != nil {
		return fmt.Errorf("nn: encode network: %w", err)
	}
	return nil
}

// Load reconstructs a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var file netFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if file.Version != formatVersion {
		return nil, fmt.Errorf("nn: unsupported format version %d", file.Version)
	}
	net := &Network{}
	for i, s := range file.Layers {
		l, err := restoreLayer(s)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}

func restoreLayer(s snapshot) (Layer, error) {
	switch s.Kind {
	case "dense":
		if len(s.Ints) != 2 || len(s.Floats) != 2 {
			return nil, fmt.Errorf("malformed dense snapshot")
		}
		d := NewDense(s.Ints[0], s.Ints[1])
		if len(s.Floats[0]) != len(d.W.Data) || len(s.Floats[1]) != len(d.B) {
			return nil, fmt.Errorf("dense weight size mismatch")
		}
		copy(d.W.Data, s.Floats[0])
		copy(d.B, s.Floats[1])
		return d, nil
	case "relu":
		if len(s.Ints) != 1 {
			return nil, fmt.Errorf("malformed relu snapshot")
		}
		return NewReLU(s.Ints[0]), nil
	case "dropout":
		if len(s.Ints) != 1 || len(s.Seeds) != 1 || len(s.Floats) != 1 || len(s.Floats[0]) != 1 {
			return nil, fmt.Errorf("malformed dropout snapshot")
		}
		return NewDropout(s.Ints[0], s.Floats[0][0], s.Seeds[0]), nil
	case "conv2d":
		if len(s.Ints) != 7 || len(s.Floats) != 2 {
			return nil, fmt.Errorf("malformed conv2d snapshot")
		}
		c := NewConv2D(s.Ints[0], s.Ints[1], s.Ints[2], s.Ints[3], s.Ints[4], s.Ints[5], s.Ints[6])
		if len(s.Floats[0]) != len(c.W.Data) || len(s.Floats[1]) != len(c.B) {
			return nil, fmt.Errorf("conv2d weight size mismatch")
		}
		copy(c.W.Data, s.Floats[0])
		copy(c.B, s.Floats[1])
		return c, nil
	case "maxpool2d":
		if len(s.Ints) != 4 {
			return nil, fmt.Errorf("malformed maxpool2d snapshot")
		}
		return NewMaxPool2D(s.Ints[0], s.Ints[1], s.Ints[2], s.Ints[3]), nil
	case "batchnorm":
		if len(s.Ints) != 1 || len(s.Floats) != 5 || len(s.Floats[4]) != 2 {
			return nil, fmt.Errorf("malformed batchnorm snapshot")
		}
		bn := NewBatchNorm(s.Ints[0])
		if len(s.Floats[0]) != bn.Dim {
			return nil, fmt.Errorf("batchnorm size mismatch")
		}
		copy(bn.Gamma, s.Floats[0])
		copy(bn.Beta, s.Floats[1])
		copy(bn.RunMean, s.Floats[2])
		copy(bn.RunVar, s.Floats[3])
		bn.Eps, bn.Momentum = s.Floats[4][0], s.Floats[4][1]
		return bn, nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", s.Kind)
	}
}
