package nn

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/tensor"
)

// Benchmarks comparing the tiled fused conv kernel against the
// full-materialization im2col+matmul on the bench CNN's two conv
// shapes. The "fused" sub-benchmark must stay at or below "im2col" —
// this pair is how the direct-stencil formulation was caught being
// ~2x slower before it was replaced (see the fused.go file comment).
func benchConvLayer(b *testing.B, conv *Conv2D) {
	rng := rand.New(rand.NewSource(41))
	net := NewNetwork(conv)
	net.Init(rng)
	x := tensor.NewMatrix(32, conv.InC*conv.InH*conv.InW)
	x.Randomize(rng, 1)
	ar := NewArena()
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ar.Reset()
			conv.forwardInfer(x, ar)
		}
	})
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ar.Reset()
			conv.forwardInferIm2col(x, ar)
		}
	})
}

// forwardInferIm2col is the pre-fusion inference path, kept in the
// bench suite as the comparison baseline.
func (c *Conv2D) forwardInferIm2col(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	oh, ow := c.OutH(), c.OutW()
	out := ar.get(x.Rows, c.OutDim())
	cols := ar.get(c.InC*c.K*c.K, oh*ow)
	prod := ar.get(c.OutC, oh*ow)
	for i := 0; i < x.Rows; i++ {
		if i > 0 && c.Pad > 0 {
			cols.Zero()
		}
		c.im2colIntoBench(x.Row(i), cols)
		tensor.MatMulInto(prod, c.W, cols)
		dst := out.Row(i)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B[oc]
			src := prod.Row(oc)
			base := oc * oh * ow
			for p, v := range src {
				dst[base+p] = v + bias
			}
		}
	}
	return out
}

func (c *Conv2D) im2colIntoBench(sample []float64, cols *tensor.Matrix) {
	oh, ow := c.OutH(), c.OutW()
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				rowIdx := (ch*c.K+ky)*c.K + kx
				dst := cols.Row(rowIdx)
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						continue
					}
					srcRow := chOff + iy*c.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= c.InW {
							continue
						}
						dst[oy*ow+ox] = sample[srcRow+ix]
					}
				}
			}
		}
	}
}

func BenchmarkConvKernel1(b *testing.B) {
	benchConvLayer(b, NewConv2D(16, 16, 16, 24, 3, 1, 1))
}

func BenchmarkConvKernel2(b *testing.B) {
	benchConvLayer(b, NewConv2D(24, 8, 8, 32, 3, 1, 1))
}
