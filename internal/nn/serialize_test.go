package nn

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	net := BuildMLP(4, 8)
	return net
}

// TestSaveFileAtomicRoundTrip writes through the crash-safe path and
// loads the result back.
func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.net")
	net := testNet(t)
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(net.Layers) {
		t.Fatalf("layers = %d, want %d", len(got.Layers), len(net.Layers))
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after SaveFile, want 1", len(entries))
	}
	// Overwriting an existing model also succeeds (rename over target).
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRejectsTornWrite truncates a saved model at every interesting
// boundary and asserts Load fails with a clear error — never returns a
// network reconstructed from partial bytes.
func TestLoadRejectsTornWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cuts := []int{
		len(fileMagic) - 2,                  // inside the magic
		len(fileMagic) + 3,                  // inside the length field
		len(fileMagic) + frameHeaderLen,     // header only, no payload
		len(fileMagic) + frameHeaderLen + 7, // partial payload
		len(full) - 1,                       // one byte short
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(full) {
			t.Fatalf("bad cut %d for file of %d bytes", cut, len(full))
		}
		_, err := Load(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", cut, len(full))
		}
	}
	// Truncations past the header must say so clearly.
	_, err := Load(bytes.NewReader(full[:len(full)-1]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("payload truncation error = %v, want mention of truncation", err)
	}
}

// TestLoadRejectsCorruption flips one payload byte: the checksum must
// catch it before gob sees the bytes.
func TestLoadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	full[len(full)-5] ^= 0x40
	_, err := Load(bytes.NewReader(full))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption error = %v, want checksum mismatch", err)
	}
	// A corrupted length field is caught by the plausibility bound.
	huge := append([]byte(nil), buf.Bytes()...)
	huge[len(fileMagic)] = 0xFF
	_, err = Load(bytes.NewReader(huge))
	if err == nil {
		t.Fatal("implausible payload length accepted")
	}
}

// TestLoadLegacyRawGob: files written before the frame existed are raw
// gob streams and must still load.
func TestLoadLegacyRawGob(t *testing.T) {
	net := testNet(t)
	var framed bytes.Buffer
	if err := Save(&framed, net); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the legacy encoding: the gob payload without frame.
	var legacy bytes.Buffer
	if err := encodeNet(&legacy, net); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(legacy.Bytes(), fileMagic) {
		t.Fatal("legacy gob stream collides with the frame magic")
	}
	got, err := Load(&legacy)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if len(got.Layers) != len(net.Layers) {
		t.Fatalf("legacy layers = %d, want %d", len(got.Layers), len(net.Layers))
	}
}

// TestLoadRejectsWrongVersion: a framed payload with an unknown format
// version is refused after the integrity check.
func TestLoadRejectsWrongVersion(t *testing.T) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(netFile{Version: 99}); err != nil {
		t.Fatal(err)
	}
	_, err := decodeNet(&payload)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want unsupported version", err)
	}
}
