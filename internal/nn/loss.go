package nn

import (
	"math"

	"github.com/golitho/hsd/internal/tensor"
)

// SoftmaxCE computes softmax cross-entropy loss and its gradient for
// binary classification with two logits per row (class 0 = non-hotspot,
// class 1 = hotspot).
//
// BiasEps implements the biased-learning scheme of the hotspot CNN
// literature: non-hotspot targets are relaxed from (1, 0) to
// (1-eps, eps), shifting the learned decision boundary away from the
// hotspot class so that borderline patterns are still flagged. Hotspot
// targets stay hard at (0, 1).
type SoftmaxCE struct {
	// BiasEps in [0, 0.5); 0 disables biased learning.
	BiasEps float64
}

// Loss returns the mean cross-entropy over the batch, the gradient with
// respect to the logits, and the number of correct argmax predictions.
func (l SoftmaxCE) Loss(logits *tensor.Matrix, y []int) (float64, *tensor.Matrix, int) {
	probs := logits.Clone()
	probs.SoftmaxRows()
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	var loss float64
	correct := 0
	invN := 1 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		p := probs.Row(i)
		g := grad.Row(i)
		t0, t1 := 1.0, 0.0
		if y[i] == 1 {
			t0, t1 = 0, 1
		} else if l.BiasEps > 0 {
			t0, t1 = 1-l.BiasEps, l.BiasEps
		}
		loss -= (t0*math.Log(math.Max(p[0], 1e-15)) + t1*math.Log(math.Max(p[1], 1e-15))) * invN
		g[0] = (p[0] - t0) * invN
		g[1] = (p[1] - t1) * invN
		pred := 0
		if p[1] > p[0] {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return loss, grad, correct
}

// Probabilities runs softmax over logits and returns the hotspot-class
// probability of each row.
func Probabilities(logits *tensor.Matrix) []float64 {
	probs := logits.Clone()
	probs.SoftmaxRows()
	out := make([]float64, probs.Rows)
	for i := range out {
		out[i] = probs.At(i, 1)
	}
	return out
}
