package nn

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint captures a training run at an epoch boundary: network
// parameters (including dropout RNG position), optimizer slots and
// decayed learning rate, the completed-epoch count, and the history so
// far. Together with the run's TrainConfig (same data, seed, optimizer
// hyperparameters) it is sufficient to continue training bit-identically
// to an uninterrupted run: the train-loop RNG is not stored because it
// is a pure function of (Seed, Epoch) — resume replays its draw
// sequence. See FitCtx.
type Checkpoint struct {
	// Epoch is the number of fully completed epochs.
	Epoch int
	// Seed is the TrainConfig.Seed of the run; resume refuses a
	// mismatched seed, which would silently break determinism.
	Seed int64
	// History holds the per-epoch stats up to Epoch.
	History []EpochStats

	layers []snapshot
	opt    optState
}

// ckptFile is the gob payload of a checkpoint file.
type ckptFile struct {
	Version int
	Epoch   int
	Seed    int64
	History []EpochStats
	Layers  []snapshot
	Opt     optState
}

// ckptMagic opens the framed checkpoint format; the frame (length +
// CRC32) is shared with network files so torn writes fail loudly.
var ckptMagic = []byte("HSDCKv1\n")

const ckptVersion = 1

// captureCheckpoint snapshots the run without mutating it.
func captureCheckpoint(net *Network, cfg *TrainConfig, epoch int, history []EpochStats) (*Checkpoint, error) {
	layers, err := snapshotNet(net)
	if err != nil {
		return nil, err
	}
	so, ok := cfg.Optimizer.(statefulOptimizer)
	if !ok {
		return nil, fmt.Errorf("nn: optimizer %T does not support checkpointing", cfg.Optimizer)
	}
	return &Checkpoint{
		Epoch:   epoch,
		Seed:    cfg.Seed,
		History: append([]EpochStats(nil), history...),
		layers:  layers,
		opt:     so.captureState(),
	}, nil
}

// apply restores the captured weights into net and the optimizer slots
// into cfg.Optimizer. The network must have the architecture the
// checkpoint was taken from.
func (c *Checkpoint) apply(net *Network, cfg *TrainConfig) error {
	if len(c.layers) != len(net.Layers) {
		return fmt.Errorf("nn: checkpoint has %d layers, network has %d", len(c.layers), len(net.Layers))
	}
	restored := make([]Layer, len(c.layers))
	for i, s := range c.layers {
		l, err := restoreLayer(s)
		if err != nil {
			return fmt.Errorf("nn: checkpoint layer %d: %w", i, err)
		}
		if got, want := l.Name(), net.Layers[i].Name(); got != want {
			return fmt.Errorf("nn: checkpoint layer %d is %s, network has %s", i, got, want)
		}
		restored[i] = l
	}
	copy(net.Layers, restored)
	so, ok := cfg.Optimizer.(statefulOptimizer)
	if !ok {
		return fmt.Errorf("nn: optimizer %T does not support checkpointing", cfg.Optimizer)
	}
	return so.restoreState(c.opt, net.Params())
}

// SaveCheckpoint serializes c in the framed format (magic, length,
// CRC32, gob payload). Like Save, it never mutates the run.
func SaveCheckpoint(w io.Writer, c *Checkpoint) error {
	var payload bytes.Buffer
	file := ckptFile{
		Version: ckptVersion,
		Epoch:   c.Epoch,
		Seed:    c.Seed,
		History: c.History,
		Layers:  c.layers,
		Opt:     c.opt,
	}
	if err := gob.NewEncoder(&payload).Encode(file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return writeFramed(w, ckptMagic, payload.Bytes())
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint,
// rejecting truncated or corrupted files with a clear error.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(ckptMagic))
	if err != nil || !bytes.Equal(head, ckptMagic) {
		return nil, fmt.Errorf("nn: not a checkpoint file (bad magic)")
	}
	payload, err := readFramed(br, ckptMagic, "checkpoint")
	if err != nil {
		return nil, err
	}
	var file ckptFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&file); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if file.Version != ckptVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", file.Version)
	}
	if file.Epoch < 0 || file.Epoch != len(file.History) {
		return nil, fmt.Errorf("nn: checkpoint epoch %d does not match history length %d", file.Epoch, len(file.History))
	}
	return &Checkpoint{
		Epoch:   file.Epoch,
		Seed:    file.Seed,
		History: file.History,
		layers:  file.Layers,
		opt:     file.Opt,
	}, nil
}

// SaveCheckpointFile writes the checkpoint to path crash-safely (temp
// file, fsync, atomic rename) — a crash mid-save leaves any previous
// checkpoint intact.
func SaveCheckpointFile(path string, c *Checkpoint) error {
	return atomicWriteFile(path, func(w io.Writer) error { return SaveCheckpoint(w, c) })
}

// LoadCheckpointFile reads a checkpoint from path with the integrity
// checks of LoadCheckpoint.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	c, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	return c, nil
}

// checkpointPattern matches files written by DirCheckpointer.
const checkpointPattern = "ckpt-*.hsdck"

// checkpointName returns the file name for an epoch's checkpoint.
func checkpointName(epoch int) string { return fmt.Sprintf("ckpt-%06d.hsdck", epoch) }

// LatestCheckpoint scans dir for checkpoint files and returns the most
// recent (highest-epoch) one that loads cleanly, skipping corrupted or
// torn files. The returned error describes every skipped file so a torn
// final checkpoint is visible, not silent; it is nil only when the
// newest file loaded without falling back. When no file loads, the
// checkpoint is nil.
func LatestCheckpoint(dir string) (string, *Checkpoint, error) {
	paths, err := filepath.Glob(filepath.Join(dir, checkpointPattern))
	if err != nil {
		return "", nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	var skipped []error
	for _, p := range paths {
		c, err := LoadCheckpointFile(p)
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		if len(skipped) > 0 {
			return p, c, fmt.Errorf("nn: fell back to %s: %w", p, joinErrs(skipped))
		}
		return p, c, nil
	}
	if len(skipped) > 0 {
		return "", nil, fmt.Errorf("nn: no usable checkpoint in %s: %w", dir, joinErrs(skipped))
	}
	return "", nil, nil
}

func joinErrs(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// Checkpointer receives periodic checkpoints during training.
type Checkpointer interface {
	// SaveCheckpoint persists the checkpoint; an error halts training
	// (a run that silently cannot checkpoint is not crash-tolerant).
	SaveCheckpoint(c *Checkpoint) error
}

// DirCheckpointer writes one file per checkpointed epoch into Dir,
// pruning old files so at most Keep remain. Writes are atomic, so the
// directory always holds complete, verifiable checkpoints.
type DirCheckpointer struct {
	Dir string
	// Keep bounds how many checkpoint files are retained (default 2).
	// At least 2 matters for torn-write recovery: if the newest file is
	// corrupted by a crash mid-rename, resume falls back to the one
	// before it.
	Keep int
	// OnSave, when non-nil, observes each successful save (metrics).
	OnSave func(path string, c *Checkpoint)
}

var _ Checkpointer = (*DirCheckpointer)(nil)

// SaveCheckpoint implements Checkpointer.
func (d *DirCheckpointer) SaveCheckpoint(c *Checkpoint) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("nn: checkpoint dir: %w", err)
	}
	path := filepath.Join(d.Dir, checkpointName(c.Epoch))
	if err := SaveCheckpointFile(path, c); err != nil {
		return err
	}
	keep := d.Keep
	if keep <= 0 {
		keep = 2
	}
	if paths, err := filepath.Glob(filepath.Join(d.Dir, checkpointPattern)); err == nil && len(paths) > keep {
		sort.Strings(paths)
		for _, old := range paths[:len(paths)-keep] {
			os.Remove(old) // best effort: stale checkpoints are harmless
		}
	}
	if d.OnSave != nil {
		d.OnSave(path, c)
	}
	return nil
}
