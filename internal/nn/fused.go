// Fused im2col+matmul convolution: the receptive-field gather is tiled
// through the blocked matmul kernel instead of materializing the full
// column matrix per sample.
//
// Two formulations were implemented and benchmarked on the target box:
//
//   - a direct stencil (taps held in registers, no column matrix at
//     all), including a 3x3 stride-1 specialization with a noinline
//     interior leaf — consistently 1.7-2.2x SLOWER than im2col+matmul
//     on the CNN zoo shapes, because Go's scalar codegen spills the
//     nine taps across the edge-handling calls while the blocked
//     matmul kernel sustains ~2x the MAC throughput;
//   - the tiled im2col+matmul below: gather a band of output rows into
//     a small column tile (bounded working set, every cell written so
//     no per-sample re-zeroing), multiply it with the blocked kernel,
//     scatter with the bias fold. This matches the full-materialization
//     path's throughput while capping the scratch at convTileElems
//     instead of InC*K*K x OutH*OutW.
//
// Bit-identity with Conv2D.Forward (im2col + matmul) holds exactly, not
// approximately: the tile IS the im2col matrix restricted to a column
// band, and every output element is produced by one MatMulInto call
// contracting its full k range in the same ascending (ch, ky, kx) order
// with the same left-associated adds. Column tiling only changes which
// independent elements are computed together, never the term order
// within an element.
//
// The gather is generic over float32/float64: Go stencils a separate
// instantiation per element width, so the float32 tier runs a real
// single-precision pipeline, not a boxed one.

package nn

// floatKind are the element types the fused convolution is stenciled for.
type floatKind interface {
	~float32 | ~float64
}

// convGeom is the geometry a fused convolution needs, precomputed once
// per forward pass.
type convGeom struct {
	inC, inH, inW  int
	outC           int
	k, stride, pad int
	oh, ow         int
}

func (c *Conv2D) geom() convGeom {
	return convGeom{
		inC: c.InC, inH: c.InH, inW: c.InW,
		outC: c.OutC, k: c.K, stride: c.Stride, pad: c.Pad,
		oh: c.OutH(), ow: c.OutW(),
	}
}

// convTileElems bounds the element count of one column tile. 16K
// float64s is 128 KB — small enough that the tile being gathered stays
// cache-resident for the matmul that immediately consumes it, large
// enough that the per-tile matmul still amortizes its setup.
const convTileElems = 16 << 10

// convTileRows picks how many output rows to gather per tile: as many
// as fit the element budget, at least one, never more than the output
// height.
func convTileRows(g convGeom) int {
	klen := g.inC * g.k * g.k
	rows := convTileElems / (klen * g.ow)
	if rows < 1 {
		rows = 1
	}
	if rows > g.oh {
		rows = g.oh
	}
	return rows
}

// validRange returns the contiguous output index range [lo, hi) of outN
// positions whose input coordinate o*stride + k - pad lies inside
// [0, size). Positions outside the range read only zero padding for
// this tap.
func validRange(outN, stride, k, pad, size int) (int, int) {
	lo := 0
	if d := pad - k; d > 0 {
		lo = (d + stride - 1) / stride
	}
	num := size - 1 + pad - k
	if num < 0 {
		return 0, 0
	}
	hi := num/stride + 1
	if hi > outN {
		hi = outN
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// im2colTile gathers output rows [oyA, oyB) of one flattened (C, H, W)
// sample into cols, laid out exactly as the corresponding column band
// of the full im2col matrix: row r = (ch*K+ky)*K+kx, column
// (oy-oyA)*OutW+ox, row-major with stride tp = (oyB-oyA)*OutW. Every
// cell is written — out-of-image taps as explicit zeros — so the buffer
// needs no per-sample reset. Stride-1 interiors reduce to contiguous
// copies.
func im2colTile[F floatKind](g convGeom, sample []F, oyA, oyB int, cols []F) {
	tp := (oyB - oyA) * g.ow
	rowIdx := 0
	for ch := 0; ch < g.inC; ch++ {
		chOff := ch * g.inH * g.inW
		for ky := 0; ky < g.k; ky++ {
			for kx := 0; kx < g.k; kx++ {
				dst := cols[rowIdx*tp : (rowIdx+1)*tp]
				rowIdx++
				ox0, ox1 := validRange(g.ow, g.stride, kx, g.pad, g.inW)
				t := 0
				for oy := oyA; oy < oyB; oy++ {
					drow := dst[t : t+g.ow]
					t += g.ow
					iy := oy*g.stride + ky - g.pad
					if iy < 0 || iy >= g.inH {
						for j := range drow {
							drow[j] = 0
						}
						continue
					}
					src := sample[chOff+iy*g.inW : chOff+(iy+1)*g.inW]
					for j := 0; j < ox0; j++ {
						drow[j] = 0
					}
					if g.stride == 1 {
						copy(drow[ox0:ox1], src[ox0+kx-g.pad:])
					} else {
						for ox := ox0; ox < ox1; ox++ {
							drow[ox] = src[ox*g.stride+kx-g.pad]
						}
					}
					for j := ox1; j < g.ow; j++ {
						drow[j] = 0
					}
				}
			}
		}
	}
}
