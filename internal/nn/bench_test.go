package nn

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/tensor"
)

func benchCNN(b *testing.B) *Network {
	b.Helper()
	net, err := BuildCNN(CNNConfig{InC: 16, InH: 16, InW: 16, Conv1: 16, Conv2: 24, Hidden: 48})
	if err != nil {
		b.Fatal(err)
	}
	net.Init(rand.New(rand.NewSource(1)))
	return net
}

// BenchmarkCNNInference measures single-sample scoring latency, the
// per-window cost of a full-chip scan.
func BenchmarkCNNInference(b *testing.B) {
	net := benchCNN(b)
	x := make([]float64, 16*16*16)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(net, x)
	}
}

// BenchmarkCNNTrainStep measures one minibatch forward+backward+update.
func BenchmarkCNNTrainStep(b *testing.B) {
	net := benchCNN(b)
	rng := rand.New(rand.NewSource(3))
	const bs = 32
	x := tensor.NewMatrix(bs, 16*16*16)
	x.Randomize(rng, 1)
	y := make([]int, bs)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	opt := NewAdam(1e-3)
	loss := SoftmaxCE{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := net.Forward(x, true)
		_, grad, _ := loss.Loss(logits, y)
		net.ZeroGrad()
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func BenchmarkMLPInference(b *testing.B) {
	net := BuildMLP(482, 64, 32)
	net.Init(rand.New(rand.NewSource(4)))
	x := make([]float64, 482)
	rng := rand.New(rand.NewSource(5))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(net, x)
	}
}
