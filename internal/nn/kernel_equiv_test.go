// Kernel equivalence tests for the inference fast path: the fused
// im2col+matmul conv against the training-path Forward (bit-identical),
// and the Compress tiers against the float64 network (float32 within
// rounding, int8 within the quantization tolerance and bit-deterministic
// across batch size and worker count).

package nn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/tensor"
)

// convGeometries covers stride 1 and 2, pad 0/1/2, kernel 1/2/3/5, and
// non-square inputs, including pad >= k (empty stencil interior) and
// single-position outputs.
func convGeometries() []*Conv2D {
	return []*Conv2D{
		NewConv2D(1, 5, 5, 2, 3, 1, 1),
		NewConv2D(3, 8, 8, 4, 3, 1, 1),
		NewConv2D(2, 7, 11, 3, 3, 1, 0), // non-square, no pad
		NewConv2D(2, 9, 6, 3, 3, 2, 1),  // stride 2
		NewConv2D(1, 6, 6, 2, 2, 1, 0),  // even kernel
		NewConv2D(1, 8, 8, 2, 2, 2, 1),
		NewConv2D(2, 9, 9, 2, 5, 1, 2),  // k=5
		NewConv2D(1, 7, 9, 2, 5, 2, 2),  // k=5 stride 2, non-square
		NewConv2D(1, 4, 4, 1, 1, 1, 0),  // pointwise
		NewConv2D(1, 3, 3, 1, 3, 1, 2),  // pad 2 > k-1-pad: edge-heavy
		NewConv2D(1, 3, 3, 1, 3, 1, 0),  // single output position
	}
}

// TestFusedConvMatchesForward: the fused conv kernel is bit-identical to
// the training-path Forward (im2col + blocked matmul) for every geometry
// and batch size. This is the float64 half of the equivalence contract:
// both paths accumulate each output element over ascending (ch, ky, kx)
// with left-associated adds, and skipping the padded zero taps cannot
// flip a bit of a finite sum.
func TestFusedConvMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, conv := range convGeometries() {
		net := NewNetwork(conv)
		net.Init(rng)
		dim := conv.InC * conv.InH * conv.InW
		ar := NewArena()
		for _, rows := range []int{1, 3} {
			x := tensor.NewMatrix(rows, dim)
			x.Randomize(rng, 1)
			want := net.Forward(x, false)
			got := net.ForwardBatch(x, ar)
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%s rows=%d: element %d = %v, want %v (bitwise)",
						conv.Name(), rows, i, got.Data[i], want.Data[i])
				}
			}
			ar.Reset()
		}
	}
}

// TestCompressFloat64IsClone: Float64 "compression" is a plain clone —
// same layer types, bit-identical scores.
func TestCompressFloat64IsClone(t *testing.T) {
	net := testNetworks(t, 32)["cnn-dropout"]
	c, err := Compress(net, Float64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	x := randRows(rng, 5, inDim(net))
	for i := range x {
		a, b := Score(net, x[i]), Score(c, x[i])
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("clone score %d = %v, want %v", i, b, a)
		}
	}
}

// TestCompressFloat32Tolerance: float32 scores track the float64 scores
// within single-precision rounding accumulated over the network depth.
func TestCompressFloat32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for name, net := range testNetworks(t, 33) {
		c, err := Compress(net, Float32)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := randRows(rng, 40, inDim(net))
		for i := range x {
			want := Score(net, x[i])
			got := Score(c, x[i])
			if d := math.Abs(got - want); d > 1e-3 {
				t.Fatalf("%s: clip %d float32 score %v vs float64 %v (|Δ|=%g)", name, i, got, want, d)
			}
		}
	}
}

// TestCompressInt8Tolerance: int8 probability scores stay within the
// quantization tolerance of the float64 scores. This is the statistical
// half of the contract — the registry gate enforces the deployment-level
// version of the same bound on golden-set recall and false-alarm rate.
func TestCompressInt8Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for name, net := range testNetworks(t, 34) {
		c, err := Compress(net, Int8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := randRows(rng, 40, inDim(net))
		var worst, sum float64
		for i := range x {
			d := math.Abs(Score(c, x[i]) - Score(net, x[i]))
			sum += d
			if d > worst {
				worst = d
			}
		}
		mean := sum / float64(len(x))
		t.Logf("%s: int8 score drift worst=%.4f mean=%.4f", name, worst, mean)
		if worst > 0.25 {
			t.Fatalf("%s: worst int8 probability drift %.4f exceeds 0.25", name, worst)
		}
		if mean > 0.05 {
			t.Fatalf("%s: mean int8 probability drift %.4f exceeds 0.05", name, mean)
		}
	}
}

// TestCompressedDeterminism: for both reduced precisions, PredictBatch
// scores are bit-identical across batch size, worker count, and repeated
// runs — float32 by the serial accumulation contract, int8 because
// integer accumulation has no order to vary.
func TestCompressedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for name, net := range testNetworks(t, 35) {
		dim := inDim(net)
		x := randRows(rng, 70, dim)
		for _, p := range []Precision{Float32, Int8} {
			c, err := Compress(net, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p, err)
			}
			want, err := PredictBatch(c, x, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				for _, n := range []int{1, 33, 70} {
					got, err := PredictBatch(c, x[:n], workers)
					if err != nil {
						t.Fatal(err)
					}
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("%s/%s workers=%d n=%d: score %d = %v, want %v (must be deterministic)",
								name, p, workers, n, i, got[i], want[i])
						}
					}
				}
			}
			// Per-sample Score agrees with the batched path bitwise too.
			for i := 0; i < 5; i++ {
				if s := Score(c, x[i]); math.Float64bits(s) != math.Float64bits(want[i]) {
					t.Fatalf("%s/%s: serial score %d = %v, batch %v", name, p, i, s, want[i])
				}
			}
		}
	}
}

// TestCompressedConcurrentSharedPool: compressed networks of both tiers
// scored concurrently from many goroutines through the shared default
// pool; under -race this proves the quantized layers and their arena
// scratch are goroutine-confined.
func TestCompressedConcurrentSharedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	net := testNetworks(t, 36)["cnn-batchnorm"]
	dim := inDim(net)
	x := randRows(rng, 50, dim)
	for _, p := range []Precision{Float32, Int8} {
		c, err := Compress(net, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := PredictBatch(c, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 10)
		for g := 0; g < 10; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got, err := PredictBatch(c, x, 1+g%4)
				if err != nil {
					errs <- err.Error()
					return
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						errs <- fmt.Sprintf("%s: concurrent scores diverged", p)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		if msg, ok := <-errs; ok {
			t.Fatal(msg)
		}
	}
}

// TestCompressedLayersRefuseTraining: every compressed layer panics on
// train-mode Forward and on Backward, and exposes no trainable params.
func TestCompressedLayersRefuseTraining(t *testing.T) {
	net := testNetworks(t, 37)["cnn-dropout"]
	for _, p := range []Precision{Float32, Int8} {
		c, err := Compress(net, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Params(); len(got) != 0 {
			t.Fatalf("%s: compressed network exposes %d trainable params", p, len(got))
		}
		for _, l := range c.Layers {
			switch l.(type) {
			case *DenseF32, *DenseInt8, *Conv2DF32, *Conv2DInt8:
			default:
				continue
			}
			mustPanic(t, l.Name()+" train Forward", func() {
				l.Forward(tensor.NewMatrix(1, 1), true)
			})
			mustPanic(t, l.Name()+" Backward", func() {
				l.Backward(nil)
			})
		}
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestCompressInt8RefusesOversizedContraction: a Dense layer whose
// contraction length exceeds the exact-int32 accumulator bound must be
// refused at compression time, not overflow at serve time.
func TestCompressInt8RefusesOversizedContraction(t *testing.T) {
	net := NewNetwork(NewDense(tensor.MaxInt8DotLen+1, 2))
	_, err := Compress(net, Int8)
	if err == nil {
		t.Fatal("oversized contraction compressed without error")
	}
	if !strings.Contains(err.Error(), "accumulator bound") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same network compresses fine to float32.
	if _, err := Compress(net, Float32); err != nil {
		t.Fatal(err)
	}
}

// TestPredictBatchCtxCancellation: a cancelled context surfaces as an
// error with no partial result.
func TestPredictBatchCtxCancellation(t *testing.T) {
	net := testNetworks(t, 38)["mlp"]
	x := randRows(rand.New(rand.NewSource(38)), 300, inDim(net))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := PredictBatchCtx(ctx, net, x, 2)
	if err == nil {
		t.Fatal("cancelled context returned nil error")
	}
	if got != nil {
		t.Fatal("cancelled context returned a partial result")
	}
}

// TestParsePrecisionRoundTrip: every Precision's String form parses back
// to itself, and junk is rejected.
func TestParsePrecisionRoundTrip(t *testing.T) {
	for _, p := range []Precision{Float64, Float32, Int8} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Fatal("unknown precision accepted")
	}
}
