// Reduced-precision inference: Compress lowers a trained float64
// network into an inference-only copy whose Dense and Conv2D layers run
// float32 or int8 kernels.
//
// The compressed layers are immutable and stateless — they hold only
// converted weights, draw all scratch from the caller's Arena, and
// panic on any training entry point — so a compressed network is
// shareable across goroutines exactly like the float64 batched path.
// Interchange between layers stays float64 (activations widen on the
// way out of each compressed layer), which keeps ReLU, MaxPool2D,
// BatchNorm, and Dropout untouched.
//
// Neither reduced precision is bit-identical to the float64 path:
// deployments opt in per model through the quantization tolerance gate
// (registry.Gate), which bounds golden-set recall and false-alarm drift
// before a compressed network may serve. Int8 scores ARE deterministic
// across batch size and worker count — integer accumulation is exact,
// so there is no order sensitivity to begin with; float32 scores are
// deterministic because the float32 kernels share the serial
// accumulation contract of the float64 ones.

package nn

import (
	"fmt"

	"github.com/golitho/hsd/internal/tensor"
)

// Precision selects the kernel tier a network's inference runs at.
type Precision int

const (
	// Float64 is the training precision; inference is bit-identical to
	// the serial Score path.
	Float64 Precision = iota
	// Float32 halves weight and activation traffic; scores drift within
	// float32 rounding of the float64 path.
	Float32
	// Int8 runs symmetric per-row quantized kernels with exact int32
	// accumulation; scores drift within the quantization tolerance gate.
	Int8
)

// String implements fmt.Stringer; the forms parse back via ParsePrecision.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "fp64", "":
		return Float64, nil
	case "float32", "f32", "fp32":
		return Float32, nil
	case "int8", "i8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("nn: unknown precision %q (want float64, float32, or int8)", s)
}

// Compress returns an inference-only copy of net at precision p. Dense
// and Conv2D layers are lowered to their float32 or int8 twins; layers
// without parameters are cloned unchanged. Float64 returns a plain
// Clone. The input network is never modified, and the returned network
// must not be trained or serialized — it exists to serve.
func Compress(net *Network, p Precision) (*Network, error) {
	if p == Float64 {
		return net.Clone(), nil
	}
	out := &Network{Layers: make([]Layer, len(net.Layers))}
	for i, l := range net.Layers {
		switch t := l.(type) {
		case *Dense:
			switch p {
			case Float32:
				out.Layers[i] = newDenseF32(t)
			case Int8:
				d, err := newDenseInt8(t)
				if err != nil {
					return nil, err
				}
				out.Layers[i] = d
			}
		case *Conv2D:
			switch p {
			case Float32:
				out.Layers[i] = newConv2DF32(t)
			case Int8:
				c, err := newConv2DInt8(t)
				if err != nil {
					return nil, err
				}
				out.Layers[i] = c
			}
		default:
			if _, ok := l.(inferencer); !ok {
				return nil, fmt.Errorf("nn: cannot compress layer %s to %s", l.Name(), p)
			}
			out.Layers[i] = l.Clone()
		}
	}
	return out, nil
}

// panicTrain is the shared guard of the compressed layers' training
// entry points.
func panicTrain(name string) {
	panic(fmt.Sprintf("nn: %s is inference-only; train the float64 network and re-Compress", name))
}

// DenseF32 is the float32 inference twin of Dense: y = widen(f32(x)*W + b).
type DenseF32 struct {
	In, Out int
	W       *tensor.Matrix32 // In x Out
	B       []float32
}

var _ Layer = (*DenseF32)(nil)

func newDenseF32(d *Dense) *DenseF32 {
	b := make([]float32, len(d.B))
	for i, v := range d.B {
		b[i] = float32(v)
	}
	return &DenseF32{In: d.In, Out: d.Out, W: d.W.ToFloat32(), B: b}
}

// Name implements Layer.
func (d *DenseF32) Name() string { return fmt.Sprintf("dense32(%dx%d)", d.In, d.Out) }

// OutDim implements Layer.
func (d *DenseF32) OutDim() int { return d.Out }

// Forward implements Layer; eval mode only.
func (d *DenseF32) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		panicTrain(d.Name())
	}
	return d.forwardInfer(x, NewArena())
}

// Backward implements Layer.
func (d *DenseF32) Backward(*tensor.Matrix) *tensor.Matrix {
	panicTrain(d.Name())
	return nil
}

// Params implements Layer: nothing trainable.
func (d *DenseF32) Params() []*Param { return nil }

// Clone implements Layer. The layer is immutable, so the receiver is
// its own independent copy.
func (d *DenseF32) Clone() Layer { return d }

// forwardInfer implements inferencer: narrow the batch to float32, run
// the float32 matmul, widen the biased result.
func (d *DenseF32) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(d.Name(), d.In, x.Cols)
	x32 := ar.get32(x.Rows, x.Cols)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	y32 := ar.get32(x.Rows, d.Out)
	tensor.ParallelMatMul32Into(y32, x32, d.W)
	out := ar.get(x.Rows, d.Out)
	for i := 0; i < x.Rows; i++ {
		src, dst := y32.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = float64(v + d.B[j])
		}
	}
	return out
}

// DenseInt8 is the int8 inference twin of Dense. Weights are stored
// transposed (Out x In) with one symmetric scale per output; each input
// row is quantized dynamically with its own scale, and the int8 dot
// products accumulate exactly in int32.
type DenseInt8 struct {
	In, Out int
	WT      *tensor.Int8Matrix // Out x In, per-output scales
	B       []float64
}

var _ Layer = (*DenseInt8)(nil)

func newDenseInt8(d *Dense) (*DenseInt8, error) {
	if err := checkInt8DotLen(d.Name(), d.In); err != nil {
		return nil, err
	}
	b := make([]float64, len(d.B))
	copy(b, d.B)
	return &DenseInt8{In: d.In, Out: d.Out, WT: tensor.QuantizeRowsInt8(d.W.Transpose()), B: b}, nil
}

// Name implements Layer.
func (d *DenseInt8) Name() string { return fmt.Sprintf("dense8(%dx%d)", d.In, d.Out) }

// OutDim implements Layer.
func (d *DenseInt8) OutDim() int { return d.Out }

// Forward implements Layer; eval mode only.
func (d *DenseInt8) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		panicTrain(d.Name())
	}
	return d.forwardInfer(x, NewArena())
}

// Backward implements Layer.
func (d *DenseInt8) Backward(*tensor.Matrix) *tensor.Matrix {
	panicTrain(d.Name())
	return nil
}

// Params implements Layer: nothing trainable.
func (d *DenseInt8) Params() []*Param { return nil }

// Clone implements Layer; immutable, see DenseF32.Clone.
func (d *DenseInt8) Clone() Layer { return d }

// forwardInfer implements inferencer.
func (d *DenseInt8) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	checkCols(d.Name(), d.In, x.Cols)
	qx := ar.geti8(1, d.In).Row(0)
	out := ar.get(x.Rows, d.Out)
	for i := 0; i < x.Rows; i++ {
		sx := tensor.QuantizeRowInt8(qx, x.Row(i))
		dst := out.Row(i)
		for j := 0; j < d.Out; j++ {
			dst[j] = sx*d.WT.Scale[j]*float64(tensor.Int8Dot(qx, d.WT.Row(j))) + d.B[j]
		}
	}
	return out
}

// Conv2DF32 is the float32 inference twin of Conv2D, running the fused
// im2col+matmul kernel in single precision.
type Conv2DF32 struct {
	g convGeom
	W *tensor.Matrix32 // OutC x (InC*K*K)
	B []float32
}

var _ Layer = (*Conv2DF32)(nil)

func newConv2DF32(c *Conv2D) *Conv2DF32 {
	b := make([]float32, len(c.B))
	for i, v := range c.B {
		b[i] = float32(v)
	}
	return &Conv2DF32{g: c.geom(), W: c.W.ToFloat32(), B: b}
}

// Name implements Layer.
func (c *Conv2DF32) Name() string {
	return fmt.Sprintf("conv32(%dx%dx%d->%d,k%d)", c.g.inC, c.g.inH, c.g.inW, c.g.outC, c.g.k)
}

// OutDim implements Layer.
func (c *Conv2DF32) OutDim() int { return c.g.outC * c.g.oh * c.g.ow }

// Forward implements Layer; eval mode only.
func (c *Conv2DF32) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		panicTrain(c.Name())
	}
	return c.forwardInfer(x, NewArena())
}

// Backward implements Layer.
func (c *Conv2DF32) Backward(*tensor.Matrix) *tensor.Matrix {
	panicTrain(c.Name())
	return nil
}

// Params implements Layer: nothing trainable.
func (c *Conv2DF32) Params() []*Param { return nil }

// Clone implements Layer; immutable, see DenseF32.Clone.
func (c *Conv2DF32) Clone() Layer { return c }

// forwardInfer implements inferencer: the single-precision instance of
// the tiled fused im2col+matmul kernel (see fused.go), with the batch
// narrowed to float32 on entry and the scores widened on exit.
func (c *Conv2DF32) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	g := c.g
	inLen := g.inC * g.inH * g.inW
	checkCols(c.Name(), inLen, x.Cols)
	out := ar.get(x.Rows, c.OutDim())
	klen := g.inC * g.k * g.k
	rowsPer := convTileRows(g)
	tpMax := rowsPer * g.ow
	s32 := ar.get32(1, inLen).Row(0)
	colsBuf := ar.get32(klen, tpMax)
	prodBuf := ar.get32(g.outC, tpMax)
	positions := g.oh * g.ow
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			s32[j] = float32(v)
		}
		dst := out.Row(i)
		for oyA := 0; oyA < g.oh; oyA += rowsPer {
			oyB := min(oyA+rowsPer, g.oh)
			tp := (oyB - oyA) * g.ow
			cols := tensor.Matrix32{Rows: klen, Cols: tp, Data: colsBuf.Data[:klen*tp]}
			prod := tensor.Matrix32{Rows: g.outC, Cols: tp, Data: prodBuf.Data[:g.outC*tp]}
			im2colTile(g, s32, oyA, oyB, cols.Data)
			tensor.MatMul32Into(&prod, c.W, &cols)
			for oc := 0; oc < g.outC; oc++ {
				bias := c.B[oc]
				base := oc*positions + oyA*g.ow
				for p, v := range prod.Row(oc) {
					dst[base+p] = float64(v + bias)
				}
			}
		}
	}
	return out
}

// Conv2DInt8 is the int8 inference twin of Conv2D: per-output-channel
// weight scales fixed at compression, per-sample dynamic activation
// scale, receptive fields gathered into transposed int8 columns so each
// output element is one contiguous exact-int32 dot product.
type Conv2DInt8 struct {
	g convGeom
	W *tensor.Int8Matrix // OutC x (InC*K*K), per-channel scales
	B []float64
}

var _ Layer = (*Conv2DInt8)(nil)

func newConv2DInt8(c *Conv2D) (*Conv2DInt8, error) {
	if err := checkInt8DotLen(c.Name(), c.W.Cols); err != nil {
		return nil, err
	}
	b := make([]float64, len(c.B))
	copy(b, c.B)
	return &Conv2DInt8{g: c.geom(), W: tensor.QuantizeRowsInt8(c.W), B: b}, nil
}

// Name implements Layer.
func (c *Conv2DInt8) Name() string {
	return fmt.Sprintf("conv8(%dx%dx%d->%d,k%d)", c.g.inC, c.g.inH, c.g.inW, c.g.outC, c.g.k)
}

// OutDim implements Layer.
func (c *Conv2DInt8) OutDim() int { return c.g.outC * c.g.oh * c.g.ow }

// Forward implements Layer; eval mode only.
func (c *Conv2DInt8) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		panicTrain(c.Name())
	}
	return c.forwardInfer(x, NewArena())
}

// Backward implements Layer.
func (c *Conv2DInt8) Backward(*tensor.Matrix) *tensor.Matrix {
	panicTrain(c.Name())
	return nil
}

// Params implements Layer: nothing trainable.
func (c *Conv2DInt8) Params() []*Param { return nil }

// Clone implements Layer; immutable, see DenseF32.Clone.
func (c *Conv2DInt8) Clone() Layer { return c }

// forwardInfer implements inferencer.
func (c *Conv2DInt8) forwardInfer(x *tensor.Matrix, ar *Arena) *tensor.Matrix {
	inLen := c.g.inC * c.g.inH * c.g.inW
	checkCols(c.Name(), inLen, x.Cols)
	klen := c.g.inC * c.g.k * c.g.k
	positions := c.g.oh * c.g.ow
	out := ar.get(x.Rows, c.OutDim())
	qs := ar.geti8(1, inLen).Row(0)
	colsT := ar.geti8(positions, klen)
	for i := 0; i < x.Rows; i++ {
		sx := tensor.QuantizeRowInt8(qs, x.Row(i))
		c.im2colT(qs, colsT)
		dst := out.Row(i)
		for p := 0; p < positions; p++ {
			crow := colsT.Row(p)
			for oc := 0; oc < c.g.outC; oc++ {
				dot := tensor.Int8Dot(c.W.Row(oc), crow)
				dst[oc*positions+p] = sx*c.W.Scale[oc]*float64(dot) + c.B[oc]
			}
		}
	}
	return out
}

// im2colT gathers the quantized sample's receptive fields into colsT,
// one output position per row; every cell is written (out-of-image taps
// as zero codes), so the buffer needs no per-sample reset.
func (c *Conv2DInt8) im2colT(qs []int8, colsT *tensor.Int8Matrix) {
	g := c.g
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			row := colsT.Row(oy*g.ow + ox)
			idx := 0
			for ch := 0; ch < g.inC; ch++ {
				chOff := ch * g.inH * g.inW
				for ky := 0; ky < g.k; ky++ {
					iy := oy*g.stride + ky - g.pad
					rowOff := chOff + iy*g.inW
					for kx := 0; kx < g.k; kx++ {
						ix := ox*g.stride + kx - g.pad
						if iy < 0 || iy >= g.inH || ix < 0 || ix >= g.inW {
							row[idx] = 0
						} else {
							row[idx] = qs[rowOff+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// checkInt8DotLen refuses compression when a layer's contraction length
// exceeds what the exact int32 accumulator can prove safe.
func checkInt8DotLen(name string, n int) error {
	if n > tensor.MaxInt8DotLen {
		return fmt.Errorf("nn: %s contraction length %d exceeds int8 accumulator bound %d", name, n, tensor.MaxInt8DotLen)
	}
	return nil
}
