package nn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/tensor"
	"github.com/golitho/hsd/internal/trace"
)

// TrainEpochSite is the fault-injection site hit at the top of every
// training epoch, so chaos tests can kill a run at a chosen epoch.
const TrainEpochSite = "nn.train.epoch"

// ErrInterrupted marks a run halted by context cancellation (SIGTERM,
// deadline). The returned history is valid up to the halt, and a final
// checkpoint has been cut when a Checkpointer is configured.
var ErrInterrupted = errors.New("nn: training interrupted")

// ErrNonFinite marks a run halted by a NaN or Inf loss or gradient.
// The in-memory network is poisoned, but the last end-of-epoch
// checkpoint was persisted before returning, so no good state is lost.
var ErrNonFinite = errors.New("nn: non-finite loss or gradient")

// TrainConfig parameterizes Trainer.Fit.
type TrainConfig struct {
	// Epochs over the training data (default 10).
	Epochs int
	// BatchSize per gradient step (default 32).
	BatchSize int
	// Optimizer defaults to Adam(1e-3).
	Optimizer Optimizer
	// Loss carries the biased-learning epsilon.
	Loss SoftmaxCE
	// Seed drives weight init and shuffling.
	Seed int64
	// LRStepEvery, when positive, multiplies the optimizer learning rate
	// by LRStepFactor after every LRStepEvery epochs (step decay).
	LRStepEvery  int
	LRStepFactor float64
	// Verbose receives one line per epoch when non-nil.
	Verbose func(format string, args ...any)
	// Clock drives epoch timing (default the wall clock). Injectable so
	// timing-sensitive tests stay deterministic under parallel execution.
	Clock resilience.Clock

	// Checkpointer, when non-nil, persists a checkpoint every
	// CheckpointEvery epochs, after the final epoch, and on any halt
	// (cancellation or non-finite guard). A checkpoint save error halts
	// training: a run that silently cannot checkpoint is not
	// crash-tolerant.
	Checkpointer Checkpointer
	// CheckpointEvery is the persist cadence in epochs (default 1).
	CheckpointEvery int
	// Resume continues a run from a checkpoint instead of epoch 1. The
	// config must match the original run (same data, seed, optimizer
	// hyperparameters, epochs); Seed mismatches are rejected, the rest
	// is the caller's contract. The continuation is bit-identical to an
	// uninterrupted run: weights, optimizer slots, and the dropout RNG
	// come from the checkpoint, and the train-loop RNG is replayed to
	// its position at the checkpoint.
	Resume *Checkpoint
}

// lrScalable is satisfied by optimizers supporting learning-rate decay.
type lrScalable interface{ scaleLR(f float64) }

func (c *TrainConfig) normalize() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Optimizer == nil {
		c.Optimizer = NewAdam(1e-3)
	}
	if c.Clock == nil {
		c.Clock = resilience.Real
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
}

// EpochStats records one epoch of training history.
type EpochStats struct {
	Epoch int
	Loss  float64
	Acc   float64
	// Elapsed is the wall-clock time of this epoch; summing it over the
	// history gives the training-time term reported next to ODST.
	Elapsed time.Duration
}

// Fit trains net in place on X (rows) with labels y, returning the
// per-epoch history. Weights are (re)initialized from the seed.
func Fit(net *Network, x [][]float64, y []int, cfg TrainConfig) ([]EpochStats, error) {
	return FitCtx(context.Background(), net, x, y, cfg)
}

// persistCheckpoint writes c through the configured Checkpointer under
// a train.checkpoint span.
func persistCheckpoint(ctx context.Context, cfg *TrainConfig, c *Checkpoint) error {
	if cfg.Checkpointer == nil || c == nil {
		return nil
	}
	_, sp := trace.Start(ctx, "train.checkpoint")
	sp.SetAttrInt("epoch", c.Epoch)
	err := cfg.Checkpointer.SaveCheckpoint(c)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	if err != nil {
		return fmt.Errorf("nn: checkpoint at epoch %d: %w", c.Epoch, err)
	}
	return nil
}

// nonFiniteGrad reports the first parameter holding a NaN or Inf
// gradient, if any.
func nonFiniteGrad(params []*Param) (int, bool) {
	for i, p := range params {
		for _, g := range p.G.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return i, true
			}
		}
	}
	return 0, false
}

// FitCtx is Fit with cooperative interruption, crash tolerance, and
// resume. Cancellation is observed at epoch boundaries: the run cuts a
// final checkpoint and returns the history so far with ErrInterrupted.
// Non-finite losses or gradients halt the run before the poisoned
// optimizer step, persist the last good end-of-epoch checkpoint, and
// return ErrNonFinite. A run resumed from any of those checkpoints via
// cfg.Resume continues bit-identically to an uninterrupted run.
func FitCtx(ctx context.Context, net *Network, x [][]float64, y []int, cfg TrainConfig) ([]EpochStats, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("nn: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
		if y[i] != 0 && y[i] != 1 {
			return nil, fmt.Errorf("nn: label %d at sample %d (want 0/1)", y[i], i)
		}
	}
	if net.OutDim() != 2 {
		return nil, errors.New("nn: network must end with 2 logits")
	}
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	net.Init(rng)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	shuffle := func() {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	startEpoch := 0
	var history []EpochStats
	// lastGood is the newest end-of-epoch snapshot; halts persist it so
	// an interrupted or NaN-poisoned run never loses completed work.
	var lastGood *Checkpoint
	if cfg.Resume != nil {
		r := cfg.Resume
		if r.Seed != cfg.Seed {
			return nil, fmt.Errorf("nn: checkpoint was taken with seed %d, config has %d", r.Seed, cfg.Seed)
		}
		if r.Epoch > cfg.Epochs {
			return nil, fmt.Errorf("nn: checkpoint is at epoch %d, config trains only %d", r.Epoch, cfg.Epochs)
		}
		if err := r.apply(net, &cfg); err != nil {
			return nil, err
		}
		// Replay the train loop's RNG-dependent state to its position
		// at the checkpoint. Init above consumed the same draws as the
		// original run's Init; replaying the per-epoch shuffles (whose
		// permutations compose across epochs) restores both the RNG
		// stream position and the order slice, so neither needs to be
		// stored in the checkpoint.
		for e := 0; e < r.Epoch; e++ {
			shuffle()
		}
		history = append([]EpochStats(nil), r.History...)
		startEpoch = r.Epoch
		lastGood = r
	}
	for epoch := startEpoch + 1; epoch <= cfg.Epochs; epoch++ {
		if cerr := ctx.Err(); cerr != nil {
			if err := persistCheckpoint(ctx, &cfg, lastGood); err != nil {
				return history, err
			}
			return history, fmt.Errorf("%w before epoch %d: %v", ErrInterrupted, epoch, cerr)
		}
		if err := faultinject.Hit(TrainEpochSite); err != nil {
			// Simulated crash: return immediately with no final
			// checkpoint, exactly what a kill -9 leaves behind.
			return history, err
		}
		epochStart := cfg.Clock.Now()
		shuffle()
		var lossSum float64
		correct, batches := 0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bs := end - start
			xb := tensor.NewMatrix(bs, dim)
			yb := make([]int, bs)
			for i := 0; i < bs; i++ {
				copy(xb.Row(i), x[order[start+i]])
				yb[i] = y[order[start+i]]
			}
			logits := net.Forward(xb, true)
			loss, grad, c := cfg.Loss.Loss(logits, yb)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				if err := persistCheckpoint(ctx, &cfg, lastGood); err != nil {
					return history, err
				}
				return history, fmt.Errorf("%w: loss=%v at epoch %d batch %d%s",
					ErrNonFinite, loss, epoch, batches, lastGoodNote(lastGood))
			}
			net.ZeroGrad()
			net.Backward(grad)
			if pi, bad := nonFiniteGrad(net.Params()); bad {
				if err := persistCheckpoint(ctx, &cfg, lastGood); err != nil {
					return history, err
				}
				return history, fmt.Errorf("%w: gradient of param %d at epoch %d batch %d%s",
					ErrNonFinite, pi, epoch, batches, lastGoodNote(lastGood))
			}
			cfg.Optimizer.Step(net.Params())
			lossSum += loss
			correct += c
			batches++
		}
		st := EpochStats{
			Epoch:   epoch,
			Loss:    lossSum / float64(batches),
			Acc:     float64(correct) / float64(n),
			Elapsed: cfg.Clock.Now().Sub(epochStart),
		}
		history = append(history, st)
		if cfg.Verbose != nil {
			cfg.Verbose("epoch %d: loss=%.4f acc=%.4f time=%v",
				st.Epoch, st.Loss, st.Acc, st.Elapsed.Round(time.Millisecond))
		}
		if cfg.LRStepEvery > 0 && cfg.LRStepFactor > 0 && epoch%cfg.LRStepEvery == 0 {
			if s, ok := cfg.Optimizer.(lrScalable); ok {
				s.scaleLR(cfg.LRStepFactor)
			}
		}
		if cfg.Checkpointer != nil {
			// Capture after the LR step so a resumed optimizer carries
			// the decayed rate, not the pre-decay one.
			c, err := captureCheckpoint(net, &cfg, epoch, history)
			if err != nil {
				return history, err
			}
			lastGood = c
			if epoch%cfg.CheckpointEvery == 0 || epoch == cfg.Epochs {
				if err := persistCheckpoint(ctx, &cfg, c); err != nil {
					return history, err
				}
			}
		}
	}
	return history, nil
}

// lastGoodNote describes the preserved checkpoint in halt errors.
func lastGoodNote(c *Checkpoint) string {
	if c == nil {
		return " (no checkpoint configured)"
	}
	return fmt.Sprintf(" (last good checkpoint: epoch %d)", c.Epoch)
}

// ScoreBatch returns the hotspot probability for each input row.
func ScoreBatch(net *Network, x [][]float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	dim := len(x[0])
	const chunk = 64
	out := make([]float64, 0, len(x))
	for start := 0; start < len(x); start += chunk {
		end := start + chunk
		if end > len(x) {
			end = len(x)
		}
		xb := tensor.NewMatrix(end-start, dim)
		for i := start; i < end; i++ {
			if len(x[i]) != dim {
				return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x[i]), dim)
			}
			copy(xb.Row(i-start), x[i])
		}
		logits := net.Forward(xb, false)
		out = append(out, Probabilities(logits)...)
	}
	return out, nil
}

// Score returns the hotspot probability of a single sample.
func Score(net *Network, x []float64) float64 {
	xb, err := tensor.FromSlice(1, len(x), x)
	if err != nil {
		return 0
	}
	return Probabilities(net.Forward(xb, false))[0]
}

// BuildMLP assembles in -> hidden... -> 2 with ReLU activations, the
// shallow artificial-neural-network baseline.
func BuildMLP(in int, hidden ...int) *Network {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h), NewReLU(h))
		prev = h
	}
	layers = append(layers, NewDense(prev, 2))
	return NewNetwork(layers...)
}

// CNNConfig describes the hotspot CNN topology over a (C, H, W) feature
// tensor input.
type CNNConfig struct {
	InC, InH, InW int
	// Conv1 and Conv2 are output channel counts of the two 3x3 conv
	// stages (each followed by ReLU and 2x2 max pooling).
	Conv1, Conv2 int
	// Hidden is the fully connected width before the 2-logit head.
	Hidden int
	// DropoutP > 0 inserts dropout before the head.
	DropoutP float64
	// BatchNorm inserts batch normalization after each convolution.
	BatchNorm bool
	// Seed drives dropout randomness.
	Seed int64
}

// DefaultCNNConfig mirrors the feature-tensor CNN of the deep hotspot
// detection literature, scaled to the 16x16x16 DCT tensor.
func DefaultCNNConfig(inC, inH, inW int) CNNConfig {
	return CNNConfig{
		InC: inC, InH: inH, InW: inW,
		Conv1: 24, Conv2: 32, Hidden: 64, DropoutP: 0.1,
	}
}

// BuildCNN assembles conv-relu-pool x2 -> dense -> relu -> [dropout] ->
// dense(2). Input height/width must be divisible by 4.
func BuildCNN(cfg CNNConfig) (*Network, error) {
	if cfg.InH%4 != 0 || cfg.InW%4 != 0 {
		return nil, fmt.Errorf("nn: CNN input %dx%d must be divisible by 4", cfg.InH, cfg.InW)
	}
	if cfg.InC <= 0 || cfg.Conv1 <= 0 || cfg.Conv2 <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("nn: CNN config has nonpositive sizes: %+v", cfg)
	}
	conv1 := NewConv2D(cfg.InC, cfg.InH, cfg.InW, cfg.Conv1, 3, 1, 1)
	pool1 := NewMaxPool2D(cfg.Conv1, cfg.InH, cfg.InW, 2)
	h2, w2 := cfg.InH/2, cfg.InW/2
	conv2 := NewConv2D(cfg.Conv1, h2, w2, cfg.Conv2, 3, 1, 1)
	pool2 := NewMaxPool2D(cfg.Conv2, h2, w2, 2)
	flat := cfg.Conv2 * (h2 / 2) * (w2 / 2)
	layers := []Layer{conv1}
	if cfg.BatchNorm {
		layers = append(layers, NewBatchNorm(conv1.OutDim()))
	}
	layers = append(layers, NewReLU(conv1.OutDim()), pool1, conv2)
	if cfg.BatchNorm {
		layers = append(layers, NewBatchNorm(conv2.OutDim()))
	}
	layers = append(layers,
		NewReLU(conv2.OutDim()), pool2,
		NewDense(flat, cfg.Hidden), NewReLU(cfg.Hidden),
	)
	if cfg.DropoutP > 0 {
		layers = append(layers, NewDropout(cfg.Hidden, cfg.DropoutP, cfg.Seed+99))
	}
	layers = append(layers, NewDense(cfg.Hidden, 2))
	return NewNetwork(layers...), nil
}
