package nn

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/tensor"
)

// TrainConfig parameterizes Trainer.Fit.
type TrainConfig struct {
	// Epochs over the training data (default 10).
	Epochs int
	// BatchSize per gradient step (default 32).
	BatchSize int
	// Optimizer defaults to Adam(1e-3).
	Optimizer Optimizer
	// Loss carries the biased-learning epsilon.
	Loss SoftmaxCE
	// Seed drives weight init and shuffling.
	Seed int64
	// LRStepEvery, when positive, multiplies the optimizer learning rate
	// by LRStepFactor after every LRStepEvery epochs (step decay).
	LRStepEvery  int
	LRStepFactor float64
	// Verbose receives one line per epoch when non-nil.
	Verbose func(format string, args ...any)
	// Clock drives epoch timing (default the wall clock). Injectable so
	// timing-sensitive tests stay deterministic under parallel execution.
	Clock resilience.Clock
}

// lrScalable is satisfied by optimizers supporting learning-rate decay.
type lrScalable interface{ scaleLR(f float64) }

func (c *TrainConfig) normalize() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Optimizer == nil {
		c.Optimizer = NewAdam(1e-3)
	}
	if c.Clock == nil {
		c.Clock = resilience.Real
	}
}

// EpochStats records one epoch of training history.
type EpochStats struct {
	Epoch int
	Loss  float64
	Acc   float64
	// Elapsed is the wall-clock time of this epoch; summing it over the
	// history gives the training-time term reported next to ODST.
	Elapsed time.Duration
}

// Fit trains net in place on X (rows) with labels y, returning the
// per-epoch history. Weights are (re)initialized from the seed.
func Fit(net *Network, x [][]float64, y []int, cfg TrainConfig) ([]EpochStats, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("nn: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
		if y[i] != 0 && y[i] != 1 {
			return nil, fmt.Errorf("nn: label %d at sample %d (want 0/1)", y[i], i)
		}
	}
	if net.OutDim() != 2 {
		return nil, errors.New("nn: network must end with 2 logits")
	}
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	net.Init(rng)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		epochStart := cfg.Clock.Now()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		correct, batches := 0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bs := end - start
			xb := tensor.NewMatrix(bs, dim)
			yb := make([]int, bs)
			for i := 0; i < bs; i++ {
				copy(xb.Row(i), x[order[start+i]])
				yb[i] = y[order[start+i]]
			}
			logits := net.Forward(xb, true)
			loss, grad, c := cfg.Loss.Loss(logits, yb)
			net.ZeroGrad()
			net.Backward(grad)
			cfg.Optimizer.Step(net.Params())
			lossSum += loss
			correct += c
			batches++
		}
		st := EpochStats{
			Epoch:   epoch,
			Loss:    lossSum / float64(batches),
			Acc:     float64(correct) / float64(n),
			Elapsed: cfg.Clock.Now().Sub(epochStart),
		}
		history = append(history, st)
		if cfg.Verbose != nil {
			cfg.Verbose("epoch %d: loss=%.4f acc=%.4f time=%v",
				st.Epoch, st.Loss, st.Acc, st.Elapsed.Round(time.Millisecond))
		}
		if cfg.LRStepEvery > 0 && cfg.LRStepFactor > 0 && epoch%cfg.LRStepEvery == 0 {
			if s, ok := cfg.Optimizer.(lrScalable); ok {
				s.scaleLR(cfg.LRStepFactor)
			}
		}
	}
	return history, nil
}

// ScoreBatch returns the hotspot probability for each input row.
func ScoreBatch(net *Network, x [][]float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	dim := len(x[0])
	const chunk = 64
	out := make([]float64, 0, len(x))
	for start := 0; start < len(x); start += chunk {
		end := start + chunk
		if end > len(x) {
			end = len(x)
		}
		xb := tensor.NewMatrix(end-start, dim)
		for i := start; i < end; i++ {
			if len(x[i]) != dim {
				return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x[i]), dim)
			}
			copy(xb.Row(i-start), x[i])
		}
		logits := net.Forward(xb, false)
		out = append(out, Probabilities(logits)...)
	}
	return out, nil
}

// Score returns the hotspot probability of a single sample.
func Score(net *Network, x []float64) float64 {
	xb, err := tensor.FromSlice(1, len(x), x)
	if err != nil {
		return 0
	}
	return Probabilities(net.Forward(xb, false))[0]
}

// BuildMLP assembles in -> hidden... -> 2 with ReLU activations, the
// shallow artificial-neural-network baseline.
func BuildMLP(in int, hidden ...int) *Network {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h), NewReLU(h))
		prev = h
	}
	layers = append(layers, NewDense(prev, 2))
	return NewNetwork(layers...)
}

// CNNConfig describes the hotspot CNN topology over a (C, H, W) feature
// tensor input.
type CNNConfig struct {
	InC, InH, InW int
	// Conv1 and Conv2 are output channel counts of the two 3x3 conv
	// stages (each followed by ReLU and 2x2 max pooling).
	Conv1, Conv2 int
	// Hidden is the fully connected width before the 2-logit head.
	Hidden int
	// DropoutP > 0 inserts dropout before the head.
	DropoutP float64
	// BatchNorm inserts batch normalization after each convolution.
	BatchNorm bool
	// Seed drives dropout randomness.
	Seed int64
}

// DefaultCNNConfig mirrors the feature-tensor CNN of the deep hotspot
// detection literature, scaled to the 16x16x16 DCT tensor.
func DefaultCNNConfig(inC, inH, inW int) CNNConfig {
	return CNNConfig{
		InC: inC, InH: inH, InW: inW,
		Conv1: 24, Conv2: 32, Hidden: 64, DropoutP: 0.1,
	}
}

// BuildCNN assembles conv-relu-pool x2 -> dense -> relu -> [dropout] ->
// dense(2). Input height/width must be divisible by 4.
func BuildCNN(cfg CNNConfig) (*Network, error) {
	if cfg.InH%4 != 0 || cfg.InW%4 != 0 {
		return nil, fmt.Errorf("nn: CNN input %dx%d must be divisible by 4", cfg.InH, cfg.InW)
	}
	if cfg.InC <= 0 || cfg.Conv1 <= 0 || cfg.Conv2 <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("nn: CNN config has nonpositive sizes: %+v", cfg)
	}
	conv1 := NewConv2D(cfg.InC, cfg.InH, cfg.InW, cfg.Conv1, 3, 1, 1)
	pool1 := NewMaxPool2D(cfg.Conv1, cfg.InH, cfg.InW, 2)
	h2, w2 := cfg.InH/2, cfg.InW/2
	conv2 := NewConv2D(cfg.Conv1, h2, w2, cfg.Conv2, 3, 1, 1)
	pool2 := NewMaxPool2D(cfg.Conv2, h2, w2, 2)
	flat := cfg.Conv2 * (h2 / 2) * (w2 / 2)
	layers := []Layer{conv1}
	if cfg.BatchNorm {
		layers = append(layers, NewBatchNorm(conv1.OutDim()))
	}
	layers = append(layers, NewReLU(conv1.OutDim()), pool1, conv2)
	if cfg.BatchNorm {
		layers = append(layers, NewBatchNorm(conv2.OutDim()))
	}
	layers = append(layers,
		NewReLU(conv2.OutDim()), pool2,
		NewDense(flat, cfg.Hidden), NewReLU(cfg.Hidden),
	)
	if cfg.DropoutP > 0 {
		layers = append(layers, NewDropout(cfg.Hidden, cfg.DropoutP, cfg.Seed+99))
	}
	layers = append(layers, NewDense(cfg.Hidden, 2))
	return NewNetwork(layers...), nil
}
