package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/golitho/hsd/internal/tensor"
)

// Conv2D is a 2-D convolution over (C, H, W) channel-major flattened rows.
type Conv2D struct {
	InC, InH, InW  int
	OutC           int
	K, Stride, Pad int

	W *tensor.Matrix // OutC x (InC*K*K)
	B []float64

	gw   *tensor.Matrix
	gb   []float64
	cols []*tensor.Matrix // per-sample im2col cache
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution layer. It panics when the geometry
// does not produce a positive output size (a wiring error).
func NewConv2D(inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		W:  tensor.NewMatrix(outC, inC*k*k),
		B:  make([]float64, outC),
		gw: tensor.NewMatrix(outC, inC*k*k),
		gb: make([]float64, outC),
	}
	if c.OutH() <= 0 || c.OutW() <= 0 {
		panic(fmt.Sprintf("nn: conv %dx%dx%d k=%d s=%d p=%d yields empty output",
			inC, inH, inW, k, stride, pad))
	}
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.InH+2*c.Pad-c.K)/c.Stride + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.InW+2*c.Pad-c.K)/c.Stride + 1 }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d->%d,k%d)", c.InC, c.InH, c.InW, c.OutC, c.K)
}

// OutDim implements Layer.
func (c *Conv2D) OutDim() int { return c.OutC * c.OutH() * c.OutW() }

func (c *Conv2D) init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.K * c.K)
	c.W.Randomize(rng, math.Sqrt(2/fanIn))
	for i := range c.B {
		c.B[i] = 0
	}
}

// im2col unrolls one flattened sample into a (InC*K*K) x (OutH*OutW)
// matrix whose columns are receptive fields.
func (c *Conv2D) im2col(sample []float64) *tensor.Matrix {
	oh, ow := c.OutH(), c.OutW()
	cols := tensor.NewMatrix(c.InC*c.K*c.K, oh*ow)
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				rowIdx := (ch*c.K+ky)*c.K + kx
				dst := cols.Row(rowIdx)
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						continue
					}
					srcRow := chOff + iy*c.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= c.InW {
							continue
						}
						dst[oy*ow+ox] = sample[srcRow+ix]
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters column gradients back into a flattened sample gradient.
func (c *Conv2D) col2im(cols *tensor.Matrix, dst []float64) {
	oh, ow := c.OutH(), c.OutW()
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				rowIdx := (ch*c.K+ky)*c.K + kx
				src := cols.Row(rowIdx)
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						continue
					}
					dstRow := chOff + iy*c.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= c.InW {
							continue
						}
						dst[dstRow+ix] += src[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(c.Name(), c.InC*c.InH*c.InW, x.Cols)
	oh, ow := c.OutH(), c.OutW()
	out := tensor.NewMatrix(x.Rows, c.OutDim())
	if train {
		c.cols = make([]*tensor.Matrix, x.Rows)
	} else {
		c.cols = nil
	}
	prod := tensor.NewMatrix(c.OutC, oh*ow)
	for i := 0; i < x.Rows; i++ {
		cols := c.im2col(x.Row(i))
		if train {
			c.cols[i] = cols
		}
		tensor.MatMulInto(prod, c.W, cols)
		dst := out.Row(i)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B[oc]
			src := prod.Row(oc)
			base := oc * oh * ow
			for p, v := range src {
				dst[base+p] = v + bias
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if c.cols == nil {
		panic("nn: Conv2D.Backward without training Forward")
	}
	oh, ow := c.OutH(), c.OutW()
	dx := tensor.NewMatrix(grad.Rows, c.InC*c.InH*c.InW)
	gradSample := tensor.NewMatrix(c.OutC, oh*ow)
	wT := c.W.Transpose()
	dcols := tensor.NewMatrix(c.W.Cols, oh*ow)
	gwPart := tensor.NewMatrix(c.OutC, c.W.Cols)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		for oc := 0; oc < c.OutC; oc++ {
			src := g[oc*oh*ow : (oc+1)*oh*ow]
			copy(gradSample.Row(oc), src)
			var s float64
			for _, v := range src {
				s += v
			}
			c.gb[oc] += s
		}
		// dW += gradSample * cols^T
		tensor.MatMulInto(gwPart, gradSample, c.cols[i].Transpose())
		if err := tensor.Axpy(1, gwPart, c.gw); err != nil {
			panic(err)
		}
		// dCols = W^T * gradSample; scatter back.
		tensor.MatMulInto(dcols, wT, gradSample)
		c.col2im(dcols, dx.Row(i))
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	gbm, _ := tensor.FromSlice(1, c.OutC, c.gb)
	bm, _ := tensor.FromSlice(1, c.OutC, c.B)
	return []*Param{{W: c.W, G: c.gw}, {W: bm, G: gbm}}
}

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	out := NewConv2D(c.InC, c.InH, c.InW, c.OutC, c.K, c.Stride, c.Pad)
	copy(out.W.Data, c.W.Data)
	copy(out.B, c.B)
	return out
}

// MaxPool2D is a non-overlapping max pool over (C, H, W) rows.
type MaxPool2D struct {
	C, H, W int
	Size    int

	argmax [][]int // per sample, per output element: input index
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a pool layer; H and W must be divisible by size.
func NewMaxPool2D(c, h, w, size int) *MaxPool2D {
	if size <= 0 || h%size != 0 || w%size != 0 {
		panic(fmt.Sprintf("nn: maxpool %dx%d not divisible by %d", h, w, size))
	}
	return &MaxPool2D{C: c, H: h, W: w, Size: size}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%d)", m.Size) }

// OutDim implements Layer.
func (m *MaxPool2D) OutDim() int { return m.C * (m.H / m.Size) * (m.W / m.Size) }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(m.Name(), m.C*m.H*m.W, x.Cols)
	oh, ow := m.H/m.Size, m.W/m.Size
	out := tensor.NewMatrix(x.Rows, m.OutDim())
	if train {
		m.argmax = make([][]int, x.Rows)
	} else {
		m.argmax = nil
	}
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := out.Row(i)
		var am []int
		if train {
			am = make([]int, m.OutDim())
			m.argmax[i] = am
		}
		for ch := 0; ch < m.C; ch++ {
			chOff := ch * m.H * m.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for dy := 0; dy < m.Size; dy++ {
						row := chOff + (oy*m.Size+dy)*m.W
						for dx := 0; dx < m.Size; dx++ {
							idx := row + ox*m.Size + dx
							if src[idx] > best {
								best = src[idx]
								bestIdx = idx
							}
						}
					}
					o := (ch*oh+oy)*ow + ox
					dst[o] = best
					if train {
						am[o] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if m.argmax == nil {
		panic("nn: MaxPool2D.Backward without training Forward")
	}
	dx := tensor.NewMatrix(grad.Rows, m.C*m.H*m.W)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		d := dx.Row(i)
		for o, idx := range m.argmax[i] {
			d[idx] += g[o]
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (m *MaxPool2D) Clone() Layer { return NewMaxPool2D(m.C, m.H, m.W, m.Size) }
