package nn

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/tensor"
)

// testNetworks builds one of each supported architecture, initialized
// and (for batchnorm) warmed with a training step so running statistics
// are non-trivial.
func testNetworks(t *testing.T, seed int64) map[string]*Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mlp := BuildMLP(37, 16, 8)
	mlp.Init(rng)

	cnn, err := BuildCNN(CNNConfig{InC: 3, InH: 8, InW: 8, Conv1: 4, Conv2: 6, Hidden: 10, DropoutP: 0.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cnn.Init(rng)

	bn, err := BuildCNN(CNNConfig{InC: 2, InH: 8, InW: 8, Conv1: 3, Conv2: 4, Hidden: 8, BatchNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	bn.Init(rng)
	// One training forward so BatchNorm running stats move off their
	// initial values before the inference paths are compared.
	warm := tensor.NewMatrix(6, 2*8*8)
	warm.Randomize(rng, 1)
	bn.Forward(warm, true)

	return map[string]*Network{"mlp": mlp, "cnn-dropout": cnn, "cnn-batchnorm": bn}
}

func randRows(rng *rand.Rand, n, dim int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

func inDim(net *Network) int {
	switch l := net.Layers[0].(type) {
	case *Dense:
		return l.In
	case *Conv2D:
		return l.InC * l.InH * l.InW
	}
	return 0
}

// TestForwardBatchMatchesForward: the arena inference path reproduces
// the eval-mode Forward output exactly for every architecture and for
// batch sizes around the chunking boundaries.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for name, net := range testNetworks(t, 21) {
		dim := inDim(net)
		ar := NewArena()
		for _, rows := range []int{1, 2, 5, 31, 32, 33} {
			x := tensor.NewMatrix(rows, dim)
			x.Randomize(rng, 1)
			want := net.Forward(x, false)
			got := net.ForwardBatch(x, ar)
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("%s rows=%d: shape %dx%d, want %dx%d", name, rows, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s rows=%d: logit %d = %v, want %v", name, rows, i, got.Data[i], want.Data[i])
				}
			}
			ar.Reset()
		}
	}
}

// TestPredictBatchMatchesSerial: PredictBatch equals the per-sample
// serial Score path within 1e-9 (observed: exactly) across randomized
// batch sizes, worker counts, and GOMAXPROCS settings.
func TestPredictBatchMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(22))
	nets := testNetworks(t, 22)
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		for name, net := range nets {
			dim := inDim(net)
			for _, n := range []int{1, 3, 32, 33, 64, 97} {
				x := randRows(rng, n, dim)
				want := make([]float64, n)
				for i := range x {
					want[i] = Score(net, x[i])
				}
				for _, workers := range []int{1, 2, runtime.NumCPU()} {
					got, err := PredictBatch(net, x, workers)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != n {
						t.Fatalf("%s: got %d scores, want %d", name, len(got), n)
					}
					for i := range want {
						d := got[i] - want[i]
						if d < -1e-9 || d > 1e-9 {
							t.Fatalf("GOMAXPROCS=%d %s n=%d workers=%d: score %d = %v, want %v",
								procs, name, n, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestPredictBatchValidation covers the error paths.
func TestPredictBatchValidation(t *testing.T) {
	net := BuildMLP(4, 3)
	net.Init(rand.New(rand.NewSource(1)))
	if got, err := PredictBatch(net, nil, 0); err != nil || got != nil {
		t.Fatalf("empty input: %v, %v", got, err)
	}
	if _, err := PredictBatch(net, [][]float64{{1, 2, 3, 4}, {1, 2}}, 0); err == nil {
		t.Fatal("ragged input accepted")
	}
	oneLogit := NewNetwork(NewDense(4, 1))
	if _, err := PredictBatch(oneLogit, [][]float64{{1, 2, 3, 4}}, 0); err == nil {
		t.Fatal("1-logit head accepted")
	}
}

// TestPredictBatchConcurrentSharedNet: one shared (never cloned) network
// scored from many goroutines at once; under -race this proves the
// arena inference path is read-only on the network and that pooled
// arenas are never shared between workers.
func TestPredictBatchConcurrentSharedNet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := testNetworks(t, 23)["cnn-batchnorm"]
	dim := inDim(net)
	x := randRows(rng, 70, dim)
	want, err := PredictBatch(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := PredictBatch(net, x, 1+g%4)
			if err != nil {
				errs <- err.Error()
				return
			}
			for i := range want {
				if got[i] != want[i] {
					errs <- "concurrent scores diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestArenaReuse: the cursor discipline reuses buffers of sufficient
// capacity, grows undersized slots, and zeroes everything it returns.
func TestArenaReuse(t *testing.T) {
	ar := NewArena()
	a := ar.get(4, 8)
	b := ar.get(2, 2)
	a.Data[0], b.Data[0] = 7, 7
	ar.Reset()
	a2 := ar.get(4, 8)
	if &a2.Data[0] != &a.Data[0] {
		t.Fatal("equal-size buffer was not reused after Reset")
	}
	if a2.Data[0] != 0 {
		t.Fatal("reused buffer not zeroed")
	}
	// Smaller request reuses the same backing array.
	ar.Reset()
	small := ar.get(2, 3)
	if &small.Data[0] != &a.Data[0] || small.Rows != 2 || small.Cols != 3 {
		t.Fatalf("smaller request did not reuse slot: %dx%d", small.Rows, small.Cols)
	}
	// Larger request replaces the slot.
	ar.Reset()
	big := ar.get(10, 10)
	if &big.Data[0] == &a.Data[0] {
		t.Fatal("oversized request reused an undersized buffer")
	}
	if len(big.Data) != 100 {
		t.Fatalf("big buffer len = %d", len(big.Data))
	}
}
