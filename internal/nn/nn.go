// Package nn is a from-scratch neural-network framework sized for
// hotspot detection: dense and convolutional layers over float64
// minibatches, softmax cross-entropy with the biased-learning variant of
// the hotspot literature, SGD/Adam optimizers, and gob serialization.
//
// Batches are tensor.Matrix values with one flattened sample per row.
// Convolutional layers interpret rows in (C, H, W) channel-major order,
// matching the feature-tensor layout produced by the features package.
//
// Layers carry per-batch caches for backpropagation, so a Network is NOT
// safe for concurrent use; Clone one network per goroutine instead.
package nn

import (
	"fmt"
	"math/rand"

	"github.com/golitho/hsd/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	W, G *tensor.Matrix
}

// Layer is one differentiable network stage.
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	// OutDim is the flattened output width given the configured input.
	OutDim() int
	// Forward consumes a batch (one sample per row) and returns the
	// layer output. When train is true the layer caches what Backward
	// needs.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters (nil when none).
	Params() []*Param
	// Clone returns an independent copy sharing no mutable state.
	Clone() Layer
}

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// OutDim returns the output width of the final layer.
func (n *Network) OutDim() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[len(n.Layers)-1].OutDim()
}

// Forward runs the whole stack.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs backpropagation from the loss gradient.
func (n *Network) Backward(grad *tensor.Matrix) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params collects every trainable parameter in the stack.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// Clone returns a deep copy safe for concurrent inference.
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// Init (re)initializes all parameters with He-style scaling from rng.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.Layers {
		if init, ok := l.(interface{ init(*rand.Rand) }); ok {
			init.init(rng)
		}
	}
}

// checkCols panics with a clear message on a layer input-width mismatch;
// this is a programming error (wrong architecture wiring), not runtime
// input, so panicking is appropriate.
func checkCols(layer string, want, got int) {
	if want != got {
		panic(fmt.Sprintf("nn: %s expects input width %d, got %d", layer, want, got))
	}
}
