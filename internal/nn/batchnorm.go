package nn

import (
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/tensor"
)

// BatchNorm is per-feature batch normalization with learned scale and
// shift. Training batches update running statistics used at inference.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64 // running-stat update rate, default 0.1

	Gamma, Beta []float64
	// Running statistics for inference.
	RunMean, RunVar []float64

	gGamma, gBeta []float64
	// Per-batch caches.
	xhat   *tensor.Matrix
	invStd []float64
	xmu    *tensor.Matrix
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm constructs a batch-norm layer over vectors of width dim.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim: dim, Eps: 1e-5, Momentum: 0.1,
		Gamma: make([]float64, dim), Beta: make([]float64, dim),
		RunMean: make([]float64, dim), RunVar: make([]float64, dim),
		gGamma: make([]float64, dim), gBeta: make([]float64, dim),
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("batchnorm(%d)", b.Dim) }

// OutDim implements Layer.
func (b *BatchNorm) OutDim() int { return b.Dim }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	checkCols(b.Name(), b.Dim, x.Cols)
	out := tensor.NewMatrix(x.Rows, x.Cols)
	if !train {
		for i := 0; i < x.Rows; i++ {
			src, dst := x.Row(i), out.Row(i)
			for j := range src {
				xhat := (src[j] - b.RunMean[j]) / math.Sqrt(b.RunVar[j]+b.Eps)
				dst[j] = b.Gamma[j]*xhat + b.Beta[j]
			}
		}
		b.xhat = nil
		return out
	}
	n := float64(x.Rows)
	mean := make([]float64, b.Dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	variance := make([]float64, b.Dim)
	b.xmu = tensor.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		xmu := b.xmu.Row(i)
		for j, v := range row {
			d := v - mean[j]
			xmu[j] = d
			variance[j] += d * d
		}
	}
	b.invStd = make([]float64, b.Dim)
	for j := range variance {
		variance[j] /= n
		b.invStd[j] = 1 / math.Sqrt(variance[j]+b.Eps)
	}
	b.xhat = tensor.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		xmu := b.xmu.Row(i)
		xh := b.xhat.Row(i)
		dst := out.Row(i)
		for j := range xmu {
			xh[j] = xmu[j] * b.invStd[j]
			dst[j] = b.Gamma[j]*xh[j] + b.Beta[j]
		}
	}
	m := b.Momentum
	for j := range mean {
		b.RunMean[j] = (1-m)*b.RunMean[j] + m*mean[j]
		b.RunVar[j] = (1-m)*b.RunVar[j] + m*variance[j]
	}
	return out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if b.xhat == nil {
		panic("nn: BatchNorm.Backward without training Forward")
	}
	n := float64(grad.Rows)
	// dgamma, dbeta, and the two reduction terms of the dx formula.
	sumDy := make([]float64, b.Dim)
	sumDyXhat := make([]float64, b.Dim)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.xhat.Row(i)
		for j := range g {
			sumDy[j] += g[j]
			sumDyXhat[j] += g[j] * xh[j]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.gGamma[j] += sumDyXhat[j]
		b.gBeta[j] += sumDy[j]
	}
	dx := tensor.NewMatrix(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.xhat.Row(i)
		d := dx.Row(i)
		for j := range g {
			// dx = gamma*invStd/N * (N*dy - sum(dy) - xhat*sum(dy*xhat))
			d[j] = b.Gamma[j] * b.invStd[j] / n *
				(n*g[j] - sumDy[j] - xh[j]*sumDyXhat[j])
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param {
	gm, _ := tensor.FromSlice(1, b.Dim, b.Gamma)
	gg, _ := tensor.FromSlice(1, b.Dim, b.gGamma)
	bm, _ := tensor.FromSlice(1, b.Dim, b.Beta)
	gb, _ := tensor.FromSlice(1, b.Dim, b.gBeta)
	return []*Param{{W: gm, G: gg}, {W: bm, G: gb}}
}

// Clone implements Layer.
func (b *BatchNorm) Clone() Layer {
	out := NewBatchNorm(b.Dim)
	out.Eps, out.Momentum = b.Eps, b.Momentum
	copy(out.Gamma, b.Gamma)
	copy(out.Beta, b.Beta)
	copy(out.RunMean, b.RunMean)
	copy(out.RunVar, b.RunVar)
	return out
}
