package datengine

import (
	"math/rand"
	"testing"
)

func TestKCenterBasics(t *testing.T) {
	if got := SelectKCenter(nil, 3); got != nil {
		t.Fatalf("empty input selected %v", got)
	}
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	if got := SelectKCenter(pts, 0); got != nil {
		t.Fatalf("k=0 selected %v", got)
	}
	got := SelectKCenter(pts, 5)
	if len(got) != 3 {
		t.Fatalf("k>n selected %d points, want all 3", len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("k>n must return input order, got %v", got)
		}
	}
}

// TestKCenterSpread: with two tight clusters and one far outlier,
// selecting 3 of them must take the outlier plus one point from each
// cluster — the diversity property the batch selection exists for.
func TestKCenterSpread(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // cluster A (0..2)
		{10, 10}, {10.1, 10}, // cluster B (3..4)
		{100, -50}, // outlier (5)
	}
	got := SelectKCenter(pts, 3)
	region := func(i int) int {
		switch {
		case i <= 2:
			return 0
		case i <= 4:
			return 1
		default:
			return 2
		}
	}
	seen := map[int]bool{}
	for _, i := range got {
		seen[region(i)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("selection %v does not cover all three regions", got)
	}
}

// TestKCenterDeterministic: same point list, same selection, across
// repeated calls (no hidden RNG or map iteration).
func TestKCenterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	first := SelectKCenter(pts, 8)
	for trial := 0; trial < 10; trial++ {
		got := SelectKCenter(pts, 8)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d diverged: %v vs %v", trial, got, first)
			}
		}
	}
}

// TestKCenterDuplicatePoints: identical points must tie-break toward
// the lowest index and never panic or loop.
func TestKCenterDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	got := SelectKCenter(pts, 2)
	if len(got) != 2 {
		t.Fatalf("selected %v", got)
	}
	// One of the duplicates plus the distinct point must be chosen.
	hasFar := false
	for _, i := range got {
		if i == 3 {
			hasFar = true
		}
	}
	if !hasFar {
		t.Fatalf("selection %v skipped the only distant point", got)
	}
}

func TestDistSqRagged(t *testing.T) {
	if d := distSq([]float64{1, 2}, []float64{1}); d != 4 {
		t.Fatalf("ragged distSq = %v, want 4", d)
	}
	if d := distSq(nil, []float64{3}); d != 9 {
		t.Fatalf("nil distSq = %v, want 9", d)
	}
}
