package datengine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// testClip builds a small deterministic clip whose geometry varies
// with i, so distinct i yield distinct fingerprints.
func testClip(i int) layout.Clip {
	w := geom.R(0, 0, 512, 512)
	return layout.Clip{
		Window: w,
		Core:   geom.R(128, 128, 384, 384),
		Shapes: []geom.Rect{
			geom.R(10+i, 20, 60+i, 52),
			geom.R(100, 40+2*i, 132, 200),
		},
	}
}

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		clip := testClip(i).Translate()
		recs = append(recs, Record{
			Kind: RecCandidate, FP: clip.Fingerprint(), Clip: clip,
			Score: 0.4 + float64(i)/100, Stage: "scan", Source: "low-conf",
		})
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learn.wal")
	meta := Meta{Detector: "cnn"}
	w, err := CreateWAL(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(5)
	recs = append(recs,
		Record{Kind: RecBatch, BatchID: 0, FPs: []layout.Fingerprint{recs[0].FP, recs[2].FP}},
		Record{Kind: RecLabel, BatchID: 0, FP: recs[0].FP, Hotspot: true},
		Record{Kind: RecQuarantine, BatchID: 0, FP: recs[2].FP, Attempts: 3, Err: "oracle panic: chaos"},
		Record{Kind: RecShipped, BatchID: 0, Outcome: OutcomeShipped, ModelPath: "m.gob"},
	)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	gotMeta, got, _, err := LoadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Kind != recs[i].Kind || r.FP != recs[i].FP || r.BatchID != recs[i].BatchID {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if got[5].Kind != RecBatch || len(got[5].FPs) != 2 {
		t.Errorf("batch record = %+v", got[5])
	}
	if !got[6].Hotspot {
		t.Errorf("label record lost verdict: %+v", got[6])
	}
}

// TestWALTornTailEveryByte truncates a valid WAL at every byte length
// and asserts the load never errors, never returns a partial record,
// and ResumeWAL can append after truncation.
func TestWALTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "learn.wal")
	meta := Meta{Detector: "cnn"}
	w, err := CreateWAL(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := st.Size()
	recs := testRecords(3)
	offsets := []int64{}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		offsets = append(offsets, st.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.wal")
	for cut := headerEnd; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, off, err := LoadWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		// The intact record count is the number of record offsets <= cut.
		want := 0
		for _, o := range offsets {
			if o <= cut {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), want)
		}
		if off > cut {
			t.Fatalf("cut %d: offset %d beyond file", cut, off)
		}

		// Resume must truncate the tail and accept a fresh append.
		rw, rrecs, err := ResumeWAL(torn, meta)
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if len(rrecs) != want {
			t.Fatalf("cut %d: resume %d records, want %d", cut, len(rrecs), want)
		}
		extra := testRecords(4)[3]
		if err := rw.Append(extra); err != nil {
			t.Fatalf("cut %d: append after resume: %v", cut, err)
		}
		rw.Close()
		_, again, _, err := LoadWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: reload: %v", cut, err)
		}
		if len(again) != want+1 {
			t.Fatalf("cut %d: after append %d records, want %d", cut, len(again), want+1)
		}
	}
}

func TestWALMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learn.wal")
	w, err := CreateWAL(path, Meta{Detector: "cnn"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := ResumeWAL(path, Meta{Detector: "mlp"}); err == nil {
		t.Fatal("resume with mismatched detector succeeded")
	}
}

func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "learn.wal")
	w, err := CreateWAL(path, Meta{Detector: "cnn"})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(2)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, _ := os.ReadFile(path)
	// Flip a bit in the final record's payload: the load must drop that
	// record (checksum) but keep the prefix.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x40
	bad := filepath.Join(dir, "flipped.wal")
	os.WriteFile(bad, flipped, 0o644)
	_, got, _, err := LoadWAL(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("bit-flipped tail: %d records survived, want 1", len(got))
	}
}

func TestReplayState(t *testing.T) {
	recs := testRecords(4)
	fps := []layout.Fingerprint{recs[0].FP, recs[1].FP}
	all := append(append([]Record(nil), recs...),
		recs[1], // duplicate candidate: must not double-count
		Record{Kind: RecBatch, BatchID: 0, FPs: fps},
		Record{Kind: RecLabel, BatchID: 0, FP: fps[0], Hotspot: true},
	)
	s := Replay(all)
	if len(s.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(s.Candidates))
	}
	if s.Pending == nil || s.Pending.ID != 0 {
		t.Fatalf("pending batch missing: %+v", s.Pending)
	}
	if got := s.Pending.Remaining(); len(got) != 1 || got[0] != fps[1] {
		t.Fatalf("remaining = %v, want [%x]", got, fps[1][:4])
	}
	if avail := s.Available(); len(avail) != 2 {
		t.Fatalf("available = %d, want 2 (two consumed)", len(avail))
	}

	// Terminal record clears the pending batch and counts the outcome.
	all = append(all,
		Record{Kind: RecQuarantine, BatchID: 0, FP: fps[1], Attempts: 3, Err: "x"},
		Record{Kind: RecShipped, BatchID: 0, Outcome: OutcomeShipped, ModelPath: "m.gob"},
	)
	s = Replay(all)
	if s.Pending != nil {
		t.Fatalf("pending survived shipped record")
	}
	if s.Shipped != 1 || s.LastModel != "m.gob" {
		t.Fatalf("shipped = %d lastModel = %q", s.Shipped, s.LastModel)
	}
	if s.NextBatchID != 1 {
		t.Fatalf("next batch = %d, want 1", s.NextBatchID)
	}
}

// TestAvailableOrderIndependent: the selection input must be identical
// no matter what order candidates arrived in.
func TestAvailableOrderIndependent(t *testing.T) {
	recs := testRecords(6)
	perm := []Record{recs[3], recs[0], recs[5], recs[1], recs[4], recs[2]}
	a := Replay(recs).Available()
	b := Replay(perm).Available()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].FP != b[i].FP {
			t.Fatalf("order diverges at %d", i)
		}
	}
}
