// The active-learning engine: mine → select → label → retrain → ship,
// every stage journaled before the next may run (at-least-once,
// idempotent). The engine owns the WAL and the replayed State; callers
// plug in the mining taps (Ingest), the labeling oracle, the trainer,
// and the shipping gate.
//
// Crash tolerance: any stage may die at any instant (kill -9 included).
// The WAL fsyncs each record, so on resume the replayed State tells the
// engine exactly which work is durable; the select stage is a pure
// function of the candidate set, labeling skips journaled members, and
// retraining is required to be deterministic over (batch ID, labeled
// set in selection order) — so an interrupted loop, resumed, ships a
// byte-identical model to an uninterrupted one.
//
// Oracle containment mirrors the scan farm's worker discipline: a
// shared circuit breaker pauses labeling (instead of burning sample
// attempts) when the oracle looks sick; each sample retries with
// jittered exponential backoff seeded from its own fingerprint (so
// retry storms decorrelate but stay deterministic); every attempt runs
// under a deadline budget; and a sample that exhausts its attempts —
// oracle error, panic, or timeout — is quarantined, not fatal: one
// poison clip costs itself, never the loop.

package datengine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/features"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// Fault-injection sites for chaos tests: each fires at the start of its
// stage (LabelSite before every sample), and an armed error aborts the
// cycle exactly as a crash at that point would — the canonical way to
// script "die mid-batch" without a process kill.
const (
	SelectSite  = "datengine.select"
	LabelSite   = "datengine.label"
	RetrainSite = "datengine.retrain"
	ShipSite    = "datengine.ship"
)

// ErrNoCandidates is returned by RunCycle when fewer than MinBatch
// unconsumed candidates are queued.
var ErrNoCandidates = errors.New("datengine: not enough candidates for a batch")

// ErrShipRejected is the sentinel a Ship func returns (wrapped) when
// the candidate model was refused by the validation gate. A rejection
// is a terminal batch outcome — journaled, loop continues — unlike any
// other ship error, which aborts the cycle for a later resume.
var ErrShipRejected = errors.New("datengine: candidate model rejected")

// Config wires an Engine. Oracle, Train, and Ship are required for
// RunCycle; an ingest-only engine (a serving process mining candidates)
// may leave them nil.
type Config struct {
	// Detector binds the WAL to one detector identity (Meta).
	Detector string

	// BatchSize is the k of the k-center selection (default 8).
	// MinBatch is the fewest queued candidates worth a cycle (default 1).
	BatchSize int
	MinBatch  int

	// Features embeds candidates for the diversity selection. Nil
	// defaults to a coarse density grid — selection only needs relative
	// geometry, not the serving model's own features.
	Features features.Extractor

	// Oracle labels one clip (ground truth, e.g. lithosim.LabelCtx).
	// Panics are recovered into errors and count as attempt failures.
	Oracle func(ctx context.Context, clip layout.Clip) (bool, error)
	// OracleDeadline budgets each oracle attempt (default 2s).
	OracleDeadline time.Duration
	// OracleAttempts is the per-sample attempt budget before quarantine
	// (default 3).
	OracleAttempts int
	// OracleRetry tunes the backoff between attempts; its Seed is
	// decorrelated per sample by the sample's fingerprint, and
	// MaxAttempts is overridden by OracleAttempts.
	OracleRetry resilience.RetryConfig
	// Breaker guards the oracle across samples.
	Breaker resilience.BreakerConfig

	// Train retrains on the labeled batch (selection order) and returns
	// the model artifact path. It MUST be deterministic over its
	// arguments: resume depends on re-running it yielding byte-identical
	// output.
	Train func(ctx context.Context, batchID int, labeled []core.LabeledClip) (string, error)
	// Ship installs the model through the validation gate. Return nil
	// to mark the batch shipped, wrap ErrShipRejected for a terminal
	// gate rejection, anything else to abort the cycle (retried on
	// resume).
	Ship func(ctx context.Context, batchID int, modelPath string) error

	// Clock drives breaker cool-down waits (default wall clock); retry
	// backoff uses OracleRetry.Clock.
	Clock resilience.Clock

	// Metrics receives the learn_* series; nil disables.
	Metrics *telemetry.Registry

	Logf func(format string, args ...any) // nil = silent
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	if c.Features == nil {
		c.Features = &features.Density{Grid: 8}
	}
	if c.OracleDeadline <= 0 {
		c.OracleDeadline = 2 * time.Second
	}
	if c.OracleAttempts <= 0 {
		c.OracleAttempts = 3
	}
	if c.Clock == nil {
		c.Clock = resilience.Real
	}
	return c
}

// learnMetrics bundles the engine's telemetry; nil disables it.
type learnMetrics struct {
	reg           *telemetry.Registry
	dedup         *telemetry.Counter
	quarantined   *telemetry.Counter
	oracleRetries *telemetry.Counter
	oracleSeconds *telemetry.Histogram
	pending       *telemetry.Gauge
}

func newLearnMetrics(reg *telemetry.Registry) *learnMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp("learn_candidates_total", "Mined candidates accepted into the queue, by mining source.")
	reg.SetHelp("learn_candidates_deduped_total", "Mined clips dropped because their fingerprint was already queued.")
	reg.SetHelp("learn_batches_total", "Batches by terminal outcome (shipped, rejected).")
	reg.SetHelp("learn_labels_total", "Oracle labels recorded, by verdict (hot, cold).")
	reg.SetHelp("learn_quarantined_total", "Batch members quarantined after exhausting oracle attempts.")
	reg.SetHelp("learn_oracle_retries_total", "Oracle attempts beyond each sample's first.")
	reg.SetHelp("learn_oracle_seconds", "Wall time of successful oracle labelings.")
	reg.SetHelp("learn_pending_candidates", "Unconsumed candidates currently queued.")
	return &learnMetrics{
		reg:           reg,
		dedup:         reg.Counter("learn_candidates_deduped_total"),
		quarantined:   reg.Counter("learn_quarantined_total"),
		oracleRetries: reg.Counter("learn_oracle_retries_total"),
		oracleSeconds: reg.Histogram("learn_oracle_seconds", nil),
		pending:       reg.Gauge("learn_pending_candidates"),
	}
}

// CycleReport summarizes one RunCycle.
type CycleReport struct {
	BatchID  int
	Selected int
	// ResumedLabels counts batch members whose label or quarantine was
	// already journaled when the cycle started.
	ResumedLabels      int
	Labeled, Hot, Cold int
	Quarantined        int
	Outcome            string // OutcomeShipped or OutcomeRejected
	ModelPath          string
	Reason             string // gate reasoning when rejected
}

// Engine is the active-learning loop head. Ingest is safe for
// concurrent use (mining taps run on scoring goroutines); RunCycle is
// single-flight by construction (one loop per WAL).
type Engine struct {
	cfg     Config
	wal     *WAL
	breaker *resilience.Breaker
	mets    *learnMetrics

	mu    sync.Mutex
	state *State
}

// Open creates or resumes the engine's WAL at path: a missing file
// starts an empty loop, an existing one is validated against the
// config's detector identity, torn-tail truncated, and replayed.
func Open(path string, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	meta := Meta{Detector: cfg.Detector}
	var (
		wal     *WAL
		records []Record
		err     error
	)
	if _, serr := os.Stat(path); serr == nil {
		wal, records, err = ResumeWAL(path, meta)
	} else {
		wal, err = CreateWAL(path, meta)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		wal:     wal,
		breaker: resilience.NewBreaker(cfg.Breaker),
		mets:    newLearnMetrics(cfg.Metrics),
		state:   Replay(records),
	}
	e.updatePending()
	return e, nil
}

// Close closes the WAL.
func (e *Engine) Close() error { return e.wal.Close() }

// WALPath returns the engine's journal path.
func (e *Engine) WALPath() string { return e.wal.Path() }

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// updatePending refreshes the queue-depth gauge. Callers hold e.mu or
// have exclusive access.
func (e *Engine) updatePending() {
	if e.mets == nil {
		return
	}
	n := 0
	for fp := range e.state.Candidates {
		if _, ok := e.state.Consumed[fp]; !ok {
			n++
		}
	}
	e.mets.pending.Set(float64(n))
}

// Ingest queues one mined clip. The clip is canonicalized (origin
// translated) and deduplicated by content fingerprint; the journal
// write is durable before Ingest returns true. Returns false without
// writing when the fingerprint is already queued.
func (e *Engine) Ingest(clip layout.Clip, score float64, stage, source string) (bool, error) {
	canon := clip.Translate()
	fp := canon.Fingerprint()
	e.mu.Lock()
	if _, ok := e.state.Candidates[fp]; ok {
		e.mu.Unlock()
		if e.mets != nil {
			e.mets.dedup.Inc()
		}
		return false, nil
	}
	// Reserve the slot before the journal write so concurrent miners of
	// the same fingerprint cannot double-append.
	cand := Candidate{FP: fp, Clip: canon, Score: score, Stage: stage, Source: source}
	e.state.Candidates[fp] = cand
	e.mu.Unlock()

	err := e.wal.Append(Record{
		Kind: RecCandidate, FP: fp, Clip: canon,
		Score: score, Stage: stage, Source: source,
	})
	if err != nil {
		e.mu.Lock()
		delete(e.state.Candidates, fp)
		e.mu.Unlock()
		return false, err
	}
	if e.mets != nil {
		e.mets.reg.Counter("learn_candidates_total", telemetry.L("source", source)).Inc()
	}
	e.mu.Lock()
	e.updatePending()
	e.mu.Unlock()
	return true, nil
}

// PendingCandidates reports the unconsumed queue depth.
func (e *Engine) PendingCandidates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for fp := range e.state.Candidates {
		if _, ok := e.state.Consumed[fp]; !ok {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the replayed loop counters.
func (e *Engine) Snapshot() (candidates, consumed, shipped, rejected int, pendingBatch int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pendingBatch = -1
	if e.state.Pending != nil {
		pendingBatch = e.state.Pending.ID
	}
	return len(e.state.Candidates), len(e.state.Consumed), e.state.Shipped, e.state.Rejected, pendingBatch
}

// RunCycle drives one batch to its terminal record: resume any pending
// batch, else select a new one; label the members not yet journaled;
// retrain on the labeled set; ship through the gate. An error return
// means the cycle aborted mid-stage (crash-equivalent) — every durable
// record stands and a later RunCycle picks up exactly where this one
// died. ErrNoCandidates means the queue is too shallow to start.
func (e *Engine) RunCycle(ctx context.Context) (*CycleReport, error) {
	if e.cfg.Oracle == nil || e.cfg.Train == nil || e.cfg.Ship == nil {
		return nil, errors.New("datengine: RunCycle needs Oracle, Train, and Ship configured")
	}
	ctx, cycleSpan := trace.Start(ctx, "learn.cycle")
	defer cycleSpan.End()

	rep := &CycleReport{}

	// ---- select -------------------------------------------------------
	e.mu.Lock()
	batch := e.state.Pending
	e.mu.Unlock()
	if batch == nil {
		var err error
		if batch, err = e.selectBatch(ctx, rep); err != nil {
			cycleSpan.SetError(err)
			return nil, err
		}
	} else {
		e.logf("datengine: resuming batch %d (%d members, %d already labeled/quarantined)",
			batch.ID, len(batch.FPs), len(batch.Labels)+len(batch.Quarantined))
	}
	rep.BatchID = batch.ID
	rep.Selected = len(batch.FPs)
	rep.ResumedLabels = len(batch.Labels) + len(batch.Quarantined)
	cycleSpan.SetAttrInt("batch", batch.ID)

	// ---- label --------------------------------------------------------
	if err := e.labelBatch(ctx, batch, rep); err != nil {
		cycleSpan.SetError(err)
		return nil, err
	}

	// ---- retrain ------------------------------------------------------
	labeled := e.labeledSet(batch)
	rep.Labeled = len(labeled)
	for _, lc := range labeled {
		if lc.Hotspot {
			rep.Hot++
		} else {
			rep.Cold++
		}
	}
	rep.Quarantined = len(batch.Quarantined)

	if len(labeled) == 0 {
		// Every member quarantined: nothing to train on. Terminal —
		// journal the rejection so the loop moves past this batch.
		return rep, e.finishBatch(batch, rep, OutcomeRejected, "", "no labeled samples (all quarantined)")
	}

	if err := faultinject.Hit(RetrainSite); err != nil {
		cycleSpan.SetError(err)
		return nil, fmt.Errorf("datengine: retrain batch %d: %w", batch.ID, err)
	}
	tctx, tspan := trace.Start(ctx, "learn.retrain")
	tspan.SetAttrInt("batch", batch.ID)
	tspan.SetAttrInt("labeled", len(labeled))
	modelPath, err := e.cfg.Train(tctx, batch.ID, labeled)
	tspan.SetError(err)
	tspan.End()
	if err != nil {
		cycleSpan.SetError(err)
		return nil, fmt.Errorf("datengine: retrain batch %d: %w", batch.ID, err)
	}
	rep.ModelPath = modelPath

	// ---- ship ---------------------------------------------------------
	if err := faultinject.Hit(ShipSite); err != nil {
		cycleSpan.SetError(err)
		return nil, fmt.Errorf("datengine: ship batch %d: %w", batch.ID, err)
	}
	sctx, sspan := trace.Start(ctx, "learn.ship")
	sspan.SetAttrInt("batch", batch.ID)
	err = e.cfg.Ship(sctx, batch.ID, modelPath)
	sspan.SetError(err)
	sspan.End()
	switch {
	case err == nil:
		return rep, e.finishBatch(batch, rep, OutcomeShipped, modelPath, "")
	case errors.Is(err, ErrShipRejected):
		return rep, e.finishBatch(batch, rep, OutcomeRejected, modelPath, err.Error())
	default:
		cycleSpan.SetError(err)
		return nil, fmt.Errorf("datengine: ship batch %d: %w", batch.ID, err)
	}
}

// selectBatch runs the deterministic k-center selection and journals
// the chosen batch. Caller has no pending batch.
func (e *Engine) selectBatch(ctx context.Context, rep *CycleReport) (*BatchState, error) {
	if err := faultinject.Hit(SelectSite); err != nil {
		return nil, fmt.Errorf("datengine: select: %w", err)
	}
	_, span := trace.Start(ctx, "learn.select")
	defer span.End()

	e.mu.Lock()
	avail := e.state.Available()
	nextID := e.state.NextBatchID
	e.mu.Unlock()
	if len(avail) < e.cfg.MinBatch {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNoCandidates, len(avail), e.cfg.MinBatch)
	}

	// Embed each candidate; a clip its extractor rejects is excluded
	// from this selection (it stays queued and is retried next cycle —
	// in practice extraction is total over valid clips).
	pts := make([][]float64, 0, len(avail))
	kept := make([]Candidate, 0, len(avail))
	for _, c := range avail {
		v, err := e.cfg.Features.Extract(c.Clip)
		if err != nil {
			e.logf("datengine: features %s on %x: %v (excluded from selection)", e.cfg.Features.Name(), c.FP[:4], err)
			continue
		}
		pts = append(pts, v)
		kept = append(kept, c)
	}
	if len(kept) < e.cfg.MinBatch {
		return nil, fmt.Errorf("%w: have %d embeddable, need %d", ErrNoCandidates, len(kept), e.cfg.MinBatch)
	}

	k := e.cfg.BatchSize
	if k > len(kept) {
		k = len(kept)
	}
	fps := make([]layout.Fingerprint, 0, k)
	for _, i := range SelectKCenter(pts, k) {
		fps = append(fps, kept[i].FP)
	}
	span.SetAttrInt("candidates", len(kept))
	span.SetAttrInt("selected", len(fps))

	if err := e.wal.Append(Record{Kind: RecBatch, BatchID: nextID, FPs: fps}); err != nil {
		return nil, err
	}
	batch := newBatchState(nextID, fps)
	e.mu.Lock()
	e.state.Pending = batch
	for _, fp := range fps {
		e.state.Consumed[fp] = nextID
	}
	e.state.NextBatchID = nextID + 1
	e.updatePending()
	e.mu.Unlock()
	e.logf("datengine: batch %d selected %d of %d candidates", nextID, len(fps), len(kept))
	return batch, nil
}

// labelBatch drives every unlabeled member through the oracle. Each
// member's verdict or quarantine is journaled before the next member
// starts, so a crash loses at most one in-flight oracle call.
func (e *Engine) labelBatch(ctx context.Context, batch *BatchState, rep *CycleReport) error {
	remaining := batch.Remaining()
	if len(remaining) == 0 {
		return nil
	}
	lctx, span := trace.Start(ctx, "learn.label")
	span.SetAttrInt("batch", batch.ID)
	span.SetAttrInt("remaining", len(remaining))
	defer span.End()

	for _, fp := range remaining {
		if err := faultinject.Hit(LabelSite); err != nil {
			span.SetError(err)
			return fmt.Errorf("datengine: label batch %d: %w", batch.ID, err)
		}
		e.mu.Lock()
		cand, ok := e.state.Candidates[fp]
		e.mu.Unlock()
		if !ok {
			// A batch record always follows its candidates' records, so
			// this cannot happen on a well-formed WAL; quarantine rather
			// than wedge the loop on a hand-edited journal.
			if err := e.quarantine(batch, fp, 0, "candidate record missing"); err != nil {
				return err
			}
			continue
		}
		verdict, attempts, err := e.labelSample(lctx, cand)
		if err != nil {
			if ctx.Err() != nil {
				// The cycle itself was cancelled: crash-equivalent abort,
				// nothing journaled for this member.
				span.SetError(ctx.Err())
				return fmt.Errorf("datengine: label batch %d interrupted: %w", batch.ID, ctx.Err())
			}
			if err := e.quarantine(batch, fp, attempts, err.Error()); err != nil {
				return err
			}
			continue
		}
		if err := e.wal.Append(Record{Kind: RecLabel, BatchID: batch.ID, FP: fp, Hotspot: verdict}); err != nil {
			return err
		}
		batch.Labels[fp] = verdict
		if e.mets != nil {
			v := "cold"
			if verdict {
				v = "hot"
			}
			e.mets.reg.Counter("learn_labels_total", telemetry.L("verdict", v)).Inc()
		}
	}
	return nil
}

// labelSample runs one member through breaker + per-sample-seeded retry
// + deadline budget, with oracle panics recovered into attempt
// failures. Returns the verdict, the attempts burned, and the final
// error when the attempt budget is exhausted.
func (e *Engine) labelSample(ctx context.Context, cand Candidate) (bool, int, error) {
	rcfg := e.cfg.OracleRetry
	rcfg.MaxAttempts = e.cfg.OracleAttempts
	// Decorrelate jitter across samples while staying deterministic for
	// a fixed candidate set: the fingerprint is the seed material.
	rcfg.Seed = rcfg.Seed*31 + int64(binary.BigEndian.Uint64(cand.FP[:8])>>1) + 1
	clock := rcfg.Clock
	if clock == nil {
		clock = e.cfg.Clock
	}

	octx, ospan := trace.Start(ctx, "learn.oracle")
	ospan.SetAttr("fp", fmt.Sprintf("%x", cand.FP[:8]))
	defer ospan.End()

	var verdict bool
	attempts := 0
	err := resilience.Retry(octx, rcfg, func(ctx context.Context) error {
		// A tripped breaker pauses the loop for the cool-down instead
		// of failing the sample: breaker rejections are an oracle-health
		// signal, not evidence the sample is poison.
		for !e.breaker.Allow() {
			wait := e.breaker.RetryAfter()
			if wait <= 0 {
				wait = 10 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-clock.After(wait):
			}
		}
		attempts++
		if attempts > 1 && e.mets != nil {
			e.mets.oracleRetries.Inc()
		}
		start := time.Now()
		actx, cancel := resilience.WithBudget(ctx, e.cfg.OracleDeadline)
		v, err := safeOracle(actx, e.cfg.Oracle, cand.Clip)
		cancel()
		if err == nil {
			verdict = v
			if e.mets != nil {
				e.mets.oracleSeconds.ObserveDuration(time.Since(start))
			}
		} else if ctx.Err() != nil {
			// The loop itself was cancelled mid-attempt: don't charge
			// the breaker or keep retrying.
			e.breaker.Record(nil)
			return ctx.Err()
		}
		e.breaker.Record(err)
		return err
	})
	if err != nil {
		ospan.SetError(err)
		return false, attempts, err
	}
	ospan.SetAttrInt("attempts", attempts)
	return verdict, attempts, nil
}

// safeOracle isolates oracle panics: a panicking simulation fails the
// attempt instead of killing the loop.
func safeOracle(ctx context.Context, oracle func(context.Context, layout.Clip) (bool, error), clip layout.Clip) (v bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("oracle panic: %v", r)
		}
	}()
	return oracle(ctx, clip)
}

// quarantine journals one poison member.
func (e *Engine) quarantine(batch *BatchState, fp layout.Fingerprint, attempts int, msg string) error {
	err := e.wal.Append(Record{
		Kind: RecQuarantine, BatchID: batch.ID, FP: fp,
		Attempts: attempts, Err: msg,
	})
	if err != nil {
		return err
	}
	batch.Quarantined[fp] = QuarantineInfo{Attempts: attempts, Err: msg}
	if e.mets != nil {
		e.mets.quarantined.Inc()
	}
	e.logf("datengine: batch %d quarantined %x after %d attempts: %s", batch.ID, fp[:4], attempts, msg)
	return nil
}

// labeledSet assembles the training samples in selection order —
// the order the batch record pins, independent of labeling timing.
func (e *Engine) labeledSet(batch *BatchState) []core.LabeledClip {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]core.LabeledClip, 0, len(batch.Labels))
	for _, fp := range batch.FPs {
		hot, ok := batch.Labels[fp]
		if !ok {
			continue
		}
		cand, ok := e.state.Candidates[fp]
		if !ok {
			continue
		}
		out = append(out, core.LabeledClip{Clip: cand.Clip, Hotspot: hot})
	}
	return out
}

// finishBatch journals the terminal record and folds it into state.
func (e *Engine) finishBatch(batch *BatchState, rep *CycleReport, outcome, modelPath, reason string) error {
	err := e.wal.Append(Record{
		Kind: RecShipped, BatchID: batch.ID,
		Outcome: outcome, ModelPath: modelPath, Reason: reason,
	})
	if err != nil {
		return err
	}
	rep.Outcome = outcome
	rep.Reason = reason
	e.mu.Lock()
	if e.state.Pending != nil && e.state.Pending.ID == batch.ID {
		e.state.Pending = nil
	}
	if outcome == OutcomeShipped {
		e.state.Shipped++
		e.state.LastModel = modelPath
	} else {
		e.state.Rejected++
	}
	e.mu.Unlock()
	if e.mets != nil {
		e.mets.reg.Counter("learn_batches_total", telemetry.L("outcome", outcome)).Inc()
	}
	e.logf("datengine: batch %d %s%s", batch.ID, outcome, reasonSuffix(reason))
	return nil
}

func reasonSuffix(reason string) string {
	if reason == "" {
		return ""
	}
	return ": " + reason
}
