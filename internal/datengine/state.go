// State replay: folding the WAL's record sequence into the loop's
// in-memory position. Replay is a pure function of the record list, so
// two processes that read the same durable prefix reach the same state
// — the property the kill-resume guarantee rests on.

package datengine

import (
	"bytes"
	"sort"

	"github.com/golitho/hsd/internal/layout"
)

// Candidate is one mined clip in the queue.
type Candidate struct {
	FP     layout.Fingerprint
	Clip   layout.Clip // canonical (origin-translated) form
	Score  float64
	Stage  string
	Source string
}

// QuarantineInfo records why a batch member was given up on.
type QuarantineInfo struct {
	Attempts int
	Err      string
}

// BatchState is a selected batch that has not reached its terminal
// shipped record.
type BatchState struct {
	ID int
	// FPs are the member fingerprints in selection order; training
	// consumes labeled members in this order, so the retrained model is
	// a function of the batch record, not of labeling concurrency.
	FPs         []layout.Fingerprint
	Labels      map[layout.Fingerprint]bool
	Quarantined map[layout.Fingerprint]QuarantineInfo
}

// newBatchState builds an empty BatchState over fps.
func newBatchState(id int, fps []layout.Fingerprint) *BatchState {
	return &BatchState{
		ID:          id,
		FPs:         append([]layout.Fingerprint(nil), fps...),
		Labels:      make(map[layout.Fingerprint]bool),
		Quarantined: make(map[layout.Fingerprint]QuarantineInfo),
	}
}

// Remaining returns the batch members with neither a label nor a
// quarantine record, in selection order.
func (b *BatchState) Remaining() []layout.Fingerprint {
	var out []layout.Fingerprint
	for _, fp := range b.FPs {
		if _, ok := b.Labels[fp]; ok {
			continue
		}
		if _, ok := b.Quarantined[fp]; ok {
			continue
		}
		out = append(out, fp)
	}
	return out
}

// State is the replayed loop position.
type State struct {
	// Candidates holds every journaled candidate keyed by fingerprint.
	Candidates map[layout.Fingerprint]Candidate
	// Consumed maps fingerprints already claimed by a batch to that
	// batch's ID; consumed candidates are never re-selected.
	Consumed map[layout.Fingerprint]int
	// Pending is the selected batch awaiting its terminal record, nil
	// when the loop is between batches.
	Pending *BatchState
	// NextBatchID is the ID the next selection will use.
	NextBatchID int
	// Shipped and Rejected count terminal batch outcomes.
	Shipped, Rejected int
	// LastModel is the model path of the most recent shipped batch.
	LastModel string
}

// NewState returns an empty State.
func NewState() *State {
	return &State{
		Candidates: make(map[layout.Fingerprint]Candidate),
		Consumed:   make(map[layout.Fingerprint]int),
	}
}

// Replay folds records (in append order) into a State. Unknown record
// kinds and records that reference a batch other than the pending one
// are skipped: the WAL is append-only and written by this package, so
// anything unexpected is a forward-compatibility artifact, not a reason
// to refuse resume.
func Replay(records []Record) *State {
	s := NewState()
	for _, rec := range records {
		switch rec.Kind {
		case RecCandidate:
			if _, ok := s.Candidates[rec.FP]; ok {
				continue // at-least-once ingest: later duplicates lose
			}
			s.Candidates[rec.FP] = Candidate{
				FP: rec.FP, Clip: rec.Clip,
				Score: rec.Score, Stage: rec.Stage, Source: rec.Source,
			}
		case RecBatch:
			s.Pending = newBatchState(rec.BatchID, rec.FPs)
			for _, fp := range rec.FPs {
				s.Consumed[fp] = rec.BatchID
			}
			if rec.BatchID >= s.NextBatchID {
				s.NextBatchID = rec.BatchID + 1
			}
		case RecLabel:
			if s.Pending != nil && s.Pending.ID == rec.BatchID {
				s.Pending.Labels[rec.FP] = rec.Hotspot
			}
		case RecQuarantine:
			if s.Pending != nil && s.Pending.ID == rec.BatchID {
				s.Pending.Quarantined[rec.FP] = QuarantineInfo{Attempts: rec.Attempts, Err: rec.Err}
			}
		case RecShipped:
			if s.Pending != nil && s.Pending.ID == rec.BatchID {
				s.Pending = nil
			}
			if rec.Outcome == OutcomeShipped {
				s.Shipped++
				s.LastModel = rec.ModelPath
			} else {
				s.Rejected++
			}
		}
	}
	return s
}

// Available returns the unconsumed candidates sorted by fingerprint —
// the deterministic selection input. Sorting by content hash makes the
// selector a function of the candidate *set*: concurrent mining can
// append candidates in any order without perturbing which batch a
// resume selects.
func (s *State) Available() []Candidate {
	out := make([]Candidate, 0, len(s.Candidates))
	for fp, c := range s.Candidates {
		if _, ok := s.Consumed[fp]; ok {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].FP[:], out[j].FP[:]) < 0
	})
	return out
}
