package datengine

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
)

// fpHot is the test ground truth: a content-keyed verdict so any
// process, any order, agrees on every clip's label.
func fpHot(clip layout.Clip) bool {
	fp := clip.Translate().Fingerprint()
	return fp[0]%2 == 0
}

// writeModel is the deterministic test trainer artifact: gob of the
// batch ID and the labeled set, so identical training inputs produce
// identical bytes — the same contract the real trainer meets via
// seeded, checkpointed training.
func writeModel(dir string, batchID int, labeled []core.LabeledClip) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct {
		BatchID int
		Labeled []core.LabeledClip
	}{batchID, labeled}); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("model-%03d.gob", batchID))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// fastCfg is a test Config with instant backoff and a breaker that
// cools down in microseconds, so failure-path tests stay fast.
func fastCfg(dir string) Config {
	return Config{
		Detector:       "test",
		BatchSize:      4,
		OracleDeadline: time.Second,
		OracleAttempts: 3,
		OracleRetry: resilience.RetryConfig{
			BaseDelay: time.Microsecond,
			MaxDelay:  10 * time.Microsecond,
		},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 1000,
			OpenTimeout:      time.Millisecond,
		},
		Oracle: func(ctx context.Context, clip layout.Clip) (bool, error) {
			return fpHot(clip), nil
		},
		Train: func(ctx context.Context, batchID int, labeled []core.LabeledClip) (string, error) {
			return writeModel(dir, batchID, labeled)
		},
		Ship: func(ctx context.Context, batchID int, modelPath string) error {
			return nil
		},
	}
}

func mustIngest(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.Ingest(testClip(i), 0.5, "scan", "low-conf"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIngestDedupe(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(filepath.Join(dir, "learn.wal"), fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ok, err := e.Ingest(testClip(0), 0.5, "scan", "low-conf")
	if err != nil || !ok {
		t.Fatalf("first ingest: ok=%v err=%v", ok, err)
	}
	// The same geometry at a different position canonicalizes to the
	// same fingerprint and must dedupe.
	shifted := testClip(0)
	d := geom.Pt(73, 31)
	for i := range shifted.Shapes {
		shifted.Shapes[i] = shifted.Shapes[i].Translate(d)
	}
	shifted.Window = shifted.Window.Translate(d)
	shifted.Core = shifted.Core.Translate(d)
	ok, err = e.Ingest(shifted, 0.6, "serve", "spot-miss")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("translated duplicate was not deduplicated")
	}
	if n := e.PendingCandidates(); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
}

func TestIngestConcurrent(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(filepath.Join(dir, "learn.wal"), fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	const unique = 40
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < unique; i++ {
				if _, err := e.Ingest(testClip(i), 0.5, "scan", fmt.Sprintf("w%d", w)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := e.PendingCandidates(); n != unique {
		t.Fatalf("pending = %d, want %d", n, unique)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := LoadWAL(filepath.Join(dir, "learn.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if s := Replay(recs); len(s.Candidates) != unique {
		t.Fatalf("replayed candidates = %d, want %d", len(s.Candidates), unique)
	}
}

func TestRunCycleFull(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	cfg := fastCfg(dir)
	cfg.Metrics = reg
	walPath := filepath.Join(dir, "learn.wal")
	e, err := Open(walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, e, 10)

	rep, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeShipped {
		t.Fatalf("outcome = %q, want shipped: %+v", rep.Outcome, rep)
	}
	if rep.Selected != 4 || rep.Labeled != 4 || rep.Quarantined != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Hot+rep.Cold != rep.Labeled {
		t.Fatalf("verdict counts don't add up: %+v", rep)
	}
	if _, err := os.Stat(rep.ModelPath); err != nil {
		t.Fatalf("model artifact missing: %v", err)
	}

	// Second cycle consumes 4 more of the remaining 6.
	rep2, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BatchID != 1 || rep2.Selected != 4 {
		t.Fatalf("second cycle report = %+v", rep2)
	}
	if n := e.PendingCandidates(); n != 2 {
		t.Fatalf("pending after two cycles = %d, want 2", n)
	}
	e.Close()

	// The counters moved.
	if v := reg.Counter("learn_batches_total", telemetry.L("outcome", OutcomeShipped)).Value(); v != 2 {
		t.Fatalf("learn_batches_total{shipped} = %v, want 2", v)
	}

	// Replayed state agrees.
	_, recs, _, err := LoadWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s := Replay(recs)
	if s.Shipped != 2 || s.Pending != nil || len(s.Consumed) != 8 {
		t.Fatalf("replayed state: shipped=%d pending=%v consumed=%d", s.Shipped, s.Pending, len(s.Consumed))
	}
}

func TestRunCycleNoCandidates(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(filepath.Join(dir, "learn.wal"), fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunCycle(context.Background()); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

// TestQuarantinePoisonSample: an oracle that permanently fails on one
// clip must quarantine that member after its attempt budget and still
// ship the rest of the batch — the loop makes progress.
func TestQuarantinePoisonSample(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.BatchSize = 6
	var poison layout.Fingerprint
	// Poison the fingerprint-smallest candidate so it is deterministic
	// regardless of which members k-center picks.
	cfg.Oracle = func(ctx context.Context, clip layout.Clip) (bool, error) {
		if clip.Translate().Fingerprint() == poison {
			return false, errors.New("injected permanent failure")
		}
		return fpHot(clip), nil
	}
	var trained []core.LabeledClip
	cfg.Train = func(ctx context.Context, batchID int, labeled []core.LabeledClip) (string, error) {
		trained = labeled
		return writeModel(dir, batchID, labeled)
	}
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustIngest(t, e, 6)
	e.mu.Lock()
	poison = e.state.Available()[0].FP
	e.mu.Unlock()

	rep, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeShipped {
		t.Fatalf("outcome = %q: %+v", rep.Outcome, rep)
	}
	if rep.Quarantined != 1 || rep.Labeled != 5 {
		t.Fatalf("report = %+v, want 1 quarantined, 5 labeled", rep)
	}
	if len(trained) != 5 {
		t.Fatalf("trainer saw %d samples, want 5", len(trained))
	}
	for _, lc := range trained {
		if lc.Clip.Translate().Fingerprint() == poison {
			t.Fatal("quarantined sample leaked into the training set")
		}
	}
}

// TestQuarantineOraclePanic: a panicking oracle is contained like an
// error — recovered, retried, quarantined — never fatal.
func TestQuarantineOraclePanic(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.BatchSize = 3
	cfg.Oracle = func(ctx context.Context, clip layout.Clip) (bool, error) {
		panic("chaos: oracle exploded")
	}
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustIngest(t, e, 3)
	rep, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeRejected || rep.Quarantined != 3 {
		t.Fatalf("report = %+v, want rejected with 3 quarantined", rep)
	}
	// The loop is not wedged: new candidates feed a fresh batch.
	mustIngest(t, e, 6)
	cfg2 := fastCfg(dir)
	// (restore a working oracle on the same engine via the next cycle)
	e.cfg.Oracle = cfg2.Oracle
	rep2, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcome != OutcomeShipped || rep2.BatchID != 1 {
		t.Fatalf("follow-up report = %+v", rep2)
	}
}

// TestShipRejectedIsTerminal: a gate rejection journals the batch as
// rejected and the loop moves on; a transient ship failure aborts the
// cycle and the SAME batch resumes.
func TestShipRejectedIsTerminal(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.Ship = func(ctx context.Context, batchID int, modelPath string) error {
		return fmt.Errorf("%w: recall dropped", ErrShipRejected)
	}
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustIngest(t, e, 4)
	rep, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeRejected {
		t.Fatalf("outcome = %q, want rejected", rep.Outcome)
	}
	if _, _, _, rejected, pending := e.Snapshot(); rejected != 1 || pending != -1 {
		t.Fatalf("rejected=%d pending=%d, want 1 and none", rejected, pending)
	}
}

func TestShipTransientFailureResumesSameBatch(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	fail := true
	cfg.Ship = func(ctx context.Context, batchID int, modelPath string) error {
		if fail {
			return errors.New("registry briefly unavailable")
		}
		return nil
	}
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustIngest(t, e, 4)
	if _, err := e.RunCycle(context.Background()); err == nil {
		t.Fatal("transient ship failure did not abort the cycle")
	}
	_, _, _, _, pending := e.Snapshot()
	if pending != 0 {
		t.Fatalf("pending batch = %d, want batch 0 still pending", pending)
	}
	fail = false
	rep, err := e.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchID != 0 || rep.Outcome != OutcomeShipped {
		t.Fatalf("resumed report = %+v, want batch 0 shipped", rep)
	}
	if rep.ResumedLabels != rep.Selected {
		t.Fatalf("resume relabeled: %+v (labels were durable)", rep)
	}
}

// TestEngineReopen: closing and reopening the engine replays the WAL
// into the same position.
func TestEngineReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	walPath := filepath.Join(dir, "learn.wal")
	e, err := Open(walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, e, 5)
	if _, err := e.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, err := Open(walPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	cands, consumed, shipped, _, pending := e2.Snapshot()
	if cands != 5 || consumed != 4 || shipped != 1 || pending != -1 {
		t.Fatalf("reopened snapshot: cands=%d consumed=%d shipped=%d pending=%d",
			cands, consumed, shipped, pending)
	}
	if n := e2.PendingCandidates(); n != 1 {
		t.Fatalf("pending candidates = %d, want 1", n)
	}
}
