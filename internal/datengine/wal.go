// The learn journal: a framed-CRC32 append-only write-ahead log of the
// active-learning loop's state, the persistence layer behind
// `hsdlearn -resume`.
//
// Layout of the file:
//
//	header frame:  magic "HSDLWh1\n" | len u64 | crc32 u32 | gob(Meta)
//	record frames: magic "HSDLWr1\n" | len u64 | crc32 u32 | gob(Record)
//
// The framing is the same integrity scheme as the scan journal and the
// model/checkpoint formats (internal/scanfarm, internal/nn): a torn
// tail — the WAL's crash mode, since records are appended and fsynced
// one at a time — is detected by a short or CRC-failing final frame and
// discarded on load, so a SIGKILLed learning loop resumes from the last
// durable record. Everything before the torn frame is intact by
// construction.
//
// Record semantics (the idempotency contract, see DESIGN.md §17):
// every stage of the loop journals its outcome before the next stage
// may run, and replaying the record sequence reconstructs exactly which
// work remains. Candidate records are deduplicated by content
// fingerprint at ingest AND at replay, so at-least-once ingestion is
// safe; a batch record pins the selected fingerprints, so a resumed
// loop labels the same batch the crashed one chose; label and
// quarantine records are keyed by (batch, fingerprint), so a resumed
// labeling pass skips exactly the samples already durable; the shipped
// record is terminal for its batch.

package datengine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/golitho/hsd/internal/layout"
)

var (
	walHeaderMagic = []byte("HSDLWh1\n")
	walRecordMagic = []byte("HSDLWr1\n")
)

// frameHeaderLen is the frame suffix after the magic: payload length
// (u64) plus payload CRC32 (u32), matching the nn/scanfarm formats.
const frameHeaderLen = 8 + 4

// maxFrameBytes bounds a declared payload so a corrupt length field
// cannot drive a giant allocation.
const maxFrameBytes = 1 << 30

// Meta binds a WAL to one learning loop. The detector identity must
// match for a resume to be sound: candidates mined under one detector
// family are not interchangeable training signal for another.
type Meta struct {
	Detector string
}

// RecordKind discriminates the journaled stage outcomes.
type RecordKind uint8

const (
	// RecCandidate is one mined clip entering the candidate queue.
	RecCandidate RecordKind = iota + 1
	// RecBatch pins a selected batch: its ID and member fingerprints in
	// selection order.
	RecBatch
	// RecLabel is one oracle verdict for a batch member.
	RecLabel
	// RecQuarantine marks a batch member the oracle could not label
	// after its attempt budget; the sample is permanently excluded.
	RecQuarantine
	// RecShipped is the terminal record of a batch: the retrained model
	// was shipped through the gate, or rejected by it.
	RecShipped
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case RecCandidate:
		return "candidate"
	case RecBatch:
		return "batch"
	case RecLabel:
		return "label"
	case RecQuarantine:
		return "quarantine"
	case RecShipped:
		return "shipped"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Batch terminal outcomes recorded in RecShipped.
const (
	// OutcomeShipped means the retrained model passed the golden-set
	// gate and was installed.
	OutcomeShipped = "shipped"
	// OutcomeRejected means the gate (or an empty labeled set) refused
	// the batch; its candidates stay consumed and the loop moves on.
	OutcomeRejected = "rejected"
)

// Record is one journaled event. A single struct covers every kind so
// the gob stream stays self-describing; unused fields are zero.
type Record struct {
	Kind RecordKind

	// Candidate / Label / Quarantine: the member's content fingerprint.
	FP layout.Fingerprint
	// Candidate: the canonical (origin-translated) clip and the mining
	// context that surfaced it.
	Clip   layout.Clip
	Score  float64
	Stage  string
	Source string

	// Batch / Label / Quarantine / Shipped: the owning batch.
	BatchID int
	// Batch: member fingerprints in selection order.
	FPs []layout.Fingerprint

	// Label: the oracle verdict.
	Hotspot bool

	// Quarantine: attempts burned and the last failure.
	Attempts int
	Err      string

	// Shipped: terminal outcome, the model artifact, and the gate's
	// reasoning when rejected.
	Outcome   string
	ModelPath string
	Reason    string
}

// ErrWALMismatch is returned when a WAL's Meta does not match the loop
// being resumed.
var ErrWALMismatch = errors.New("datengine: WAL belongs to a different learning loop")

// WAL is an open, appendable learn journal. Append is safe for
// concurrent use.
type WAL struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// CreateWAL creates (truncating) a WAL at path and durably writes its
// header frame.
func CreateWAL(path string, meta Meta) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datengine: create WAL: %w", err)
	}
	payload, err := gobEncode(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := writeFrame(f, walHeaderMagic, payload); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("datengine: fsync WAL: %w", err)
	}
	syncDir(path)
	return &WAL{path: path, f: f}, nil
}

// LoadWAL reads a WAL, tolerating a torn tail: it returns the header
// Meta, every intact record in append order, and the byte offset where
// the intact prefix ends (the truncation point for re-opening in append
// mode).
func LoadWAL(path string) (Meta, []Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, 0, fmt.Errorf("datengine: open WAL: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	payload, n, err := readFrame(br, walHeaderMagic)
	if err != nil {
		return Meta{}, nil, 0, fmt.Errorf("datengine: WAL header: %w", err)
	}
	var meta Meta
	if err := gobDecode(payload, &meta); err != nil {
		return Meta{}, nil, 0, fmt.Errorf("datengine: WAL header: %w", err)
	}
	offset := n
	var records []Record
	for {
		payload, n, err := readFrame(br, walRecordMagic)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before it is intact;
			// the caller truncates here and redoes the lost work.
			break
		}
		var rec Record
		if err := gobDecode(payload, &rec); err != nil {
			break
		}
		records = append(records, rec)
		offset += n
	}
	return meta, records, offset, nil
}

// ResumeWAL loads the WAL at path, validates it against meta, truncates
// any torn tail, and re-opens it for appending. It returns the WAL and
// the intact records to replay.
func ResumeWAL(path string, meta Meta) (*WAL, []Record, error) {
	got, records, offset, err := LoadWAL(path)
	if err != nil {
		return nil, nil, err
	}
	if got != meta {
		return nil, nil, fmt.Errorf("%w: WAL %+v, loop %+v", ErrWALMismatch, got, meta)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("datengine: reopen WAL: %w", err)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("datengine: truncate torn WAL tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("datengine: seek WAL: %w", err)
	}
	return &WAL{path: path, f: f}, records, nil
}

// Append durably writes one record: the frame is written and fsynced
// before Append returns, so a journaled stage outcome survives any
// later crash.
func (w *WAL) Append(rec Record) error {
	payload, err := gobEncode(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := writeFrame(w.f, walRecordMagic, payload); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("datengine: fsync WAL: %w", err)
	}
	return nil
}

// Path returns the WAL's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// writeFrame emits magic | payload length | payload CRC32 | payload.
func writeFrame(w io.Writer, magic, payload []byte) error {
	header := make([]byte, len(magic)+frameHeaderLen)
	copy(header, magic)
	binary.BigEndian.PutUint64(header[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("datengine: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("datengine: write frame payload: %w", err)
	}
	return nil
}

// readFrame consumes one frame, verifying magic and CRC, and returns
// the payload plus the total frame length in bytes. A clean end-of-file
// before any magic byte returns io.EOF; anything else wrong (bad magic,
// short frame, CRC mismatch) returns a descriptive error.
func readFrame(br *bufio.Reader, magic []byte) ([]byte, int64, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("datengine: frame magic truncated: %w", err)
	}
	if !bytes.Equal(head, magic) {
		return nil, 0, fmt.Errorf("datengine: bad frame magic %q", head)
	}
	header := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, 0, fmt.Errorf("datengine: frame header truncated (torn write?): %w", err)
	}
	size := binary.BigEndian.Uint64(header)
	wantCRC := binary.BigEndian.Uint32(header[8:])
	if size > maxFrameBytes {
		return nil, 0, fmt.Errorf("datengine: implausible frame size %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("datengine: frame truncated: want %d bytes (torn write?): %w", size, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, 0, fmt.Errorf("datengine: frame checksum %08x, want %08x", got, wantCRC)
	}
	return payload, int64(len(magic)+frameHeaderLen) + int64(size), nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("datengine: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("datengine: decode: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs the directory containing path so a just
// written file's directory entry is durable (matches the nn atomic
// writer's behavior; some filesystems do not support directory fsync).
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
