// Deterministic k-center batch selection: greedy farthest-first
// traversal over feature vectors, the classic 2-approximation to the
// k-center objective. Active-learning batches want *diverse* uncertain
// clips — k nearest-to-the-boundary duplicates teach the model one
// thing k times — and farthest-first maximizes the minimum pairwise
// spread greedily.
//
// Determinism contract: the selection is a pure function of the point
// list (order included). Callers feed points in fingerprint order (see
// State.Available), every distance is exact float64 arithmetic with no
// RNG, and all ties break toward the lowest index — so any two
// processes selecting over the same candidate set pick the same batch.

package datengine

// SelectKCenter returns the indices of k points chosen by greedy
// farthest-first traversal, in selection order. The first center is the
// point farthest from the centroid of all points (the most atypical
// sample); each subsequent center maximizes its distance to the nearest
// already-chosen center. Ties break toward the lowest index. When
// k >= len(points) every index is returned in input order.
func SelectKCenter(points [][]float64, k int) []int {
	n := len(points)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}

	dim := 0
	for _, p := range points {
		if len(p) > dim {
			dim = len(p)
		}
	}
	centroid := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			centroid[d] += v
		}
	}
	for d := range centroid {
		centroid[d] /= float64(n)
	}

	first, best := 0, -1.0
	for i, p := range points {
		if d := distSq(p, centroid); d > best {
			first, best = i, d
		}
	}

	chosen := make([]int, 0, k)
	chosen = append(chosen, first)
	// minDist[i] is the squared distance from point i to its nearest
	// chosen center.
	minDist := make([]float64, n)
	for i, p := range points {
		minDist[i] = distSq(p, points[first])
	}
	for len(chosen) < k {
		next, far := -1, -1.0
		for i, d := range minDist {
			if d > far {
				next, far = i, d
			}
		}
		chosen = append(chosen, next)
		for i, p := range points {
			if d := distSq(p, points[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

// distSq is the squared L2 distance, treating missing trailing
// dimensions as zero so ragged vectors compare sanely.
func distSq(a, b []float64) float64 {
	var s float64
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for d := 0; d < n; d++ {
		var av, bv float64
		if d < len(a) {
			av = a[d]
		}
		if d < len(b) {
			bv = b[d]
		}
		diff := av - bv
		s += diff * diff
	}
	return s
}
