// Chaos kill-resume equivalence: the loop is "killed" (cycle aborted
// by an armed fault, engine closed, process state discarded) at every
// stage boundary and mid-label, then resumed from the WAL alone; the
// shipped model must be byte-identical to an uninterrupted run over the
// same mined candidates. This is the in-process half of the kill -9
// guarantee — scripts/learn_smoke.sh does the real-SIGKILL half.

package datengine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/layout"
)

// runMined opens an engine over a fresh WAL in dir and mines the
// standard candidate set into it.
func runMined(t *testing.T, dir string) *Engine {
	t.Helper()
	cfg := fastCfg(dir)
	cfg.BatchSize = 5
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, e, 12)
	return e
}

func TestChaosLearnKillResume(t *testing.T) {
	defer faultinject.Reset()

	// Reference: one uninterrupted cycle.
	refDir := t.TempDir()
	ref := runMined(t, refDir)
	refRep, err := ref.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	if refRep.Outcome != OutcomeShipped {
		t.Fatalf("reference outcome = %+v", refRep)
	}
	refModel, err := os.ReadFile(refRep.ModelPath)
	if err != nil {
		t.Fatal(err)
	}

	crashes := []struct {
		name string
		site string
		skip int
	}{
		{"before-select", SelectSite, 0},
		{"label-first-sample", LabelSite, 0},
		{"label-mid-batch", LabelSite, 2},
		{"label-last-sample", LabelSite, 4},
		{"before-retrain", RetrainSite, 0},
		{"before-ship", ShipSite, 0},
	}
	for _, cr := range crashes {
		t.Run(cr.name, func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			e := runMined(t, dir)

			faultinject.Set(cr.site, faultinject.Fault{
				Err: errors.New("chaos: simulated crash"), Count: 1, Skip: cr.skip,
			})
			_, err := e.RunCycle(context.Background())
			if err == nil {
				t.Fatal("armed crash did not abort the cycle")
			}
			faultinject.Reset()
			// "kill -9": discard all in-memory state, reopen from disk.
			e.Close()

			cfg := fastCfg(dir)
			cfg.BatchSize = 5
			e2, err := Open(filepath.Join(dir, "learn.wal"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			rep, err := e2.RunCycle(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Outcome != OutcomeShipped {
				t.Fatalf("resumed outcome = %+v", rep)
			}
			// Mid-label crashes must actually resume durable labels, not
			// redo them — otherwise this test proves nothing.
			if cr.site == LabelSite && cr.skip > 0 && rep.ResumedLabels != cr.skip {
				t.Fatalf("resumed %d labels, want %d durable before the crash", rep.ResumedLabels, cr.skip)
			}
			got, err := os.ReadFile(rep.ModelPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refModel) {
				t.Fatalf("resumed model differs from uninterrupted run (%d vs %d bytes)", len(got), len(refModel))
			}
		})
	}
}

// TestChaosLearnRepeatedCrashes: several consecutive crashes over ONE
// WAL — every stage dies once before the cycle finally completes — and
// the shipped model still matches the uninterrupted run.
func TestChaosLearnRepeatedCrashes(t *testing.T) {
	defer faultinject.Reset()

	refDir := t.TempDir()
	ref := runMined(t, refDir)
	refRep, err := ref.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	refModel, err := os.ReadFile(refRep.ModelPath)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e := runMined(t, dir)
	e.Close()

	script := []struct {
		site string
		skip int
	}{
		{SelectSite, 0},
		{LabelSite, 1}, // one label lands, crash before the second
		{LabelSite, 2}, // two more labels land, crash before the fifth
		{RetrainSite, 0},
		{ShipSite, 0},
	}
	cfg := fastCfg(dir)
	cfg.BatchSize = 5
	for i, step := range script {
		e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set(step.site, faultinject.Fault{
			Err: errors.New("chaos: crash script"), Count: 1, Skip: step.skip,
		})
		_, err = e.RunCycle(context.Background())
		faultinject.Reset()
		if err == nil {
			t.Fatalf("script step %d did not crash", i)
		}
		e.Close()
	}

	e2, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep, err := e2.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeShipped {
		t.Fatalf("final outcome = %+v", rep)
	}
	got, err := os.ReadFile(rep.ModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refModel) {
		t.Fatal("model after 5 crash-resume generations differs from uninterrupted run")
	}
}

// TestChaosCancelMidLabel: context cancellation mid-label is a clean
// crash-equivalent abort — durable labels stand, nothing partial is
// journaled, and a resumed cycle finishes identically.
func TestChaosCancelMidLabel(t *testing.T) {
	refDir := t.TempDir()
	ref := runMined(t, refDir)
	refRep, err := ref.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	refModel, _ := os.ReadFile(refRep.ModelPath)

	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.BatchSize = 5
	ctx, cancel := context.WithCancel(context.Background())
	labeled := 0
	inner := cfg.Oracle
	cfg.Oracle = func(octx context.Context, clip layout.Clip) (bool, error) {
		if err := octx.Err(); err != nil {
			return false, err
		}
		labeled++
		if labeled == 3 {
			cancel() // the "SIGKILL" arrives while sample 3 is in flight
			return false, octx.Err()
		}
		return inner(octx, clip)
	}
	e, err := Open(filepath.Join(dir, "learn.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, e, 12)
	if _, err := e.RunCycle(ctx); err == nil {
		t.Fatal("cancelled cycle reported success")
	}
	e.Close()

	cfg2 := fastCfg(dir)
	cfg2.BatchSize = 5
	e2, err := Open(filepath.Join(dir, "learn.wal"), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep, err := e2.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(rep.ModelPath)
	if !bytes.Equal(got, refModel) {
		t.Fatal("model after mid-label cancellation differs from uninterrupted run")
	}
}
