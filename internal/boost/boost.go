// Package boost implements AdaBoost over decision stumps, the boosting
// baseline of the shallow hotspot-detection literature.
//
// Each weak learner is a single-feature threshold test. Training presorts
// every feature once and scans thresholds with running weighted error
// sums, so a round costs O(features x samples) after an O(features x
// n log n) setup.
package boost

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Stump is a one-feature threshold classifier:
// predict +1 when polarity*(x[Feature]-Threshold) > 0, else -1.
type Stump struct {
	Feature   int
	Threshold float64
	Polarity  float64 // +1 or -1
}

// Eval returns the stump's +-1 vote on x.
func (s Stump) Eval(x []float64) float64 {
	if s.Polarity*(x[s.Feature]-s.Threshold) > 0 {
		return 1
	}
	return -1
}

// Config parameterizes training.
type Config struct {
	// Rounds is the number of boosting rounds (default 100).
	Rounds int
	// MinWeightedError stops training early when the best stump's error
	// exceeds 0.5 - MinWeightedError (no better than chance).
	// Default 1e-6.
	MinWeightedError float64
	// ClassBalance starts each class with equal total weight, the
	// imbalance-aware variant used for minority hotspot classes.
	ClassBalance bool
}

func (c *Config) normalize() {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.MinWeightedError <= 0 {
		c.MinWeightedError = 1e-6
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	Stumps []Stump
	Alphas []float64
	// RoundTimes[i] is the wall-clock time of boosting round i (the
	// per-epoch cost of this learner); TrainTime is the whole fit
	// including presorting.
	RoundTimes []time.Duration
	TrainTime  time.Duration
}

// Train fits AdaBoost on X with binary labels y (0 = negative, 1 = positive).
func Train(x [][]float64, y []int, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("boost: bad training set: %d samples, %d labels", n, len(y))
	}
	dim := len(x[0])
	ys := make([]float64, n)
	hasPos, hasNeg := false, false
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("boost: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
		switch y[i] {
		case 0:
			ys[i] = -1
			hasNeg = true
		case 1:
			ys[i] = 1
			hasPos = true
		default:
			return nil, fmt.Errorf("boost: label %d at sample %d (want 0/1)", y[i], i)
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("boost: training set needs both classes")
	}
	cfg.normalize()
	trainStart := time.Now()

	// Presort sample indices by each feature.
	order := make([][]int, dim)
	for f := 0; f < dim; f++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]][f] < x[idx[b]][f] })
		order[f] = idx
	}

	w := make([]float64, n)
	if cfg.ClassBalance {
		nPos, nNeg := 0, 0
		for _, v := range ys {
			if v > 0 {
				nPos++
			} else {
				nNeg++
			}
		}
		for i := range w {
			if ys[i] > 0 {
				w[i] = 0.5 / float64(nPos)
			} else {
				w[i] = 0.5 / float64(nNeg)
			}
		}
	} else {
		for i := range w {
			w[i] = 1 / float64(n)
		}
	}
	m := &Model{}
	for round := 0; round < cfg.Rounds; round++ {
		roundStart := time.Now()
		best, bestErr := bestStump(x, ys, w, order)
		if bestErr >= 0.5-cfg.MinWeightedError {
			break // weak learner no better than chance
		}
		if bestErr < 1e-12 {
			bestErr = 1e-12 // avoid infinite alpha on separable data
		}
		alpha := 0.5 * math.Log((1-bestErr)/bestErr)
		m.Stumps = append(m.Stumps, best)
		m.Alphas = append(m.Alphas, alpha)
		// Reweight and renormalize.
		var z float64
		for i := range w {
			w[i] *= math.Exp(-alpha * ys[i] * best.Eval(x[i]))
			z += w[i]
		}
		inv := 1 / z
		for i := range w {
			w[i] *= inv
		}
		m.RoundTimes = append(m.RoundTimes, time.Since(roundStart))
		if bestErr < 1e-10 {
			break // perfectly separated; further rounds add nothing
		}
	}
	if len(m.Stumps) == 0 {
		return nil, errors.New("boost: no useful weak learner found")
	}
	m.TrainTime = time.Since(trainStart)
	return m, nil
}

// bestStump finds the stump minimizing weighted error under weights w.
func bestStump(x [][]float64, ys, w []float64, order [][]int) (Stump, float64) {
	n := len(x)
	best := Stump{Polarity: 1}
	bestErr := math.Inf(1)
	for f := range order {
		idx := order[f]
		// Error of the stump "predict +1 everywhere" (threshold below min,
		// polarity +1): all negatives are wrong.
		errPlus := 0.0
		for i := 0; i < n; i++ {
			if ys[i] < 0 {
				errPlus += w[i]
			}
		}
		consider := func(e float64, thr float64) {
			if e < bestErr {
				bestErr = e
				best = Stump{Feature: f, Threshold: thr, Polarity: 1}
			}
			if 1-e < bestErr {
				bestErr = 1 - e
				best = Stump{Feature: f, Threshold: thr, Polarity: -1}
			}
		}
		// Threshold below all samples.
		consider(errPlus, x[idx[0]][f]-1)
		for k := 0; k < n; k++ {
			i := idx[k]
			// Moving the threshold above x[i][f] flips sample i's
			// prediction from +1 to -1.
			if ys[i] > 0 {
				errPlus += w[i]
			} else {
				errPlus -= w[i]
			}
			// Only a valid threshold when the next value differs.
			if k+1 < n && x[idx[k+1]][f] == x[i][f] {
				continue
			}
			thr := x[i][f]
			if k+1 < n {
				thr = (x[i][f] + x[idx[k+1]][f]) / 2
			} else {
				thr = x[i][f] + 1
			}
			consider(errPlus, thr)
		}
	}
	return best, bestErr
}

// Score returns the ensemble margin of x; positive means hotspot. The
// magnitude is normalized by the total alpha mass, keeping scores in
// [-1, 1] regardless of round count.
func (m *Model) Score(x []float64) float64 {
	var s, total float64
	for i, st := range m.Stumps {
		s += m.Alphas[i] * st.Eval(x)
		total += m.Alphas[i]
	}
	if total == 0 {
		return 0
	}
	return s / total
}

// Predict returns true when x is classified as a hotspot.
func (m *Model) Predict(x []float64) bool { return m.Score(x) > 0 }

// Rounds returns the number of weak learners in the ensemble.
func (m *Model) Rounds() int { return len(m.Stumps) }
