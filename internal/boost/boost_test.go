package boost

import (
	"math"
	"math/rand"
	"testing"
)

func TestStumpEval(t *testing.T) {
	s := Stump{Feature: 1, Threshold: 0.5, Polarity: 1}
	if s.Eval([]float64{0, 0.6}) != 1 {
		t.Fatal("above threshold should vote +1")
	}
	if s.Eval([]float64{0, 0.4}) != -1 {
		t.Fatal("below threshold should vote -1")
	}
	s.Polarity = -1
	if s.Eval([]float64{0, 0.6}) != -1 {
		t.Fatal("negative polarity should flip")
	}
}

func TestTrainAxisAligned(t *testing.T) {
	// Single-feature separable data: one stump suffices.
	x := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []int{0, 0, 0, 1, 1, 1}
	m, err := Train(x, y, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if m.Predict(x[i]) != (y[i] == 1) {
			t.Fatalf("sample %d misclassified", i)
		}
	}
	if m.Rounds() > 2 {
		t.Fatalf("separable data used %d rounds", m.Rounds())
	}
	if len(m.RoundTimes) != m.Rounds() {
		t.Fatalf("RoundTimes has %d entries for %d rounds", len(m.RoundTimes), m.Rounds())
	}
	if m.TrainTime <= 0 {
		t.Fatalf("TrainTime not recorded: %v", m.TrainTime)
	}
}

func TestTrainInvertedFeature(t *testing.T) {
	// Negative polarity required: small values are positive.
	x := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []int{1, 1, 1, 0, 0, 0}
	m, err := Train(x, y, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if m.Predict(x[i]) != (y[i] == 1) {
			t.Fatalf("sample %d misclassified", i)
		}
	}
}

func TestTrainDiagonal(t *testing.T) {
	// Diagonal boundary needs an ensemble of axis stumps.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == (y[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(x)); frac < 0.95 {
		t.Fatalf("diagonal training accuracy = %v, want >= 0.95", frac)
	}
}

func TestTrainingErrorDecreasesWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		if a*a+b*b > 1.2 { // ring boundary, hard for stumps
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	trainErr := func(rounds int) float64 {
		m, err := Train(x, y, Config{Rounds: rounds})
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for i := range x {
			if m.Predict(x[i]) != (y[i] == 1) {
				wrong++
			}
		}
		return float64(wrong) / float64(len(x))
	}
	e5, e80 := trainErr(5), trainErr(80)
	if e80 > e5 {
		t.Fatalf("training error grew with rounds: %v -> %v", e5, e80)
	}
}

func TestScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		if x[i][0] > 0.1*rng.NormFloat64() {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Rounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		s := m.Score(x[i])
		if s < -1-1e-12 || s > 1+1e-12 || math.IsNaN(s) {
			t.Fatalf("score %v out of [-1,1]", s)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 0}, Config{}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 3}, Config{}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 150; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		if x[i][0]-x[i][2] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	a, err := Train(x, y, Config{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, Config{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds() != b.Rounds() {
		t.Fatal("round count differs")
	}
	probe := []float64{0.2, -0.7, 0.4}
	if a.Score(probe) != b.Score(probe) {
		t.Fatal("scores differ across identical runs")
	}
}

func TestConstantFeatureIgnored(t *testing.T) {
	// A constant feature offers no threshold; training must still work
	// using the informative one.
	x := [][]float64{{5, 1}, {5, 2}, {5, 8}, {5, 9}}
	y := []int{0, 0, 1, 1}
	m, err := Train(x, y, Config{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if m.Predict(x[i]) != (y[i] == 1) {
			t.Fatalf("sample %d misclassified", i)
		}
	}
	for _, s := range m.Stumps {
		if s.Feature == 0 {
			t.Fatal("stump built on the constant feature")
		}
	}
}

func TestAlphasPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
		if x[i][0]+0.3*x[i][1] > 0.2 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, Config{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range m.Alphas {
		if a <= 0 {
			t.Fatalf("alpha %d = %v, want positive (weak learner better than chance)", i, a)
		}
	}
}

func TestClassBalanceRaisesMinorityRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var x [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		v := rng.NormFloat64()
		lab := 0
		if i%15 == 0 {
			v += 1.2 // weakly separated minority
			lab = 1
		}
		x = append(x, []float64{v})
		y = append(y, lab)
	}
	recall := func(cb bool) float64 {
		m, err := Train(x, y, Config{Rounds: 40, ClassBalance: cb})
		if err != nil {
			t.Fatal(err)
		}
		tp, pos := 0, 0
		for i := range x {
			if y[i] == 1 {
				pos++
				if m.Predict(x[i]) {
					tp++
				}
			}
		}
		return float64(tp) / float64(pos)
	}
	if recall(true) < recall(false) {
		t.Fatalf("class balance lowered recall: %v vs %v", recall(true), recall(false))
	}
}
