package geom

import (
	"errors"
	"fmt"
)

// ErrNotRectilinear is returned when a polygon has a non-axis-parallel edge.
var ErrNotRectilinear = errors.New("geom: polygon edge is not axis-parallel")

// Polygon is a simple rectilinear polygon given as an ordered vertex ring.
// The ring is implicitly closed: the last vertex connects back to the first.
// Vertices may wind in either direction.
type Polygon []Point

// Validate checks that p has at least 4 vertices and that every edge is
// axis-parallel with nonzero length.
func (p Polygon) Validate() error {
	if len(p) < 4 {
		return fmt.Errorf("geom: polygon needs >= 4 vertices, got %d", len(p))
	}
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		horizontal := a.Y == b.Y && a.X != b.X
		vertical := a.X == b.X && a.Y != b.Y
		if !horizontal && !vertical {
			return fmt.Errorf("%w: edge %v -> %v", ErrNotRectilinear, a, b)
		}
	}
	return nil
}

// Bounds returns the bounding rectangle of p, empty for an empty polygon.
func (p Polygon) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	r := Rect{Min: p[0], Max: p[0]}
	for _, v := range p[1:] {
		r.Min.X = min(r.Min.X, v.X)
		r.Min.Y = min(r.Min.Y, v.Y)
		r.Max.X = max(r.Max.X, v.X)
		r.Max.Y = max(r.Max.Y, v.Y)
	}
	return r
}

// Area returns the absolute enclosed area of p via the shoelace formula.
func (p Polygon) Area() int64 {
	if len(p) < 3 {
		return 0
	}
	var s int64
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		s += int64(a.X)*int64(b.Y) - int64(b.X)*int64(a.Y)
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

// Translate returns p moved by d.
func (p Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = v.Add(d)
	}
	return out
}

// FromRect returns the 4-vertex polygon equivalent to r (counter-clockwise).
func FromRect(r Rect) Polygon {
	return Polygon{
		{X: r.Min.X, Y: r.Min.Y},
		{X: r.Max.X, Y: r.Min.Y},
		{X: r.Max.X, Y: r.Max.Y},
		{X: r.Min.X, Y: r.Max.Y},
	}
}

// Rectangles decomposes a valid rectilinear polygon into non-overlapping
// rectangles using horizontal slab decomposition. The union of the returned
// rectangles equals the polygon interior. It returns an error if p is not a
// valid rectilinear ring.
func (p Polygon) Rectangles() ([]Rect, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Collect distinct y coordinates (slab boundaries).
	ys := make([]int, 0, len(p))
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if !seen[v.Y] {
			seen[v.Y] = true
			ys = append(ys, v.Y)
		}
	}
	sortInts(ys)

	var out []Rect
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		mid := y0 // any scanline inside the slab; use y0 since edges at y0 bound below
		_ = mid
		// Find vertical edges crossing the open slab (y0, y1).
		var xs []int
		for j := range p {
			a, b := p[j], p[(j+1)%len(p)]
			if a.X != b.X {
				continue // horizontal edge
			}
			lo, hi := min(a.Y, b.Y), max(a.Y, b.Y)
			if lo <= y0 && y1 <= hi {
				xs = append(xs, a.X)
			}
		}
		sortInts(xs)
		// Even-odd fill between successive crossing x positions.
		for k := 0; k+1 < len(xs); k += 2 {
			if xs[k] < xs[k+1] {
				out = append(out, R(xs[k], y0, xs[k+1], y1))
			}
		}
	}
	return mergeVertical(out), nil
}

// mergeVertical greedily merges vertically adjacent rectangles with equal x
// extents to reduce fragment count. Input rectangles must be non-overlapping.
func mergeVertical(rs []Rect) []Rect {
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				a, b := rs[i], rs[j]
				if a.Min.X == b.Min.X && a.Max.X == b.Max.X &&
					(a.Max.Y == b.Min.Y || b.Max.Y == a.Min.Y) {
					rs[i] = a.Union(b)
					rs = append(rs[:j], rs[j+1:]...)
					merged = true
					j--
				}
			}
		}
	}
	return rs
}

func sortInts(xs []int) {
	// Insertion sort: slab coordinate lists are tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
