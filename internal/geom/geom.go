// Package geom provides integer rectilinear geometry primitives for VLSI
// layout processing.
//
// All coordinates are in layout database units (conventionally nanometres).
// Rectangles are half-open: a Rect contains points p with
// Min.X <= p.X < Max.X and Min.Y <= p.Y < Max.Y. This matches raster
// semantics and makes abutting rectangles tile without overlap.
package geom

import (
	"fmt"
	"math"
)

// Point is an integer coordinate pair in database units.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return r.Min.X <= p.X && p.X < r.Max.X && r.Min.Y <= p.Y && p.Y < r.Max.Y
}

// String returns "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a half-open axis-aligned rectangle with Min.X <= Max.X and
// Min.Y <= Max.Y when canonical. The zero Rect is empty.
type Rect struct {
	Min, Max Point
}

// R is shorthand for a canonical rectangle spanning (x0,y0)-(x1,y1).
// The coordinates may be given in any order.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{X: x0, Y: y0}, Max: Point{X: x1, Y: y1}}
}

// Canon returns r with Min and Max ordered canonically.
func (r Rect) Canon() Rect { return R(r.Min.X, r.Min.Y, r.Max.X, r.Max.Y) }

// Dx returns the width of r.
func (r Rect) Dx() int { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() int { return r.Max.Y - r.Min.Y }

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Area returns the area of r in square database units, 0 if empty.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.Dx()) * int64(r.Dy())
}

// Center returns the integer centre point of r (rounded down).
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Min: r.Min.Add(d), Max: r.Max.Add(d)}
}

// Expand grows r by m units on every side. Negative m shrinks; the result
// of shrinking past empty is an empty rectangle.
func (r Rect) Expand(m int) Rect {
	out := Rect{
		Min: Point{X: r.Min.X - m, Y: r.Min.Y - m},
		Max: Point{X: r.Max.X + m, Y: r.Max.Y + m},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersect returns the largest rectangle contained in both r and s.
// If the rectangles do not overlap, the result is an empty Rect.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{X: max(r.Min.X, s.Min.X), Y: max(r.Min.Y, s.Min.Y)},
		Max: Point{X: min(r.Max.X, s.Max.X), Y: min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
// An empty rectangle is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Point{X: min(r.Min.X, s.Min.X), Y: min(r.Min.Y, s.Min.Y)},
		Max: Point{X: max(r.Max.X, s.Max.X), Y: max(r.Max.Y, s.Max.Y)},
	}
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// ContainsRect reports whether every point of s is in r.
// Every rectangle contains the empty rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// Eq reports whether r and s describe the same point set.
func (r Rect) Eq(s Rect) bool {
	return r == s || (r.Empty() && s.Empty())
}

// MirrorX reflects r across the vertical line x = axis.
func (r Rect) MirrorX(axis int) Rect {
	return R(2*axis-r.Min.X, r.Min.Y, 2*axis-r.Max.X, r.Max.Y)
}

// MirrorY reflects r across the horizontal line y = axis.
func (r Rect) MirrorY(axis int) Rect {
	return R(r.Min.X, 2*axis-r.Min.Y, r.Max.X, 2*axis-r.Max.Y)
}

// Rotate90 rotates r by 90 degrees counter-clockwise about the origin.
func (r Rect) Rotate90() Rect {
	return R(-r.Min.Y, r.Min.X, -r.Max.Y, r.Max.X)
}

// String returns "[x0,y0 - x1,y1]".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d - %d,%d]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// DistanceSq returns the squared Euclidean distance between the closest
// points of r and s, 0 if they overlap or touch.
func (r Rect) DistanceSq(s Rect) int64 {
	dx := axisGap(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := axisGap(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return int64(dx)*int64(dx) + int64(dy)*int64(dy)
}

// Distance returns the Euclidean distance between the closest points of r
// and s, 0 if they overlap or touch.
func (r Rect) Distance(s Rect) float64 {
	return math.Sqrt(float64(r.DistanceSq(s)))
}

// axisGap returns the gap between intervals [a0,a1) and [b0,b1) on one
// axis, 0 when they overlap or touch.
func axisGap(a0, a1, b0, b1 int) int {
	switch {
	case a1 < b0:
		return b0 - a1
	case b1 < a0:
		return a0 - b1
	default:
		return 0
	}
}
