package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectCanonical(t *testing.T) {
	r := R(10, 20, 0, 5)
	if r.Min != Pt(0, 5) || r.Max != Pt(10, 20) {
		t.Fatalf("R did not canonicalize: %v", r)
	}
	if got := r.Canon(); got != r {
		t.Fatalf("Canon changed canonical rect: %v", got)
	}
}

func TestRectDims(t *testing.T) {
	r := R(2, 3, 12, 8)
	if r.Dx() != 10 || r.Dy() != 5 {
		t.Fatalf("Dx/Dy = %d/%d, want 10/5", r.Dx(), r.Dy())
	}
	if r.Area() != 50 {
		t.Fatalf("Area = %d, want 50", r.Area())
	}
	if r.Center() != Pt(7, 5) {
		t.Fatalf("Center = %v, want (7,5)", r.Center())
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{}, true},
		{R(0, 0, 0, 10), true},
		{R(0, 0, 10, 0), true},
		{R(0, 0, 1, 1), false},
		{Rect{Min: Pt(5, 5), Max: Pt(5, 5)}, true},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); !got.Eq(R(5, 5, 10, 10)) {
		t.Fatalf("Intersect = %v", got)
	}
	c := R(20, 20, 30, 30)
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("disjoint Intersect = %v, want empty", got)
	}
	// Touching edges do not intersect (half-open).
	d := R(10, 0, 20, 10)
	if got := a.Intersect(d); !got.Empty() {
		t.Fatalf("touching Intersect = %v, want empty", got)
	}
}

func TestRectUnionIdentity(t *testing.T) {
	a := R(1, 2, 3, 4)
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatalf("empty Union a = %v, want %v", got, a)
	}
}

func TestRectOverlapsContains(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.Overlaps(R(9, 9, 20, 20)) {
		t.Error("expected overlap")
	}
	if a.Overlaps(R(10, 0, 20, 10)) {
		t.Error("touching rects must not overlap (half-open)")
	}
	if !a.ContainsRect(R(2, 2, 8, 8)) {
		t.Error("expected containment")
	}
	if a.ContainsRect(R(2, 2, 11, 8)) {
		t.Error("unexpected containment")
	}
	if !a.ContainsRect(Rect{}) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectExpand(t *testing.T) {
	a := R(5, 5, 10, 10)
	if got := a.Expand(2); !got.Eq(R(3, 3, 12, 12)) {
		t.Fatalf("Expand(2) = %v", got)
	}
	if got := a.Expand(-3); !got.Empty() {
		t.Fatalf("over-shrink should be empty, got %v", got)
	}
}

func TestRectMirrorRotate(t *testing.T) {
	a := R(1, 2, 4, 6)
	mx := a.MirrorX(0)
	if !mx.Eq(R(-4, 2, -1, 6)) {
		t.Fatalf("MirrorX = %v", mx)
	}
	if got := mx.MirrorX(0); !got.Eq(a) {
		t.Fatalf("MirrorX involution failed: %v", got)
	}
	my := a.MirrorY(3)
	if !my.Eq(R(1, 0, 4, 4)) {
		t.Fatalf("MirrorY = %v", my)
	}
	r4 := a.Rotate90().Rotate90().Rotate90().Rotate90()
	if !r4.Eq(a) {
		t.Fatalf("four Rotate90 != identity: %v", r4)
	}
	if a.Rotate90().Area() != a.Area() {
		t.Fatal("rotation must preserve area")
	}
}

func TestRectDistance(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want int64
	}{
		{R(5, 5, 6, 6), 0},          // inside
		{R(10, 0, 20, 10), 0},       // touching
		{R(13, 0, 20, 10), 9},       // 3 apart in x
		{R(13, 14, 20, 20), 9 + 16}, // 3 in x, 4 in y
		{R(0, 30, 10, 40), 400},     // 20 in y
	}
	for _, c := range cases {
		if got := a.DistanceSq(c.b); got != c.want {
			t.Errorf("DistanceSq(%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestPointInRect(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !Pt(0, 0).In(r) {
		t.Error("Min corner must be inside (half-open)")
	}
	if Pt(10, 10).In(r) {
		t.Error("Max corner must be outside (half-open)")
	}
	if Pt(5, 10).In(r) || Pt(10, 5).In(r) {
		t.Error("Max edges must be outside")
	}
}

func randRect(rng *rand.Rand) Rect {
	return R(rng.Intn(200)-100, rng.Intn(200)-100, rng.Intn(200)-100, rng.Intn(200)-100)
}

func TestQuickIntersectCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		return a.Intersect(b).Eq(b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectContained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		i := a.Intersect(b)
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionContains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAreaInclusionExclusionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		// |A ∪ B| >= |A| + |B| - |A ∩ B| holds with equality for the true
		// union; the bounding-box Union can only be larger.
		return a.Union(b).Area() >= a.Area()+b.Area()-a.Intersect(b).Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		if a.Empty() || b.Empty() {
			return true
		}
		if a.DistanceSq(b) != b.DistanceSq(a) {
			return false
		}
		if a.Overlaps(b) && a.DistanceSq(b) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolygonValidate(t *testing.T) {
	good := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid polygon rejected: %v", err)
	}
	diag := Polygon{Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(0, 5)}
	if err := diag.Validate(); err == nil {
		t.Fatal("diagonal edge accepted")
	}
	short := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	if err := short.Validate(); err == nil {
		t.Fatal("triangle accepted as rectilinear polygon")
	}
}

func TestPolygonAreaRect(t *testing.T) {
	p := FromRect(R(0, 0, 10, 20))
	if p.Area() != 200 {
		t.Fatalf("Area = %d, want 200", p.Area())
	}
	if !p.Bounds().Eq(R(0, 0, 10, 20)) {
		t.Fatalf("Bounds = %v", p.Bounds())
	}
}

func TestPolygonLShapeDecomposition(t *testing.T) {
	// L shape: 20x20 square minus 10x10 top-right quadrant.
	l := Polygon{Pt(0, 0), Pt(20, 0), Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20)}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Area() != 300 {
		t.Fatalf("L area = %d, want 300", l.Area())
	}
	rects, err := l.Rectangles()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, r := range rects {
		sum += r.Area()
		for j := i + 1; j < len(rects); j++ {
			if r.Overlaps(rects[j]) {
				t.Fatalf("decomposition rects overlap: %v and %v", r, rects[j])
			}
		}
	}
	if sum != 300 {
		t.Fatalf("decomposed area = %d, want 300", sum)
	}
}

func TestPolygonUShapeDecomposition(t *testing.T) {
	// U shape: 30x20 with a 10x10 notch cut from the top middle.
	u := Polygon{
		Pt(0, 0), Pt(30, 0), Pt(30, 20), Pt(20, 20),
		Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20),
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(30*20 - 10*10)
	if u.Area() != want {
		t.Fatalf("U area = %d, want %d", u.Area(), want)
	}
	rects, err := u.Rectangles()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range rects {
		sum += r.Area()
	}
	if sum != want {
		t.Fatalf("decomposed area = %d, want %d", sum, want)
	}
}

func TestPolygonTranslate(t *testing.T) {
	p := FromRect(R(0, 0, 5, 5)).Translate(Pt(10, -3))
	if !p.Bounds().Eq(R(10, -3, 15, 2)) {
		t.Fatalf("translated bounds = %v", p.Bounds())
	}
	if p.Area() != 25 {
		t.Fatalf("translate changed area: %d", p.Area())
	}
}

func TestQuickPolygonRectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		r := randRect(rng)
		if r.Empty() {
			return true
		}
		p := FromRect(r)
		if p.Area() != r.Area() {
			return false
		}
		rects, err := p.Rectangles()
		if err != nil || len(rects) != 1 {
			return false
		}
		return rects[0].Eq(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
