package scanfarm

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// densityDetector deterministically flags windows by drawn density; it
// is translation-invariant (Density is window-relative), like every
// shipped detector, which is what the clip cache relies on.
type densityDetector struct{ thr float64 }

func (d densityDetector) Name() string            { return "density" }
func (d densityDetector) Fit([]core.LabeledClip) error { return nil }
func (d densityDetector) Threshold() float64      { return d.thr }
func (densityDetector) Score(c layout.Clip) (float64, error) {
	return c.Density(), nil
}

// testChip builds a chip with a deterministic mix of dense and sparse
// tiles so a density scan flags a scattered subset of windows.
func testChip(t testing.TB, tiles int) *layout.Layout {
	t.Helper()
	l := layout.New("chip")
	for i := 0; i < tiles; i++ {
		for j := 0; j < tiles; j++ {
			x, y := i*1024, j*1024
			var r geom.Rect
			if (i+j)%3 == 0 {
				r = geom.R(x, y, x+900, y+900) // dense: flagged
			} else {
				r = geom.R(x, y, x+64, y+64) // sparse
			}
			if err := l.AddRect(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l
}

// cellChip builds a repeated-standard-cell chip: the same cell pattern
// stamped on a regular grid, so canonical clip contents repeat heavily
// across windows — the workload the content-addressed cache exists for.
func cellChip(t testing.TB, tiles int) *layout.Layout {
	t.Helper()
	l := layout.New("cells")
	cell := []geom.Rect{
		geom.R(100, 100, 400, 160),
		geom.R(100, 300, 400, 360),
		geom.R(600, 100, 660, 900),
		geom.R(100, 600, 900, 660),
	}
	for i := 0; i < tiles; i++ {
		for j := 0; j < tiles; j++ {
			off := geom.Pt(i*1024, j*1024)
			for _, r := range cell {
				if err := l.AddRect(r.Translate(off)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return l
}

// referenceFindings is the ground truth a farm run must reproduce: the
// plain single-process core.ScanCtx result in enumeration order.
func referenceFindings(t testing.TB, chip *layout.Layout, det core.Detector, cfg Config) []core.Finding {
	t.Helper()
	cfg = cfg.withDefaults()
	res, err := core.ScanCtx(context.Background(), chip, det, core.ScanConfig{
		ClipNM:    cfg.ClipNM,
		CoreFrac:  cfg.CoreFrac,
		StrideNM:  cfg.StrideNM,
		SkipEmpty: cfg.SkipEmpty,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("reference scan interrupted")
	}
	return res.Findings
}

// flakyDetector fails (or panics) on its first Fails calls globally,
// then behaves like the inner detector: the transient-fault workload
// that retries must absorb without losing a finding.
type flakyDetector struct {
	inner core.Detector
	fails *atomic.Int64
	panics bool
}

func (d *flakyDetector) Name() string                 { return "flaky" }
func (d *flakyDetector) Fit([]core.LabeledClip) error { return nil }
func (d *flakyDetector) Threshold() float64           { return d.inner.Threshold() }
func (d *flakyDetector) Score(c layout.Clip) (float64, error) {
	if d.fails.Add(-1) >= 0 {
		if d.panics {
			panic("transient chaos")
		}
		return 0, errTransient
	}
	return d.inner.Score(c)
}

// poisonMarker is a shape size no generated tile produces, even after
// window clipping (tile shapes clip to widths {64, 132, 256, 644, 768,
// 900}); windows containing the full marker are permanently poison.
// Content-based (not position-based) because the coordinator scores
// canonical translated clips. Small enough (333 < stride 512) that at
// least one window contains it unclipped.
var poisonMarker = geom.Pt(333, 333)

// poisonDetector panics on any clip containing the poison marker — a
// permanently failing region whose shard must end up quarantined.
type poisonDetector struct {
	inner core.Detector
}

func (d *poisonDetector) Name() string                 { return "poison" }
func (d *poisonDetector) Fit([]core.LabeledClip) error { return nil }
func (d *poisonDetector) Threshold() float64           { return d.inner.Threshold() }
func (d *poisonDetector) Score(c layout.Clip) (float64, error) {
	for _, s := range c.Shapes {
		if s.Dx() == poisonMarker.X && s.Dy() == poisonMarker.Y {
			panic("poison window")
		}
	}
	return d.inner.Score(c)
}

// poisonRect returns a poison-marker shape anchored at (x, y).
func poisonRect(x, y int) geom.Rect {
	return geom.R(x, y, x+poisonMarker.X, y+poisonMarker.Y)
}

// testChipEmpty returns a chip with no geometry.
func testChipEmpty() *layout.Layout { return layout.New("empty") }

// shardOf returns the shard ID owning the window centered at c.
func shardOf(p Plan, c geom.Point) int {
	row := (c.Y - p.Bounds.Min.Y - p.coreHalf) / p.StrideNM
	return row / p.ShardRows
}
