// The scan journal: a framed-CRC32 append-only record of completed and
// quarantined shards, the persistence layer behind `hsdscan -resume`.
//
// Layout of the file:
//
//	header frame:  magic "HSDSJh1\n" | len u64 | crc32 u32 | gob(Meta)
//	record frames: magic "HSDSJr1\n" | len u64 | crc32 u32 | gob(ShardRecord)
//
// The framing is the same integrity scheme as the model/checkpoint
// formats (internal/nn): a torn tail — the journal's crash mode, since
// records are appended and fsynced one at a time — is detected by a
// short or CRC-failing final frame and discarded on load, so a
// SIGKILLed scan resumes from the last durable shard. Everything before
// the torn frame is intact by construction.

package scanfarm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
)

var (
	journalHeaderMagic = []byte("HSDSJh1\n")
	journalRecordMagic = []byte("HSDSJr1\n")
)

// frameHeaderLen is the frame suffix after the magic: payload length
// (u64) plus payload CRC32 (u32), matching the nn file formats.
const frameHeaderLen = 8 + 4

// maxFrameBytes bounds a declared payload so a corrupt length field
// cannot drive a giant allocation.
const maxFrameBytes = 1 << 30

// Meta binds a journal to one specific scan. Every field must match for
// a resume to be sound: a different chip, window geometry, or shard
// layout would make recorded shard IDs meaningless.
type Meta struct {
	Chip      string
	Shapes    int
	Bounds    geom.Rect
	ClipNM    int
	CoreFrac  float64
	StrideNM  int
	ShardRows int
	NumShards int
	SkipEmpty bool
	Detector  string
}

// ShardState is the terminal state of a journaled shard.
type ShardState uint8

const (
	// ShardDone is a fully scanned shard with its findings recorded.
	ShardDone ShardState = iota + 1
	// ShardQuarantined is a poison shard that exhausted its attempts;
	// its findings are unknown and Err records the last failure.
	ShardQuarantined
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case ShardDone:
		return "done"
	case ShardQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ShardRecord is one journaled shard outcome.
type ShardRecord struct {
	ShardID  int
	State    ShardState
	Attempts int
	// Err is the last failure message of a quarantined shard.
	Err string
	// Findings are the shard's flagged windows in window-enumeration
	// order (row-major within the shard). Empty for quarantined shards.
	Findings []core.Finding
}

// ErrJournalMismatch is returned when a journal's Meta does not match
// the scan being resumed.
var ErrJournalMismatch = errors.New("scanfarm: journal belongs to a different scan")

// Journal is an open, appendable scan journal. Append is safe for
// concurrent use.
type Journal struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// CreateJournal creates (truncating) a journal at path and durably
// writes its header frame.
func CreateJournal(path string, meta Meta) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scanfarm: create journal: %w", err)
	}
	payload, err := gobEncode(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := writeFrame(f, journalHeaderMagic, payload); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("scanfarm: fsync journal: %w", err)
	}
	syncDir(path)
	return &Journal{path: path, f: f}, nil
}

// LoadJournal reads a journal, tolerating a torn tail: it returns the
// header Meta, every intact shard record keyed by shard ID, and the
// byte offset where the intact prefix ends (the truncation point for
// re-opening in append mode). A later duplicate record for the same
// shard ID wins, though the coordinator never writes duplicates.
func LoadJournal(path string) (Meta, map[int]ShardRecord, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, 0, fmt.Errorf("scanfarm: open journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	payload, n, err := readFrame(br, journalHeaderMagic)
	if err != nil {
		return Meta{}, nil, 0, fmt.Errorf("scanfarm: journal header: %w", err)
	}
	var meta Meta
	if err := gobDecode(payload, &meta); err != nil {
		return Meta{}, nil, 0, fmt.Errorf("scanfarm: journal header: %w", err)
	}
	offset := n
	records := make(map[int]ShardRecord)
	for {
		payload, n, err := readFrame(br, journalRecordMagic)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before it is intact;
			// the caller truncates here and rescans the rest.
			break
		}
		var rec ShardRecord
		if err := gobDecode(payload, &rec); err != nil {
			break
		}
		records[rec.ShardID] = rec
		offset += n
	}
	return meta, records, offset, nil
}

// ResumeJournal loads the journal at path, validates it against meta,
// truncates any torn tail, and re-opens it for appending. It returns
// the journal and the intact shard records to skip.
func ResumeJournal(path string, meta Meta) (*Journal, map[int]ShardRecord, error) {
	got, records, offset, err := LoadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if got != meta {
		return nil, nil, fmt.Errorf("%w: journal %+v, scan %+v", ErrJournalMismatch, got, meta)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("scanfarm: reopen journal: %w", err)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("scanfarm: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("scanfarm: seek journal: %w", err)
	}
	return &Journal{path: path, f: f}, records, nil
}

// Append durably records one shard outcome: the frame is written and
// fsynced before Append returns, so a completed shard survives any
// later crash.
func (j *Journal) Append(rec ShardRecord) error {
	payload, err := gobEncode(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := writeFrame(j.f, journalRecordMagic, payload); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("scanfarm: fsync journal: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// writeFrame emits magic | payload length | payload CRC32 | payload.
func writeFrame(w io.Writer, magic, payload []byte) error {
	header := make([]byte, len(magic)+frameHeaderLen)
	copy(header, magic)
	binary.BigEndian.PutUint64(header[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("scanfarm: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("scanfarm: write frame payload: %w", err)
	}
	return nil
}

// readFrame consumes one frame, verifying magic and CRC, and returns
// the payload plus the total frame length in bytes. A clean
// end-of-file before any magic byte returns io.EOF; anything else wrong
// (bad magic, short frame, CRC mismatch) returns a descriptive error.
func readFrame(br *bufio.Reader, magic []byte) ([]byte, int64, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("scanfarm: frame magic truncated: %w", err)
	}
	if !bytes.Equal(head, magic) {
		return nil, 0, fmt.Errorf("scanfarm: bad frame magic %q", head)
	}
	header := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, 0, fmt.Errorf("scanfarm: frame header truncated (torn write?): %w", err)
	}
	size := binary.BigEndian.Uint64(header)
	wantCRC := binary.BigEndian.Uint32(header[8:])
	if size > maxFrameBytes {
		return nil, 0, fmt.Errorf("scanfarm: implausible frame size %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("scanfarm: frame truncated: want %d bytes (torn write?): %w", size, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, 0, fmt.Errorf("scanfarm: frame checksum %08x, want %08x", got, wantCRC)
	}
	return payload, int64(len(magic)+frameHeaderLen) + int64(size), nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("scanfarm: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("scanfarm: decode: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs the directory containing path so a just
// written file's directory entry is durable (matches the nn atomic
// writer's behavior; some filesystems do not support directory fsync).
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
