// Chaos gates for the scan farm, wired into ci.sh:
//
//   - TestChaosFarmKillResume: the scan is "killed" (hard-cancelled at
//     injected fault points, journal left as-is on disk, coordinator
//     state discarded) and resumed from the journal repeatedly; the
//     stitched findings must be byte-identical to an uninterrupted run.
//   - TestChaosFarmFaultMatrix: injected worker faults — errors,
//     panics, latency — at the window-score site produce retries or
//     quarantines, never a crash, a lost finding, or a duplicate.
//
// These are the scan-path twins of the nn kill-resume training gates.

package scanfarm

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/router"
)

// fnDetector is a pure-function detector for router cascades in chaos
// tests; like densityDetector it is deterministic and translation-
// invariant, which the journal and clip cache rely on.
type fnDetector struct {
	name string
	thr  float64
	fn   func(layout.Clip) float64
}

func (d fnDetector) Name() string                         { return d.name }
func (d fnDetector) Fit([]core.LabeledClip) error         { return nil }
func (d fnDetector) Threshold() float64                   { return d.thr }
func (d fnDetector) Score(c layout.Clip) (float64, error) { return d.fn(c), nil }

// chaosRouter builds a fitted two-stage router whose bands split the
// test chip's windows between the stages: dense windows answer at the
// cheap stage, sparse ones escalate — so kill-resume covers the routed
// scan path end to end.
func chaosRouter(t testing.TB) *router.Router {
	t.Helper()
	r := router.New("router", []router.Stage{
		{Name: "cheap", Detector: fnDetector{name: "cheap", thr: 0.5, fn: func(c layout.Clip) float64 {
			d := c.Density()
			return d + 0.1*math.Sin(53*d)
		}}},
		{Name: "deep", Detector: fnDetector{name: "deep", thr: 0.5, fn: func(c layout.Clip) float64 {
			return c.Density()
		}}},
	}, router.Config{})
	err := r.SetCalibrations([]router.Calibration{
		{Weights: []float64{4}, Mean: []float64{0.5}, InvStd: []float64{1},
			Band: router.Band{Lo: 0.05, Hi: 0.7}},
		{Weights: []float64{2, 2}, Mean: []float64{0.5, 0.5}, InvStd: []float64{1, 1},
			Band: router.AlwaysEscalate},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestChaosFarmKillResume(t *testing.T) {
	cases := []struct {
		name string
		det  core.Detector
	}{
		{"density", densityDetector{thr: 0.5}},
		{"router", chaosRouter(t)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runKillResume(t, tc.det) })
	}
}

func runKillResume(t *testing.T, det core.Detector) {
	chip := testChip(t, 10)
	base := Config{SkipEmpty: true, Workers: 3, ShardRows: 1, Retry: fastRetry()}
	want := referenceFindings(t, chip, det, base)
	meta := base.Meta(chip, det.Name())
	path := filepath.Join(t.TempDir(), "scan.journal")

	// Kill after 2 shards, then after 5 more, then run to completion:
	// three generations over one journal, like a flaky batch box.
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	kills := []int{2, 5}
	completedSoFar := 0
	for gen := 0; gen <= len(kills); gen++ {
		cfg := base
		var completed map[int]ShardRecord
		if gen > 0 {
			j, completed, err = ResumeJournal(path, meta)
			if err != nil {
				t.Fatalf("generation %d resume: %v", gen, err)
			}
			if len(completed) < completedSoFar {
				t.Fatalf("generation %d: journal lost records: %d < %d",
					gen, len(completed), completedSoFar)
			}
			cfg.Completed = completed
		}
		cfg.Journal = j
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if gen < len(kills) {
			killAfter := len(completed) + kills[gen]
			ctx, cancel = context.WithCancel(ctx)
			cfg.Progress = func(done, total int) {
				if done >= killAfter {
					cancel()
				}
			}
		}
		res, err := Run(ctx, chip, det, cfg)
		cancel()
		j.Close()
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		completedSoFar = res.Completed
		if gen == len(kills) {
			if res.Interrupted {
				t.Fatal("final generation interrupted")
			}
			if !reflect.DeepEqual(res.Findings, want) {
				t.Fatalf("kill-resume findings diverge from uninterrupted run:\ngot  %v\nwant %v",
					res.Findings, want)
			}
		}
	}
}

func TestChaosFarmFaultMatrix(t *testing.T) {
	defer faultinject.Reset()
	chip := testChip(t, 8)
	det := densityDetector{thr: 0.5}
	base := Config{
		SkipEmpty:   true,
		Workers:     3,
		ShardRows:   1,
		MaxAttempts: 25,
		Retry:       fastRetry(),
		Breaker:     resilience.BreakerConfig{FailureThreshold: 1000},
	}
	want := referenceFindings(t, chip, det, base)

	faults := []struct {
		name  string
		fault faultinject.Fault
	}{
		{"errors", faultinject.Fault{Err: errTransient, Count: 11}},
		{"panics", faultinject.Fault{Panic: "chaos", Count: 7, Skip: 2}},
		{"latency", faultinject.Fault{Latency: 2 * time.Millisecond, Count: 40}},
		{"mixed", faultinject.Fault{Latency: time.Millisecond, Err: errTransient, Count: 9, Skip: 5}},
	}
	for _, tc := range faults {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.Reset()
			faultinject.Set(WindowScoreSite, tc.fault)
			res, err := Run(context.Background(), chip, det, base)
			if err != nil {
				t.Fatal(err)
			}
			if res.Interrupted {
				t.Fatal("faulted run interrupted")
			}
			if len(res.Quarantined) != 0 {
				t.Fatalf("transient %s quarantined shards: %+v", tc.name, res.Quarantined)
			}
			if !reflect.DeepEqual(res.Findings, want) {
				t.Fatalf("findings diverged under %s:\ngot  %v\nwant %v", tc.name, res.Findings, want)
			}
		})
	}

	// Shard-attempt faults (the whole attempt dies before any window)
	// are likewise absorbed.
	t.Run("attempt-errors", func(t *testing.T) {
		faultinject.Reset()
		faultinject.Set(ShardAttemptSite, faultinject.Fault{Err: errTransient, Count: 6})
		res, err := Run(context.Background(), chip, det, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Quarantined) != 0 || !reflect.DeepEqual(res.Findings, want) {
			t.Fatalf("attempt faults lost findings: quarantined=%d", len(res.Quarantined))
		}
	})
}

// TestChaosFarmConcurrentCache hammers one shared cache from many
// workers while faults force retries — the -race gate for the cache and
// coordinator bookkeeping.
func TestChaosFarmConcurrentCache(t *testing.T) {
	defer faultinject.Reset()
	chip := cellChip(t, 8)
	det := densityDetector{thr: 0.1}
	faultinject.Set(WindowScoreSite, faultinject.Fault{Err: errTransient, Count: 5, Skip: 7})
	cfg := Config{
		SkipEmpty: true,
		Workers:   8,
		ShardRows: 1,
		// Smaller than the chip's distinct canonical-clip count (~16)
		// so the LRU eviction path is exercised under contention.
		CacheSize:   8,
		MaxAttempts: 25,
		Retry:       fastRetry(),
	}
	res, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.CacheSize = 0
	cfg2.Workers = 1
	faultinject.Reset()
	want, err := Run(context.Background(), chip, det, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Findings, want.Findings) {
		t.Fatal("concurrent cached scan diverged from serial uncached scan")
	}
	if res.Cache.Evictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", res.Cache)
	}
}
