package scanfarm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
)

func testMeta() Meta {
	return Meta{
		Chip:      "chip",
		Shapes:    42,
		Bounds:    geom.R(0, 0, 8192, 8192),
		ClipNM:    1024,
		CoreFrac:  0.5,
		StrideNM:  512,
		ShardRows: 2,
		NumShards: 8,
		SkipEmpty: true,
		Detector:  "density",
	}
}

func testRecords() []ShardRecord {
	return []ShardRecord{
		{ShardID: 0, State: ShardDone, Attempts: 1, Findings: []core.Finding{
			{Center: geom.Pt(256, 256), Score: 0.91},
			{Center: geom.Pt(768, 256), Score: 0.77},
		}},
		{ShardID: 3, State: ShardQuarantined, Attempts: 3, Err: "detector panic: poison window"},
		{ShardID: 1, State: ShardDone, Attempts: 2, Findings: []core.Finding{
			{Center: geom.Pt(256, 1280), Score: 0.5},
		}},
		{ShardID: 2, State: ShardDone, Attempts: 1},
	}
}

func writeTestJournal(t *testing.T) (string, Meta, []ShardRecord) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scan.journal")
	meta := testMeta()
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, meta, recs
}

func TestJournalRoundTrip(t *testing.T) {
	path, meta, recs := writeTestJournal(t)
	gotMeta, got, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for _, want := range recs {
		if !reflect.DeepEqual(got[want.ShardID], want) {
			t.Fatalf("record %d: %+v, want %+v", want.ShardID, got[want.ShardID], want)
		}
	}
}

// TestJournalTornTailEveryByte is the crash-tolerance sweep: truncating
// the journal at every possible byte offset must either load cleanly
// (prefix of intact records) or — for a cut inside the header — fail
// loudly; a torn tail never corrupts, duplicates, or invents a record.
func TestJournalTornTailEveryByte(t *testing.T) {
	path, meta, recs := writeTestJournal(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, off, err := LoadJournal(path); err != nil {
		t.Fatal(err)
	} else if off != int64(len(full)) {
		t.Fatalf("intact journal valid offset %d, want %d", off, len(full))
	}

	dir := t.TempDir()
	torn := filepath.Join(dir, "torn.journal")
	headerLen := headerFrameLen(t, full)
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		gotMeta, got, off, err := LoadJournal(torn)
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut %d inside header loaded silently", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if gotMeta != meta {
			t.Fatalf("cut %d: meta %+v", cut, gotMeta)
		}
		if off > int64(cut) {
			t.Fatalf("cut %d: valid offset %d beyond file", cut, off)
		}
		// Every loaded record must be byte-exactly one we wrote.
		for id, rec := range got {
			found := false
			for _, want := range recs {
				if want.ShardID == id && reflect.DeepEqual(rec, want) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cut %d: invented or corrupted record %+v", cut, rec)
			}
		}
		// And a full-length cut recovers everything.
		if cut == len(full) && len(got) != len(recs) {
			t.Fatalf("full journal recovered %d records, want %d", len(got), len(recs))
		}
	}
}

// headerFrameLen computes the byte length of the header frame.
func headerFrameLen(t *testing.T, full []byte) int {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "probe.journal")
	// Binary search the smallest prefix that loads without error: that
	// is exactly the header frame.
	lo, hi := 1, len(full)
	for lo < hi {
		mid := (lo + hi) / 2
		if err := os.WriteFile(p, full[:mid], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := LoadJournal(p); err != nil {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TestJournalBitFlipRejected: a flipped payload byte fails the CRC and
// the load keeps only records before the corruption.
func TestJournalBitFlipRejected(t *testing.T) {
	path, _, _ := writeTestJournal(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := headerFrameLen(t, full)
	// Flip a byte inside the first record's payload (past its magic and
	// frame header).
	flip := headerLen + len(journalRecordMagic) + frameHeaderLen + 3
	full[flip] ^= 0xFF
	corrupt := filepath.Join(t.TempDir(), "corrupt.journal")
	if err := os.WriteFile(corrupt, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, off, err := LoadJournal(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("records after the corrupt frame were kept: %d", len(got))
	}
	if off != int64(headerLen) {
		t.Fatalf("valid offset %d, want header end %d", off, headerLen)
	}
}

// TestResumeJournalTornAppend: resuming over a torn tail truncates it
// so appended records form a valid journal again.
func TestResumeJournalTornAppend(t *testing.T) {
	path, meta, recs := writeTestJournal(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record.
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, completed, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != len(recs)-1 {
		t.Fatalf("resumed with %d records, want %d", len(completed), len(recs)-1)
	}
	extra := ShardRecord{ShardID: 7, State: ShardDone, Attempts: 1,
		Findings: []core.Finding{{Center: geom.Pt(99, 99), Score: 1}}}
	if err := j.Append(extra); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("after torn append: %d records, want %d", len(got), len(recs))
	}
	if !reflect.DeepEqual(got[7], extra) {
		t.Fatalf("appended record %+v, want %+v", got[7], extra)
	}
}
