// The shard coordinator: fans deterministic shards out to a pool of
// in-process scan workers and survives everything short of losing the
// journal — worker panics, failing detectors, stuck windows (deadline
// budget), and process death (resume).
//
// Failure containment is layered per worker and per shard:
//
//   - panic isolation: a detector panic is recovered at the window
//     boundary and surfaces as that window's error;
//   - retry: a failed shard attempt is retried with jittered
//     exponential backoff up to MaxAttempts;
//   - quarantine: a shard that exhausts its attempts is recorded as
//     quarantined — with its bounds and last error — and the scan
//     continues, so one poison window costs its shard, not the run;
//   - breaker: each worker carries a circuit breaker over its attempt
//     outcomes; a worker seeing consecutive failures pauses for the
//     cool-down instead of hammering (and instead of burning healthy
//     shards' attempts while sick).
//
// Run cancellation (ctx) is not a failure: in-flight shards stop, the
// journal keeps every durable record, and a later Run with Completed
// from LoadJournal finishes the rest with byte-identical findings.

package scanfarm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// Fault-injection sites for chaos tests.
const (
	// ShardAttemptSite fires at the start of every shard attempt.
	ShardAttemptSite = "scanfarm.shard.attempt"
	// WindowScoreSite fires before each window score (cache misses
	// only: a cache hit never runs the detector). Panics armed here are
	// recovered at the window boundary like detector panics.
	WindowScoreSite = "scanfarm.window.score"
)

// Quarantine describes one poison shard the scan gave up on.
type Quarantine struct {
	ShardID  int
	Bounds   geom.Rect
	Attempts int
	Err      string
}

// Result is the outcome of a scan-farm run.
type Result struct {
	// Findings are the flagged windows of every completed shard, in
	// deterministic order: ascending shard ID, then window-enumeration
	// order within the shard. With the default row-band sharding this
	// equals the global row-major window order.
	Findings []core.Finding
	// Shards is the plan's shard count; Windows the plan's window count.
	Shards, Windows int
	// Completed counts shards finished (this run plus resumed).
	Completed int
	// Resumed counts shards skipped because Completed records covered
	// them.
	Resumed int
	// Quarantined lists poison shards in ascending shard ID order.
	Quarantined []Quarantine
	// Interrupted is set when ctx was cancelled before every shard
	// reached a terminal state; Cause is the context error.
	Interrupted bool
	Cause       error
	// Cache is the clip-cache snapshot (zero when the cache is off).
	Cache CacheStats
}

// farmMetrics bundles the coordinator's telemetry; nil disables it.
type farmMetrics struct {
	shardsDone        *telemetry.Counter // scan_shards_total{state="done"}
	shardsQuarantined *telemetry.Counter // scan_shards_total{state="quarantined"}
	shardsResumed     *telemetry.Counter // scan_shards_total{state="resumed"}
	attempts          *telemetry.Counter // scan_shard_attempts_total
	retries           *telemetry.Counter // scan_shard_retries_total
	cacheHits         *telemetry.Counter // scan_cache_hits_total
	cacheMisses       *telemetry.Counter // scan_cache_misses_total
	cacheEvictions    *telemetry.Counter // scan_cache_evictions_total
	quarantined       *telemetry.Gauge   // scan_quarantined_shards
	shardSeconds      *telemetry.Histogram
}

func newFarmMetrics(reg *telemetry.Registry) *farmMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp("scan_shards_total", "Shards by terminal state (done, quarantined, resumed).")
	reg.SetHelp("scan_shard_attempts_total", "Shard scan attempts, including retries.")
	reg.SetHelp("scan_shard_retries_total", "Shard attempts beyond each shard's first.")
	reg.SetHelp("scan_cache_hits_total", "Windows answered by the content-addressed clip cache.")
	reg.SetHelp("scan_cache_misses_total", "Windows that missed the clip cache and ran the detector.")
	reg.SetHelp("scan_cache_evictions_total", "Clip-cache LRU evictions.")
	reg.SetHelp("scan_shard_seconds", "Per-shard wall time of successful attempts.")
	reg.SetHelp("scan_quarantined_shards", "Shards quarantined by the most recent scan, resumed records included.")
	return &farmMetrics{
		shardsDone:        reg.Counter("scan_shards_total", telemetry.L("state", "done")),
		shardsQuarantined: reg.Counter("scan_shards_total", telemetry.L("state", "quarantined")),
		shardsResumed:     reg.Counter("scan_shards_total", telemetry.L("state", "resumed")),
		attempts:          reg.Counter("scan_shard_attempts_total"),
		retries:           reg.Counter("scan_shard_retries_total"),
		cacheHits:         reg.Counter("scan_cache_hits_total"),
		cacheMisses:       reg.Counter("scan_cache_misses_total"),
		cacheEvictions:    reg.Counter("scan_cache_evictions_total"),
		quarantined:       reg.Gauge("scan_quarantined_shards"),
		shardSeconds:      reg.Histogram("scan_shard_seconds", nil),
	}
}

func (m *farmMetrics) shard(state ShardState) {
	if m == nil {
		return
	}
	if state == ShardQuarantined {
		m.shardsQuarantined.Inc()
	} else {
		m.shardsDone.Inc()
	}
}

func (m *farmMetrics) attempt(n int) {
	if m == nil {
		return
	}
	m.attempts.Inc()
	if n > 1 {
		m.retries.Inc()
	}
}

func (m *farmMetrics) cache(hit, evicted bool) {
	if m == nil {
		return
	}
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
	if evicted {
		m.cacheEvictions.Inc()
	}
}

// Run scans the chip through the shard coordinator and returns the
// deterministically merged findings. See the package comment for the
// failure-containment contract. Unlike core.Scan, a failing window
// never aborts the run: it fails its shard, which retries and is
// eventually quarantined.
func Run(ctx context.Context, chip *layout.Layout, det core.Detector, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	plan := NewPlan(chip.Bounds(), cfg)
	res := Result{Shards: plan.NumShards, Windows: plan.Windows()}
	if plan.NumShards == 0 {
		return res, nil
	}
	mets := newFarmMetrics(cfg.Metrics)
	var cache *ClipCache
	if cfg.CacheSize > 0 {
		cache = NewClipCache(cfg.CacheSize)
	}

	records := make([]*ShardRecord, plan.NumShards)
	var todo []int
	for id := 0; id < plan.NumShards; id++ {
		if rec, ok := cfg.Completed[id]; ok {
			r := rec
			records[id] = &r
			res.Resumed++
			if mets != nil {
				mets.shardsResumed.Inc()
			}
			continue
		}
		todo = append(todo, id)
	}

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex // records, journal order, progress
		done       = res.Resumed
		journalErr error
	)
	finish := func(rec *ShardRecord) {
		mu.Lock()
		defer mu.Unlock()
		records[rec.ShardID] = rec
		if cfg.Journal != nil && journalErr == nil {
			journalErr = cfg.Journal.Append(*rec)
		}
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, plan.NumShards)
		}
	}

	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		d := det
		if c, ok := det.(core.Cloner); ok {
			d = c.CloneDetector()
		}
		wg.Add(1)
		go func(d core.Detector) {
			defer wg.Done()
			wk := &worker{
				chip:    chip,
				det:     d,
				plan:    plan,
				cfg:     cfg,
				breaker: resilience.NewBreaker(cfg.Breaker),
				cache:   cache,
				mets:    mets,
			}
			for {
				select {
				case <-ctx.Done():
					return
				case id, ok := <-jobs:
					if !ok {
						return
					}
					if rec := wk.runShard(ctx, id); rec != nil {
						finish(rec)
					}
				}
			}
		}(d)
	}
dispatch:
	for _, id := range todo {
		select {
		case jobs <- id:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if journalErr != nil {
		return Result{}, fmt.Errorf("scanfarm: journal append: %w", journalErr)
	}
	for id, rec := range records {
		if rec == nil {
			continue // unprocessed: run was cancelled
		}
		res.Completed++
		switch rec.State {
		case ShardQuarantined:
			res.Quarantined = append(res.Quarantined, Quarantine{
				ShardID:  id,
				Bounds:   plan.ShardBounds(id),
				Attempts: rec.Attempts,
				Err:      rec.Err,
			})
		default:
			res.Findings = append(res.Findings, rec.Findings...)
		}
	}
	if mets != nil {
		// Gauge, not counter: the CLI report's quarantine count for THIS
		// scan, resumed quarantine records included, readable from any
		// metrics scrape instead of only the process stdout.
		mets.quarantined.Set(float64(len(res.Quarantined)))
	}
	if err := ctx.Err(); err != nil && res.Completed < plan.NumShards {
		res.Interrupted = true
		res.Cause = err
	}
	if cache != nil {
		res.Cache = cache.Stats()
	}
	return res, nil
}

// worker is the per-goroutine scan state: a detector clone and a
// circuit breaker that outlive individual shards.
type worker struct {
	chip    *layout.Layout
	det     core.Detector
	plan    Plan
	cfg     Config
	breaker *resilience.Breaker
	cache   *ClipCache
	mets    *farmMetrics
}

// runShard drives one shard to a terminal state: done after a
// successful attempt, quarantined after MaxAttempts failures. A nil
// return means the run was cancelled before the shard finished (the
// shard stays unrecorded and is rescanned on resume).
func (w *worker) runShard(ctx context.Context, id int) *ShardRecord {
	rcfg := w.cfg.Retry
	rcfg.MaxAttempts = w.cfg.MaxAttempts
	// Decorrelate jitter across shards while staying deterministic for
	// a fixed config.
	rcfg.Seed = rcfg.Seed*31 + int64(id) + 1
	clock := rcfg.Clock
	if clock == nil {
		clock = resilience.Real
	}

	attempts := 0
	var findings []core.Finding
	err := resilience.Retry(ctx, rcfg, func(ctx context.Context) error {
		// A tripped breaker pauses this worker for the cool-down
		// instead of failing the shard: breaker rejections are a
		// worker-health signal, not evidence the shard is poison.
		for !w.breaker.Allow() {
			wait := w.breaker.RetryAfter()
			if wait <= 0 {
				wait = 10 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-clock.After(wait):
			}
		}
		attempts++
		w.mets.attempt(attempts)
		actx, cancel := resilience.WithBudget(ctx, w.cfg.ShardBudget)
		fs, err := w.scanShard(actx, id, attempts)
		cancel()
		if err == nil {
			findings = fs
		} else if ctx.Err() != nil {
			// The run itself was cancelled mid-attempt: don't charge
			// the breaker or keep retrying.
			w.breaker.Record(nil)
			return ctx.Err()
		}
		w.breaker.Record(err)
		return err
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		w.mets.shard(ShardQuarantined)
		return &ShardRecord{ShardID: id, State: ShardQuarantined, Attempts: attempts, Err: err.Error()}
	}
	w.mets.shard(ShardDone)
	return &ShardRecord{ShardID: id, State: ShardDone, Attempts: attempts, Findings: findings}
}

// scanShard is one attempt over every window of the shard, in
// enumeration order. Any window failure (error, recovered panic,
// expired budget) aborts the attempt; cached verdicts make re-attempts
// cheap for the windows already scored.
func (w *worker) scanShard(ctx context.Context, id, attempt int) ([]core.Finding, error) {
	if err := faultinject.Hit(ShardAttemptSite); err != nil {
		return nil, err
	}
	traced := !trace.Disabled(ctx)
	start := time.Now()
	sp := (*trace.Span)(nil)
	if traced {
		ctx, sp = trace.Start(ctx, "scan.shard")
		sp.SetAttrInt("shard", id)
		sp.SetAttrInt("attempt", attempt)
	}
	defer sp.End()

	var findings []core.Finding
	for _, center := range w.plan.ShardWindows(id) {
		if err := ctx.Err(); err != nil {
			sp.SetError(err)
			return nil, fmt.Errorf("scanfarm: shard %d window at %v: %w", id, center, err)
		}
		clip, err := w.chip.ClipAt(center, w.plan.ClipNM, w.plan.CoreFrac)
		if err != nil {
			sp.SetError(err)
			return nil, fmt.Errorf("scanfarm: shard %d window at %v: %w", id, center, err)
		}
		if w.cfg.SkipEmpty && len(clip.Shapes) == 0 {
			continue
		}
		score, err := w.scoreWindow(ctx, clip)
		if err != nil {
			sp.SetError(err)
			return nil, fmt.Errorf("scanfarm: shard %d window at %v: %w", id, center, err)
		}
		if score >= w.det.Threshold() {
			findings = append(findings, core.Finding{Center: center, Score: score})
		}
	}
	if w.mets != nil {
		w.mets.shardSeconds.ObserveDuration(time.Since(start))
	}
	return findings, nil
}

// scoreWindow answers one window, consulting the clip cache before the
// detector. The detector always scores the canonical (origin
// translated) clip, so a verdict is a pure function of the cache key
// and hit/miss paths are identical by construction. The shipped
// detectors are translation-invariant (rasterization and features are
// window-relative), so this matches scoring the clip in place.
func (w *worker) scoreWindow(ctx context.Context, clip layout.Clip) (float64, error) {
	canon := clip.Translate()
	var key layout.Fingerprint
	if w.cache != nil {
		key = canon.Fingerprint()
		if score, ok := w.cache.Get(key); ok {
			w.mets.cache(true, false)
			w.observeQuality(canon, score)
			return score, nil
		}
	}
	score, err := safeScore(ctx, w.det, canon)
	if err != nil {
		if w.cache != nil {
			w.mets.cache(false, false)
		}
		return 0, err
	}
	if w.cache != nil {
		evicted := w.cache.Put(key, score)
		w.mets.cache(false, evicted)
	}
	w.observeQuality(canon, score)
	return score, nil
}

// observeQuality feeds one scored window into the quality monitor as
// stage "scan". Cache hits are observed too — drift is a property of
// the scanned traffic, not of which windows happened to miss — and the
// canonical clip keeps spot-check sampling content-keyed.
func (w *worker) observeQuality(canon layout.Clip, score float64) {
	w.cfg.Quality.Observe(qualitymon.Event{
		Detector: w.det.Name(), Stage: "scan",
		Score: score, Threshold: w.det.Threshold(),
		Clip: canon, HasClip: true,
	})
}

// safeScore isolates detector panics (and armed WindowScoreSite
// faults): a panicking detector fails the window instead of killing the
// process.
func safeScore(ctx context.Context, d core.Detector, clip layout.Clip) (score float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("detector panic: %v", r)
		}
	}()
	if err := faultinject.Hit(WindowScoreSite); err != nil {
		return 0, err
	}
	return core.ScoreClipCtx(ctx, d, clip)
}
