package scanfarm

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
)

var errTransient = errors.New("transient worker failure")

// fastRetry removes real backoff sleeps from tests.
func fastRetry() resilience.RetryConfig {
	return resilience.RetryConfig{BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

// TestFarmMatchesCoreScan pins the farm's most load-bearing property:
// the sharded, pooled, cached scan produces exactly the findings of the
// plain single-process core.ScanCtx, in the same global row-major
// order.
func TestFarmMatchesCoreScan(t *testing.T) {
	chip := testChip(t, 8)
	det := densityDetector{thr: 0.5}
	cfg := Config{SkipEmpty: true, Workers: 4, ShardRows: 2, Retry: fastRetry()}
	want := referenceFindings(t, chip, det, cfg)
	if len(want) == 0 {
		t.Fatal("reference scan flagged nothing; test chip is broken")
	}

	res, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || len(res.Quarantined) != 0 {
		t.Fatalf("clean run interrupted=%v quarantined=%d", res.Interrupted, len(res.Quarantined))
	}
	if !reflect.DeepEqual(res.Findings, want) {
		t.Fatalf("farm findings diverge from core scan:\nfarm %v\ncore %v", res.Findings, want)
	}
	if res.Completed != res.Shards {
		t.Fatalf("completed %d of %d shards", res.Completed, res.Shards)
	}
}

// TestFarmDeterministicMerge is the completion-order property test:
// whatever the schedule — worker count, shard size, cache on or off,
// injected transient faults forcing retries — the merged findings slice
// never changes.
func TestFarmDeterministicMerge(t *testing.T) {
	defer faultinject.Reset()
	chip := testChip(t, 10)
	det := densityDetector{thr: 0.5}
	base := Config{SkipEmpty: true, Retry: fastRetry()}
	want := referenceFindings(t, chip, det, base)

	cases := []struct {
		name      string
		workers   int
		shardRows int
		cacheSize int
		faults    int // transient WindowScoreSite errors to arm
	}{
		{"serial", 1, 1, 0, 0},
		{"pooled", 4, 1, 0, 0},
		{"wide-shards", 3, 4, 0, 0},
		{"cached", 4, 2, 4096, 0},
		{"cached-tiny", 2, 3, 8, 0},
		{"retries", 4, 2, 0, 9},
		{"retries-cached", 3, 1, 1024, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.Reset()
			if tc.faults > 0 {
				// Each armed error fails one window score, failing that
				// shard's attempt; retries must recover every one.
				faultinject.Set(WindowScoreSite, faultinject.Fault{
					Err: errTransient, Count: tc.faults, Skip: 3,
				})
			}
			cfg := base
			cfg.Workers = tc.workers
			cfg.ShardRows = tc.shardRows
			cfg.CacheSize = tc.cacheSize
			cfg.MaxAttempts = 20 // transient faults must never quarantine here
			res, err := Run(context.Background(), chip, det, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Quarantined) != 0 {
				t.Fatalf("transient faults quarantined shards: %+v", res.Quarantined)
			}
			if !reflect.DeepEqual(res.Findings, want) {
				t.Fatalf("schedule changed findings:\ngot  %v\nwant %v", res.Findings, want)
			}
		})
	}
}

// TestFarmQuarantinesPoisonShard: a permanently panicking region costs
// its shard — reported with bounds and the panic message — never the
// run, and every other shard's findings survive.
func TestFarmQuarantinesPoisonShard(t *testing.T) {
	chip := testChip(t, 8)
	// Drop a poison marker in one tile; every window seeing it panics.
	if err := chip.AddRect(poisonRect(3*1024+50, 5*1024+50)); err != nil {
		t.Fatal(err)
	}
	inner := densityDetector{thr: 0.5}
	cfg := Config{
		SkipEmpty:   true,
		Workers:     4,
		ShardRows:   1,
		MaxAttempts: 2,
		Retry:       fastRetry(),
		Breaker:     resilience.BreakerConfig{FailureThreshold: 100},
	}
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(context.Background(), chip, &poisonDetector{inner: inner}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("poison shard was not quarantined")
	}
	if res.Completed != res.Shards {
		t.Fatalf("quarantine did not complete the run: %d of %d shards", res.Completed, res.Shards)
	}
	quarantined := map[int]bool{}
	for _, q := range res.Quarantined {
		quarantined[q.ShardID] = true
		if q.Attempts != cfg.MaxAttempts {
			t.Fatalf("quarantine after %d attempts, want %d", q.Attempts, cfg.MaxAttempts)
		}
		if q.Err == "" || q.Bounds.Empty() {
			t.Fatalf("quarantine report incomplete: %+v", q)
		}
	}

	// Every reference finding outside the quarantined shards survives,
	// and nothing extra appears.
	plan := NewPlan(chip.Bounds(), cfg)
	var want []core.Finding
	for _, f := range referenceFindings(t, chip, inner, cfg) {
		if !quarantined[shardOf(plan, f.Center)] {
			want = append(want, f)
		}
	}
	if !reflect.DeepEqual(res.Findings, want) {
		t.Fatalf("lost findings outside quarantined shards:\ngot  %v\nwant %v", res.Findings, want)
	}

	// The quarantine is visible in telemetry: the per-run gauge matches
	// the CLI report, and the terminal-state counter agrees.
	if got := counterValue(t, reg, "scan_shards_total", "state", "quarantined"); got != float64(len(res.Quarantined)) {
		t.Fatalf("scan_shards_total{state=quarantined} = %v, want %d", got, len(res.Quarantined))
	}
	if got := counterValue(t, reg, "scan_quarantined_shards"); got != float64(len(res.Quarantined)) {
		t.Fatalf("scan_quarantined_shards = %v, want %d", got, len(res.Quarantined))
	}

	// A resumed run carries the quarantine records forward, and the
	// gauge reflects them even though no shard ran this time.
	completed := map[int]ShardRecord{}
	for _, q := range res.Quarantined {
		completed[q.ShardID] = ShardRecord{
			ShardID: q.ShardID, State: ShardQuarantined, Attempts: q.Attempts, Err: q.Err,
		}
	}
	plan2 := NewPlan(chip.Bounds(), cfg)
	for id := 0; id < plan2.NumShards; id++ {
		if _, ok := completed[id]; !ok {
			completed[id] = ShardRecord{ShardID: id, State: ShardDone}
		}
	}
	cfg2 := cfg
	reg2 := telemetry.NewRegistry()
	cfg2.Metrics = reg2
	cfg2.Completed = completed
	res2, err := Run(context.Background(), chip, &poisonDetector{inner: inner}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res2.Shards {
		t.Fatalf("resume ran shards: resumed %d of %d", res2.Resumed, res2.Shards)
	}
	if got := counterValue(t, reg2, "scan_quarantined_shards"); got != float64(len(res.Quarantined)) {
		t.Fatalf("resumed scan_quarantined_shards = %v, want %d", got, len(res.Quarantined))
	}
}

// TestFarmTransientPanicsLoseNothing: worker panics that clear up
// (flaky hardware, transient OOM-ish failures) are absorbed by retry —
// zero lost findings, zero quarantines, and the panic never escapes.
func TestFarmTransientPanicsLoseNothing(t *testing.T) {
	chip := testChip(t, 8)
	inner := densityDetector{thr: 0.5}
	var fails atomic.Int64
	fails.Store(7)
	det := &flakyDetector{inner: inner, fails: &fails, panics: true}
	cfg := Config{
		SkipEmpty:   true,
		Workers:     3,
		ShardRows:   1,
		MaxAttempts: 30,
		Retry:       fastRetry(),
		Breaker:     resilience.BreakerConfig{FailureThreshold: 1000},
	}
	res, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("transient panics quarantined shards: %+v", res.Quarantined)
	}
	want := referenceFindings(t, chip, inner, cfg)
	if !reflect.DeepEqual(res.Findings, want) {
		t.Fatalf("lost findings under transient panics:\ngot  %v\nwant %v", res.Findings, want)
	}
}

// TestFarmShardBudget: a stuck window (injected latency) blows the
// per-attempt deadline and, when it never unsticks, quarantines the
// shard instead of hanging the scan.
func TestFarmShardBudget(t *testing.T) {
	defer faultinject.Reset()
	chip := testChip(t, 4)
	faultinject.Set(WindowScoreSite, faultinject.Fault{Latency: 300 * time.Millisecond})
	cfg := Config{
		SkipEmpty:   true,
		Workers:     2,
		ShardRows:   2,
		MaxAttempts: 2,
		ShardBudget: 30 * time.Millisecond,
		Retry:       fastRetry(),
	}
	start := time.Now()
	res, err := Run(context.Background(), chip, densityDetector{thr: 0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != res.Shards {
		t.Fatalf("every shard is stuck; quarantined %d of %d", len(res.Quarantined), res.Shards)
	}
	// 2 shards * 2 attempts * ~300ms latency each, parallel over 2
	// workers: well under 5s proves the budget cut attempts short.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budgeted scan took %v", elapsed)
	}
}

// TestFarmCacheHitsOnRepeatedCells: on a repeated-standard-cell layout
// the cache answers most windows, and cached verdicts are identical to
// the uncached scan's.
func TestFarmCacheHitsOnRepeatedCells(t *testing.T) {
	chip := cellChip(t, 10)
	det := densityDetector{thr: 0.1}
	cfg := Config{SkipEmpty: true, Workers: 1, ShardRows: 2, Retry: fastRetry()}

	uncached, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(uncached.Findings) == 0 {
		t.Fatal("cell chip flagged nothing; test layout is broken")
	}

	reg := telemetry.NewRegistry()
	cfg.CacheSize = 1 << 16
	cfg.Metrics = reg
	cached, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Findings, uncached.Findings) {
		t.Fatal("cache hit path changed verdicts")
	}
	if hr := cached.Cache.HitRate(); hr <= 0.5 {
		t.Fatalf("hit rate %.2f on repeated-cell layout, want > 0.5 (stats %+v)", hr, cached.Cache)
	}
	if got := counterValue(t, reg, "scan_cache_hits_total"); got != float64(cached.Cache.Hits) {
		t.Fatalf("scan_cache_hits_total = %v, stats %d", got, cached.Cache.Hits)
	}
}

// TestFarmCancelIsResumable: cancelling mid-run is not an error, leaves
// the journal with only terminal records, and resuming completes the
// scan with findings identical to an uninterrupted run.
func TestFarmCancelIsResumable(t *testing.T) {
	chip := testChip(t, 10)
	det := densityDetector{thr: 0.5}
	cfg := Config{SkipEmpty: true, Workers: 2, ShardRows: 1, Retry: fastRetry()}
	want := referenceFindings(t, chip, det, cfg)
	meta := cfg.Meta(chip, det.Name())

	path := t.TempDir() + "/scan.journal"
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Journal = j
	cfg.Progress = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	res, err := Run(ctx, chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !res.Interrupted {
		t.Skip("scan finished before the cancel landed; nothing to resume")
	}
	if res.Completed == 0 {
		t.Fatal("cancelled before any shard completed; Progress contract broken")
	}

	j2, completed, err := ResumeJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(completed) != res.Completed {
		t.Fatalf("journal has %d records, run completed %d", len(completed), res.Completed)
	}
	cfg.Journal = j2
	cfg.Progress = nil
	cfg.Completed = completed
	res2, err := Run(context.Background(), chip, det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Interrupted {
		t.Fatal("resumed run interrupted")
	}
	if res2.Resumed != len(completed) {
		t.Fatalf("resumed %d shards, want %d", res2.Resumed, len(completed))
	}
	if !reflect.DeepEqual(res2.Findings, want) {
		t.Fatalf("resumed findings diverge:\ngot  %v\nwant %v", res2.Findings, want)
	}
}

// TestFarmJournalMismatchRefused: resuming under different scan
// parameters must fail loudly, not silently mis-merge shard IDs.
func TestFarmJournalMismatchRefused(t *testing.T) {
	chip := testChip(t, 4)
	det := densityDetector{thr: 0.5}
	cfg := Config{SkipEmpty: true}
	path := t.TempDir() + "/scan.journal"
	j, err := CreateJournal(path, cfg.Meta(chip, det.Name()))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := cfg
	other.ShardRows = 7
	if _, _, err := ResumeJournal(path, other.Meta(chip, det.Name())); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("mismatched resume error = %v, want ErrJournalMismatch", err)
	}
}

// TestFarmEmptyChip: no geometry, no shards, no findings, no error.
func TestFarmEmptyChip(t *testing.T) {
	res, err := Run(context.Background(), testChipEmpty(), densityDetector{thr: 0.5}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 0 || len(res.Findings) != 0 {
		t.Fatalf("empty chip produced %+v", res)
	}
}

// counterValue reads one counter series from a registry snapshot.
func counterValue(t *testing.T, reg *telemetry.Registry, name string, labelKV ...string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		if len(labelKV) == 2 {
			match := false
			for _, l := range s.Labels {
				if l.Key == labelKV[0] && l.Value == labelKV[1] {
					match = true
				}
			}
			if !match {
				continue
			}
		}
		return s.Value
	}
	t.Fatalf("series %s%v not found", name, labelKV)
	return 0
}
