package scanfarm

import (
	"context"
	"testing"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/raster"
)

// The scan-throughput benchmark pair behind run_bench.sh chunk F
// (BENCH_scan.json): the same repeated-standard-cell chip scanned cold
// (no cache: every window runs the detector) and warm (content
// addressed cache: repeated geometry answered by hash lookup). The
// ratio is the cache's compute-bound → hash-bound win on repetitive
// layouts.

func benchChip(b *testing.B) *layout.Layout { return cellChip(b, 12) }

// rasterDetector pays a realistic per-window cost — a full 128x128
// area-accurate rasterization, the front half of every image-based
// extractor — so the bench reflects what a cache hit actually saves.
type rasterDetector struct{ thr float64 }

func (d rasterDetector) Name() string                 { return "raster" }
func (d rasterDetector) Fit([]core.LabeledClip) error { return nil }
func (d rasterDetector) Threshold() float64           { return d.thr }
func (d rasterDetector) Score(c layout.Clip) (float64, error) {
	im, err := raster.Rasterize(raster.Config{Window: c.Window, PixelNM: 8}, c.Shapes)
	if err != nil {
		return 0, err
	}
	return im.Sum() / float64(im.W*im.H), nil
}

func benchScan(b *testing.B, cacheSize int, qm *qualitymon.Monitor) {
	chip := benchChip(b)
	det := rasterDetector{thr: 0.1}
	cfg := Config{SkipEmpty: true, Workers: 2, ShardRows: 2, CacheSize: cacheSize, Quality: qm}
	var findings []core.Finding
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), chip, det, cfg)
		if err != nil {
			b.Fatal(err)
		}
		findings = res.Findings
	}
	_ = findings
}

func BenchmarkScanFarmColdCache(b *testing.B) { benchScan(b, 0, nil) }

func BenchmarkScanFarmWarmCache(b *testing.B) { benchScan(b, 1<<16, nil) }

// The quality-monitor overhead pair behind run_bench.sh chunk H
// (BENCH_monitor.json): QualityOff is the everyone-pays cost of the nil
// tap in scoreWindow (must stay within 2% of the cold-cache baseline
// above); QualityOn adds live sketch updates per window.
func BenchmarkScanFarmQualityOff(b *testing.B) { benchScan(b, 0, nil) }

func BenchmarkScanFarmQualityOn(b *testing.B) {
	qm := qualitymon.New(qualitymon.Options{})
	defer qm.Close()
	benchScan(b, 0, qm)
}
