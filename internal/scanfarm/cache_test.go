package scanfarm

import (
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func fpOf(n int) layout.Fingerprint {
	return layout.Clip{
		Window: geom.R(0, 0, 1024, 1024),
		Core:   geom.R(256, 256, 768, 768),
		Shapes: []geom.Rect{geom.R(0, 0, n+1, n+1)},
	}.Fingerprint()
}

func TestClipCacheLRU(t *testing.T) {
	c := NewClipCache(2)
	a, b, d := fpOf(1), fpOf(2), fpOf(3)
	c.Put(a, 0.1)
	c.Put(b, 0.2)
	if _, ok := c.Get(a); !ok {
		t.Fatal("a missing")
	}
	// b is now least-recently used; inserting d evicts it.
	if evicted := c.Put(d, 0.3); !evicted {
		t.Fatal("no eviction at capacity")
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("b survived eviction; LRU order broken")
	}
	if v, ok := c.Get(a); !ok || v != 0.1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.Get(d); !ok || v != 0.3 {
		t.Fatalf("d = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses %+v", st)
	}
}

func TestClipCacheUpdateDoesNotEvict(t *testing.T) {
	c := NewClipCache(2)
	a, b := fpOf(1), fpOf(2)
	c.Put(a, 0.1)
	c.Put(b, 0.2)
	if evicted := c.Put(a, 0.1); evicted {
		t.Fatal("re-put of a present key evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestClipCacheConcurrent(t *testing.T) {
	c := NewClipCache(32)
	keys := make([]layout.Fingerprint, 64)
	for i := range keys {
		keys[i] = fpOf(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys[(i*7+w)%len(keys)]
				if v, ok := c.Get(k); ok && v != float64((i*7+w)%len(keys)) {
					t.Errorf("cache returned %v for key %d", v, (i*7+w)%len(keys))
					return
				}
				c.Put(k, float64((i*7+w)%len(keys)))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
