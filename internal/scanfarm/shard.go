// Package scanfarm is the fault-tolerant distributed full-chip scan: a
// shard coordinator that tiles the chip's window grid into deterministic
// work units, fans them out to a pool of in-process workers — each
// wrapped in a circuit breaker, jittered-backoff retry, a per-attempt
// deadline budget, and panic isolation — quarantines poison shards
// instead of failing the run, journals completed shards crash-safely so
// a killed scan resumes where it left off, and answers repeated
// standard-cell geometry from a content-addressed clip cache before any
// detector runs.
//
// The merged findings are deterministic: shards are row bands of the
// window-center grid, a shard's findings are in window-enumeration
// order, and the merge concatenates by shard ID — so worker count,
// completion order, retries, and cache hits never change the result.
package scanfarm

import (
	"runtime"
	"time"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
)

// Plan is the deterministic decomposition of a chip scan into shards.
// It is a pure function of the chip bounds and the scan geometry
// parameters, so every run (and every resume) of the same scan agrees
// on shard IDs and their window sets.
type Plan struct {
	// Bounds is the chip bounding box the plan tiles.
	Bounds geom.Rect
	// ClipNM, CoreFrac, StrideNM are the window geometry (normalized).
	ClipNM   int
	CoreFrac float64
	StrideNM int
	// Cols, Rows are the dimensions of the window-center grid.
	Cols, Rows int
	// ShardRows is the number of center-grid rows per shard.
	ShardRows int
	// NumShards is the shard count: ceil(Rows / ShardRows).
	NumShards int

	coreHalf int
}

// NewPlan tiles the bounds into shards. The window-center enumeration
// is identical to core.ScanCtx: centers anchored so the first core
// starts at Bounds.Min, stepping StrideNM, covering every point of the
// die inside some core.
func NewPlan(bounds geom.Rect, cfg Config) Plan {
	cfg = cfg.withDefaults()
	p := Plan{
		Bounds:    bounds,
		ClipNM:    cfg.ClipNM,
		CoreFrac:  cfg.CoreFrac,
		StrideNM:  cfg.StrideNM,
		ShardRows: cfg.ShardRows,
		coreHalf:  cfg.coreHalf(),
	}
	if p.coreHalf <= 0 {
		p.coreHalf = p.ClipNM / 2
	}
	if bounds.Empty() {
		return p
	}
	p.Cols = ceilDiv(bounds.Dx(), p.StrideNM)
	p.Rows = ceilDiv(bounds.Dy(), p.StrideNM)
	p.NumShards = ceilDiv(p.Rows, p.ShardRows)
	return p
}

// Windows returns the total number of windows across all shards.
func (p Plan) Windows() int { return p.Cols * p.Rows }

// Center returns the window center at grid position (col, row).
func (p Plan) Center(col, row int) geom.Point {
	return geom.Pt(
		p.Bounds.Min.X+p.coreHalf+col*p.StrideNM,
		p.Bounds.Min.Y+p.coreHalf+row*p.StrideNM,
	)
}

// ShardRowRange returns the half-open center-grid row range of shard id.
func (p Plan) ShardRowRange(id int) (r0, r1 int) {
	r0 = id * p.ShardRows
	r1 = r0 + p.ShardRows
	if r1 > p.Rows {
		r1 = p.Rows
	}
	return r0, r1
}

// ShardWindows returns shard id's window centers in enumeration order
// (row-major), the order its findings are reported in.
func (p Plan) ShardWindows(id int) []geom.Point {
	r0, r1 := p.ShardRowRange(id)
	out := make([]geom.Point, 0, (r1-r0)*p.Cols)
	for row := r0; row < r1; row++ {
		for col := 0; col < p.Cols; col++ {
			out = append(out, p.Center(col, row))
		}
	}
	return out
}

// ShardBounds returns the chip-coordinate rectangle covered by shard
// id's cores, for quarantine reports.
func (p Plan) ShardBounds(id int) geom.Rect {
	r0, r1 := p.ShardRowRange(id)
	if r0 >= r1 {
		return geom.Rect{}
	}
	return geom.R(
		p.Bounds.Min.X,
		p.Bounds.Min.Y+r0*p.StrideNM,
		p.Bounds.Min.X+p.Cols*p.StrideNM,
		p.Bounds.Min.Y+(r1-1)*p.StrideNM+2*p.coreHalf,
	)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Config controls a scan-farm run. The zero value gets the same window
// geometry defaults as core.ScanConfig plus sensible farm defaults.
type Config struct {
	// ClipNM is the detection window edge (default 1024).
	ClipNM int
	// CoreFrac is the scored core fraction (default 0.5).
	CoreFrac float64
	// StrideNM is the window step (default: the core edge, so cores
	// tile the chip without gaps).
	StrideNM int
	// SkipEmpty skips windows with no geometry.
	SkipEmpty bool
	// Workers is the scan worker pool size (default GOMAXPROCS).
	Workers int
	// ShardRows is the number of window-grid rows per shard (default 2).
	// Smaller shards mean finer resume granularity and better load
	// balance; larger shards amortize journal writes.
	ShardRows int
	// MaxAttempts is how many times a shard is tried before it is
	// quarantined (default 3).
	MaxAttempts int
	// ShardBudget, when positive, is the per-attempt deadline: an
	// attempt that exceeds it fails (and counts toward quarantine)
	// without cancelling the run.
	ShardBudget time.Duration
	// Retry tunes the backoff between shard attempts. MaxAttempts
	// above wins over Retry.MaxAttempts.
	Retry resilience.RetryConfig
	// Breaker tunes the per-worker circuit breaker. A worker whose
	// breaker opens pauses (cool-down) instead of failing shards.
	Breaker resilience.BreakerConfig
	// CacheSize bounds the content-addressed clip cache in entries;
	// 0 disables the cache.
	CacheSize int
	// Journal, when non-nil, records completed and quarantined shards
	// for -resume. Run appends; the caller owns Close.
	Journal *Journal
	// Completed maps shard ID -> record for shards already finished in
	// a previous run (from LoadJournal); they are skipped and their
	// findings merged as-is.
	Completed map[int]ShardRecord
	// Metrics, when non-nil, receives scan_shards_total{state},
	// scan_shard_attempts_total, and scan_cache_* series.
	Metrics *telemetry.Registry
	// Quality, when non-nil, receives every scored window (stage
	// "scan") for drift sketches and spot-checking. Cache hits are
	// observed too: drift is a property of the traffic, not of which
	// windows happened to miss.
	Quality *qualitymon.Monitor
	// Progress, when non-nil, is called after each shard completes with
	// (shards done, total shards). Serialized.
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.ClipNM <= 0 {
		c.ClipNM = 1024
	}
	if c.CoreFrac <= 0 || c.CoreFrac > 1 {
		c.CoreFrac = 0.5
	}
	if c.StrideNM <= 0 {
		c.StrideNM = 2 * c.coreHalf()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardRows <= 0 {
		c.ShardRows = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	return c
}

// coreHalf matches layout.ClipAt's rounding of the core half-edge.
func (c Config) coreHalf() int {
	return int(float64(c.ClipNM) * c.CoreFrac / 2)
}

// Meta derives the journal metadata binding a journal file to one
// specific scan: chip identity, window geometry, shard layout, and
// detector. LoadJournal refuses to resume under a different Meta.
func (c Config) Meta(chip *layout.Layout, detector string) Meta {
	p := NewPlan(chip.Bounds(), c)
	c = c.withDefaults()
	return Meta{
		Chip:      chip.Name,
		Shapes:    chip.NumShapes(),
		Bounds:    chip.Bounds(),
		ClipNM:    p.ClipNM,
		CoreFrac:  p.CoreFrac,
		StrideNM:  p.StrideNM,
		ShardRows: p.ShardRows,
		NumShards: p.NumShards,
		SkipEmpty: c.SkipEmpty,
		Detector:  detector,
	}
}
