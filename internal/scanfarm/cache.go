// The content-addressed clip cache: canonical geometry fingerprint →
// detector verdict, LRU-bounded.
//
// Real layouts are dominated by repeated standard-cell patterns (the
// observation behind pattern-matching detectors), so a full-chip scan
// re-scores the same canonical geometry over and over. Answering those
// windows from a hash lookup before any detector runs turns the scan
// from compute-bound to hash-bound on repetitive regions. Correctness
// rests on the scorer being a pure function of the canonical clip: the
// coordinator always scores the origin-translated clip, so a hit and a
// recompute produce the identical verdict by construction.

package scanfarm

import (
	"container/list"
	"sync"

	"github.com/golitho/hsd/internal/layout"
)

// ClipCache is a concurrency-safe LRU map from canonical clip
// fingerprints to detector scores.
type ClipCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[layout.Fingerprint]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   layout.Fingerprint
	score float64
}

// NewClipCache returns a cache bounded to max entries (minimum 1).
func NewClipCache(max int) *ClipCache {
	if max < 1 {
		max = 1
	}
	return &ClipCache{
		max:   max,
		ll:    list.New(),
		items: make(map[layout.Fingerprint]*list.Element, max),
	}
}

// Get returns the cached score for key, marking it most recently used.
func (c *ClipCache) Get(key layout.Fingerprint) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).score, true
}

// Put stores the score for key, evicting the least recently used entry
// when full. It reports whether an eviction happened. Concurrent
// workers may race to Put the same key; the scores are identical (pure
// function of the key), so last-write-wins is harmless.
func (c *ClipCache) Put(key layout.Fingerprint, score float64) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).score = score
		c.ll.MoveToFront(el)
		return false
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
		evicted = true
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, score: score})
	return evicted
}

// Len returns the current entry count.
func (c *ClipCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Size, Capacity          int
}

// HitRate returns hits / (hits + misses), 0 when the cache was never
// consulted.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *ClipCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.max,
	}
}
