package features

import (
	"context"
	"fmt"
	"strings"

	"github.com/golitho/hsd/internal/layout"
)

// Concat fuses several extractors into one feature vector, in order.
// Shallow learners benefit from mixing global (density) and radial (CCAS)
// views of the same clip.
type Concat struct {
	Parts []Extractor
}

var _ CtxExtractor = (*Concat)(nil)

// NewConcat builds a concatenated extractor.
func NewConcat(parts ...Extractor) *Concat { return &Concat{Parts: parts} }

// Name implements Extractor.
func (c *Concat) Name() string {
	names := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Dim implements Extractor.
func (c *Concat) Dim() int {
	d := 0
	for _, p := range c.Parts {
		d += p.Dim()
	}
	return d
}

// Extract implements Extractor.
func (c *Concat) Extract(clip layout.Clip) ([]float64, error) {
	return c.ExtractCtx(context.Background(), clip)
}

// ExtractCtx implements CtxExtractor: each part extracts under the same
// context, so a fused extractor attributes one raster/features span pair
// per part.
func (c *Concat) ExtractCtx(ctx context.Context, clip layout.Clip) ([]float64, error) {
	if len(c.Parts) == 0 {
		return nil, fmt.Errorf("features: concat has no parts")
	}
	out := make([]float64, 0, c.Dim())
	for _, p := range c.Parts {
		v, err := ExtractCtx(ctx, p, clip)
		if err != nil {
			return nil, fmt.Errorf("features: concat part %s: %w", p.Name(), err)
		}
		out = append(out, v...)
	}
	return out, nil
}
