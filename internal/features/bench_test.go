package features

import (
	"math/rand"
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func benchClip(b *testing.B) layout.Clip {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	l := layout.New("bench")
	for i := 0; i < 20; i++ {
		x, y := rng.Intn(900), rng.Intn(900)
		if err := l.AddRect(geom.R(x, y, x+80+rng.Intn(120), y+64+rng.Intn(64))); err != nil {
			b.Fatal(err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return clip
}

func benchExtract(b *testing.B, ex Extractor) {
	b.Helper()
	clip := benchClip(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(clip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensity32(b *testing.B) { benchExtract(b, &Density{Grid: 32}) }
func BenchmarkCCAS8x12(b *testing.B)  { benchExtract(b, &CCAS{Rings: 8, Sectors: 12}) }
func BenchmarkGeomStats(b *testing.B) { benchExtract(b, &GeomStats{}) }
func BenchmarkDCT16x16(b *testing.B)  { benchExtract(b, &DCT{Blocks: 16, Coefs: 16}) }
