// Package features implements the layout feature representations surveyed
// for hotspot detection:
//
//   - density grids, the classic shallow-learning feature (layout area
//     density over a coarse grid);
//   - concentric-circle area sampling (CCAS), the rotation-tolerant
//     sampling used by SVM/AdaBoost detectors;
//   - DCT feature tensors, the compressed spectral representation feeding
//     convolutional networks (block DCT + zigzag truncation).
//
// All extractors rasterize the clip window once and derive features from
// the grayscale coverage image, preserving the spatial relationships of
// the original pattern.
package features

import (
	"context"
	"fmt"
	"math"

	"github.com/golitho/hsd/internal/fft"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
	"github.com/golitho/hsd/internal/trace"
)

// Extractor turns a layout clip into a fixed-length feature vector.
type Extractor interface {
	// Name identifies the extractor in reports.
	Name() string
	// Dim is the length of the produced vector.
	Dim() int
	// Extract computes the features of one clip.
	Extract(clip layout.Clip) ([]float64, error)
}

// CtxExtractor is implemented by extractors that attribute their work
// to trace spans: a "raster" span for clip rasterization and a
// "features" span for the transform that follows.
type CtxExtractor interface {
	Extractor
	// ExtractCtx computes the features of one clip, emitting stage
	// spans on the context's trace.
	ExtractCtx(ctx context.Context, clip layout.Clip) ([]float64, error)
}

// ExtractCtx extracts features with span attribution when ex supports
// it, falling back to plain Extract otherwise.
func ExtractCtx(ctx context.Context, ex Extractor, clip layout.Clip) ([]float64, error) {
	if cx, ok := ex.(CtxExtractor); ok {
		return cx.ExtractCtx(ctx, clip)
	}
	return ex.Extract(clip)
}

// rasterize renders a clip at the given pixel pitch.
func rasterize(clip layout.Clip, pixelNM int) (*raster.Image, error) {
	return raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: pixelNM}, clip.Shapes)
}

// rasterizeCtx renders a clip under a "raster" span so rasterization
// cost is attributed separately from the feature transform.
func rasterizeCtx(ctx context.Context, name string, clip layout.Clip, pixelNM int) (*raster.Image, error) {
	_, sp := trace.Start(ctx, "raster", trace.A("extractor", name))
	im, err := rasterize(clip, pixelNM)
	sp.SetError(err)
	sp.End()
	return im, err
}

// Density is the density-grid extractor: the clip is divided into
// Grid x Grid cells and each feature is the drawn-area fraction of a cell.
type Density struct {
	// Grid is the number of cells per side.
	Grid int
	// PixelNM is the rasterization pitch (default 8).
	PixelNM int
}

var _ CtxExtractor = (*Density)(nil)

// Name implements Extractor.
func (d *Density) Name() string { return fmt.Sprintf("density%d", d.Grid) }

// Dim implements Extractor.
func (d *Density) Dim() int { return d.Grid * d.Grid }

// Extract implements Extractor.
func (d *Density) Extract(clip layout.Clip) ([]float64, error) {
	return d.ExtractCtx(context.Background(), clip)
}

// ExtractCtx implements CtxExtractor.
func (d *Density) ExtractCtx(ctx context.Context, clip layout.Clip) ([]float64, error) {
	if d.Grid <= 0 {
		return nil, fmt.Errorf("features: density grid must be positive, got %d", d.Grid)
	}
	px := d.PixelNM
	if px <= 0 {
		px = 8
	}
	im, err := rasterizeCtx(ctx, d.Name(), clip, px)
	if err != nil {
		return nil, fmt.Errorf("features: density: %w", err)
	}
	_, sp := trace.Start(ctx, "features", trace.A("extractor", d.Name()))
	defer sp.End()
	if im.W%d.Grid != 0 || im.H%d.Grid != 0 {
		return nil, fmt.Errorf("features: image %dx%d not divisible into %d cells",
			im.W, im.H, d.Grid)
	}
	cw, ch := im.W/d.Grid, im.H/d.Grid
	out := make([]float64, d.Grid*d.Grid)
	inv := 1 / float64(cw*ch)
	for gy := 0; gy < d.Grid; gy++ {
		for gx := 0; gx < d.Grid; gx++ {
			var s float64
			for y := gy * ch; y < (gy+1)*ch; y++ {
				row := y * im.W
				for x := gx * cw; x < (gx+1)*cw; x++ {
					s += im.Pix[row+x]
				}
			}
			out[gy*d.Grid+gx] = s * inv
		}
	}
	return out, nil
}

// CCAS is concentric-circle area sampling: coverage is averaged over
// (ring, sector) bins of concentric annuli centred on the clip core.
type CCAS struct {
	// Rings is the number of annuli between the centre and the window edge.
	Rings int
	// Sectors is the angular resolution per ring.
	Sectors int
	// PixelNM is the rasterization pitch (default 8).
	PixelNM int
}

var _ CtxExtractor = (*CCAS)(nil)

// Name implements Extractor.
func (c *CCAS) Name() string { return fmt.Sprintf("ccas%dx%d", c.Rings, c.Sectors) }

// Dim implements Extractor.
func (c *CCAS) Dim() int { return c.Rings * c.Sectors }

// Extract implements Extractor.
func (c *CCAS) Extract(clip layout.Clip) ([]float64, error) {
	return c.ExtractCtx(context.Background(), clip)
}

// ExtractCtx implements CtxExtractor.
func (c *CCAS) ExtractCtx(ctx context.Context, clip layout.Clip) ([]float64, error) {
	if c.Rings <= 0 || c.Sectors <= 0 {
		return nil, fmt.Errorf("features: ccas needs positive rings/sectors, got %d/%d", c.Rings, c.Sectors)
	}
	px := c.PixelNM
	if px <= 0 {
		px = 8
	}
	im, err := rasterizeCtx(ctx, c.Name(), clip, px)
	if err != nil {
		return nil, fmt.Errorf("features: ccas: %w", err)
	}
	_, sp := trace.Start(ctx, "features", trace.A("extractor", c.Name()))
	defer sp.End()
	cx, cy := float64(im.W)/2, float64(im.H)/2
	maxR := math.Min(cx, cy)
	sums := make([]float64, c.Rings*c.Sectors)
	counts := make([]int, c.Rings*c.Sectors)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx := float64(x) + 0.5 - cx
			dy := float64(y) + 0.5 - cy
			r := math.Sqrt(dx*dx + dy*dy)
			if r >= maxR {
				continue
			}
			ring := int(r / maxR * float64(c.Rings))
			if ring >= c.Rings {
				ring = c.Rings - 1
			}
			ang := math.Atan2(dy, dx) + math.Pi // [0, 2pi]
			sector := int(ang / (2 * math.Pi) * float64(c.Sectors))
			if sector >= c.Sectors {
				sector = c.Sectors - 1
			}
			idx := ring*c.Sectors + sector
			sums[idx] += im.Pix[y*im.W+x]
			counts[idx]++
		}
	}
	out := make([]float64, len(sums))
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out, nil
}

// DCT is the feature-tensor extractor: the clip image is divided into
// Blocks x Blocks sub-images, each transformed with an orthonormal 2-D
// DCT, and the first Coefs zigzag coefficients of every block are kept.
// The result is a Blocks x Blocks x Coefs tensor flattened
// channel-major: index = (coef*Blocks + by)*Blocks + bx, matching the
// (C, H, W) layout convolutional networks consume.
type DCT struct {
	// Blocks is the number of sub-blocks per side.
	Blocks int
	// Coefs is the number of retained zigzag DCT coefficients per block.
	Coefs int
	// PixelNM is the rasterization pitch (default 8).
	PixelNM int
}

var _ CtxExtractor = (*DCT)(nil)

// Name implements Extractor.
func (d *DCT) Name() string { return fmt.Sprintf("dct%dx%dx%d", d.Blocks, d.Blocks, d.Coefs) }

// Dim implements Extractor.
func (d *DCT) Dim() int { return d.Blocks * d.Blocks * d.Coefs }

// TensorShape returns the (channels, height, width) interpretation of the
// produced vector.
func (d *DCT) TensorShape() (c, h, w int) { return d.Coefs, d.Blocks, d.Blocks }

// Extract implements Extractor.
func (d *DCT) Extract(clip layout.Clip) ([]float64, error) {
	return d.ExtractCtx(context.Background(), clip)
}

// ExtractCtx implements CtxExtractor.
func (d *DCT) ExtractCtx(ctx context.Context, clip layout.Clip) ([]float64, error) {
	if d.Blocks <= 0 || d.Coefs <= 0 {
		return nil, fmt.Errorf("features: dct needs positive blocks/coefs, got %d/%d", d.Blocks, d.Coefs)
	}
	px := d.PixelNM
	if px <= 0 {
		px = 8
	}
	im, err := rasterizeCtx(ctx, d.Name(), clip, px)
	if err != nil {
		return nil, fmt.Errorf("features: dct: %w", err)
	}
	_, sp := trace.Start(ctx, "features", trace.A("extractor", d.Name()))
	defer sp.End()
	if im.W != im.H || im.W%d.Blocks != 0 {
		return nil, fmt.Errorf("features: image %dx%d not divisible into %d blocks", im.W, im.H, d.Blocks)
	}
	bs := im.W / d.Blocks
	if d.Coefs > bs*bs {
		return nil, fmt.Errorf("features: %d coefs exceed block size %d^2", d.Coefs, bs)
	}
	zig := fft.Zigzag(bs)
	block := make([]float64, bs*bs)
	out := make([]float64, d.Dim())
	for by := 0; by < d.Blocks; by++ {
		for bx := 0; bx < d.Blocks; bx++ {
			for y := 0; y < bs; y++ {
				srcRow := (by*bs + y) * im.W
				copy(block[y*bs:(y+1)*bs], im.Pix[srcRow+bx*bs:srcRow+(bx+1)*bs])
			}
			coef, err := fft.DCT2D(block, bs)
			if err != nil {
				return nil, fmt.Errorf("features: dct block: %w", err)
			}
			for k := 0; k < d.Coefs; k++ {
				out[(k*d.Blocks+by)*d.Blocks+bx] = coef[zig[k]]
			}
		}
	}
	return out, nil
}

// MirrorClipX reflects a clip's geometry across the vertical centre line
// of its window. Used for hotspot minority-class augmentation: optical
// printability is mirror-symmetric, so labels are preserved.
func MirrorClipX(clip layout.Clip) layout.Clip {
	axisX2 := clip.Window.Min.X + clip.Window.Max.X // 2 * axis
	out := layout.Clip{Window: clip.Window, Core: mirrorRectX(clip.Core, axisX2)}
	out.Shapes = make([]geom.Rect, len(clip.Shapes))
	for i, s := range clip.Shapes {
		out.Shapes[i] = mirrorRectX(s, axisX2)
	}
	return out
}

// MirrorClipY reflects a clip's geometry across the horizontal centre line
// of its window.
func MirrorClipY(clip layout.Clip) layout.Clip {
	axisY2 := clip.Window.Min.Y + clip.Window.Max.Y
	out := layout.Clip{Window: clip.Window, Core: mirrorRectY(clip.Core, axisY2)}
	out.Shapes = make([]geom.Rect, len(clip.Shapes))
	for i, s := range clip.Shapes {
		out.Shapes[i] = mirrorRectY(s, axisY2)
	}
	return out
}

// Rotate90Clip rotates a square clip's geometry 90 degrees counter-
// clockwise about its window centre.
func Rotate90Clip(clip layout.Clip) layout.Clip {
	cx2 := clip.Window.Min.X + clip.Window.Max.X
	cy2 := clip.Window.Min.Y + clip.Window.Max.Y
	rot := func(r geom.Rect) geom.Rect {
		// Translate centre to origin (doubled coords), rotate, translate back.
		x0, y0 := 2*r.Min.X-cx2, 2*r.Min.Y-cy2
		x1, y1 := 2*r.Max.X-cx2, 2*r.Max.Y-cy2
		return geom.R((-y0+cx2)/2, (x0+cy2)/2, (-y1+cx2)/2, (x1+cy2)/2)
	}
	out := layout.Clip{Window: clip.Window, Core: rot(clip.Core)}
	out.Shapes = make([]geom.Rect, len(clip.Shapes))
	for i, s := range clip.Shapes {
		out.Shapes[i] = rot(s)
	}
	return out
}

func mirrorRectX(r geom.Rect, axisX2 int) geom.Rect {
	return geom.R(axisX2-r.Min.X, r.Min.Y, axisX2-r.Max.X, r.Max.Y)
}

func mirrorRectY(r geom.Rect, axisY2 int) geom.Rect {
	return geom.R(r.Min.X, axisY2-r.Min.Y, r.Max.X, axisY2-r.Max.Y)
}
