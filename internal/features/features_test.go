package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

// testClip builds a 1024 nm clip centred at (512,512) over the shapes.
func testClip(t *testing.T, shapes ...geom.Rect) layout.Clip {
	t.Helper()
	l := layout.New("t")
	for _, s := range shapes {
		if err := l.AddRect(s); err != nil {
			t.Fatal(err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func randomClip(t *testing.T, rng *rand.Rand) layout.Clip {
	t.Helper()
	var shapes []geom.Rect
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		x, y := rng.Intn(960), rng.Intn(960)
		w, h := 16+rng.Intn(200), 16+rng.Intn(200)
		shapes = append(shapes, geom.R(x, y, x+w, y+h))
	}
	return testClip(t, shapes...)
}

func TestDensityUniform(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 1024, 1024))
	d := &Density{Grid: 16}
	v, err := d.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != d.Dim() || d.Dim() != 256 {
		t.Fatalf("dim = %d", len(v))
	}
	for i, x := range v {
		if math.Abs(x-1) > 1e-12 {
			t.Fatalf("cell %d = %v, want 1", i, x)
		}
	}
}

func TestDensityHalf(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 512, 1024)) // left half covered
	d := &Density{Grid: 2}
	v, err := d.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	// Cells: [y0x0, y0x1, y1x0, y1x1]
	if math.Abs(v[0]-1) > 1e-9 || math.Abs(v[2]-1) > 1e-9 {
		t.Fatalf("left cells = %v, %v, want 1", v[0], v[2])
	}
	if v[1] != 0 || v[3] != 0 {
		t.Fatalf("right cells = %v, %v, want 0", v[1], v[3])
	}
}

func TestDensityValidation(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 64, 64))
	if _, err := (&Density{Grid: 0}).Extract(clip); err == nil {
		t.Fatal("zero grid accepted")
	}
	if _, err := (&Density{Grid: 7}).Extract(clip); err == nil {
		t.Fatal("non-divisible grid accepted")
	}
}

func TestDensityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := &Density{Grid: 8}
	f := func() bool {
		v, err := d.Extract(randomClip(t, rng))
		if err != nil {
			return false
		}
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCCASDims(t *testing.T) {
	c := &CCAS{Rings: 8, Sectors: 16}
	clip := testClip(t, geom.R(0, 0, 1024, 1024))
	v, err := c.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 128 {
		t.Fatalf("dim = %d, want 128", len(v))
	}
	for i, x := range v {
		if math.Abs(x-1) > 1e-12 {
			t.Fatalf("full clip ccas[%d] = %v, want 1", i, x)
		}
	}
}

func TestCCASCenterRing(t *testing.T) {
	// A blob only at the centre: inner ring sees coverage, outer does not.
	clip := testClip(t, geom.R(480, 480, 544, 544))
	c := &CCAS{Rings: 4, Sectors: 4}
	v, err := c.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	var inner, outer float64
	for s := 0; s < 4; s++ {
		inner += v[s]
		outer += v[3*4+s]
	}
	if inner <= 0 {
		t.Fatal("inner ring saw nothing")
	}
	if outer != 0 {
		t.Fatalf("outer ring = %v, want 0", outer)
	}
}

func TestCCASRotationTolerance(t *testing.T) {
	// CCAS ring sums should be invariant under 90-degree rotation.
	clip := testClip(t, geom.R(100, 460, 400, 560), geom.R(600, 200, 700, 820))
	rot := Rotate90Clip(clip)
	c := &CCAS{Rings: 6, Sectors: 8}
	a, err := c.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Extract(rot)
	if err != nil {
		t.Fatal(err)
	}
	for ring := 0; ring < 6; ring++ {
		var sa, sb float64
		for s := 0; s < 8; s++ {
			sa += a[ring*8+s]
			sb += b[ring*8+s]
		}
		if math.Abs(sa-sb) > 1e-6 {
			t.Fatalf("ring %d sum changed under rotation: %v vs %v", ring, sa, sb)
		}
	}
}

func TestCCASValidation(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 64, 64))
	if _, err := (&CCAS{Rings: 0, Sectors: 4}).Extract(clip); err == nil {
		t.Fatal("zero rings accepted")
	}
}

func TestDCTDims(t *testing.T) {
	d := &DCT{Blocks: 8, Coefs: 24}
	if d.Dim() != 8*8*24 {
		t.Fatalf("Dim = %d", d.Dim())
	}
	c, h, w := d.TensorShape()
	if c != 24 || h != 8 || w != 8 {
		t.Fatalf("TensorShape = %d,%d,%d", c, h, w)
	}
	clip := testClip(t, geom.R(0, 448, 1024, 576))
	v, err := d.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != d.Dim() {
		t.Fatalf("len = %d", len(v))
	}
}

func TestDCTDCChannelIsDensity(t *testing.T) {
	// Coefficient 0 of each block is the scaled block mean, so the DC
	// channel must be proportional to the density grid.
	clip := testClip(t, geom.R(0, 0, 512, 1024))
	d := &DCT{Blocks: 8, Coefs: 4}
	v, err := d.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	den, err := (&Density{Grid: 8}).Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	// DC term of an orthonormal DCT over an n x n block of constant c is
	// n * c; block size is 16 px here.
	for i := 0; i < 64; i++ {
		want := 16 * den[i]
		if math.Abs(v[i]-want) > 1e-9 {
			t.Fatalf("DC channel[%d] = %v, want %v", i, v[i], want)
		}
	}
}

func TestDCTEnergyConservation(t *testing.T) {
	// With all coefficients kept, total energy equals image energy
	// (orthonormal DCT, Parseval).
	clip := testClip(t, geom.R(128, 128, 896, 896))
	d := &DCT{Blocks: 8, Coefs: 256, PixelNM: 16} // 64 px image, 8 px blocks
	v, err := d.Extract(clip)
	if err == nil {
		var e float64
		for _, x := range v {
			e += x * x
		}
		// 768x768 nm at 16 nm/px = 48x48 px of ones = 2304.
		if math.Abs(e-2304) > 1e-6 {
			t.Fatalf("energy = %v, want 2304", e)
		}
		return
	}
	// 64/8 blocks of 8x8 = max 64 coefs; 256 must error.
	d2 := &DCT{Blocks: 8, Coefs: 64, PixelNM: 16}
	v, err = d2.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	var e float64
	for _, x := range v {
		e += x * x
	}
	if math.Abs(e-2304) > 1e-6 {
		t.Fatalf("energy = %v, want 2304", e)
	}
}

func TestDCTValidation(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 64, 64))
	if _, err := (&DCT{Blocks: 0, Coefs: 1}).Extract(clip); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if _, err := (&DCT{Blocks: 7, Coefs: 4}).Extract(clip); err == nil {
		t.Fatal("non-divisible blocks accepted")
	}
	if _, err := (&DCT{Blocks: 64, Coefs: 9}).Extract(clip); err == nil {
		t.Fatal("too many coefs accepted")
	}
}

func TestMirrorClipInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		clip := randomClip(t, rng)
		mx := MirrorClipX(MirrorClipX(clip))
		my := MirrorClipY(MirrorClipY(clip))
		for j := range clip.Shapes {
			if !clip.Shapes[j].Eq(mx.Shapes[j]) {
				t.Fatal("MirrorClipX not an involution")
			}
			if !clip.Shapes[j].Eq(my.Shapes[j]) {
				t.Fatal("MirrorClipY not an involution")
			}
		}
	}
}

func TestMirrorClipMatchesImageMirror(t *testing.T) {
	clip := testClip(t, geom.R(64, 128, 320, 256), geom.R(512, 640, 900, 720))
	d := &Density{Grid: 8}
	orig, err := d.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	mir, err := d.Extract(MirrorClipX(clip))
	if err != nil {
		t.Fatal(err)
	}
	for gy := 0; gy < 8; gy++ {
		for gx := 0; gx < 8; gx++ {
			if math.Abs(orig[gy*8+gx]-mir[gy*8+7-gx]) > 1e-9 {
				t.Fatalf("mirror mismatch at (%d,%d)", gx, gy)
			}
		}
	}
}

func TestRotate90ClipFourTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		clip := randomClip(t, rng)
		r := Rotate90Clip(Rotate90Clip(Rotate90Clip(Rotate90Clip(clip))))
		for j := range clip.Shapes {
			if !clip.Shapes[j].Eq(r.Shapes[j]) {
				t.Fatalf("four rotations differ: %v vs %v", clip.Shapes[j], r.Shapes[j])
			}
		}
	}
}

func TestRotate90ClipPreservesArea(t *testing.T) {
	clip := testClip(t, geom.R(100, 200, 300, 260))
	rot := Rotate90Clip(clip)
	if rot.Shapes[0].Area() != clip.Shapes[0].Area() {
		t.Fatal("rotation changed area")
	}
	if !rot.Window.Eq(clip.Window) {
		t.Fatal("rotation changed window")
	}
}

func TestConcat(t *testing.T) {
	clip := testClip(t, geom.R(0, 0, 512, 1024))
	c := NewConcat(&Density{Grid: 4}, &CCAS{Rings: 2, Sectors: 4})
	if c.Dim() != 16+8 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	if c.Name() != "density4+ccas2x4" {
		t.Fatalf("Name = %q", c.Name())
	}
	v, err := c.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 24 {
		t.Fatalf("len = %d", len(v))
	}
	d, err := (&Density{Grid: 4}).Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if v[i] != d[i] {
			t.Fatal("concat head differs from density features")
		}
	}
	empty := NewConcat()
	if _, err := empty.Extract(clip); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestGeomStatsDim(t *testing.T) {
	g := &GeomStats{}
	clip := testClip(t, geom.R(0, 448, 1024, 520), geom.R(0, 560, 1024, 632))
	v, err := g.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != g.Dim() {
		t.Fatalf("len = %d, want %d", len(v), g.Dim())
	}
}

func TestGeomStatsGapSensitivity(t *testing.T) {
	g := &GeomStats{}
	// Two lines with a 40 nm gap vs a 120 nm gap: the gap histograms must
	// differ and the tight pair must populate a low bucket.
	tight := testClip(t, geom.R(0, 448, 1024, 520), geom.R(0, 560, 1024, 632)) // 40 nm
	loose := testClip(t, geom.R(0, 400, 1024, 472), geom.R(0, 592, 1024, 664)) // 120 nm
	vt, err := g.Extract(tight)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := g.Extract(loose)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range vt {
		if vt[i] != vl[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("geomstats cannot distinguish tight and loose spacing")
	}
	// Min core gap scalar: tight < loose.
	minGapIdx := g.Dim() - 2
	if vt[minGapIdx] >= vl[minGapIdx] {
		t.Fatalf("min core gap not ordered: %v vs %v", vt[minGapIdx], vl[minGapIdx])
	}
}

func TestGeomStatsEmptyClip(t *testing.T) {
	g := &GeomStats{}
	clip := layout.Clip{Window: geom.R(0, 0, 1024, 1024), Core: geom.R(256, 256, 768, 768)}
	v, err := g.Extract(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != g.Dim() {
		t.Fatalf("len = %d", len(v))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d = %v on empty clip", i, x)
		}
	}
}

func TestGeomStatsWidthSensitivity(t *testing.T) {
	g := &GeomStats{}
	narrow := testClip(t, geom.R(0, 488, 1024, 536)) // 48 nm line
	wide := testClip(t, geom.R(0, 464, 1024, 560))   // 96 nm line
	vn, err := g.Extract(narrow)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := g.Extract(wide)
	if err != nil {
		t.Fatal(err)
	}
	// Width histogram bucket 1 is [40,48) and bucket 2 is [48,56): the
	// narrow line must fill an early bucket the wide one does not.
	if vn[2] <= vw[2] {
		t.Fatalf("width histogram insensitive: narrow[2]=%v wide[2]=%v", vn[2], vw[2])
	}
}
