package features

import (
	"math"

	"github.com/golitho/hsd/internal/layout"
)

// GeomStats is the hand-crafted geometric feature family of shallow
// hotspot detectors: histograms of drawn critical dimensions (feature
// widths and inter-feature spacings) plus summary scalars, computed for
// the whole window and again restricted to the scored core.
//
// The survey's framing: shallow learning lives or dies by this kind of
// ad-hoc feature engineering, while deep models learn their features.
type GeomStats struct{}

var _ Extractor = (*GeomStats)(nil)

// geomBuckets are the histogram edges in nanometres, concentrated around
// the lithographically critical 40-90 nm region.
var geomBuckets = []int{40, 48, 56, 64, 72, 88, 112, 160}

// Name implements Extractor.
func (g *GeomStats) Name() string { return "geomstats" }

// Dim implements Extractor.
func (g *GeomStats) Dim() int {
	// widths + gaps histograms, window and core scopes, plus 6 scalars.
	return 2*2*(len(geomBuckets)+1) + 6
}

// bucketOf returns the histogram bin for a dimension d.
func bucketOf(d int) int {
	for i, edge := range geomBuckets {
		if d < edge {
			return i
		}
	}
	return len(geomBuckets)
}

// Extract implements Extractor.
func (g *GeomStats) Extract(clip layout.Clip) ([]float64, error) {
	nb := len(geomBuckets) + 1
	widthsWin := make([]float64, nb)
	widthsCore := make([]float64, nb)
	gapsWin := make([]float64, nb)
	gapsCore := make([]float64, nb)

	minWidthCore, minGapCore := math.Inf(1), math.Inf(1)

	for i, r := range clip.Shapes {
		w := min(r.Dx(), r.Dy())
		widthsWin[bucketOf(w)]++
		if r.Overlaps(clip.Core) {
			widthsCore[bucketOf(w)]++
			if float64(w) < minWidthCore {
				minWidthCore = float64(w)
			}
		}
		for j := i + 1; j < len(clip.Shapes); j++ {
			o := clip.Shapes[j]
			d2 := r.DistanceSq(o)
			if d2 == 0 {
				continue // drawn-connected
			}
			d := int(math.Sqrt(float64(d2)))
			if d >= 256 {
				continue // far pairs carry no lithographic interaction
			}
			gapsWin[bucketOf(d)]++
			// A gap is core-relevant when the midpoint region between
			// the two shapes touches the core.
			mid := r.Union(o).Intersect(clip.Core)
			if !mid.Empty() {
				gapsCore[bucketOf(d)]++
				if float64(d) < minGapCore {
					minGapCore = float64(d)
				}
			}
		}
	}

	// Normalize histogram mass so feature scale is stable across pattern
	// densities.
	normalize := func(h []float64) {
		var s float64
		for _, v := range h {
			s += v
		}
		if s > 0 {
			for i := range h {
				h[i] /= s
			}
		}
	}
	normalize(widthsWin)
	normalize(widthsCore)
	normalize(gapsWin)
	normalize(gapsCore)

	if math.IsInf(minWidthCore, 1) {
		minWidthCore = 256
	}
	if math.IsInf(minGapCore, 1) {
		minGapCore = 256
	}

	out := make([]float64, 0, g.Dim())
	out = append(out, widthsWin...)
	out = append(out, widthsCore...)
	out = append(out, gapsWin...)
	out = append(out, gapsCore...)
	out = append(out,
		clip.Density(),
		coreDensity(clip),
		float64(len(clip.Shapes))/64,
		minWidthCore/256,
		minGapCore/256,
		boundaryShapeFrac(clip),
	)
	return out, nil
}

// coreDensity is the drawn-area fraction of the core region.
func coreDensity(clip layout.Clip) float64 {
	if clip.Core.Empty() {
		return 0
	}
	var covered int64
	for _, s := range clip.Shapes {
		covered += s.Intersect(clip.Core).Area()
	}
	return float64(covered) / float64(clip.Core.Area())
}

// boundaryShapeFrac is the fraction of shapes clipped by the window edge,
// a proxy for how much context the window truncates.
func boundaryShapeFrac(clip layout.Clip) float64 {
	if len(clip.Shapes) == 0 {
		return 0
	}
	inner := clip.Window.Expand(-1)
	n := 0
	for _, s := range clip.Shapes {
		if !inner.ContainsRect(s) {
			n++
		}
	}
	return float64(n) / float64(len(clip.Shapes))
}
