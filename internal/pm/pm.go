// Package pm implements pattern-matching hotspot detection, the
// pre-machine-learning baseline the survey starts from: a library of known
// hotspot patterns is matched against candidate clips, exactly or fuzzily
// (within a Hamming-distance tolerance on the binarized raster).
//
// Pattern matching has near-zero false alarms on known patterns but
// cannot generalize to unseen hotspot topologies, which is precisely the
// weakness that motivated learning-based detectors.
package pm

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/raster"
)

// Config parameterizes the matcher.
type Config struct {
	// GridPx is the pattern raster resolution per side (default 32).
	GridPx int
	// Tol is the Hamming tolerance in pixels: a clip within Tol bits of
	// any library pattern matches. 0 means exact matching (default 0).
	Tol int
	// Mirror adds the X/Y mirror images of every library pattern,
	// exploiting the mirror symmetry of optics.
	Mirror bool
}

func (c *Config) normalize() error {
	if c.GridPx <= 0 {
		c.GridPx = 32
	}
	if c.Tol < 0 {
		return fmt.Errorf("pm: negative tolerance %d", c.Tol)
	}
	return nil
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitset) hamming(o bitset) int {
	d := 0
	for i := range b {
		d += bits.OnesCount64(b[i] ^ o[i])
	}
	return d
}

// Library is a trained pattern matcher.
type Library struct {
	cfg      Config
	patterns []bitset
	bitsets  int // pixels per pattern
}

// New constructs an empty library.
func New(cfg Config) (*Library, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Library{cfg: cfg, bitsets: cfg.GridPx * cfg.GridPx}, nil
}

// rasterizeClip converts a clip into a GridPx x GridPx bitset.
func (l *Library) rasterizeClip(clip layout.Clip) (bitset, error) {
	if clip.Window.Empty() {
		return nil, errors.New("pm: empty clip window")
	}
	side := clip.Window.Dx()
	if clip.Window.Dy() != side {
		return nil, fmt.Errorf("pm: clip window %v is not square", clip.Window)
	}
	px := side / l.cfg.GridPx
	if px <= 0 || side%l.cfg.GridPx != 0 {
		return nil, fmt.Errorf("pm: window side %d not divisible by grid %d", side, l.cfg.GridPx)
	}
	im, err := raster.Rasterize(raster.Config{Window: clip.Window, PixelNM: px}, clip.Shapes)
	if err != nil {
		return nil, fmt.Errorf("pm: rasterize: %w", err)
	}
	bs := newBitset(l.bitsets)
	for i, v := range im.Pix {
		if v >= 0.5 {
			bs.set(i)
		}
	}
	return bs, nil
}

// mirrorBits returns the horizontal and vertical mirror images of p.
func (l *Library) mirrorBits(p bitset) (bitset, bitset) {
	g := l.cfg.GridPx
	mx, my := newBitset(l.bitsets), newBitset(l.bitsets)
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			if p[(y*g+x)/64]&(1<<((y*g+x)%64)) != 0 {
				mx.set(y*g + (g - 1 - x))
				my.set((g-1-y)*g + x)
			}
		}
	}
	return mx, my
}

// AddHotspot inserts one known hotspot clip into the library.
func (l *Library) AddHotspot(clip layout.Clip) error {
	bs, err := l.rasterizeClip(clip)
	if err != nil {
		return err
	}
	l.patterns = append(l.patterns, bs)
	if l.cfg.Mirror {
		mx, my := l.mirrorBits(bs)
		l.patterns = append(l.patterns, mx, my)
	}
	return nil
}

// Size returns the number of stored patterns (including mirrors).
func (l *Library) Size() int { return len(l.patterns) }

// MinDistance returns the smallest Hamming distance from the clip to any
// library pattern, or an error when the clip cannot be rasterized. An
// empty library returns the maximum distance (total pixel count).
func (l *Library) MinDistance(clip layout.Clip) (int, error) {
	bs, err := l.rasterizeClip(clip)
	if err != nil {
		return 0, err
	}
	best := l.bitsets
	for _, p := range l.patterns {
		if d := bs.hamming(p); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best, nil
}

// Score returns a hotspot likelihood in [0, 1]: 1 for an exact library
// match, decreasing with Hamming distance.
func (l *Library) Score(clip layout.Clip) (float64, error) {
	d, err := l.MinDistance(clip)
	if err != nil {
		return 0, err
	}
	return 1 - float64(d)/float64(l.bitsets), nil
}

// Match reports whether the clip matches the library within tolerance.
func (l *Library) Match(clip layout.Clip) (bool, error) {
	d, err := l.MinDistance(clip)
	if err != nil {
		return false, err
	}
	return d <= l.cfg.Tol, nil
}
