package pm

import (
	"testing"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func clipOf(t *testing.T, shapes ...geom.Rect) layout.Clip {
	t.Helper()
	l := layout.New("t")
	for _, s := range shapes {
		if err := l.AddRect(s); err != nil {
			t.Fatal(err)
		}
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestExactMatch(t *testing.T) {
	lib, err := New(Config{GridPx: 32})
	if err != nil {
		t.Fatal(err)
	}
	hs := clipOf(t, geom.R(0, 448, 1024, 512), geom.R(0, 544, 1024, 608))
	if err := lib.AddHotspot(hs); err != nil {
		t.Fatal(err)
	}
	ok, err := lib.Match(hs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("library does not match its own pattern")
	}
	s, err := lib.Score(hs)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self score = %v, want 1", s)
	}
}

func TestNoMatchOnDifferentPattern(t *testing.T) {
	lib, err := New(Config{GridPx: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddHotspot(clipOf(t, geom.R(0, 448, 1024, 512))); err != nil {
		t.Fatal(err)
	}
	other := clipOf(t, geom.R(448, 0, 512, 1024)) // orthogonal line
	ok, err := lib.Match(other)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("exact matcher matched a different pattern")
	}
}

func TestFuzzyTolerance(t *testing.T) {
	exact, err := New(Config{GridPx: 32, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	fuzzy, err := New(Config{GridPx: 32, Tol: 70})
	if err != nil {
		t.Fatal(err)
	}
	base := clipOf(t, geom.R(0, 448, 1024, 512))
	if err := exact.AddHotspot(base); err != nil {
		t.Fatal(err)
	}
	if err := fuzzy.AddHotspot(base); err != nil {
		t.Fatal(err)
	}
	// Shift the line by one 32 nm grid pixel: 32 differing pixel rows.
	shifted := clipOf(t, geom.R(0, 480, 1024, 544))
	okExact, err := exact.Match(shifted)
	if err != nil {
		t.Fatal(err)
	}
	okFuzzy, err := fuzzy.Match(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if okExact {
		t.Fatal("exact matcher matched a shifted pattern")
	}
	if !okFuzzy {
		d, _ := fuzzy.MinDistance(shifted)
		t.Fatalf("fuzzy matcher rejected shifted pattern (distance %d)", d)
	}
}

func TestMirrorAugmentation(t *testing.T) {
	asym := clipOf(t, geom.R(0, 448, 400, 512)) // line only on the left
	mirrored := clipOf(t, geom.R(624, 448, 1024, 512))

	plain, err := New(Config{GridPx: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.AddHotspot(asym); err != nil {
		t.Fatal(err)
	}
	if ok, _ := plain.Match(mirrored); ok {
		t.Fatal("plain matcher matched mirror image")
	}

	withMirror, err := New(Config{GridPx: 32, Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := withMirror.AddHotspot(asym); err != nil {
		t.Fatal(err)
	}
	if withMirror.Size() != 3 {
		t.Fatalf("mirror library size = %d, want 3", withMirror.Size())
	}
	if ok, _ := withMirror.Match(mirrored); !ok {
		t.Fatal("mirror matcher missed mirror image")
	}
}

func TestEmptyLibrary(t *testing.T) {
	lib, err := New(Config{GridPx: 16})
	if err != nil {
		t.Fatal(err)
	}
	c := clipOf(t, geom.R(0, 0, 1024, 1024))
	d, err := lib.MinDistance(c)
	if err != nil {
		t.Fatal(err)
	}
	if d != 16*16 {
		t.Fatalf("empty library distance = %d, want %d", d, 16*16)
	}
	s, err := lib.Score(c)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("empty library score = %v, want 0", s)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Tol: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	lib, err := New(Config{GridPx: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddHotspot(layout.Clip{}); err == nil {
		t.Fatal("empty clip accepted")
	}
	// Non-square window.
	bad := layout.Clip{Window: geom.R(0, 0, 100, 200)}
	if err := lib.AddHotspot(bad); err == nil {
		t.Fatal("non-square clip accepted")
	}
	// Window not divisible by grid.
	bad2 := layout.Clip{Window: geom.R(0, 0, 100, 100)}
	if err := lib.AddHotspot(bad2); err == nil {
		t.Fatal("indivisible window accepted")
	}
}

func TestBitsetHamming(t *testing.T) {
	a, b := newBitset(128), newBitset(128)
	a.set(0)
	a.set(100)
	b.set(100)
	b.set(127)
	if d := a.hamming(b); d != 2 {
		t.Fatalf("hamming = %d, want 2", d)
	}
	if d := a.hamming(a); d != 0 {
		t.Fatalf("self hamming = %d", d)
	}
}
