package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
)

func postBatch(t *testing.T, url string) (*http.Response, ScoreResponse) {
	t.Helper()
	resp, err := http.Post(url+"/batch", "text/plain",
		gltBody(t, geom.R(0, 0, 1024, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ScoreResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// testBatchClip builds the dense in-package clip used by the direct
// submit tests.
func testBatchClip(t *testing.T) layout.Clip {
	t.Helper()
	l := layout.New("batch")
	if err := l.AddRect(geom.R(0, 0, 1024, 1024)); err != nil {
		t.Fatal(err)
	}
	clip, err := l.ClipAt(geom.Pt(512, 512), 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// TestBatchMatchesScore: a /batch verdict is identical to the /score
// verdict for the same body — batching must never change scores.
func TestBatchMatchesScore(t *testing.T) {
	ts := newTestServer(t, false)
	_, want := postScore(t, ts.URL)
	resp, got := postBatch(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if got != want {
		t.Fatalf("/batch verdict %+v != /score verdict %+v", got, want)
	}
}

// TestBatchCoalescing: with a long batch window, concurrent requests
// coalesce into exactly one scoring pass of the full batch size, and the
// batch_size histogram records it.
func TestBatchCoalescing(t *testing.T) {
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		BatchMaxSize: 4,
		BatchMaxWait: 30 * time.Second, // flush only on a full batch
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	outs := make([]ScoreResponse, 4)
	codes := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postBatch(t, ts.URL)
			codes[i], outs[i] = resp.StatusCode, out
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, codes[i])
		}
		if !outs[i].Hotspot || outs[i].Degraded {
			t.Fatalf("request %d: verdict %+v", i, outs[i])
		}
	}
	if n, sum := s.batchSize.Count(), s.batchSize.Sum(); n != 1 || sum != 4 {
		t.Fatalf("batch_size observations = %d (sum %v), want one batch of 4", n, sum)
	}
	if s.batchLatency.Count() != 1 {
		t.Fatalf("batch_latency observations = %d, want 1", s.batchLatency.Count())
	}
	text := metricsText(t, ts.URL)
	for _, want := range []string{"batch_size_count 1", "batch_size_sum 4"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
}

// TestBatchOverlapping floods the endpoint so multiple batches are in
// flight at once (full flushes racing window flushes); every request
// must still get a correct, non-degraded verdict. Run with -race this is
// the overlapping-batch data-race gate.
func TestBatchOverlapping(t *testing.T) {
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		BatchMaxSize: 2,
		BatchMaxWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postBatch(t, ts.URL)
			if resp.StatusCode != http.StatusOK {
				errs <- "non-200 under overlap"
				return
			}
			if !out.Hotspot || out.Degraded {
				errs <- "wrong verdict under overlap"
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if got := int(s.batchSize.Sum()); got != n {
		t.Fatalf("batch_size sum = %d, want %d requests scored", got, n)
	}
}

// TestBatchCancelledMidBatch: a request cancelled while waiting in a
// pending batch gets its context error without being scored, and the
// rest of the batch is unaffected.
func TestBatchCancelledMidBatch(t *testing.T) {
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		BatchMaxSize: 2,
		BatchMaxWait: time.Hour, // only a full batch flushes
	})
	if err != nil {
		t.Fatal(err)
	}
	clip := testBatchClip(t)

	type result struct {
		resp ScoreResponse
		err  error
	}
	leaderDone := make(chan result, 1)
	go func() {
		resp, err := s.batch.submit(context.Background(), clip)
		leaderDone <- result{resp, err}
	}()
	// Wait until the leader is enqueued before submitting the follower.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.batch.mu.Lock()
		pending := 0
		if s.batch.cur != nil {
			pending = len(s.batch.cur.items)
		}
		s.batch.mu.Unlock()
		if pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.batch.submit(cancelled, clip); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit err = %v, want context.Canceled", err)
	}
	lr := <-leaderDone
	if lr.err != nil {
		t.Fatalf("leader err = %v", lr.err)
	}
	if !lr.resp.Hotspot || lr.resp.Degraded {
		t.Fatalf("leader verdict = %+v", lr.resp)
	}
	// Only the live item was scored.
	if n, sum := s.batchSize.Count(), s.batchSize.Sum(); n != 1 || sum != 1 {
		t.Fatalf("batch_size = %d obs (sum %v), want one batch of 1", n, sum)
	}
}

// TestBatchCancelledLeader: cancelling the leader while it waits out the
// batch window flushes immediately — followers are still answered.
func TestBatchCancelledLeader(t *testing.T) {
	s, err := NewServer(Options{
		Primary:      thresholdDetector{},
		BatchMaxSize: 8,
		BatchMaxWait: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	clip := testBatchClip(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.batch.submit(ctx, clip)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.batch.mu.Lock()
		pending := 0
		if s.batch.cur != nil {
			pending = len(s.batch.cur.items)
		}
		s.batch.mu.Unlock()
		if pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("leader err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled leader never returned")
	}
}

// TestBatchMethodAndParse: /batch mirrors /score on bad input.
func TestBatchMethodAndParse(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/batch", "text/plain", strings.NewReader("not a layout"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status = %d, want 400", resp.StatusCode)
	}
}
