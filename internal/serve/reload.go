// Validated hot model reload: the admin surface over the model
// registry.
//
//	POST /admin/reload   {"path":"..."} -> load, gate, swap (200) or
//	                     422 when the validation gate rejects the
//	                     candidate, 500 when it cannot be loaded
//	POST /admin/rollback -> restore the previous generation (409 when
//	                     there is none)
//	GET  /admin/model    -> live generation, source, detector, probation
//
// The endpoints exist only when Options.Reload is set; everything they
// do is also reachable programmatically via Server.Registry().
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/registry"
)

// ReloadOptions enables and configures validated hot model reload.
type ReloadOptions struct {
	// Loader builds a candidate detector from a model path (required).
	Loader func(path string) (core.Detector, error)
	// DefaultPath is reloaded when POST /admin/reload names no path —
	// typically the watched model file.
	DefaultPath string
	// Golden is the validation set both live and candidate models are
	// scored on; empty reduces the gate to finiteness/panic checks.
	Golden []core.LabeledClip
	// MaxRecallDrop / MaxFalseAlarmRise bound how much worse the
	// candidate may do on the golden set (defaults 0: no regression).
	MaxRecallDrop     float64
	MaxFalseAlarmRise float64
	// ProbationRequests post-swap primary outcomes are watched; more
	// than ProbationMaxFailures failures inside the window rolls the
	// swap back automatically. Zero disables probation.
	ProbationRequests    int
	ProbationMaxFailures int
	// Logf receives registry notices (default: discard).
	Logf func(format string, args ...any)
}

// VerdictJSON is the gate verdict in admin replies. Rates are omitted
// when the gate had no golden samples of that class (NaN internally).
type VerdictJSON struct {
	OK         bool     `json:"ok"`
	Reason     string   `json:"reason,omitempty"`
	LiveRecall *float64 `json:"liveRecall,omitempty"`
	CandRecall *float64 `json:"candRecall,omitempty"`
	LiveFAR    *float64 `json:"liveFalseAlarmRate,omitempty"`
	CandFAR    *float64 `json:"candFalseAlarmRate,omitempty"`
}

func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func verdictJSON(v registry.Verdict) VerdictJSON {
	return VerdictJSON{
		OK: v.OK, Reason: v.Reason,
		LiveRecall: finitePtr(v.LiveRecall), CandRecall: finitePtr(v.CandRecall),
		LiveFAR: finitePtr(v.LiveFAR), CandFAR: finitePtr(v.CandFAR),
	}
}

// ModelResponse is the GET /admin/model reply (and the success body of
// the admin mutations, with the verdict attached on reload).
type ModelResponse struct {
	Generation int64        `json:"generation"`
	Source     string       `json:"source"`
	Detector   string       `json:"detector"`
	Threshold  float64      `json:"threshold"`
	LoadedAt   time.Time    `json:"loadedAt"`
	Verdict    *VerdictJSON `json:"verdict,omitempty"`
}

func modelResponse(gen *registry.Generation) ModelResponse {
	return ModelResponse{
		Generation: gen.ID,
		Source:     gen.Source,
		Detector:   gen.Detector.Name(),
		Threshold:  gen.Detector.Threshold(),
		LoadedAt:   gen.LoadedAt,
	}
}

// reloadRequest is the POST /admin/reload body.
type reloadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req reloadRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		clipError(w, err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("parse body: %v", err), http.StatusBadRequest)
			return
		}
	}
	if req.Path == "" {
		req.Path = r.URL.Query().Get("path")
	}
	if req.Path == "" {
		req.Path = s.opts.Reload.DefaultPath
	}
	if req.Path == "" {
		http.Error(w, "no model path: set {\"path\":...} or configure a default", http.StatusBadRequest)
		return
	}
	gen, verdict, err := s.registry.Reload(r.Context(), req.Path)
	vj := verdictJSON(verdict)
	switch {
	case err == nil:
		resp := modelResponse(gen)
		resp.Verdict = &vj
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, registry.ErrRejected):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": err.Error(), "verdict": vj,
		})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(),
		})
	}
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.registry.Rollback("operator request") {
		http.Error(w, "no previous generation to roll back to", http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, modelResponse(s.registry.Live()))
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, modelResponse(s.registry.Live()))
}
