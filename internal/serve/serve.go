// Package serve exposes a trained hotspot detector as an HTTP service:
// physical-verification flows POST layout clips and receive JSON
// verdicts, optionally backed by lithography-simulation verification.
//
// Endpoints:
//
//	POST /score   body: GLT layout of one clip window -> {"score":..,"hotspot":..}
//	POST /verify  same body -> full oracle verdict with defects
//	GET  /healthz -> {"status":"ok","detector":"..."}
//
// The service is stateless per request and safe for concurrent use: the
// detector is cloned per request when it is not concurrency-safe.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
)

// maxBodyBytes bounds accepted request bodies (a clip is a few KiB).
const maxBodyBytes = 4 << 20

// Server wires a fitted detector (and optionally the oracle) into an
// http.Handler.
type Server struct {
	det core.Detector
	sim *lithosim.Simulator

	// clipNM/coreFrac describe the windows the detector was trained on.
	clipNM   int
	coreFrac float64

	mu    sync.Mutex
	clone core.Detector // reused single clone for non-concurrent detectors
}

// New constructs a Server. det must already be fitted; sim may be nil to
// disable /verify.
func New(det core.Detector, sim *lithosim.Simulator, clipNM int, coreFrac float64) (*Server, error) {
	if det == nil {
		return nil, fmt.Errorf("serve: nil detector")
	}
	if clipNM <= 0 {
		clipNM = 1024
	}
	if coreFrac <= 0 || coreFrac > 1 {
		coreFrac = 0.5
	}
	s := &Server{det: det, sim: sim, clipNM: clipNM, coreFrac: coreFrac}
	if c, ok := det.(core.Cloner); ok {
		s.clone = c.CloneDetector()
	}
	return s, nil
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/verify", s.handleVerify)
	return mux
}

// ScoreResponse is the /score reply.
type ScoreResponse struct {
	Detector  string  `json:"detector"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Hotspot   bool    `json:"hotspot"`
}

// VerifyResponse is the /verify reply.
type VerifyResponse struct {
	Hotspot    bool         `json:"hotspot"`
	PVBandArea float64      `json:"pvBandArea"`
	Defects    []DefectJSON `json:"defects"`
}

// DefectJSON is one defect in a /verify reply.
type DefectJSON struct {
	Type   string `json:"type"`
	Corner string `json:"corner"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ok",
		"detector": s.det.Name(),
	})
}

// readClip parses the request body (GLT layout) into a centred clip.
func (s *Server) readClip(r *http.Request) (layout.Clip, error) {
	l, err := layout.Read(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return layout.Clip{}, fmt.Errorf("parse layout: %w", err)
	}
	b := l.Bounds()
	if b.Empty() {
		return layout.Clip{}, fmt.Errorf("layout has no shapes")
	}
	c := b.Center()
	return l.ClipAt(geom.Pt(c.X, c.Y), s.clipNM, s.coreFrac)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	clip, err := s.readClip(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	score, err := s.score(clip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		Detector:  s.det.Name(),
		Score:     score,
		Threshold: s.det.Threshold(),
		Hotspot:   score >= s.det.Threshold(),
	})
}

// score runs the detector, serializing access when it is not
// concurrency-safe.
func (s *Server) score(clip layout.Clip) (float64, error) {
	if s.clone != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.clone.Score(clip)
	}
	return s.det.Score(clip)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.sim == nil {
		http.Error(w, "verification disabled", http.StatusNotImplemented)
		return
	}
	clip, err := s.readClip(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.sim.Simulate(clip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := VerifyResponse{Hotspot: res.Hotspot, PVBandArea: res.PVBandArea}
	for _, d := range res.Defects {
		out.Defects = append(out.Defects, DefectJSON{
			Type: d.Type.String(), Corner: d.Corner, X: d.At.X, Y: d.At.Y,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the client sees a truncated body.
	_ = json.NewEncoder(w).Encode(v)
}
