// Package serve exposes a trained hotspot detector as an HTTP service:
// physical-verification flows POST layout clips and receive JSON
// verdicts, optionally backed by lithography-simulation verification.
//
// Endpoints:
//
//	POST /score   body: GLT layout of one clip window -> {"score":..,"hotspot":..}
//	POST /batch   same body; concurrent requests coalesce into one scoring pass
//	POST /verify  same body -> full oracle verdict with defects
//	GET  /healthz -> {"status":"ok","detector":"..."}  (liveness)
//	GET  /readyz  -> breaker state + fallback availability (readiness)
//	GET  /metrics -> Prometheus text exposition of serving telemetry
//
// Serving is a graceful-degradation cascade over the paper's
// shallow-to-deep detector spectrum: the primary (deep, accurate,
// expensive) detector is guarded by a per-request deadline budget and a
// circuit breaker; when it times out, errors, panics, or the breaker is
// open, the request is re-scored by the shallow fallback detector and
// answered with "degraded": true instead of an error. A token-bucket
// load shedder rejects excess traffic with 429 + Retry-After before any
// work is queued. Every stage is observable: hotspot_fallbacks_total,
// requests_shed_total, hotspot_breaker_state, and the per-endpoint
// request metrics.
//
// The service is stateless per request and safe for concurrent use: each
// detector is cloned once when it is not concurrency-safe, and access to
// the clone is serialized.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/faultinject"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/qualitymon"
	"github.com/golitho/hsd/internal/registry"
	"github.com/golitho/hsd/internal/resilience"
	"github.com/golitho/hsd/internal/telemetry"
	"github.com/golitho/hsd/internal/trace"
)

// maxBodyBytes bounds accepted request bodies (a clip is a few KiB).
const maxBodyBytes = 4 << 20

// PrimarySite is the faultinject hook name fired inside primary-detector
// scoring, for chaos-testing the degradation cascade.
const PrimarySite = "serve.primary"

// Options configures a Server. Primary is required; everything else has
// a working zero value.
type Options struct {
	// Primary is the detector of record (typically the deep CNN).
	Primary core.Detector
	// Fallback, when non-nil, answers requests the primary cannot:
	// deadline overruns, panics, errors, and breaker-open rejections
	// produce a degraded verdict from this (typically shallow) detector
	// instead of a 5xx.
	Fallback core.Detector
	// Sim enables POST /verify when non-nil.
	Sim *lithosim.Simulator
	// ClipNM/CoreFrac describe the windows the detectors were trained
	// on (defaults 1024 and 0.5).
	ClipNM   int
	CoreFrac float64
	// DeadlineBudget is the per-request compute budget: each scoring or
	// verification request gets a context deadline this far out (capped
	// by any tighter client deadline). Zero disables the budget.
	DeadlineBudget time.Duration
	// Breaker tunes the primary-detector circuit breaker; the zero
	// value gets the resilience defaults (5 consecutive failures trip,
	// 5s cool-down, 1 probe).
	Breaker resilience.BreakerConfig
	// ShedRate, when positive, enables token-bucket admission control
	// at this many requests per second (ShedBurst capacity, default
	// max(ShedRate, 1)). Shed requests get 429 with Retry-After before
	// any parsing or scoring work happens.
	ShedRate  float64
	ShedBurst float64
	// BatchMaxSize caps how many POST /batch requests are coalesced into
	// one scoring pass (default 32).
	BatchMaxSize int
	// BatchMaxWait is how long the first request of a batch waits for
	// company before flushing a partial batch (default 2ms).
	BatchMaxWait time.Duration
	// Clock drives breaker and shedder timing (default the wall clock).
	Clock resilience.Clock
	// Trace, when non-nil, enables request tracing: every request runs
	// under a root span whose children attribute time to pipeline stages,
	// retained under the config's tail-sampling policy and served by
	// GET /debug/traces. The config's Metrics registry defaults to the
	// server's own (so hotspot_stage_seconds lands in /metrics) and its
	// Clock defaults to Options.Clock.
	Trace *trace.Config
	// Reload, when non-nil, puts the primary detector behind a versioned
	// model registry with validated hot reload: POST /admin/reload loads
	// a candidate, gates it on the golden set against the live model, and
	// swaps atomically; post-swap primary outcomes feed a probation window
	// that rolls back automatically when errors spike.
	Reload *ReloadOptions
	// Quality, when non-nil, enables model-quality monitoring: every
	// cascade answer feeds the monitor's score sketches (stage "primary"
	// or "fallback"), primary outcomes feed its SLO window, its gauges
	// land in /metrics, drift events land in the trace store, and
	// GET /debug/quality serves its snapshot. With hot reload enabled
	// the registry resets the monitor and installs baseline sidecars on
	// every generation change.
	Quality *qualitymon.Monitor
}

// scorer wraps one detector, serializing access through a single clone
// when the detector is not concurrency-safe.
type scorer struct {
	det   core.Detector
	mu    sync.Mutex
	clone core.Detector
}

func newScorer(det core.Detector) *scorer {
	s := &scorer{det: det}
	if c, ok := det.(core.Cloner); ok {
		s.clone = c.CloneDetector()
	}
	return s
}

func (s *scorer) score(ctx context.Context, clip layout.Clip) (float64, error) {
	if s.clone != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return core.ScoreClipCtx(ctx, s.clone, clip)
	}
	return core.ScoreClipCtx(ctx, s.det, clip)
}

// Server wires the detector cascade (and optionally the oracle) into an
// http.Handler.
type Server struct {
	opts Options
	// primary is swapped atomically on validated hot reload; every
	// request loads it exactly once so detector name, threshold, and
	// score always describe the same generation.
	primary  atomic.Pointer[scorer]
	registry *registry.Registry // nil when hot reload is disabled
	fallback *scorer            // nil when no fallback is configured
	sim      *lithosim.Simulator
	clipNM   int
	coreFrac float64

	breaker *resilience.Breaker
	shed    *resilience.Shedder // nil when shedding is disabled
	batch   *batcher
	tracer  *trace.Tracer      // nil when tracing is disabled
	quality *qualitymon.Monitor // nil when quality monitoring is disabled

	reg          *telemetry.Registry
	panics       *telemetry.Counter
	fallbacks    *telemetry.Counter
	shedTotal    *telemetry.Counter
	primaryErrs  *telemetry.Counter
	batchSize    *telemetry.Histogram
	batchLatency *telemetry.Histogram
}

// New constructs a Server with no fallback, deadline, or shedding —
// the pre-cascade behaviour. det must already be fitted; sim may be nil
// to disable /verify.
func New(det core.Detector, sim *lithosim.Simulator, clipNM int, coreFrac float64) (*Server, error) {
	return NewServer(Options{Primary: det, Sim: sim, ClipNM: clipNM, CoreFrac: coreFrac})
}

// NewServer constructs a Server from Options. Options.Primary must be a
// fitted detector.
func NewServer(opts Options) (*Server, error) {
	if opts.Primary == nil {
		return nil, fmt.Errorf("serve: nil primary detector")
	}
	if opts.ClipNM <= 0 {
		opts.ClipNM = 1024
	}
	if opts.CoreFrac <= 0 || opts.CoreFrac > 1 {
		opts.CoreFrac = 0.5
	}
	if opts.Clock == nil {
		opts.Clock = resilience.Real
	}
	reg := telemetry.NewRegistry()
	reg.SetHelp("http_requests_total", "Requests by endpoint and status code.")
	reg.SetHelp("http_errors_total", "Responses with status >= 400 by endpoint.")
	reg.SetHelp("http_request_seconds", "Request latency by endpoint.")
	reg.SetHelp("http_inflight_requests", "Requests currently being served.")
	reg.SetHelp("http_panics_total", "Panics recovered during request handling.")
	reg.SetHelp("hotspot_fallbacks_total", "Requests answered by the fallback detector (degraded verdicts).")
	reg.SetHelp("requests_shed_total", "Requests rejected 429 by the admission token bucket.")
	reg.SetHelp("hotspot_breaker_state", "Primary-detector circuit breaker state: 0=closed, 1=half-open, 2=open.")
	reg.SetHelp("hotspot_primary_failures_total", "Primary detector failures (errors, panics, deadline overruns).")
	reg.SetHelp("batch_size", "Requests coalesced per /batch scoring pass.")
	reg.SetHelp("batch_latency_seconds", "Latency of one /batch scoring pass (flush to results).")
	reg.SetHelp("hotspot_inflight_requests", "Requests in flight, counted before admission control so shed traffic is visible.")
	telemetry.RegisterRuntimeMetrics(reg)

	if opts.BatchMaxSize <= 0 {
		opts.BatchMaxSize = 32
	}
	if opts.BatchMaxWait <= 0 {
		opts.BatchMaxWait = 2 * time.Millisecond
	}
	s := &Server{
		opts:         opts,
		sim:          opts.Sim,
		clipNM:       opts.ClipNM,
		coreFrac:     opts.CoreFrac,
		reg:          reg,
		panics:       reg.Counter("http_panics_total"),
		fallbacks:    reg.Counter("hotspot_fallbacks_total"),
		shedTotal:    reg.Counter("requests_shed_total"),
		primaryErrs:  reg.Counter("hotspot_primary_failures_total"),
		batchSize:    reg.Histogram("batch_size", []float64{1, 2, 4, 8, 16, 32, 64}),
		batchLatency: reg.Histogram("batch_latency_seconds", nil),
		quality:      opts.Quality,
	}
	if s.quality != nil {
		s.quality.BindMetrics(reg)
	}
	s.primary.Store(newScorer(opts.Primary))
	s.batch = &batcher{
		srv:     s,
		maxSize: opts.BatchMaxSize,
		maxWait: opts.BatchMaxWait,
		clock:   opts.Clock,
	}
	if opts.Fallback != nil {
		s.fallback = newScorer(opts.Fallback)
	}
	bcfg := opts.Breaker
	if bcfg.Clock == nil {
		bcfg.Clock = opts.Clock
	}
	stateGauge := reg.Gauge("hotspot_breaker_state")
	userOnState := bcfg.OnStateChange
	bcfg.OnStateChange = func(st resilience.BreakerState) {
		stateGauge.Set(float64(st))
		if userOnState != nil {
			userOnState(st)
		}
	}
	s.breaker = resilience.NewBreaker(bcfg)
	if opts.ShedRate > 0 {
		s.shed = resilience.NewShedder(resilience.ShedderConfig{
			Rate: opts.ShedRate, Burst: opts.ShedBurst, Clock: opts.Clock,
		})
	}
	if opts.Trace != nil {
		tcfg := *opts.Trace
		if tcfg.Clock == nil {
			tcfg.Clock = opts.Clock
		}
		if tcfg.Metrics == nil {
			tcfg.Metrics = reg
		}
		s.tracer = trace.New(tcfg)
		if s.quality != nil {
			s.quality.BindTracer(s.tracer)
		}
	}
	if opts.Reload != nil {
		if opts.Reload.Loader == nil {
			return nil, fmt.Errorf("serve: Reload options need a Loader")
		}
		s.registry = registry.New(opts.Primary, registry.Config{
			Loader:               opts.Reload.Loader,
			Golden:               opts.Reload.Golden,
			MaxRecallDrop:        opts.Reload.MaxRecallDrop,
			MaxFalseAlarmRise:    opts.Reload.MaxFalseAlarmRise,
			ProbationRequests:    opts.Reload.ProbationRequests,
			ProbationMaxFailures: opts.Reload.ProbationMaxFailures,
			Logf:                 opts.Reload.Logf,
			OnSwap: func(gen *registry.Generation) {
				s.primary.Store(newScorer(gen.Detector))
			},
			Quality: qualityHook(s.quality),
		})
		s.registry.BindMetrics(reg)
	}
	return s, nil
}

// Registry returns the model registry, or nil when hot reload is
// disabled. Callers use it to start a Watch goroutine on a model path.
func (s *Server) Registry() *registry.Registry { return s.registry }

// Tracer returns the request tracer, or nil when tracing is disabled.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics returns the server's telemetry registry, for embedding the
// serving metrics into a wider exposition or reading them in tests.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Handler returns the routed HTTP handler with instrumentation and panic
// recovery applied to every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("/readyz", s.instrument("/readyz", s.handleReady))
	mux.HandleFunc("/score", s.instrument("/score", s.handleScore))
	mux.HandleFunc("/batch", s.instrument("/batch", s.handleBatch))
	mux.HandleFunc("/verify", s.instrument("/verify", s.handleVerify))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	if s.registry != nil {
		mux.HandleFunc("/admin/reload", s.instrument("/admin/reload", s.handleReload))
		mux.HandleFunc("/admin/rollback", s.instrument("/admin/rollback", s.handleRollback))
		mux.HandleFunc("/admin/model", s.instrument("/admin/model", s.handleModel))
	}
	if s.tracer != nil {
		// Uninstrumented on purpose: trace inspection must not perturb
		// the request metrics or generate traces of its own.
		mux.HandleFunc("/debug/traces", s.handleTraces)
		mux.HandleFunc("/debug/traces/chrome", s.handleTracesChrome)
	}
	if s.quality != nil {
		// Uninstrumented for the same reason as /debug/traces.
		mux.HandleFunc("/debug/quality", s.handleQuality)
	}
	return mux
}

// handleQuality serves the quality monitor's full snapshot: per-series
// score sketches with drift scores against the training baseline,
// spot-check confusion, SLO burn rates, and the alert state. Taking the
// snapshot also advances the alert state machine.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.quality.Snapshot())
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-endpoint metrics and panic
// recovery.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := func(code int) *telemetry.Counter {
		return s.reg.Counter("http_requests_total",
			telemetry.L("endpoint", endpoint), telemetry.L("code", fmt.Sprint(code)))
	}
	errCount := s.reg.Counter("http_errors_total", telemetry.L("endpoint", endpoint))
	latency := s.reg.Histogram("http_request_seconds", nil, telemetry.L("endpoint", endpoint))
	inflight := s.reg.Gauge("http_inflight_requests")
	// hotspot_inflight_requests is incremented before admission control
	// runs (admit happens inside h), so a saturated server's shed traffic
	// still registers as load.
	hotspotInflight := s.reg.Gauge("hotspot_inflight_requests")

	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Inc()
		hotspotInflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		ctx, root := trace.Start(trace.WithTracer(r.Context(), s.tracer),
			"http "+endpoint, trace.A("method", r.Method))
		if root != nil {
			r = r.WithContext(ctx)
		}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				root.SetFlag(trace.FlagPanic)
				root.AddEvent("panic", trace.A("value", fmt.Sprint(p)))
				if rec.status == 0 {
					http.Error(rec, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
			}
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			latency.ObserveDuration(time.Since(start))
			requests(rec.status).Inc()
			if rec.status >= 400 {
				errCount.Inc()
			}
			root.SetAttrInt("status", rec.status)
			if rec.status >= 500 {
				root.SetFlag(trace.FlagError)
			}
			root.End()
			inflight.Dec()
			hotspotInflight.Dec()
		}()
		h(rec, r)
	}
}

// ScoreResponse is the /score reply. Degraded responses carry the
// fallback detector's verdict: Detector/Score/Threshold describe the
// detector that actually answered.
type ScoreResponse struct {
	Detector  string  `json:"detector"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Hotspot   bool    `json:"hotspot"`
	// Degraded is true when the fallback detector answered because the
	// primary was unavailable (deadline, panic, error, or open breaker).
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason says why the primary was bypassed: "deadline",
	// "panic", "error", or "breaker-open".
	DegradedReason string `json:"degradedReason,omitempty"`
}

// VerifyResponse is the /verify reply.
type VerifyResponse struct {
	Hotspot    bool         `json:"hotspot"`
	PVBandArea float64      `json:"pvBandArea"`
	Defects    []DefectJSON `json:"defects"`
}

// DefectJSON is one defect in a /verify reply.
type DefectJSON struct {
	Type   string `json:"type"`
	Corner string `json:"corner"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ok",
		"detector": s.primary.Load().det.Name(),
	})
}

// ReadyResponse is the /readyz reply: the degradation posture of the
// cascade, for load balancers and operators.
type ReadyResponse struct {
	// Status is "ready" (primary serving), "degraded" (primary breaker
	// open but the fallback is answering), or "unavailable" (breaker
	// open, no fallback: requests will 5xx).
	Status   string `json:"status"`
	Breaker  string `json:"breaker"`
	Primary  string `json:"primary"`
	Fallback string `json:"fallback,omitempty"`
	// DeadlineBudget is the per-request budget, e.g. "500ms"; empty
	// when disabled.
	DeadlineBudget string `json:"deadlineBudget,omitempty"`
	// Shedding is true when admission control is enabled.
	Shedding bool `json:"shedding"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := ReadyResponse{
		Breaker:  s.breaker.State().String(),
		Primary:  s.primary.Load().det.Name(),
		Shedding: s.shed != nil,
	}
	if s.fallback != nil {
		out.Fallback = s.fallback.det.Name()
	}
	if s.opts.DeadlineBudget > 0 {
		out.DeadlineBudget = s.opts.DeadlineBudget.String()
	}
	status := http.StatusOK
	switch {
	case s.breaker.State() != resilience.StateOpen:
		out.Status = "ready"
	case s.fallback != nil:
		out.Status = "degraded"
	default:
		out.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// admit applies load shedding before any request work is done. It
// writes the 429 itself and returns false when the request is shed;
// shed requests are flagged on their trace so the tail sampler always
// retains them.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.shed == nil {
		return true
	}
	ok, retryAfter := s.shed.Allow()
	if ok {
		return true
	}
	s.shedTotal.Inc()
	if sp := trace.FromContext(r.Context()); sp != nil {
		sp.AddEvent("shed", trace.A("retryAfter", retryAfter.String()))
		sp.SetFlag(trace.FlagShed)
	}
	secs := int(retryAfter/time.Second) + 1
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "overloaded: request shed, see Retry-After", http.StatusTooManyRequests)
	return false
}

// readClip parses the request body (GLT layout) into a centred clip.
// The body is buffered first so an over-limit body surfaces as
// *http.MaxBytesError (413) rather than as a parse error on the
// truncated tail.
func (s *Server) readClip(w http.ResponseWriter, r *http.Request) (layout.Clip, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return layout.Clip{}, fmt.Errorf("read body: %w", err)
	}
	l, err := layout.Read(bytes.NewReader(body))
	if err != nil {
		return layout.Clip{}, fmt.Errorf("parse layout: %w", err)
	}
	b := l.Bounds()
	if b.Empty() {
		return layout.Clip{}, fmt.Errorf("layout has no shapes")
	}
	c := b.Center()
	return l.ClipAt(geom.Pt(c.X, c.Y), s.clipNM, s.coreFrac)
}

// clipError maps a readClip failure to its HTTP status: oversized bodies
// are 413, everything else is a client parse error.
func clipError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.admit(w, r) {
		return
	}
	clip, err := s.readClip(w, r)
	if err != nil {
		clipError(w, err)
		return
	}
	ctx, cancel := resilience.WithBudget(r.Context(), s.opts.DeadlineBudget)
	defer cancel()
	resp, err := s.cascade(ctx, clip)
	if err != nil {
		s.cascadeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// cascadeError maps a cascade failure (no fallback available, or the
// fallback itself failed) to its HTTP status.
func (s *Server) cascadeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, resilience.ErrOpen):
		if ra := s.breaker.RetryAfter(); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(ra/time.Second)+1))
		}
		http.Error(w, "primary detector unavailable (circuit open), no fallback", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		http.Error(w, fmt.Sprintf("scoring exceeded request deadline: %v", err), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// cascade scores the clip through the degradation ladder: primary
// behind the breaker and deadline, then fallback. A degraded response
// is a success; the returned error means nothing could answer. Every
// decision lands on the request trace: a "primary" span (with error),
// "breaker-open" and "degrade" events, and the degraded flag that
// makes the tail sampler retain the trace.
func (s *Server) cascade(ctx context.Context, clip layout.Clip) (ScoreResponse, error) {
	sp := trace.FromContext(ctx)
	prim := s.primary.Load()
	var primaryErr error
	reason := ""
	if s.breaker.Allow() {
		var score float64
		pctx, psp := trace.Start(ctx, "primary", trace.A("detector", prim.det.Name()))
		score, primaryErr = s.scorePrimary(pctx, prim, clip)
		psp.SetError(primaryErr)
		psp.End()
		s.breaker.Record(primaryErr)
		s.reportOutcome(primaryErr)
		if primaryErr == nil {
			thr := prim.det.Threshold()
			s.quality.Observe(qualitymon.Event{
				Detector: prim.det.Name(), Stage: "primary",
				Score: score, Threshold: thr,
				Clip: clip, HasClip: true,
			})
			return ScoreResponse{
				Detector: prim.det.Name(), Score: score,
				Threshold: thr, Hotspot: score >= thr,
			}, nil
		}
		s.primaryErrs.Inc()
		reason = degradedReason(primaryErr)
	} else {
		primaryErr = resilience.ErrOpen
		reason = "breaker-open"
		sp.AddEvent("breaker-open")
	}
	if s.fallback == nil {
		return ScoreResponse{}, primaryErr
	}
	sp.AddEvent("degrade", trace.A("reason", reason))
	sp.SetFlag(trace.FlagDegraded)
	fctx, fsp := trace.Start(ctx, "fallback", trace.A("detector", s.fallback.det.Name()))
	score, err := s.fallback.score(fctx, clip)
	fsp.SetError(err)
	fsp.End()
	if err != nil {
		return ScoreResponse{}, fmt.Errorf("fallback (after primary %s): %w", reason, err)
	}
	s.fallbacks.Inc()
	thr := s.fallback.det.Threshold()
	s.quality.Observe(qualitymon.Event{
		Detector: s.fallback.det.Name(), Stage: "fallback",
		Score: score, Threshold: thr,
		Clip: clip, HasClip: true,
	})
	return ScoreResponse{
		Detector: s.fallback.det.Name(), Score: score,
		Threshold: thr, Hotspot: score >= thr,
		Degraded: true, DegradedReason: reason,
	}, nil
}

func degradedReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, new(*panicError)):
		return "panic"
	default:
		return "error"
	}
}

// panicError wraps a recovered primary-scoring panic so the cascade can
// treat it as a failure instead of unwinding the handler.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("primary detector panic: %v", e.val) }

// reportOutcome feeds one primary-scoring outcome into the model
// registry's probation window (a no-op without a registry, and one
// atomic load outside probation) and into the quality monitor's SLO
// window.
func (s *Server) reportOutcome(primaryErr error) {
	if s.registry != nil {
		s.registry.ReportOutcome(primaryErr == nil)
	}
	s.quality.ReportServeOutcome(primaryErr == nil)
}

// qualityHook adapts the monitor for the registry's quality hook while
// keeping a disabled monitor a nil interface (so the registry skips the
// calls entirely instead of invoking no-op methods on a typed nil).
func qualityHook(m *qualitymon.Monitor) registry.QualityMonitor {
	if m == nil {
		return nil
	}
	return m
}

// scorePrimary runs prim (the primary scorer the caller loaded) under
// the request deadline, converting panics to errors. The scoring
// goroutine cannot be killed on timeout — it finishes in the background
// while the request degrades; the breaker stops sending traffic to a
// persistently slow primary.
func (s *Server) scorePrimary(ctx context.Context, prim *scorer, clip layout.Clip) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	type outcome struct {
		score float64
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				ch <- outcome{0, &panicError{val: p}}
			}
		}()
		if err := faultinject.Hit(PrimarySite); err != nil {
			ch <- outcome{0, err}
			return
		}
		score, err := prim.score(ctx, clip)
		ch <- outcome{score, err}
	}()
	select {
	case out := <-ch:
		return out.score, out.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.sim == nil {
		http.Error(w, "verification disabled", http.StatusNotImplemented)
		return
	}
	if !s.admit(w, r) {
		return
	}
	clip, err := s.readClip(w, r)
	if err != nil {
		clipError(w, err)
		return
	}
	ctx, cancel := resilience.WithBudget(r.Context(), s.opts.DeadlineBudget)
	defer cancel()
	res, err := s.sim.SimulateCtx(ctx, clip)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := VerifyResponse{Hotspot: res.Hotspot, PVBandArea: res.PVBandArea}
	for _, d := range res.Defects {
		out.Defects = append(out.Defects, DefectJSON{
			Type: d.Type.String(), Corner: d.Corner, X: d.At.X, Y: d.At.Y,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the client sees a truncated body.
	_ = json.NewEncoder(w).Encode(v)
}
