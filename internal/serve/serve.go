// Package serve exposes a trained hotspot detector as an HTTP service:
// physical-verification flows POST layout clips and receive JSON
// verdicts, optionally backed by lithography-simulation verification.
//
// Endpoints:
//
//	POST /score   body: GLT layout of one clip window -> {"score":..,"hotspot":..}
//	POST /verify  same body -> full oracle verdict with defects
//	GET  /healthz -> {"status":"ok","detector":"..."}
//	GET  /metrics -> Prometheus text exposition of serving telemetry
//
// The service is stateless per request and safe for concurrent use: the
// detector is cloned per request when it is not concurrency-safe. Every
// endpoint is instrumented with request/error counters, a latency
// histogram, and an in-flight gauge, and wrapped in panic recovery so a
// scoring bug degrades to a 500 instead of killing the process.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
	"github.com/golitho/hsd/internal/telemetry"
)

// maxBodyBytes bounds accepted request bodies (a clip is a few KiB).
const maxBodyBytes = 4 << 20

// Server wires a fitted detector (and optionally the oracle) into an
// http.Handler.
type Server struct {
	det core.Detector
	sim *lithosim.Simulator

	// clipNM/coreFrac describe the windows the detector was trained on.
	clipNM   int
	coreFrac float64

	mu    sync.Mutex
	clone core.Detector // reused single clone for non-concurrent detectors

	reg    *telemetry.Registry
	panics *telemetry.Counter
}

// New constructs a Server. det must already be fitted; sim may be nil to
// disable /verify.
func New(det core.Detector, sim *lithosim.Simulator, clipNM int, coreFrac float64) (*Server, error) {
	if det == nil {
		return nil, fmt.Errorf("serve: nil detector")
	}
	if clipNM <= 0 {
		clipNM = 1024
	}
	if coreFrac <= 0 || coreFrac > 1 {
		coreFrac = 0.5
	}
	reg := telemetry.NewRegistry()
	reg.SetHelp("http_requests_total", "Requests by endpoint and status code.")
	reg.SetHelp("http_errors_total", "Responses with status >= 400 by endpoint.")
	reg.SetHelp("http_request_seconds", "Request latency by endpoint.")
	reg.SetHelp("http_inflight_requests", "Requests currently being served.")
	reg.SetHelp("http_panics_total", "Handler panics recovered as 500s.")
	s := &Server{
		det: det, sim: sim, clipNM: clipNM, coreFrac: coreFrac,
		reg:    reg,
		panics: reg.Counter("http_panics_total"),
	}
	if c, ok := det.(core.Cloner); ok {
		s.clone = c.CloneDetector()
	}
	return s, nil
}

// Metrics returns the server's telemetry registry, for embedding the
// serving metrics into a wider exposition or reading them in tests.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Handler returns the routed HTTP handler with instrumentation and panic
// recovery applied to every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("/score", s.instrument("/score", s.handleScore))
	mux.HandleFunc("/verify", s.instrument("/verify", s.handleVerify))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-endpoint metrics and panic
// recovery.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := func(code int) *telemetry.Counter {
		return s.reg.Counter("http_requests_total",
			telemetry.L("endpoint", endpoint), telemetry.L("code", fmt.Sprint(code)))
	}
	errCount := s.reg.Counter("http_errors_total", telemetry.L("endpoint", endpoint))
	latency := s.reg.Histogram("http_request_seconds", nil, telemetry.L("endpoint", endpoint))
	inflight := s.reg.Gauge("http_inflight_requests")

	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				if rec.status == 0 {
					http.Error(rec, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
			}
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			latency.ObserveDuration(time.Since(start))
			requests(rec.status).Inc()
			if rec.status >= 400 {
				errCount.Inc()
			}
			inflight.Dec()
		}()
		h(rec, r)
	}
}

// ScoreResponse is the /score reply.
type ScoreResponse struct {
	Detector  string  `json:"detector"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Hotspot   bool    `json:"hotspot"`
}

// VerifyResponse is the /verify reply.
type VerifyResponse struct {
	Hotspot    bool         `json:"hotspot"`
	PVBandArea float64      `json:"pvBandArea"`
	Defects    []DefectJSON `json:"defects"`
}

// DefectJSON is one defect in a /verify reply.
type DefectJSON struct {
	Type   string `json:"type"`
	Corner string `json:"corner"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ok",
		"detector": s.det.Name(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// readClip parses the request body (GLT layout) into a centred clip.
// The body is buffered first so an over-limit body surfaces as
// *http.MaxBytesError (413) rather than as a parse error on the
// truncated tail.
func (s *Server) readClip(w http.ResponseWriter, r *http.Request) (layout.Clip, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return layout.Clip{}, fmt.Errorf("read body: %w", err)
	}
	l, err := layout.Read(bytes.NewReader(body))
	if err != nil {
		return layout.Clip{}, fmt.Errorf("parse layout: %w", err)
	}
	b := l.Bounds()
	if b.Empty() {
		return layout.Clip{}, fmt.Errorf("layout has no shapes")
	}
	c := b.Center()
	return l.ClipAt(geom.Pt(c.X, c.Y), s.clipNM, s.coreFrac)
}

// clipError maps a readClip failure to its HTTP status: oversized bodies
// are 413, everything else is a client parse error.
func clipError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	clip, err := s.readClip(w, r)
	if err != nil {
		clipError(w, err)
		return
	}
	score, err := s.score(clip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		Detector:  s.det.Name(),
		Score:     score,
		Threshold: s.det.Threshold(),
		Hotspot:   score >= s.det.Threshold(),
	})
}

// score runs the detector, serializing access when it is not
// concurrency-safe.
func (s *Server) score(clip layout.Clip) (float64, error) {
	if s.clone != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.clone.Score(clip)
	}
	return s.det.Score(clip)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.sim == nil {
		http.Error(w, "verification disabled", http.StatusNotImplemented)
		return
	}
	clip, err := s.readClip(w, r)
	if err != nil {
		clipError(w, err)
		return
	}
	res, err := s.sim.Simulate(clip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := VerifyResponse{Hotspot: res.Hotspot, PVBandArea: res.PVBandArea}
	for _, d := range res.Defects {
		out.Defects = append(out.Defects, DefectJSON{
			Type: d.Type.String(), Corner: d.Corner, X: d.At.X, Y: d.At.Y,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the client sees a truncated body.
	_ = json.NewEncoder(w).Encode(v)
}
