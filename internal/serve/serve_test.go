package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/lithosim"
)

// thresholdDetector flags clips whose drawn density exceeds 0.3.
type thresholdDetector struct{}

func (thresholdDetector) Name() string                       { return "density-threshold" }
func (thresholdDetector) Fit(train []core.LabeledClip) error { return nil }
func (thresholdDetector) Threshold() float64                 { return 0.3 }
func (thresholdDetector) Score(clip layout.Clip) (float64, error) {
	return clip.Density(), nil
}

func gltBody(t *testing.T, shapes ...geom.Rect) *bytes.Buffer {
	t.Helper()
	l := layout.New("req")
	for _, s := range shapes {
		if err := l.AddRect(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := layout.Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func newTestServer(t *testing.T, withSim bool) *httptest.Server {
	t.Helper()
	var sim *lithosim.Simulator
	if withSim {
		var err error
		sim, err = lithosim.New(lithosim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(thresholdDetector{}, sim, 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["detector"] != "density-threshold" {
		t.Fatalf("body = %v", body)
	}
}

func TestScoreEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	// Dense clip: a big block -> hotspot under the threshold detector.
	resp, err := http.Post(ts.URL+"/score", "text/plain",
		gltBody(t, geom.R(0, 0, 1024, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Hotspot || out.Score < 0.9 {
		t.Fatalf("dense clip verdict = %+v", out)
	}

	// Sparse clip: not a hotspot.
	resp2, err := http.Post(ts.URL+"/score", "text/plain",
		gltBody(t, geom.R(0, 0, 64, 64)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 ScoreResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Hotspot {
		t.Fatalf("sparse clip flagged: %+v", out2)
	}
}

func TestScoreRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Post(ts.URL+"/score", "text/plain", strings.NewReader("not glt"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", resp.StatusCode)
	}
	// Wrong method.
	resp2, err := http.Get(ts.URL + "/score")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp2.StatusCode)
	}
	// Empty layout.
	resp3, err := http.Post(ts.URL+"/score", "text/plain",
		strings.NewReader("GLT 1\nLAYOUT x\nEND\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty layout status = %d", resp3.StatusCode)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t, true)
	// Two lines 36 nm apart centred in the window: a bridge hotspot.
	resp, err := http.Post(ts.URL+"/verify", "text/plain",
		gltBody(t, geom.R(0, 400, 1024, 500), geom.R(0, 536, 1024, 636)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Hotspot || len(out.Defects) == 0 {
		t.Fatalf("bridge pair verdict = %+v", out)
	}
	if out.Defects[0].Type != "bridge" {
		t.Fatalf("first defect = %+v, want bridge", out.Defects[0])
	}
}

func TestVerifyDisabled(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Post(ts.URL+"/verify", "text/plain",
		gltBody(t, geom.R(0, 0, 100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

func TestConcurrentScoring(t *testing.T) {
	ts := newTestServer(t, false)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/score", "text/plain",
				gltBody(t, geom.R(0, 0, 512, 1024)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out ScoreResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0, 0); err == nil {
		t.Fatal("nil detector accepted")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t, false)
	// A syntactically endless GLT body beyond the 4 MiB cap: the server
	// must cut it off with 413, not 400.
	line := []byte("RECT 0 0 10 10\n")
	var buf bytes.Buffer
	buf.WriteString("GLT 1\nLAYOUT big\n")
	for buf.Len() < maxBodyBytes+1<<20 {
		buf.Write(line)
	}
	resp, err := http.Post(ts.URL+"/score", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// panicDetector blows up on Score to exercise panic recovery.
type panicDetector struct{ thresholdDetector }

func (panicDetector) Score(layout.Clip) (float64, error) { panic("scoring bug") }

func TestPanicRecovery(t *testing.T) {
	s, err := New(panicDetector{}, nil, 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/score", "text/plain",
		gltBody(t, geom.R(0, 0, 100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if got := s.Metrics().Counter("http_panics_total").Value(); got != 1 {
		t.Fatalf("http_panics_total = %v, want 1", got)
	}
	// The server must still answer after the panic.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp2.StatusCode)
	}
}

// TestMetricsReflectTraffic drives /score traffic (including an error)
// and asserts GET /metrics reports matching counters and latency
// histogram counts.
func TestMetricsReflectTraffic(t *testing.T) {
	ts := newTestServer(t, false)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/score", "text/plain",
			gltBody(t, geom.R(0, 0, 512, 512)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	respBad, err := http.Post(ts.URL+"/score", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	respBad.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`http_requests_total{code="200",endpoint="/score"} 3`,
		`http_requests_total{code="400",endpoint="/score"} 1`,
		`http_errors_total{endpoint="/score"} 1`,
		`http_request_seconds_count{endpoint="/score"} 4`,
		`# TYPE http_request_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, text)
		}
	}

	// Wrong method on /metrics.
	respPost, err := http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	respPost.Body.Close()
	if respPost.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", respPost.StatusCode)
	}
}

func TestVerifyNilSimulatorOversizedAndMethods(t *testing.T) {
	ts := newTestServer(t, false)
	// /verify with nil simulator takes the 501 path before touching the
	// body.
	resp, err := http.Post(ts.URL+"/verify", "text/plain",
		gltBody(t, geom.R(0, 0, 100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("nil-sim verify status = %d, want 501", resp.StatusCode)
	}
	// Wrong method on every POST endpoint.
	for _, path := range []string{"/score", "/verify"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s status = %d, want 405", path, r.StatusCode)
		}
	}
	// Wrong method on /healthz.
	r, err := http.Post(ts.URL+"/healthz", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status = %d, want 405", r.StatusCode)
	}
}

// cloningDetector is concurrency-unsafe and must be serialized through
// the server's single clone.
type cloningDetector struct {
	thresholdDetector
	calls int // mutated without synchronization: the race detector flags unserialized use
}

func (d *cloningDetector) Score(clip layout.Clip) (float64, error) {
	d.calls++
	return clip.Density(), nil
}

func (d *cloningDetector) CloneDetector() core.Detector { return &cloningDetector{} }

// TestConcurrentScoreCloner exercises the clone-serialization path under
// -race: the shared clone's unsynchronized counter must only ever be
// touched under the server mutex.
func TestConcurrentScoreCloner(t *testing.T) {
	s, err := New(&cloningDetector{}, nil, 1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/score", "text/plain",
				gltBody(t, geom.R(0, 0, 256, 1024)))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
