package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/golitho/hsd/internal/core"
	"github.com/golitho/hsd/internal/geom"
	"github.com/golitho/hsd/internal/layout"
	"github.com/golitho/hsd/internal/telemetry"
)

// namedDet is a reload-test detector with a fixed score: the gate and
// the serving path both see exactly what the test configured.
type namedDet struct {
	name  string
	score float64
	thr   float64
	err   error
}

func (d namedDet) Name() string                 { return d.name }
func (d namedDet) Fit([]core.LabeledClip) error { return nil }
func (d namedDet) Threshold() float64           { return d.thr }
func (d namedDet) Score(layout.Clip) (float64, error) {
	return d.score, d.err
}

// reloadServer builds a server whose Loader returns cand for any path.
func reloadServer(t *testing.T, cand core.Detector, ro ReloadOptions) (*Server, *httptest.Server) {
	t.Helper()
	ro.Loader = func(path string) (core.Detector, error) {
		if cand == nil {
			return nil, errors.New("no such model")
		}
		return cand, nil
	}
	s, err := NewServer(Options{Primary: thresholdDetector{}, Reload: &ro})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postReload(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func scoreOnce(t *testing.T, ts *httptest.Server) (int, ScoreResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/score", "application/octet-stream",
		gltBody(t, geom.R(0, 0, 200, 200)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr ScoreResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

func reloadCounter(s *Server, outcome string) float64 {
	return s.Metrics().Counter("hotspot_reloads_total", telemetry.L("outcome", outcome)).Value()
}

func TestAdminReloadSwapsPrimary(t *testing.T) {
	cand := namedDet{name: "cnn-v2", score: 0.9, thr: 0.7}
	s, ts := reloadServer(t, cand, ReloadOptions{})

	resp := postReload(t, ts, `{"path":"model-v2.hsdnn"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	var mr ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Generation != 2 || mr.Detector != "cnn-v2" || mr.Source != "model-v2.hsdnn" {
		t.Fatalf("reload reply = %+v", mr)
	}
	if mr.Verdict == nil || !mr.Verdict.OK {
		t.Fatalf("reload verdict = %+v, want OK", mr.Verdict)
	}

	// The serving path now runs the new generation end to end.
	code, sr := scoreOnce(t, ts)
	if code != http.StatusOK || sr.Detector != "cnn-v2" || sr.Threshold != 0.7 || !sr.Hotspot {
		t.Fatalf("post-swap score = %d %+v, want cnn-v2 hotspot at thr 0.7", code, sr)
	}
	if got := reloadCounter(s, "swapped"); got != 1 {
		t.Fatalf("swapped counter = %v, want 1", got)
	}
	if got := s.Metrics().Gauge("hotspot_model_generation").Value(); got != 2 {
		t.Fatalf("generation gauge = %v, want 2", got)
	}
}

func TestAdminReloadRejectedKeepsLiveModel(t *testing.T) {
	golden := []core.LabeledClip{{Hotspot: true}, {Hotspot: false}}
	cand := namedDet{name: "nan-model", score: math.NaN(), thr: 0.5}
	s, ts := reloadServer(t, cand, ReloadOptions{Golden: golden})

	resp := postReload(t, ts, `{"path":"broken.hsdnn"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("reload status = %d, want 422", resp.StatusCode)
	}
	var body struct {
		Error   string      `json:"error"`
		Verdict VerdictJSON `json:"verdict"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Verdict.OK || body.Error == "" {
		t.Fatalf("rejection body = %+v", body)
	}
	code, sr := scoreOnce(t, ts)
	if code != http.StatusOK || sr.Detector != "density-threshold" {
		t.Fatalf("score after rejection = %d %+v, want the boot detector", code, sr)
	}
	if got := reloadCounter(s, "rejected"); got != 1 {
		t.Fatalf("rejected counter = %v, want 1", got)
	}
}

func TestAdminReloadLoadFailure(t *testing.T) {
	s, ts := reloadServer(t, nil, ReloadOptions{})
	resp := postReload(t, ts, `{"path":"missing.hsdnn"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload status = %d, want 500", resp.StatusCode)
	}
	if got := reloadCounter(s, "load_failed"); got != 1 {
		t.Fatalf("load_failed counter = %v, want 1", got)
	}
}

func TestAdminReloadNeedsPath(t *testing.T) {
	_, ts := reloadServer(t, namedDet{name: "x"}, ReloadOptions{})
	if resp := postReload(t, ts, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless reload status = %d, want 400", resp.StatusCode)
	}
}

func TestAdminReloadDefaultPath(t *testing.T) {
	cand := namedDet{name: "watched", score: 0.9, thr: 0.5}
	_, ts := reloadServer(t, cand, ReloadOptions{DefaultPath: "watched.hsdnn"})
	resp := postReload(t, ts, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-path reload status = %d", resp.StatusCode)
	}
	var mr ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Source != "watched.hsdnn" {
		t.Fatalf("source = %q, want the configured default path", mr.Source)
	}
}

func TestAdminModelAndRollback(t *testing.T) {
	cand := namedDet{name: "cnn-v2", score: 0.9, thr: 0.5}
	_, ts := reloadServer(t, cand, ReloadOptions{})

	get := func() ModelResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/admin/model")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr ModelResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		return mr
	}
	if mr := get(); mr.Generation != 1 || mr.Source != "boot" {
		t.Fatalf("boot model = %+v", mr)
	}
	postReload(t, ts, `{"path":"m"}`)
	if mr := get(); mr.Generation != 2 {
		t.Fatalf("post-reload model = %+v", mr)
	}

	resp, err := http.Post(ts.URL+"/admin/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback status = %d", resp.StatusCode)
	}
	if mr := get(); mr.Generation != 1 {
		t.Fatalf("post-rollback model = %+v, want generation 1", mr)
	}
	resp2, err := http.Post(ts.URL+"/admin/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second rollback status = %d, want 409", resp2.StatusCode)
	}
}

// TestProbationRollbackRestoresServing is the end-to-end acceptance
// path: a candidate passes the (empty) gate, starts erroring in
// production, exceeds the probation failure budget, and the registry
// rolls the serving path back to the previous generation.
func TestProbationRollbackRestoresServing(t *testing.T) {
	bad := namedDet{name: "flaky", thr: 0.5, err: errors.New("tensor shape mismatch")}
	s, ts := reloadServer(t, bad, ReloadOptions{
		ProbationRequests:    10,
		ProbationMaxFailures: 1,
	})
	if resp := postReload(t, ts, `{"path":"flaky.hsdnn"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}

	// Two primary failures exceed the budget of 1 and trigger rollback.
	// No fallback is configured, so these requests surface as 500s.
	for i := 0; i < 2; i++ {
		if code, _ := scoreOnce(t, ts); code != http.StatusInternalServerError {
			t.Fatalf("flaky score %d status = %d, want 500", i, code)
		}
	}
	if got := s.Registry().Live().ID; got != 1 {
		t.Fatalf("live generation = %d, want 1 after automatic rollback", got)
	}
	if got := reloadCounter(s, "rolled_back"); got != 1 {
		t.Fatalf("rolled_back counter = %v, want 1", got)
	}
	if got := s.Metrics().Gauge("hotspot_model_generation").Value(); got != 1 {
		t.Fatalf("generation gauge = %v, want 1 after rollback", got)
	}
	// The restored generation serves again — same request now succeeds.
	code, sr := scoreOnce(t, ts)
	if code != http.StatusOK || sr.Detector != "density-threshold" || sr.Degraded {
		t.Fatalf("post-rollback score = %d %+v, want healthy boot detector", code, sr)
	}
}

// TestReloadMidTrafficIsConsistent hammers /score during a swap and
// checks every response is internally consistent: the reported
// detector, threshold, and hotspot verdict always belong to the same
// generation (the atomic primary pointer is loaded once per request).
func TestReloadMidTrafficIsConsistent(t *testing.T) {
	// Old: thr 0.3 (density clip scores above it). New: score 0.9, thr 0.7.
	cand := namedDet{name: "cnn-v2", score: 0.9, thr: 0.7}
	_, ts := reloadServer(t, cand, ReloadOptions{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			postReload(t, ts, `{"path":"m"}`)
		}
	}()
	for i := 0; i < 50; i++ {
		code, sr := scoreOnce(t, ts)
		if code != http.StatusOK {
			t.Fatalf("score %d status = %d", i, code)
		}
		switch sr.Detector {
		case "density-threshold":
			if sr.Threshold != 0.3 {
				t.Fatalf("old detector with new threshold: %+v", sr)
			}
		case "cnn-v2":
			if sr.Threshold != 0.7 || sr.Score != 0.9 || !sr.Hotspot {
				t.Fatalf("new detector with torn fields: %+v", sr)
			}
		default:
			t.Fatalf("unknown detector %q", sr.Detector)
		}
	}
	<-done
}
